"""E2/E10 — Table II: MCCP encryption throughputs at 190 MHz.

Regenerates every cell: AES-GCM {1 core, 4x1} and AES-CCM {1 core,
4x1, 2 cores, 2x2} for 128/192/256-bit keys, theoretical and 2 KB
packet columns, next to the paper's published values.  Also asserts the
abstract's 1.7 Gbps headline (E10).
"""

import pytest

from repro.analysis.tables import render_table
from repro.analysis.throughput import PAPER_TABLE2, theoretical_mbps
from repro.core.crypto_core import CryptoCore
from repro.core.harness import drainer_process, feeder_process
from repro.core.params import Direction
from repro.crypto.aes import expand_key
from repro.radio import format_ccm_single, format_ccm_two_core, format_gcm
from repro.sim.kernel import Simulator
from repro.unit.timing import DEFAULT_TIMING

from benchmarks.conftest import deterministic_bytes as db, packet_mbps, run_core_task

KEYS = {128: bytes(range(16)), 192: bytes(range(24)), 256: bytes(range(32))}
PACKET = db(2048, seed=2)


def _single_gcm(key_bits: int) -> float:
    task = format_gcm(key_bits, db(12), b"", PACKET, Direction.ENCRYPT)
    run, _, _ = run_core_task(task, KEYS[key_bits])
    return packet_mbps(2048, run.result.cycles)


def _single_ccm(key_bits: int) -> float:
    task = format_ccm_single(key_bits, db(13), b"", PACKET, Direction.ENCRYPT, 8)
    run, _, _ = run_core_task(task, KEYS[key_bits])
    return packet_mbps(2048, run.result.cycles)


def _two_core_ccm(key_bits: int) -> float:
    mac_task, ctr_task = format_ccm_two_core(
        key_bits, db(13), b"", PACKET, Direction.ENCRYPT, 8
    )
    sim = Simulator()
    c0 = CryptoCore(sim, DEFAULT_TIMING, index=0)
    c1 = CryptoCore(sim, DEFAULT_TIMING, index=1)
    c0.unit.ic_out = c1.unit.ic_in
    c1.unit.ic_out = c0.unit.ic_in
    for c in (c0, c1):
        c.key_cache.install(expand_key(KEYS[key_bits]), key_bits)
    sim.add_process(feeder_process(c0, mac_task.input_blocks))
    sim.add_process(feeder_process(c1, ctr_task.input_blocks))
    sink = []
    sim.add_process(drainer_process(c1, sink))
    c0.assign_task(mac_task.params)
    d1 = c1.assign_task(ctr_task.params)
    result = sim.run_until_event(d1, limit=100_000_000)
    return packet_mbps(2048, result.cycles)


def _measured(config: str, key_bits: int) -> float:
    if config == "gcm_1":
        return _single_gcm(key_bits)
    if config == "gcm_4x1":
        return 4 * _single_gcm(key_bits)
    if config == "ccm_1":
        return _single_ccm(key_bits)
    if config == "ccm_4x1":
        return 4 * _single_ccm(key_bits)
    if config == "ccm_2":
        return _two_core_ccm(key_bits)
    if config == "ccm_2x2":
        return 2 * _two_core_ccm(key_bits)
    raise ValueError(config)


def test_bench_table2(benchmark):
    rows = []
    max_measured = 0.0
    order = ["gcm_1", "gcm_4x1", "ccm_1", "ccm_4x1", "ccm_2", "ccm_2x2"]
    for key_bits in (128, 192, 256):
        for config in order:
            paper_theo, paper_pkt = PAPER_TABLE2[(config, key_bits)]
            ours_theo = theoretical_mbps(config, key_bits)
            ours_pkt = _measured(config, key_bits)
            max_measured = max(max_measured, ours_pkt)
            rows.append(
                (
                    config,
                    key_bits,
                    f"{paper_theo} / {paper_pkt}",
                    f"{ours_theo:.0f} / {ours_pkt:.0f}",
                )
            )
            # Theoretical must match within 1%; packet column within 12%
            # (our pre/post-loop firmware differs in detail).
            assert ours_theo == pytest.approx(paper_theo, rel=0.01)
            assert ours_pkt == pytest.approx(paper_pkt, rel=0.12)
            assert ours_pkt <= ours_theo * 1.001
    print()
    print(
        render_table(
            ["config", "key", "paper (theo/2KB)", "measured (theo/2KB)"],
            rows,
            title="E2: Table II — MCCP encryption throughput (Mbps @ 190 MHz)",
        )
    )
    # E10: the abstract's 1.7 Gbps headline.
    assert max_measured > 1700, "headline 1.7 Gbps not reached"
    print(f"E10: max aggregate measured = {max_measured:.0f} Mbps (paper: 1.7 Gbps)")
    benchmark(lambda: _single_gcm(128))
