"""E4 — Table IV: partial reconfiguration results.

Regenerates all four timing cells (AES / Whirlpool x CompactFlash /
RAM) from the bitstream-store bandwidth model, swaps a live core's
personality both ways, and demonstrates the caching conclusion.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.crypto_core import CryptoCore
from repro.reconfig import BitstreamStore, MODULE_LIBRARY, ReconfigManager, StoreKind
from repro.sim.kernel import Simulator
from repro.unit.timing import DEFAULT_TIMING

PAPER_TABLE4 = {
    # module: (slices, brams, bitstream_kB, cf_ms, ram_ms)
    "aes": (351, 4, 89, 380, 63),
    "whirlpool": (1153, 4, 97, 416, 69),
}


def test_bench_table4(benchmark):
    cf = BitstreamStore(StoreKind.COMPACT_FLASH)
    ram = BitstreamStore(StoreKind.RAM)
    rows = []
    for module, (slices, brams, size_kb, cf_ms, ram_ms) in PAPER_TABLE4.items():
        bs = MODULE_LIBRARY[module]
        ours_cf = cf.load_seconds(module) * 1000
        ours_ram = ram.load_seconds(module) * 1000
        rows.append(
            (
                module,
                f"{bs.slices} ({bs.brams})",
                f"{bs.size_bytes // 1000}",
                f"{cf_ms} / {ours_cf:.0f}",
                f"{ram_ms} / {ours_ram:.0f}",
            )
        )
        assert bs.slices == slices and bs.brams == brams
        assert bs.size_bytes == size_kb * 1000
        assert ours_cf == pytest.approx(cf_ms, rel=0.05)
        assert ours_ram == pytest.approx(ram_ms, rel=0.05)
    print()
    print(
        render_table(
            ["module", "slices (BRAM)", "bitstream kB", "CF ms (paper/ours)", "RAM ms (paper/ours)"],
            rows,
            title="E4: Table IV — partial reconfiguration results",
        )
    )

    # Live swap on a simulated core + the caching conclusion.
    def live_swap():
        sim = Simulator()
        cores = [CryptoCore(sim, DEFAULT_TIMING, index=0)]
        manager = ReconfigManager(sim, cores, BitstreamStore(StoreKind.COMPACT_FLASH))
        first = manager.reconfigure_sync(0, "whirlpool")
        manager.reconfigure_sync(0, "aes")
        cached = manager.reconfigure_sync(0, "whirlpool")
        return first, cached

    first, cached = live_swap()
    assert not first.cached and cached.cached
    assert cached.seconds < first.seconds / 4
    print(
        f"caching: first Whirlpool load {first.seconds * 1000:.0f} ms (CF), "
        f"cached reload {cached.seconds * 1000:.0f} ms (RAM-class) — "
        "'caching of bitstream is needed to obtain the best performances'"
    )
    benchmark(live_swap)
