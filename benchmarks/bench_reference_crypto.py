"""Gold-model crypto microbenchmarks (pytest-benchmark proper).

Not a paper artifact — tracks the Python crypto kernels that every
simulation cycle ultimately calls.  Each hot path is benchmarked twice:
the pure-reference implementation (``use_fast=False`` — the readable,
hardware-mirroring code) and the fast engine (T-table AES, vectorised
bulk CTR, tabulated GHASH).  The pairing makes both regressions and the
fast-path speedup visible in one run:

    pytest benchmarks/bench_reference_crypto.py --benchmark-only

``benchmarks/run_bench.py`` runs the same kernels standalone and emits
a ``BENCH_<date>.json`` snapshot for the perf trajectory.
"""


from repro.crypto import AES, ccm_encrypt, gcm_encrypt, whirlpool
from repro.crypto.fast.bulk import ctr_xcrypt_bulk
from repro.crypto.fast.gf128_tables import gf128_mul_tabulated, ghash_tables
from repro.crypto.gf128 import gf128_mul
from repro.crypto.ghash import GHash
from repro.crypto.modes.ctr import ctr_xcrypt

from benchmarks.conftest import deterministic_bytes as db

KEY = bytes(range(16))
BLOCK = db(16, seed=11)
PACKET = db(2048, seed=12)
ICB = db(16, seed=16)
H = db(16, seed=17)


# -- AES single block ------------------------------------------------------


def test_bench_aes_block_reference(benchmark):
    cipher = AES(KEY, use_fast=False)
    out = benchmark(cipher.encrypt_block, BLOCK)
    assert len(out) == 16


def test_bench_aes_block_fast(benchmark):
    cipher = AES(KEY, use_fast=True)
    reference = AES(KEY, use_fast=False).encrypt_block(BLOCK)
    out = benchmark(cipher.encrypt_block, BLOCK)
    assert out == reference


# -- GF(2^128) multiply / GHASH -------------------------------------------


def test_bench_gf128_mul(benchmark):
    x = int.from_bytes(db(16, seed=13), "big")
    y = int.from_bytes(db(16, seed=14), "big")
    assert benchmark(gf128_mul, x, y) == gf128_mul(x, y)


def test_bench_gf128_mul_tabulated(benchmark):
    x = int.from_bytes(db(16, seed=13), "big")
    y = int.from_bytes(db(16, seed=14), "big")
    ghash_tables(y)  # build outside the timed region (memoized per subkey)
    assert benchmark(gf128_mul_tabulated, x, y) == gf128_mul(x, y)


def test_bench_ghash_2kb_reference(benchmark):
    def run():
        return GHash(H, use_fast=False).update_blocks(PACKET).digest()

    assert len(benchmark(run)) == 16


def test_bench_ghash_2kb_fast(benchmark):
    reference = GHash(H, use_fast=False).update_blocks(PACKET).digest()

    def run():
        return GHash(H, use_fast=True).update_blocks(PACKET).digest()

    assert benchmark(run) == reference


# -- AES-CTR bulk ----------------------------------------------------------


def test_bench_ctr_2kb_reference(benchmark):
    cipher = AES(KEY, use_fast=False)
    out = benchmark(ctr_xcrypt, cipher, ICB, PACKET, 16, False)
    assert len(out) == 2048


def test_bench_ctr_2kb_fast(benchmark):
    reference = ctr_xcrypt(AES(KEY, use_fast=False), ICB, PACKET, 16, False)
    out = benchmark(ctr_xcrypt_bulk, KEY, ICB, PACKET, 16)
    assert out == reference


# -- AEAD whole packets ----------------------------------------------------


def test_bench_gcm_2kb_reference(benchmark):
    ct, tag = benchmark(
        gcm_encrypt, KEY, db(12), PACKET, b"", 16, False
    )
    assert len(ct) == 2048 and len(tag) == 16


def test_bench_gcm_2kb_packet(benchmark):
    ct, tag = benchmark(gcm_encrypt, KEY, db(12), PACKET, b"")
    assert (ct, tag) == gcm_encrypt(KEY, db(12), PACKET, b"", use_fast=False)


def test_bench_ccm_2kb_reference(benchmark):
    ct, tag = benchmark(
        ccm_encrypt, KEY, db(13), PACKET, b"", 8, False
    )
    assert len(tag) == 8


def test_bench_ccm_2kb_packet(benchmark):
    ct, tag = benchmark(ccm_encrypt, KEY, db(13), PACKET, b"", 8)
    assert (ct, tag) == ccm_encrypt(KEY, db(13), PACKET, b"", 8, use_fast=False)


def test_bench_whirlpool_block(benchmark):
    digest = benchmark(whirlpool, db(64, seed=15))
    assert len(digest) == 64
