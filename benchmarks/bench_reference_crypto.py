"""Reference gold-model microbenchmarks (pytest-benchmark proper).

Not a paper artifact — tracks the pure-Python crypto kernels that every
simulation cycle ultimately calls, so performance regressions in the
hot paths (AES block, GHASH block, full GCM packet) are visible.
"""

import pytest

from repro.crypto import AES, ccm_encrypt, gcm_encrypt, whirlpool
from repro.crypto.gf128 import gf128_mul

from benchmarks.conftest import deterministic_bytes as db

KEY = bytes(range(16))
BLOCK = db(16, seed=11)
PACKET = db(2048, seed=12)


def test_bench_aes_block(benchmark):
    cipher = AES(KEY)
    out = benchmark(cipher.encrypt_block, BLOCK)
    assert len(out) == 16


def test_bench_gf128_mul(benchmark):
    x = int.from_bytes(db(16, seed=13), "big")
    y = int.from_bytes(db(16, seed=14), "big")
    assert benchmark(gf128_mul, x, y) == gf128_mul(x, y)


def test_bench_gcm_2kb_packet(benchmark):
    ct, tag = benchmark(gcm_encrypt, KEY, db(12), PACKET, b"")
    assert len(ct) == 2048 and len(tag) == 16


def test_bench_ccm_2kb_packet(benchmark):
    ct, tag = benchmark(ccm_encrypt, KEY, db(13), PACKET, b"", 8)
    assert len(tag) == 8


def test_bench_whirlpool_block(benchmark):
    digest = benchmark(whirlpool, db(64, seed=15))
    assert len(digest) == 64
