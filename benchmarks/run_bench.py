#!/usr/bin/env python
"""Standalone bench runner: ops/s per kernel, emitted as JSON.

Thin CLI over :mod:`repro.experiments.kernels` (where the kernel
definitions moved when the ``repro.experiments`` sweep subsystem
absorbed the benchmarks — see ``python -m repro.experiments`` for the
full campaign runner).  Kept because its ``BENCH_<date>.json`` schema
is the committed perf baseline CI's perf-smoke job compares against::

    PYTHONPATH=src python benchmarks/run_bench.py          # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick  # smoke run

The JSON maps benchmark name to ops/s and derives a ``speedups``
section for every ``<name>_fast`` / ``<name>_reference`` pair, which is
where the fast-engine acceptance numbers (AES-CTR, GHASH >= 10x) are
recorded.  The test suite smoke-invokes ``main(["--quick", ...])``.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import os
import platform
import re
import sys
from pathlib import Path

if __package__ is None and __name__ == "__main__":  # script invocation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.crypto.fast import fast_enabled
from repro.crypto.fast.aes_vector import HAVE_NUMPY
from repro.crypto.fast.exec import default_backend
from repro.experiments.kernels import (
    BATCH_PACKETS,
    PIPELINE_STREAM_PACKETS,
    bench_backend,
    build_kernels,
    measure,
)
from repro.resilience import stats as resilience_stats


def main(argv=None) -> Path:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).resolve().parent,
        help="directory for the BENCH_<date>.json snapshot",
    )
    parser.add_argument(
        "--seconds", type=float, default=0.4,
        help="measurement window per benchmark",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: ~20 ms per benchmark (for the test suite)",
    )
    parser.add_argument(
        "--stem", default=None,
        help="snapshot filename stem (default BENCH_<date>; pass e.g. "
        "BENCH_<date>b to snapshot twice on one day without clobbering)",
    )
    args = parser.parse_args(argv)
    window = 0.02 if args.quick else args.seconds

    results = {}
    for name, fn in build_kernels().items():
        ops_per_s, iters = measure(fn, window)
        results[name] = {"ops_per_s": round(ops_per_s, 2), "iterations": iters}
        print(f"{name:28s} {ops_per_s:12.1f} ops/s  ({iters} iters)")

    speedups = {}
    for name in results:
        if name.endswith("_fast"):
            ref = name[: -len("_fast")] + "_reference"
            if ref in results and results[ref]["ops_per_s"]:
                speedups[name[: -len("_fast")]] = round(
                    results[name]["ops_per_s"] / results[ref]["ops_per_s"], 2
                )
        # Batch kernels (one op = N packets): derive the per-packet
        # speedup over the sequential fast kernel they accelerate.
        batch = re.fullmatch(r"(.+)_batch(\d+)_fast", name)
        if batch and f"{batch[1]}_fast" in results:
            base = results[f"{batch[1]}_fast"]["ops_per_s"]
            if base:
                speedups[f"{batch[1]}_batch{batch[2]}_per_packet"] = round(
                    results[name]["ops_per_s"] * int(batch[2]) / base, 2
                )
        # Backend-parametrized batch kernels: speedup over the inline
        # batch kernel with the same packets (the CI gate's numbers).
        pooled = re.fullmatch(r"(.+_batch\d+)_(thread|process|arena)_fast", name)
        if pooled and f"{pooled[1]}_fast" in results:
            base = results[f"{pooled[1]}_fast"]["ops_per_s"]
            if base:
                speedups[f"{pooled[1]}_{pooled[2]}_over_inline"] = round(
                    results[name]["ops_per_s"] / base, 2
                )
        # Pipelined dataplane kernels vs their synchronous backend twin.
        # Ops aren't packet-comparable (a pipelined op streams
        # PIPELINE_STREAM_PACKETS, the sync twin BATCH_PACKETS), so the
        # ratio is packets/s over packets/s.
        piped = re.fullmatch(
            r"(.+_batch\d+)_pipelined_(thread|process)_fast", name
        )
        if piped and f"{piped[1]}_{piped[2]}_fast" in results:
            base = results[f"{piped[1]}_{piped[2]}_fast"]["ops_per_s"]
            if base:
                pipelined_pps = results[name]["ops_per_s"] * PIPELINE_STREAM_PACKETS
                speedups[f"{piped[1]}_pipelined_{piped[2]}_over_sync"] = round(
                    pipelined_pps / (base * BATCH_PACKETS), 2
                )
    for pair, ratio in sorted(speedups.items()):
        print(f"speedup {pair:34s} {ratio:8.1f}x")

    # Execution-backend context: cross-machine comparisons of the
    # *_thread/*_process kernels are meaningless without the worker
    # and CPU counts (a 1-CPU runner can never beat inline).
    process_backend = bench_backend("process")
    arena_backend = bench_backend("process-arena")
    snapshot = {
        "date": _dt.date.today().isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fast_enabled": fast_enabled(),
        "have_numpy": HAVE_NUMPY,
        "window_seconds": window,
        "backend": default_backend().name,
        "backend_workers": {
            "thread": bench_backend("thread").workers,
            "process": process_backend.workers,
        },
        "process_degraded": process_backend.degraded_reason,
        # The *_arena kernels are meaningless without knowing whether
        # the shared-memory dataplane actually engaged on this host.
        "arena_active": arena_backend.dispatch_arena() is not None,
        "arena_degraded": arena_backend.arena_degraded_reason,
        "cpu_count": os.cpu_count(),
        # Recovery counters accrued while benchmarking: a non-zero
        # retry/degradation count here flags that the timing numbers
        # were taken on a struggling host.
        "resilience": resilience_stats.snapshot(),
        "benchmarks": results,
        "speedups": speedups,
    }
    args.out.mkdir(parents=True, exist_ok=True)
    stem = args.stem or f"BENCH_{snapshot['date']}"
    out_path = args.out / f"{stem}.json"
    out_path.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {out_path}")
    return out_path


if __name__ == "__main__":
    main()
