#!/usr/bin/env python
"""Standalone bench runner: ops/s per kernel, emitted as JSON.

Runs the same hot-path kernels as ``bench_reference_crypto.py`` (plus a
sim-kernel event benchmark) without any pytest machinery and writes
``BENCH_<date>.json`` next to this file (or to ``--out``), so every PR
leaves a machine-readable point on the performance trajectory::

    PYTHONPATH=src python benchmarks/run_bench.py          # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick  # smoke run

The JSON maps benchmark name to ops/s and derives a ``speedups``
section for every ``<name>_fast`` / ``<name>_reference`` pair, which is
where the fast-engine acceptance numbers (AES-CTR, GHASH >= 10x) are
recorded.  The test suite smoke-invokes ``main(["--quick", ...])``.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Tuple

if __package__ is None and __name__ == "__main__":  # script invocation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.crypto import AES, ccm_encrypt, gcm_encrypt
from repro.crypto.fast import fast_enabled
from repro.crypto.fast.aes_vector import HAVE_NUMPY
from repro.crypto.fast.bulk import ctr_xcrypt_bulk
from repro.crypto.fast.gf128_tables import gf128_mul_tabulated, ghash_tables
from repro.crypto.gf128 import gf128_mul
from repro.crypto.ghash import GHash
from repro.crypto.modes.ctr import ctr_xcrypt
from repro.sim.kernel import Delay, Simulator


def _bytes(n: int, seed: int) -> bytes:
    import random

    return bytes(random.Random(seed).getrandbits(8) for _ in range(n))


KEY = bytes(range(16))
BLOCK = _bytes(16, 11)
PACKET = _bytes(2048, 12)
ICB = _bytes(16, 16)
H = _bytes(16, 17)
IV = _bytes(12, 18)
NONCE = _bytes(13, 19)
GF_X = int.from_bytes(_bytes(16, 13), "big")
GF_Y = int.from_bytes(_bytes(16, 14), "big")


def _kernel_events() -> None:
    sim = Simulator()

    def proc():
        for _ in range(2000):
            yield Delay(1)

    for _ in range(4):
        sim.add_process(proc())
    sim.run()


def benchmarks() -> Dict[str, Callable[[], object]]:
    """Name -> zero-arg callable for one benchmark iteration."""
    ref_cipher = AES(KEY, use_fast=False)
    fast_cipher = AES(KEY, use_fast=True)
    ghash_tables(int.from_bytes(H, "big"))  # pre-build (memoized per subkey)
    return {
        "aes_block_reference": lambda: ref_cipher.encrypt_block(BLOCK),
        "aes_block_fast": lambda: fast_cipher.encrypt_block(BLOCK),
        "gf128_mul_reference": lambda: gf128_mul(GF_X, GF_Y),
        "gf128_mul_fast": lambda: gf128_mul_tabulated(GF_X, GF_Y),
        "ghash_2kb_reference": lambda: GHash(H, use_fast=False)
        .update_blocks(PACKET)
        .digest(),
        "ghash_2kb_fast": lambda: GHash(H, use_fast=True)
        .update_blocks(PACKET)
        .digest(),
        "aes_ctr_2kb_reference": lambda: ctr_xcrypt(
            ref_cipher, ICB, PACKET, 16, False
        ),
        "aes_ctr_2kb_fast": lambda: ctr_xcrypt_bulk(KEY, ICB, PACKET, 16),
        "gcm_2kb_reference": lambda: gcm_encrypt(
            KEY, IV, PACKET, b"", 16, False
        ),
        "gcm_2kb_fast": lambda: gcm_encrypt(KEY, IV, PACKET, b"", 16, True),
        "ccm_2kb_reference": lambda: ccm_encrypt(
            KEY, NONCE, PACKET, b"", 8, False
        ),
        "ccm_2kb_fast": lambda: ccm_encrypt(KEY, NONCE, PACKET, b"", 8, True),
        "sim_kernel_8k_events": _kernel_events,
    }


def measure(fn: Callable[[], object], target_seconds: float) -> Tuple[float, int]:
    """Run *fn* until *target_seconds* elapse; returns (ops_per_s, iters)."""
    fn()  # warm-up (table builds, key-schedule memos)
    iters = 0
    start = time.perf_counter()
    deadline = start + target_seconds
    while True:
        fn()
        iters += 1
        now = time.perf_counter()
        if now >= deadline:
            return iters / (now - start), iters


def main(argv=None) -> Path:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).resolve().parent,
        help="directory for the BENCH_<date>.json snapshot",
    )
    parser.add_argument(
        "--seconds", type=float, default=0.4,
        help="measurement window per benchmark",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: ~20 ms per benchmark (for the test suite)",
    )
    args = parser.parse_args(argv)
    window = 0.02 if args.quick else args.seconds

    results = {}
    for name, fn in benchmarks().items():
        ops_per_s, iters = measure(fn, window)
        results[name] = {"ops_per_s": round(ops_per_s, 2), "iterations": iters}
        print(f"{name:28s} {ops_per_s:12.1f} ops/s  ({iters} iters)")

    speedups = {}
    for name in results:
        if name.endswith("_fast"):
            ref = name[: -len("_fast")] + "_reference"
            if ref in results and results[ref]["ops_per_s"]:
                speedups[name[: -len("_fast")]] = round(
                    results[name]["ops_per_s"] / results[ref]["ops_per_s"], 2
                )
    for pair, ratio in sorted(speedups.items()):
        print(f"speedup {pair:22s} {ratio:8.1f}x")

    snapshot = {
        "date": _dt.date.today().isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fast_enabled": fast_enabled(),
        "have_numpy": HAVE_NUMPY,
        "window_seconds": window,
        "benchmarks": results,
        "speedups": speedups,
    }
    args.out.mkdir(parents=True, exist_ok=True)
    out_path = args.out / f"BENCH_{snapshot['date']}.json"
    out_path.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {out_path}")
    return out_path


if __name__ == "__main__":
    main()
