"""Benchmark fixtures: shared measurement helpers.

Every benchmark prints a paper-vs-measured table (captured with ``-s``)
and feeds pytest-benchmark a representative inner loop, so both the
reproduction artifact and the performance regression signal come out of
one run: ``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.crypto_core import CryptoCore
from repro.core.harness import run_task
from repro.crypto.aes import expand_key
from repro.sim.kernel import Simulator
from repro.sim.tracing import TraceRecorder
from repro.unit.timing import DEFAULT_TIMING

CLOCK_HZ = 190e6


def deterministic_bytes(n: int, seed: int = 1) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.getrandbits(8) for _ in range(n))


def run_core_task(task, key, trace=None):
    """One task on one fresh core; returns (run, core, sim)."""
    sim = Simulator()
    core = CryptoCore(sim, DEFAULT_TIMING, trace=trace)
    if key is not None:
        core.key_cache.install(expand_key(key), 8 * len(key))
    return run_task(sim, core, task), core, sim


def packet_mbps(payload_bytes: int, cycles: int) -> float:
    """Throughput of one packet at the paper's 190 MHz clock."""
    return 8 * payload_bytes * CLOCK_HZ / cycles / 1e6


@pytest.fixture
def traced():
    return TraceRecorder(enabled=True)
