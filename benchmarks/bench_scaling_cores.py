"""E8 — core-count scalability (section III.A: "the number of embedded
crypto-cores may vary").

Saturating GCM traffic on 1/2/4/6/8-core devices; aggregate throughput
should scale near-linearly until another resource binds.
"""

from repro.analysis.tables import render_table
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern


def _throughput(core_count: int, packets: int = 6) -> float:
    plat = SdrPlatform(core_count=core_count, seed=4)
    configs = [
        ChannelConfig(
            RadioStandard.SATCOM,
            bytes(32),
            TrafficPattern.SATURATING,
            packets=packets,
        )
        for _ in range(core_count)
    ]
    report = plat.run_workload(configs)
    return report.throughput_mbps()


def test_bench_core_scaling(benchmark):
    results = {}
    for cores in (1, 2, 4, 8):
        results[cores] = _throughput(cores)
    rows = [
        (c, f"{results[c]:.0f}", f"{results[c] / results[1]:.2f}x")
        for c in sorted(results)
    ]
    print()
    print(
        render_table(
            ["cores", "aggregate Mbps (AES-256-GCM)", "speedup vs 1 core"],
            rows,
            title="E8: core-count scaling, saturating multi-channel load",
        )
    )
    # Near-linear scaling through the paper's 4-core point.
    assert results[2] > 1.7 * results[1]
    assert results[4] > 3.2 * results[1]
    assert results[8] > results[4]
    benchmark(lambda: _throughput(2, packets=3))
