"""E1 — section VII.A loop equations: paper vs simulated steady state.

Regenerates:  T_GCM = T_CTR = 49, T_CBC = 55, T_CCM(1 core) = 104
(128-bit keys; +8 per key-size step per AES pass).
"""

from collections import Counter

from repro.analysis.cycles import paper_loop_cycles
from repro.analysis.tables import render_table
from repro.core.params import Direction
from repro.radio import format_cbc_mac, format_ccm_single, format_ctr, format_gcm
from repro.sim.tracing import TraceRecorder

from benchmarks.conftest import deterministic_bytes as db, run_core_task

KEYS = {128: bytes(range(16)), 192: bytes(range(24)), 256: bytes(range(32))}


def _measure(mode: str, key_bits: int) -> int:
    trace = TraceRecorder(enabled=True)
    key = KEYS[key_bits]
    data = db(2048, seed=key_bits)
    if mode in ("gcm",):
        task = format_gcm(key_bits, db(12), b"", data, Direction.ENCRYPT)
    elif mode == "ctr":
        task = format_ctr(key_bits, db(14) + bytes(2), data)
    elif mode == "cbc":
        task = format_cbc_mac(key_bits, data, Direction.ENCRYPT)
    else:  # ccm1
        task = format_ccm_single(key_bits, db(13), b"", data, Direction.ENCRYPT, 8)
    run, _, _ = run_core_task(task, key, trace)
    assert run.result.ok
    stride = 2 if mode == "ccm1" else 1
    cycles = [e.cycle for e in trace.filter(None, "issue") if e.details.get("op") == "SAES"]
    periods = [b - a for a, b in zip(cycles[::stride], cycles[stride::stride])]
    return Counter(periods).most_common(1)[0][0]


def test_bench_loop_cycles(benchmark):
    rows = []
    for mode in ("gcm", "ctr", "cbc", "ccm1"):
        for key_bits in (128, 192, 256):
            measured = _measure(mode, key_bits)
            paper = paper_loop_cycles(mode, key_bits)
            rows.append((mode.upper(), key_bits, paper, measured,
                         "OK" if measured == paper else "MISMATCH"))
    print()
    print(render_table(
        ["mode", "key bits", "paper cycles", "measured cycles", "verdict"],
        rows, title="E1: steady-state loop periods (section VII.A)"))
    assert all(r[4] == "OK" for r in rows)
    # Benchmark the densest measurement (CCM single-core, 128-bit).
    benchmark(lambda: _measure("ccm1", 128))
