#!/usr/bin/env python
"""CI gate: the overload invariant on bounded, admission-controlled runs.

Runs the ``overload_sweep`` scenario's exact cell
(:func:`repro.experiments.scenarios.overload.run_overload_cell` — a
three-class workload offered over capacity on bounded channels) and
hard-fails unless the invariant holds::

    PYTHONPATH=src python benchmarks/gate_overload.py

Checked in the cell itself: shed packets never count as auth failures
or dead letters, ``packets_done + shed`` covers the offered load,
queues stay at or under their watermark, the shed set reproduces
across the batched and pipelined dataplanes and across repeats,
admitted packets are byte-identical (payload, tag, per-channel order)
to the unthrottled run, and the SLA holds (control-class protected,
bulk absorbs the shedding).  This script additionally pins the shed
set *across execution backends* — inline, thread and process must shed
the exact same ``(channel, sequence)`` pairs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ is None and __name__ == "__main__":  # script invocation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from dataclasses import replace

from repro.errors import ExperimentError
from repro.experiments.scenarios.overload import (
    _configs,
    _spec,
    run_overload_cell,
)
from repro.radio.sdr_platform import SdrPlatform


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--capacity", type=int, default=4, help="bounded-queue watermark"
    )
    parser.add_argument(
        "--packets", type=int, default=24, help="packets per channel"
    )
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args(argv)

    try:
        metrics = run_overload_cell(
            "saturating", args.capacity, "inline", args.seed,
            packets=args.packets,
        )
    except ExperimentError as exc:
        print(f"FAIL: {exc}")
        return 1
    for key, value in metrics.items():
        print(f"{key:22s} {value}")

    # Cross-backend shed identity: the same storm throttled on every
    # execution backend must shed the exact same packets.
    configs = _configs("saturating", args.packets)
    spec = _spec(configs, args.capacity, None, "batched")
    shed_sets = {}
    for backend in ("inline", "thread:2", "process:2"):
        report = SdrPlatform(core_count=4, seed=args.seed).run_workload(
            replace(spec, backend=backend)
        )
        shed_sets[backend] = report.shed_packets
    first = shed_sets["inline"]
    for backend, shed in shed_sets.items():
        if shed != first:
            print(
                f"FAIL: backend {backend} shed set differs from inline "
                f"({len(shed)} vs {len(first)} packets)"
            )
            return 1
    print(f"shed set identical across {', '.join(shed_sets)} "
          f"({len(first)} packets)")
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
