#!/usr/bin/env python
"""CI gate: pooled backends must beat inline on multi-core runners.

Runs the ``backend_sweep`` scenario's exact measurement
(:func:`repro.experiments.scenarios.backends.measure_backends` — the
mixed seal+open 2 KB CCM batch on the inline, thread and process
backends, the process leg on both the shared-memory arena and the
legacy pickling dataplane) and enforces the acceptance ratios::

    PYTHONPATH=src python benchmarks/gate_backends.py \\
        --min-thread-speedup 1.3 --min-arena-over-pickle 1.5 --width 32

Two perf gates, each scoped to hosts that can actually express it:

- **thread over inline** (>= 2 CPUs): thread/inline must reach
  ``--min-thread-speedup``; a 1-CPU runner cannot overlap numpy sweeps
  so it reports and passes.
- **process over thread, arena over pickling** (>= 4 CPUs, hard-fail):
  the zero-copy arena is what makes the process backend *win* — it
  must beat the thread backend at the gate width and beat its own old
  pickling path by ``--min-arena-over-pickle``.  Below 4 CPUs the
  process workers cannot outnumber the GIL-sharing threads
  meaningfully, so the gate reports and skips.
- **adaptive controller** (``FlushPolicy(mode="auto")``): auto must
  reach 95% of the best static kernel's packets/s (warn below — the
  ISSUE's "within 5%" bar), and on >= 4-CPU runners it hard-fails
  under ``--min-auto-over-default`` (default 0.9) of the same-backend
  static default — the 10% margin absorbs wall-clock jitter on shared
  runners; the byte-identity half of the check fails hard anywhere.

Byte equality across every backend leg, the pipelined-dataplane
identity, and the worker-crash chaos leg (survivor transcripts
byte-identical, arena slab reclaimed) are checked unconditionally and
fail hard anywhere — correctness has no CPU-count excuse.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ is None and __name__ == "__main__":  # script invocation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.kernels import (
    measure_autotune,
    measure_chaos_identity,
    measure_pipelined,
)
from repro.experiments.scenarios.backends import measure_backends


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-thread-speedup", type=float, default=1.3,
        help="required thread-over-inline packets/s ratio (>= 2 CPUs only)",
    )
    parser.add_argument(
        "--min-arena-over-pickle", type=float, default=1.5,
        help="required arena-over-pickling packets/s ratio (>= 4 CPUs only)",
    )
    parser.add_argument(
        "--min-auto-over-default", type=float, default=0.9,
        help="required auto-over-static packets/s ratio per backend "
        "(>= 4 CPUs only; the margin under 1.0 absorbs wall-clock "
        "jitter on shared runners)",
    )
    parser.add_argument(
        "--width", type=int, default=32, help="packets per coalesced batch"
    )
    parser.add_argument(
        "--seconds", type=float, default=0.5,
        help="measurement window per backend",
    )
    args = parser.parse_args(argv)

    measured = measure_backends(args.width, args.seconds)
    cpu_count = measured["cpu_count"]
    print(f"cpu_count={cpu_count} width={args.width} window={args.seconds}s")
    for name, rate in measured["rates"].items():
        print(
            f"{name:14s} {rate:10.1f} packets/s "
            f"({measured['workers'][name]} worker(s))"
        )
    if measured["process_degraded"]:
        print(f"note: process backend degraded: {measured['process_degraded']}")
    if measured["arena_degraded"]:
        print(f"note: arena degraded: {measured['arena_degraded']}")
    print(f"arena_active={measured['arena_active']}")

    failures = []

    if not measured["correct"]:
        failures.append("backends disagree byte-for-byte")

    rates = measured["rates"]
    thread_speedup = rates["thread"] / rates["inline"]
    process_speedup = rates["process"] / rates["inline"]
    process_over_thread = rates["process"] / rates["thread"]
    arena_over_pickle = rates["process"] / rates["process_pickle"]
    print(f"thread  speedup over inline: {thread_speedup:.2f}x")
    print(f"process speedup over inline: {process_speedup:.2f}x")
    print(f"process over thread:         {process_over_thread:.2f}x")
    print(f"arena over pickling path:    {arena_over_pickle:.2f}x")

    # Pipelined dataplane check: byte/order/stamp identity against the
    # synchronous dataplane fails hard anywhere; the packets/s ratio is
    # warn-only (and only meaningful on >= 2 CPUs, where sim-time
    # coalescing can genuinely overlap worker crypto).
    piped = measure_pipelined(args.width, args.seconds)
    pipe_rates = piped["rates"]
    for name, rate in pipe_rates.items():
        print(f"{name:12s} {rate:10.1f} packets/s (thread dataplane)")
    if not piped["identical"]:
        failures.append("pipelined dataplane diverges from synchronous")
    pipelined_speedup = pipe_rates["pipelined"] / pipe_rates["synchronous"]
    print(
        f"pipelined speedup over synchronous: {pipelined_speedup:.2f}x "
        "(warn-only)"
    )
    if cpu_count >= 2 and pipelined_speedup < 1.0:
        print(
            "warn: pipelined dataplane slower than synchronous on a "
            "multi-core host (expected overlap did not materialise)"
        )

    # Adaptive-controller leg: FlushPolicy(mode="auto") vs the static
    # width on the same stream.  Byte identity fails hard anywhere;
    # auto within 5% of the best static leg warns below; on >= 4 CPUs
    # auto must hold --min-auto-over-default of the same-backend
    # static rate or the gate fails.
    tuned = measure_autotune(args.width, args.seconds)
    for name, rate in tuned["rates"].items():
        print(f"{name:14s} {rate:10.1f} packets/s (auto leg)")
    if not tuned["identical"]:
        failures.append("adaptive flush controller changed payload bytes")
    best_static = max(
        tuned["rates"]["static_thread"], tuned["rates"]["static_process"]
    )
    best_auto = max(
        tuned["rates"]["auto_thread"], tuned["rates"]["auto_process"]
    )
    print(
        f"auto over best static: {best_auto / best_static:.2f}x "
        f"(adjustments traced: {sum(1 for d in tuned['trace'] if d['cause'].startswith(('widen', 'deadline')))})"
    )
    if best_auto < 0.95 * best_static:
        print(
            f"warn: auto {best_auto:.1f} packets/s under 95% of the best "
            f"static kernel ({best_static:.1f})"
        )

    # Chaos leg: one worker_crash while an arena slab is in flight, on
    # both dataplanes.  Survivors byte-identical and slab reclaimed, or
    # the gate fails — anywhere, any CPU count.
    chaos = measure_chaos_identity(args.width)
    for dataplane, verdict in chaos.items():
        print(
            f"chaos {dataplane:10s} identical={verdict['identical']} "
            f"slab_reclaimed={verdict['slab_reclaimed']}"
        )
        if not verdict["identical"]:
            failures.append(
                f"worker_crash on the {dataplane} dataplane changed bytes"
            )
        if not verdict["slab_reclaimed"]:
            failures.append(
                f"worker_crash on the {dataplane} dataplane leaked an "
                "arena generation"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1

    if cpu_count < 2:
        print(
            f"thread gate skipped: {cpu_count} CPU(s) cannot overlap sweeps "
            f"(threshold {args.min_thread_speedup:.2f}x applies on >= 2)"
        )
    elif thread_speedup < args.min_thread_speedup:
        print(
            f"FAIL: thread speedup {thread_speedup:.2f}x < "
            f"{args.min_thread_speedup:.2f}x"
        )
        return 1

    if cpu_count < 4:
        print(
            f"process gate skipped: {cpu_count} CPU(s) (hard-fail floor "
            "applies on >= 4: process >= thread and arena >= "
            f"{args.min_arena_over_pickle:.2f}x pickling)"
        )
    else:
        if process_over_thread < 1.0:
            print(
                f"FAIL: process backend {process_over_thread:.2f}x thread "
                f"at width {args.width} on {cpu_count} CPUs"
            )
            return 1
        if arena_over_pickle < args.min_arena_over_pickle:
            print(
                f"FAIL: arena {arena_over_pickle:.2f}x pickling path < "
                f"{args.min_arena_over_pickle:.2f}x"
            )
            return 1
        for leg in ("thread", "process"):
            ratio = tuned["rates"][f"auto_{leg}"] / tuned["rates"][f"static_{leg}"]
            print(f"auto over static ({leg}): {ratio:.2f}x")
            if ratio < args.min_auto_over_default:
                print(
                    f"FAIL: auto {ratio:.2f}x static on the {leg} backend < "
                    f"{args.min_auto_over_default:.2f}x on {cpu_count} CPUs"
                )
                return 1

    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
