#!/usr/bin/env python
"""CI gate: the thread backend must beat inline on multi-core runners.

Runs the ``backend_sweep`` scenario's exact measurement
(:func:`repro.experiments.scenarios.backends.measure_backends` — the
mixed seal+open 2 KB CCM batch on the inline, thread and process
backends) and enforces the acceptance ratio::

    PYTHONPATH=src python benchmarks/gate_backends.py \\
        --min-thread-speedup 1.3 --width 32

Exit status 1 when thread/inline falls below the threshold — but only
on hosts with >= 2 CPUs (a 1-CPU runner cannot overlap numpy sweeps,
so the gate reports and passes there; the committed ``BENCH_*.json``
records ``cpu_count`` for the same reason).  The process backend is
always warn-only: it pays pickling on every shard, which small batches
do not amortise — the point of recording it is the trend, not a floor.
Byte equality across the three backends is checked unconditionally and
fails hard anywhere.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ is None and __name__ == "__main__":  # script invocation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.kernels import measure_pipelined
from repro.experiments.scenarios.backends import measure_backends


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-thread-speedup", type=float, default=1.3,
        help="required thread-over-inline packets/s ratio (>= 2 CPUs only)",
    )
    parser.add_argument(
        "--width", type=int, default=32, help="packets per coalesced batch"
    )
    parser.add_argument(
        "--seconds", type=float, default=0.5,
        help="measurement window per backend",
    )
    args = parser.parse_args(argv)

    measured = measure_backends(args.width, args.seconds)
    cpu_count = measured["cpu_count"]
    print(f"cpu_count={cpu_count} width={args.width} window={args.seconds}s")
    for name, rate in measured["rates"].items():
        print(
            f"{name:8s} {rate:10.1f} packets/s "
            f"({measured['workers'][name]} worker(s))"
        )
    if measured["process_degraded"]:
        print(f"note: process backend degraded: {measured['process_degraded']}")

    if not measured["correct"]:
        print("FAIL: backends disagree byte-for-byte")
        return 1

    rates = measured["rates"]
    thread_speedup = rates["thread"] / rates["inline"]
    process_speedup = rates["process"] / rates["inline"]
    print(f"thread  speedup over inline: {thread_speedup:.2f}x")
    print(f"process speedup over inline: {process_speedup:.2f}x (warn-only)")
    if process_speedup < 1.0:
        print(
            "warn: process backend slower than inline "
            "(expected for small batches: per-shard pickling)"
        )
    # Pipelined dataplane check: byte/order/stamp identity against the
    # synchronous dataplane fails hard anywhere; the packets/s ratio is
    # warn-only (and only meaningful on >= 2 CPUs, where sim-time
    # coalescing can genuinely overlap worker crypto).
    piped = measure_pipelined(args.width, args.seconds)
    pipe_rates = piped["rates"]
    for name, rate in pipe_rates.items():
        print(f"{name:12s} {rate:10.1f} packets/s (thread dataplane)")
    if not piped["identical"]:
        print("FAIL: pipelined dataplane diverges from synchronous")
        return 1
    pipelined_speedup = pipe_rates["pipelined"] / pipe_rates["synchronous"]
    print(
        f"pipelined speedup over synchronous: {pipelined_speedup:.2f}x "
        "(warn-only)"
    )
    if cpu_count >= 2 and pipelined_speedup < 1.0:
        print(
            "warn: pipelined dataplane slower than synchronous on a "
            "multi-core host (expected overlap did not materialise)"
        )

    if cpu_count < 2:
        print(
            f"gate skipped: {cpu_count} CPU(s) cannot overlap sweeps "
            f"(threshold {args.min_thread_speedup:.2f}x applies on >= 2)"
        )
        return 0
    if thread_speedup < args.min_thread_speedup:
        print(
            f"FAIL: thread speedup {thread_speedup:.2f}x < "
            f"{args.min_thread_speedup:.2f}x"
        )
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
