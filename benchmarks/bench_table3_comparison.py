"""E3 — Table III: performance comparison with the literature.

Reproduces the table (Mbps/MHz, frequency, area, programmability) with
the MCCP row recomputed from the simulated device, and exercises the
runnable baselines to verify the ordering claims of section II.
"""

from repro.analysis.area import AreaModel
from repro.analysis.tables import render_table
from repro.baselines import (
    LITERATURE_ENTRIES,
    MonoCoreAccelerator,
    PipelinedGcmEngine,
    mccp_entry,
)
from repro.baselines.literature import (
    PAPER_MCCP_CCM_MBPS_PER_MHZ,
    PAPER_MCCP_GCM_MBPS_PER_MHZ,
)
from repro.core.params import Algorithm


def test_bench_table3(benchmark):
    gcm_row = mccp_entry(algorithm="GCM")
    ccm_row = mccp_entry(algorithm="CCM")
    slices, brams = AreaModel(4).device_total()

    rows = []
    for e in LITERATURE_ENTRIES:
        rows.append(
            (
                e.name,
                e.platform,
                "yes" if e.programmable else "no",
                e.algorithm,
                f"{e.throughput_mbps_per_mhz:.2f}",
                f"{e.frequency_mhz:.0f}",
                f"{e.slices} ({e.brams})" if e.slices else "—",
            )
        )
    rows.append(
        (
            gcm_row.name,
            gcm_row.platform,
            "yes (AES modes)",
            "GCM/CCM",
            f"{gcm_row.throughput_mbps_per_mhz:.2f} / {ccm_row.throughput_mbps_per_mhz:.2f}",
            "190",
            f"{slices} ({brams})",
        )
    )
    print()
    print(
        render_table(
            ["implementation", "platform", "programmable", "alg", "Mbps/MHz", "MHz", "slices (BRAM)"],
            rows,
            title="E3: Table III — performance comparison",
        )
    )
    print(
        f"paper MCCP row: {PAPER_MCCP_GCM_MBPS_PER_MHZ} / "
        f"{PAPER_MCCP_CCM_MBPS_PER_MHZ} Mbps/MHz (2KB-packet based); "
        f"ours (theoretical): {gcm_row.throughput_mbps_per_mhz} / "
        f"{ccm_row.throughput_mbps_per_mhz}"
    )

    # Ordering claims (the shape of the table):
    programmables = [e for e in LITERATURE_ENTRIES if e.programmable]
    assert all(
        gcm_row.throughput_mbps_per_mhz > e.throughput_mbps_per_mhz
        for e in programmables
    ), "MCCP must beat every programmable design per MHz"
    lemsitzer = next(e for e in LITERATURE_ENTRIES if "Lemsitzer" in e.name)
    assert lemsitzer.throughput_mbps_per_mhz > gcm_row.throughput_mbps_per_mhz, (
        "the fixed pipelined design keeps the raw-throughput crown"
    )
    # Area totals hit the paper's synthesis results exactly.
    assert (slices, brams) == (4084, 26)

    # Runnable baselines tell the same story: the pipelined engine wins
    # raw GCM by a wide margin but loses an order of magnitude of its
    # own throughput on feedback (CCM-style) modes — section II.B's
    # "data dependencies ... make unrolled implementations useless".
    mono = MonoCoreAccelerator()
    engine = PipelinedGcmEngine()
    assert engine.gcm_throughput_mbps() > 4 * mono.throughput_mbps(Algorithm.GCM, 128)
    assert engine.ccm_throughput_mbps() < engine.gcm_throughput_mbps() / 5

    benchmark(lambda: mccp_entry(algorithm="GCM"))
