"""E7 — section VII.A's mapping trade-off: CCM 4x1 vs 2x2.

"AES-CCM 4x1 cores provides better throughput than AES-CCM 2x2 cores
... However, latency of the first solution is almost two times greater
than latency of the second solution."  Measured here with four
identical 2 KB CCM packets on a 4-core device under both mappings.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.params import Algorithm, Direction
from repro.mccp.mccp import Mccp
from repro.radio.comm_controller import CommController
from repro.radio.packet import Packet
from repro.sim.kernel import Simulator

from benchmarks.conftest import CLOCK_HZ, deterministic_bytes as db

KEY = bytes(range(16))
PAYLOAD = db(2048, seed=7)


def _run_mapping(two_core: bool):
    """Process 4 packets; returns (total_cycles, per-packet latencies)."""
    sim = Simulator()
    mccp = Mccp(sim, core_count=4)
    mccp.load_session_key(0, KEY)
    chan = mccp.open_channel(Algorithm.CCM, 0, tag_length=8)
    comm = CommController(sim, mccp)
    done_events = []
    for i in range(4):
        ev = sim.event(f"p{i}")
        done_events.append(ev)

        def proc(ev=ev, i=i):
            while True:
                try:
                    transfer = yield from comm.process_packet(
                        chan,
                        Packet(0, b"", PAYLOAD, sequence=i, created_cycle=sim.now),
                        Direction.ENCRYPT,
                        two_core=two_core,
                    )
                    break
                except Exception as exc:  # NoResourceError: retry
                    from repro.errors import NoResourceError

                    if not isinstance(exc, NoResourceError):
                        raise
                    from repro.sim.kernel import Delay

                    yield Delay(50)
            ev.trigger(transfer)

        sim.add_process(proc())
    for ev in done_events:
        sim.run_until_event(ev, limit=200_000_000)
    return sim.now, list(comm.latencies)


def test_bench_mapping_tradeoff(benchmark):
    cycles_4x1, lat_4x1 = _run_mapping(two_core=False)
    cycles_2x2, lat_2x2 = _run_mapping(two_core=True)
    thr_4x1 = 4 * 2048 * 8 * CLOCK_HZ / cycles_4x1 / 1e6
    thr_2x2 = 4 * 2048 * 8 * CLOCK_HZ / cycles_2x2 / 1e6
    mean_lat_4x1 = sum(lat_4x1) / len(lat_4x1)
    mean_lat_2x2 = sum(lat_2x2) / len(lat_2x2)
    print()
    print(
        render_table(
            ["mapping", "aggregate Mbps", "mean latency (us)", "paper Mbps (2KB)"],
            [
                ("4 x 1-core", f"{thr_4x1:.0f}", f"{mean_lat_4x1 / CLOCK_HZ * 1e6:.1f}", 856),
                ("2 x 2-core", f"{thr_2x2:.0f}", f"{mean_lat_2x2 / CLOCK_HZ * 1e6:.1f}", 786),
            ],
            title="E7: CCM mapping trade-off (4 packets, 2 KB each)",
        )
    )
    # The paper's shape: 4x1 wins throughput, 2x2 roughly halves latency.
    assert thr_4x1 > thr_2x2
    assert mean_lat_2x2 < mean_lat_4x1 * 0.75
    assert mean_lat_4x1 / mean_lat_2x2 == pytest.approx(2.0, rel=0.35)
    benchmark(lambda: _run_mapping(two_core=True))
