"""E9 — section VIII's scheduling study (implemented future work).

Mixed workload: one latency-critical voice channel (priority 0) against
three saturating bulk channels.  Compares the paper's first-idle policy
with round-robin and priority-reservation on voice p99 latency.
"""

from repro.analysis.latency import latency_stats
from repro.analysis.tables import render_table
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern
from repro.sched import FirstIdlePolicy, PriorityReservePolicy, RoundRobinPolicy


def _run(policy):
    plat = SdrPlatform(core_count=4, policy=policy, seed=9)
    configs = [
        ChannelConfig(
            RadioStandard.TACTICAL_VOICE,
            bytes(16),
            TrafficPattern.CBR,
            packets=6,
            priority=0,
        ),
        *[
            ChannelConfig(
                RadioStandard.WIMAX,
                bytes(16),
                TrafficPattern.SATURATING,
                packets=5,
                priority=2,
            )
            for _ in range(3)
        ],
    ]
    report = plat.run_workload(configs)
    voice_chan = 0
    voice_latencies = [
        t.download_done_cycle - t.request.submit_cycle
        for t in plat.comm.completed.values()
        if t.request.channel_id == voice_chan
    ]
    return report, latency_stats(voice_latencies)


def test_bench_scheduling_policies(benchmark):
    policies = {
        "first-idle (paper)": FirstIdlePolicy(),
        "round-robin": RoundRobinPolicy(),
        "priority-reserve": PriorityReservePolicy(reserved_cores=1),
    }
    rows = []
    stats = {}
    for name, policy in policies.items():
        report, voice = _run(policy)
        stats[name] = (report, voice)
        rows.append(
            (
                name,
                f"{report.throughput_mbps():.0f}",
                f"{voice.mean_us:.1f}",
                f"{voice.p99_us:.1f}",
            )
        )
    print()
    print(
        render_table(
            ["policy", "aggregate Mbps", "voice mean us", "voice p99 us"],
            rows,
            title="E9: scheduling policies under mixed voice + bulk load",
        )
    )
    # Reserving a core must not degrade voice latency relative to
    # first-idle, and every policy must complete the workload.
    fi_voice = stats["first-idle (paper)"][1]
    pr_voice = stats["priority-reserve"][1]
    assert pr_voice.p99_us <= fi_voice.p99_us * 1.10
    for name, (report, _) in stats.items():
        assert report.packets_done == 21, name
    benchmark(lambda: _run(FirstIdlePolicy()))
