#!/usr/bin/env python
"""Overload protection in action: a session storm on bounded channels.

Runs the same deterministic storm of sessions twice — once on
unbounded channels (every packet admitted, queues grow as deep as the
backlog), once with bounded queues plus admission control — and prints
the per-class SLA summary of each, showing prioritized load shedding
at work: control-class traffic keeps completing inside its latency
budget while bulk transfers absorb the shedding.
"""

import sys
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.throughput import ClassSla, SlaSpec
from repro.radio.admission import AdmissionPolicy, priority_class_name
from repro.radio.sessions import SessionWorkload, run_sessions


def show(title, report):
    print(f"--- {title}")
    print(
        f"sessions {report.sessions_completed}/{report.sessions_started} "
        f"(handoffs {report.handoffs}, rekeys {report.rekeys})  "
        f"packets {report.packets_done} done / {report.shed} shed  "
        f"queue peak {report.queue_peak()}"
    )
    for name, row in report.sla_summary().items():
        print(
            f"  {name:12s} p50 {row['p50_us']:8.1f}us  "
            f"p99 {row['p99_us']:8.1f}us  "
            f"drop {row['drop_fraction']:6.1%}  "
            f"completed {int(row['completed'])}"
        )


def main():
    storm = SessionWorkload(
        sessions=24,
        horizon_cycles=80_000,
        arrival="bursty",
        dataplane="batched",
    )

    unthrottled = run_sessions(storm, seed=11)
    show("unbounded queues (no overload protection)", unthrottled)

    protected = replace(
        storm,
        queue_capacity=6,
        admission=AdmissionPolicy(defer_cycles=400, max_defers=32),
    )
    report = run_sessions(protected, seed=11)
    show("bounded queues + admission control", report)

    sla = SlaSpec(
        classes={
            0: ClassSla(p99_us=5_000.0, max_drop_fraction=0.0),
        },
        max_auth_failures=0,
        max_dead_lettered=0,
    )
    violations = report.check_sla(sla)
    print(f"--- control-class SLA: {'HOLDS' if not violations else violations}")
    by_class = {
        priority_class_name(p): n for p, n in report.shed_by_class.items()
    }
    print(f"shed by class: {by_class or 'nothing shed'}")


if __name__ == "__main__":
    main()
