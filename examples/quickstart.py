"""Quickstart: secure one packet through the simulated MCCP.

Walks the paper's control protocol end to end — load a session key,
OPEN a channel, ENCRYPT a packet through a cryptographic core, retrieve
the ciphertext and tag — then verifies the result against the software
gold model.

Run:  python examples/quickstart.py
"""

from repro import Algorithm, CommController, Mccp, Packet, Simulator
from repro.crypto import gcm_decrypt

SESSION_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


def main() -> None:
    sim = Simulator()
    mccp = Mccp(sim, core_count=4)

    # The platform's main controller provisions the key memory; the MCCP
    # itself can never write or export session keys (paper section III.A).
    mccp.load_session_key(0, SESSION_KEY)

    channel = mccp.open_channel(Algorithm.GCM, key_id=0)
    print(f"opened channel {channel.channel_id} (AES-{channel.key_bits}-GCM)")

    comm = CommController(sim, mccp)
    packet = Packet(
        channel_id=channel.channel_id,
        header=b"SRC=radio7;DST=base",      # authenticated only
        payload=b"the quick brown fox jumps over the lazy dog " * 10,
    )
    secured = comm.secure_packet_sync(channel, packet)

    print(f"payload bytes   : {len(packet.payload)}")
    print(f"ciphertext bytes: {len(secured.ciphertext)}")
    print(f"tag             : {secured.tag.hex()}")
    print(f"simulated cycles: {sim.now}  (~{sim.now / 190e6 * 1e6:.1f} us at 190 MHz)")

    # Cross-check with the bit-exact software model: the communication
    # controller derives nonces from a counter, so the first packet of
    # this controller used nonce 1.
    nonce = (1).to_bytes(12, "big")
    plaintext = gcm_decrypt(
        SESSION_KEY, nonce, secured.ciphertext, secured.tag, packet.header
    )
    assert plaintext == packet.payload
    print("gold-model verification: OK")

    mccp.close_channel(channel.channel_id)


if __name__ == "__main__":
    main()
