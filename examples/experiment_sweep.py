"""Experiment sweeps: declare, fan out, compare.

Runs a small campaign through :mod:`repro.experiments` — the same
subsystem behind ``python -m repro.experiments`` and CI's perf-smoke
gate — and shows the three moves: run a sweep across worker processes,
render the per-scenario tables, and diff the run against a baseline
(here: a second run of the same seeded sweep, which must match).

Run:  python examples/experiment_sweep.py
"""

import tempfile
from pathlib import Path

from repro.analysis.tables import render_table
from repro.experiments import compare, get, run_sweep, write_artifact

SPEC = ["core_scaling", "mode_mix", "table3_comparison"]


def main() -> None:
    print("sweeping:", ", ".join(SPEC))
    for name in SPEC:
        scenario = get(name)
        print(f"  {name}: {scenario.case_count(quick=True)} case(s) — {scenario.title}")

    artifact = run_sweep(SPEC, quick=True, parallel=2, base_seed=42)

    for name, block in artifact["scenarios"].items():
        params = sorted({p for case in block["cases"] for p in case["params"]})
        metrics = sorted({m for case in block["cases"] for m in case["metrics"]})
        rows = [
            [str(case["params"].get(p, "")) for p in params]
            + [str(case["metrics"].get(m, "")) for m in metrics]
            for case in block["cases"]
        ]
        print()
        print(render_table(params + metrics, rows, title=block["title"]))

    with tempfile.TemporaryDirectory() as tmp:
        json_path, csv_path = write_artifact(artifact, Path(tmp), stem="DEMO")
        print(f"\nartifacts: {json_path.name} + {csv_path.name} (in a tempdir)")

        # Re-run the same seeded sweep serially: deterministic metrics
        # must match case for case — this is what lets CI gate PRs.
        rerun = run_sweep(SPEC, quick=True, parallel=1, base_seed=42)
        report = compare(rerun, artifact)
        print(report.render())
        assert report.ok, "a seeded sweep must reproduce itself"


if __name__ == "__main__":
    main()
