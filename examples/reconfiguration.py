"""Partial reconfiguration demo (paper section VII.B / Table IV).

Swaps one core's Cryptographic Unit from AES to Whirlpool at run time,
hashes a message on the reconfigured core while another core keeps
encrypting (the paper's "reconfiguration of one part does not prevent
others to work"), then swaps back — comparing CompactFlash and cached
(RAM-class) bitstream load times.

Run:  python examples/reconfiguration.py
"""

from repro import Direction, Simulator
from repro.core.crypto_core import CryptoCore
from repro.core.harness import run_task
from repro.crypto import gcm_encrypt, whirlpool
from repro.crypto.aes import expand_key
from repro.radio import format_gcm, format_whirlpool, parse_output
from repro.reconfig import BitstreamStore, ReconfigManager, StoreKind
from repro.unit.timing import DEFAULT_TIMING

KEY = bytes(range(16))
MESSAGE = b"firmware image v2.1 for field update " * 40


def main() -> None:
    sim = Simulator()
    cores = [CryptoCore(sim, DEFAULT_TIMING, index=i) for i in range(2)]
    manager = ReconfigManager(sim, cores, BitstreamStore(StoreKind.COMPACT_FLASH))

    # Reconfigure core 0 to Whirlpool while core 1 encrypts a packet.
    done = manager.reconfigure(0, "whirlpool")
    cores[1].key_cache.install(expand_key(KEY), 128)
    task = format_gcm(128, bytes(12), b"", b"traffic continues" * 8, Direction.ENCRYPT)
    run = run_task(sim, cores[1], task)
    ct, tag = parse_output(task, run.output_blocks)
    assert (ct, tag) == gcm_encrypt(KEY, bytes(12), b"traffic continues" * 8, b"")
    print(f"core 1 encrypted {len(ct)} bytes *during* core 0's reconfiguration")

    record = sim.run_until_event(done)
    print(
        f"core 0 -> Whirlpool: {record.seconds * 1000:.0f} ms from CompactFlash "
        f"(paper Table IV: 416 ms)"
    )

    # Hash on the reconfigured unit and check against the gold model.
    hash_task = format_whirlpool(MESSAGE)
    hrun = run_task(sim, cores[0], hash_task)
    digest = b"".join(hrun.output_blocks)[:64]
    assert digest == whirlpool(MESSAGE)
    print(f"Whirlpool digest on reconfigured CU: {digest.hex()[:32]}… (matches gold)")

    # Swap back; then a cached reload shows why bitstream caching matters.
    back = manager.reconfigure_sync(0, "aes")
    print(f"core 0 -> AES: {back.seconds * 1000:.0f} ms (paper: 380 ms)")
    cached = manager.reconfigure_sync(0, "whirlpool")
    print(
        f"core 0 -> Whirlpool again (cached bitstream): "
        f"{cached.seconds * 1000:.0f} ms (paper RAM figure: 69 ms)"
    )


if __name__ == "__main__":
    main()
