"""Scheduling study (paper section VIII, implemented as an extension).

Compares the paper's first-idle mapping with round-robin and a
priority-reservation policy on a mixed workload: a latency-critical
voice channel sharing the MCCP with three bulk channels.  Also shows
the section VII.A trade-off by mapping CCM packets 4x1 vs 2x2.

Run:  python examples/scheduling_policies.py
"""

from repro import ChannelConfig, SdrPlatform
from repro.analysis.latency import latency_stats
from repro.analysis.tables import render_table
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern
from repro.sched import FirstIdlePolicy, PriorityReservePolicy, RoundRobinPolicy


def run_policy(policy):
    platform = SdrPlatform(core_count=4, policy=policy, seed=17)
    configs = [
        ChannelConfig(
            RadioStandard.TACTICAL_VOICE, bytes(16), TrafficPattern.CBR,
            packets=5, priority=0,
        ),
        *[
            ChannelConfig(
                RadioStandard.WIMAX, bytes(16), TrafficPattern.SATURATING,
                packets=4, priority=2,
            )
            for _ in range(3)
        ],
    ]
    report = platform.run_workload(configs)
    voice = [
        t.download_done_cycle - t.request.submit_cycle
        for t in platform.comm.completed.values()
        if t.request is not None and t.request.channel_id == 0
    ]
    return report, latency_stats(voice)


def main() -> None:
    rows = []
    for name, policy in [
        ("first-idle (paper §III.C)", FirstIdlePolicy()),
        ("round-robin", RoundRobinPolicy()),
        ("priority-reserve (1 core)", PriorityReservePolicy(reserved_cores=1)),
    ]:
        report, voice = run_policy(policy)
        rows.append(
            (
                name,
                f"{report.throughput_mbps():.0f}",
                f"{voice.mean_us:.1f}",
                f"{voice.p99_us:.1f}",
            )
        )
    print(
        render_table(
            ["policy", "bulk+voice Mbps", "voice mean us", "voice p99 us"],
            rows,
            title="Scheduling policies under mixed voice + bulk load",
        )
    )
    print()
    print(
        "The paper's first-idle policy maximises utilisation; reserving a\n"
        "core bounds voice latency under bulk pressure — the QoS knob the\n"
        "paper's section VIII calls for."
    )


if __name__ == "__main__":
    main()
