"""Multi-channel, multi-standard radio — the paper's motivating scenario.

Four concurrent channels with different standards (WiFi-style AES-CCM,
WiMax-style AES-CCM, UMTS-style AES-CTR, SATCOM AES-256-GCM) share the
four cryptographic cores; a latency-critical tactical-voice channel
rides along at priority 0.  Prints per-channel and aggregate results.

The same workload then replays through the batched dataplane
(``dataplane="batched"``): packets become jobs, same-key jobs coalesce
per channel under a flush policy (size threshold + idle deadline), and
the multi-packet batch engine secures whole batches at once — same
bytes, one dispatch per batch instead of one per packet.

Run:  python examples/multichannel_radio.py
"""

from repro import ChannelConfig, SdrPlatform
from repro.analysis.latency import latency_stats
from repro.mccp.channel import FlushPolicy
from repro.radio.standards import STANDARD_PROFILES, RadioStandard
from repro.radio.traffic import TrafficPattern


def _configs():
    return [
        ChannelConfig(RadioStandard.WIFI, bytes(range(16)), TrafficPattern.SATURATING, packets=5),
        ChannelConfig(RadioStandard.WIMAX, bytes(range(1, 17)), TrafficPattern.BURSTY, packets=5),
        ChannelConfig(RadioStandard.UMTS_LIKE, bytes(range(2, 18)), TrafficPattern.CBR, packets=5),
        ChannelConfig(RadioStandard.SATCOM, bytes(range(32)), TrafficPattern.SATURATING, packets=5),
        ChannelConfig(
            RadioStandard.TACTICAL_VOICE, bytes(range(3, 19)), TrafficPattern.CBR,
            packets=4, priority=0,
        ),
    ]


def main() -> None:
    platform = SdrPlatform(core_count=4, seed=42)
    configs = _configs()
    report = platform.run_workload(configs)

    print("channel results")
    print("---------------")
    for config in configs:
        profile = STANDARD_PROFILES[config.standard]
        print(
            f"  {config.standard.value:<7} {profile.algorithm.name:<8} "
            f"AES-{profile.key_bits:<4} {config.packets} packets of "
            f"{profile.payload_bytes} B"
        )

    stats = latency_stats(report.latencies)
    print()
    print(f"packets processed : {report.packets_done}")
    print(f"payload moved     : {report.payload_bytes} bytes")
    print(f"total cycles      : {report.total_cycles}")
    print(f"aggregate rate    : {report.throughput_mbps():.1f} Mbps @ 190 MHz")
    print(f"latency mean/p99  : {stats.mean_us:.1f} / {stats.p99_us:.1f} us")
    print()
    util = [
        f"core{core.index}={core.tasks_completed}"
        for core in platform.mccp.cores
    ]
    print("tasks per core    :", ", ".join(util))

    # The same traffic through the batched dataplane: CCM/GCM channels
    # coalesce through the multi-packet batch engine (the CTR channel
    # transparently rides the cores path at width 1).
    batched = SdrPlatform(core_count=4, seed=42)
    breport = batched.run_workload(
        _configs(),
        dataplane="batched",
        flush_policy=FlushPolicy(coalesce_limit=8, flush_deadline=4096),
    )
    bstats = latency_stats(breport.latencies)
    print()
    print("batched dataplane")
    print("-----------------")
    print(f"packets processed : {breport.packets_done} (core submits: {breport.core_submits})")
    print(f"batch dispatches  : {breport.batches} (mean width {breport.mean_batch_width():.1f})")
    print(f"flush causes      : {breport.flush_causes}")
    print(f"queue peak        : {breport.queue_peak()} jobs")
    print(f"latency mean/p99  : {bstats.mean_us:.1f} / {bstats.p99_us:.1f} us")


if __name__ == "__main__":
    main()
