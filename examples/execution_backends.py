"""Execution backends: the same batch, three places to run it.

Shows the `repro.crypto.fast.exec` seam end to end — seal a mixed
seal+open CCM batch on the inline, thread and process backends, verify
the byte-identical guarantee, then drive a small radio workload with
`run_workload(backend=...)` plus receive-side traffic (loss and tag
corruption) and read the report.

Run:  python examples/execution_backends.py
"""

import os
import random

from repro.crypto.fast.batch import ccm_seal_many, seal_open_many
from repro.crypto.fast.exec import (
    InlineBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
)
from repro.mccp.channel import FlushPolicy
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern

KEY = bytes(range(16))
WIDTH = 32


def crypto_layer() -> None:
    """*_many / seal_open_many accept a backend directly."""
    rng = random.Random(7)
    seal_packets = [
        ((i + 1).to_bytes(13, "big"), rng.randbytes(2048))
        for i in range(WIDTH // 2)
    ]
    sealed = ccm_seal_many(KEY, seal_packets, 8)
    open_packets = [
        (nonce, ciphertext, tag)
        for (nonce, _), (ciphertext, tag) in zip(seal_packets, sealed)
    ]

    backends = {
        "inline": InlineBackend(),
        "thread": ThreadPoolBackend(),
        "process": ProcessPoolBackend(),
    }
    results = {}
    try:
        for name, backend in backends.items():
            results[name] = seal_open_many(
                "ccm", KEY, seal_packets, open_packets, 8, backend=backend
            )
            print(
                f"  {name:8s} {backend.workers} worker(s)"
                + (
                    f"  [degraded: {backend.degraded_reason}]"
                    if getattr(backend, "degraded_reason", None)
                    else ""
                )
            )
    finally:
        for backend in backends.values():
            backend.close()
    assert results["inline"] == results["thread"] == results["process"]
    print("  all three backends byte-identical "
          f"({WIDTH // 2} seals + {WIDTH // 2} opens)")


def dataplane_layer() -> None:
    """run_workload(backend=...) with receive-side traffic."""
    configs = [
        ChannelConfig(
            RadioStandard.WIFI, bytes(16), TrafficPattern.SATURATING,
            packets=24,
        ),
        ChannelConfig(
            RadioStandard.TACTICAL_VOICE, bytes(16),
            TrafficPattern.SATURATING, packets=24,
        ),
    ]
    platform = SdrPlatform(core_count=4, seed=42)
    report = platform.run_workload(
        configs,
        dataplane="batched",
        flush_policy=FlushPolicy(coalesce_limit=8, flush_deadline=4096),
        backend="thread",
        rx_fraction=0.5,
        loss_rate=0.1,
        corrupt_rate=0.2,
    )
    print(f"  packets done      {report.packets_done}")
    print(f"  rx packets        {report.rx_packets} ({report.rx_lost} lost)")
    print(f"  auth failures     {report.auth_failures} (forged tags rejected)")
    print(f"  batch dispatches  {report.batches} "
          f"(mean width {report.mean_batch_width():.1f})")
    print(f"  throughput        {report.throughput_mbps():.0f} Mbps @ 190 MHz")


def main() -> None:
    print(f"host: {os.cpu_count()} CPU(s); "
          f"REPRO_BACKEND={os.environ.get('REPRO_BACKEND', '(unset: inline)')}")
    print("crypto layer (seal_open_many):")
    crypto_layer()
    print("dataplane layer (run_workload):")
    dataplane_layer()


if __name__ == "__main__":
    main()
