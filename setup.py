"""Setuptools shim.

The offline environment lacks the ``wheel`` package required by PEP 660
editable installs, so ``pip install -e . --no-build-isolation`` falls
back to this legacy entry point (all metadata lives in pyproject.toml).
"""

from setuptools import setup

setup()
