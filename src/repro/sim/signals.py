"""Level signals and pulse wires.

:class:`Signal` models a level (e.g. ``Data Available`` to the
communication controller): it holds a value and lets processes wait for
a particular level.  :class:`PulseWire` models edge-style strobes
(``start``/``done`` handshakes): every pulse creates a fresh one-shot
event, and a *latch* flag absorbs the pulse-before-wait race the paper's
custom HALT instruction must also handle.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.sim.kernel import Event, Simulator


class Signal:
    """A named level with change notification."""

    def __init__(self, sim: Simulator, name: str = "signal", initial: Any = 0):
        self.sim = sim
        self.name = name
        self._value = initial
        self._waiters: List[Tuple[Any, Event]] = []
        #: (cycle, value) change history — cheap and invaluable in tests.
        self.history: List[Tuple[int, Any]] = [(sim.now, initial)]

    @property
    def value(self) -> Any:
        """Current level."""
        return self._value

    def set(self, value: Any) -> None:
        """Drive a new level; waiters for that level fire this cycle."""
        if value == self._value:
            return
        self._value = value
        self.history.append((self.sim.now, value))
        still_waiting = []
        for wanted, ev in self._waiters:
            if wanted == value:
                ev.trigger(value)
            else:
                still_waiting.append((wanted, ev))
        self._waiters = still_waiting

    def wait_for(self, value: Any) -> Event:
        """Event firing when the signal equals *value* (now or later)."""
        ev = self.sim.event(f"{self.name}=={value!r}")
        if self._value == value:
            ev.trigger(value)
        else:
            self._waiters.append((value, ev))
        return ev


class PulseWire:
    """A strobe with done-latch semantics.

    ``pulse(value)`` wakes current waiters and sets the latch;
    ``wait()`` returns an event that fires on the next pulse — or
    immediately if the latch is set, consuming it.  This mirrors the
    8-bit controller's HALT: if the Cryptographic Unit finished before
    the controller reached HALT, the controller must not sleep forever.
    """

    def __init__(self, sim: Simulator, name: str = "pulse"):
        self.sim = sim
        self.name = name
        self._waiters: List[Event] = []
        self._latched = False
        self._latched_value: Any = None
        #: Total number of pulses ever sent.
        self.pulse_count = 0

    def pulse(self, value: Any = None) -> None:
        """Fire the strobe."""
        self.pulse_count += 1
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for ev in waiters:
                ev.trigger(value)
        else:
            self._latched = True
            self._latched_value = value

    def wait(self) -> Event:
        """Event for the next pulse (or the latched one, consuming it)."""
        ev = self.sim.event(f"{self.name}.pulse")
        if self._latched:
            self._latched = False
            value, self._latched_value = self._latched_value, None
            ev.trigger(value)
        else:
            self._waiters.append(ev)
        return ev

    def clear_latch(self) -> None:
        """Explicitly drop a pending latched pulse."""
        self._latched = False
        self._latched_value = None
