"""Structured trace recording (the software analogue of a waveform dump).

Components emit :class:`TraceEvent` rows through a shared
:class:`TraceRecorder`; tests and the cycle-analysis benchmarks query
them to measure, e.g., the steady-state GCM loop period that the paper
reports as 49 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One trace row: cycle, component, event kind, free-form details."""

    cycle: int
    component: str
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        detail = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.cycle:>10}] {self.component:<18} {self.kind:<14} {detail}"


class TraceRecorder:
    """Collects trace events; disabled recorders are near-free."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def record(self, cycle: int, component: str, kind: str, **details: Any) -> None:
        """Append one event (no-op when disabled)."""
        if self.enabled:
            self.events.append(TraceEvent(cycle, component, kind, details))

    def filter(
        self,
        component: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Events matching the given component and/or kind."""
        out: Iterable[TraceEvent] = self.events
        if component is not None:
            out = (e for e in out if e.component == component)
        if kind is not None:
            out = (e for e in out if e.kind == kind)
        return list(out)

    def cycles_of(self, component: str, kind: str) -> List[int]:
        """The cycle numbers at which (component, kind) occurred."""
        return [e.cycle for e in self.filter(component, kind)]

    def periods(self, component: str, kind: str) -> List[int]:
        """Differences between consecutive occurrences — loop periods."""
        cycles = self.cycles_of(component, kind)
        return [b - a for a, b in zip(cycles, cycles[1:])]

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
