"""Discrete-event, cycle-level simulation kernel.

The MCCP device model runs on this kernel: every hardware component
(8-bit controllers, the Cryptographic Unit's processing cores, FIFOs,
the task scheduler, the communication controller) is either a *process*
(a Python generator that yields delays or events) or a passive structure
touched by processes.  Time is an integer cycle count of the single
MCCP clock domain (190 MHz in the paper; the frequency only matters when
converting cycles to seconds in :mod:`repro.analysis.throughput`).

The kernel is deliberately minimal — a few hundred lines, no
dependencies — in the spirit of "make it work, make it right, then
profile" from the HPC guides; it comfortably simulates millions of
cycles per second of wall time because only *events* cost work, not
cycles.
"""

from repro.sim.kernel import Delay, Event, Process, Simulator
from repro.sim.fifo import WordFifo
from repro.sim.signals import Signal, PulseWire
from repro.sim.tracing import TraceRecorder, TraceEvent

__all__ = [
    "Delay",
    "Event",
    "Process",
    "Simulator",
    "WordFifo",
    "Signal",
    "PulseWire",
    "TraceRecorder",
    "TraceEvent",
]
