"""The 512 x 32-bit FIFOs of each Cryptographic Core.

Each core has one input and one output FIFO (paper section IV.A); a
full FIFO holds 2048 bytes — "sufficient for most communication
protocols" and exactly one maximum-size packet (128 x 128-bit blocks).

The FIFO is word-granular (32-bit entries) like the hardware, but for
convenience exposes 128-bit block push/pop built on the word operations.
Overflow/underflow raise instead of silently corrupting, and the
security-relevant ``purge`` models the hardware re-initialisation on
authentication failure (section IV.C).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import FifoError
from repro.sim.kernel import Event, Simulator
from repro.utils.bits import bytes_to_words32, words32_to_bytes

#: Depth in 32-bit words (512 x 32 bits == 2 KB).
DEFAULT_DEPTH_WORDS = 512

WORDS_PER_BLOCK = 4


class WordFifo:
    """A bounded FIFO of 32-bit words with wakeup events.

    Producers/consumers are expected to police capacity via
    :meth:`can_push` / :meth:`can_pop` (as the hardware handshake does);
    violating it raises :class:`FifoError`.  ``wait_not_empty`` /
    ``wait_not_full`` return latched events for process-style waiting.
    """

    def __init__(
        self,
        sim: Simulator,
        depth_words: int = DEFAULT_DEPTH_WORDS,
        name: str = "fifo",
    ):
        if depth_words <= 0:
            raise FifoError(f"depth must be positive, got {depth_words}")
        self.sim = sim
        self.name = name
        self.depth_words = depth_words
        self._words: Deque[int] = deque()
        self._not_empty_waiters: List[Event] = []
        self._not_full_waiters: List[Event] = []
        self._push_hooks: List = []
        self._pop_hooks: List = []
        #: Cumulative statistics (words ever pushed/popped, purges).
        self.total_pushed = 0
        self.total_popped = 0
        self.purge_count = 0
        self.high_watermark = 0

    # -- capacity ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._words)

    @property
    def free_words(self) -> int:
        """Remaining capacity in words."""
        return self.depth_words - len(self._words)

    def can_push(self, nwords: int = 1) -> bool:
        """Whether *nwords* more words fit."""
        return self.free_words >= nwords

    def can_pop(self, nwords: int = 1) -> bool:
        """Whether *nwords* words are available."""
        return len(self._words) >= nwords

    # -- word operations ---------------------------------------------------

    def push_word(self, word: int) -> None:
        """Append one 32-bit word; raises on overflow."""
        if not 0 <= word <= 0xFFFFFFFF:
            raise FifoError(f"{self.name}: word {word:#x} exceeds 32 bits")
        if not self.can_push():
            raise FifoError(f"{self.name}: overflow (depth {self.depth_words})")
        self._words.append(word)
        self.total_pushed += 1
        self.high_watermark = max(self.high_watermark, len(self._words))
        self._wake(self._not_empty_waiters)
        self._fire_hooks(self._push_hooks)

    def pop_word(self) -> int:
        """Remove and return the oldest word; raises on underflow."""
        if not self.can_pop():
            raise FifoError(f"{self.name}: underflow")
        word = self._words.popleft()
        self.total_popped += 1
        self._wake(self._not_full_waiters)
        self._fire_hooks(self._pop_hooks)
        return word

    def peek_word(self) -> Optional[int]:
        """The oldest word without removing it (None when empty)."""
        return self._words[0] if self._words else None

    # -- 128-bit block convenience ------------------------------------------

    def push_block(self, block: bytes) -> None:
        """Push a 16-byte block as four big-endian words."""
        if len(block) != 16:
            raise FifoError(f"{self.name}: block must be 16 bytes, got {len(block)}")
        if not self.can_push(WORDS_PER_BLOCK):
            raise FifoError(f"{self.name}: overflow pushing block")
        for w in bytes_to_words32(block):
            self.push_word(w)

    def pop_block(self) -> bytes:
        """Pop four words and return them as a 16-byte block."""
        if not self.can_pop(WORDS_PER_BLOCK):
            raise FifoError(f"{self.name}: underflow popping block")
        return words32_to_bytes([self.pop_word() for _ in range(WORDS_PER_BLOCK)])

    @property
    def blocks_available(self) -> int:
        """How many whole 128-bit blocks can currently be popped."""
        return len(self._words) // WORDS_PER_BLOCK

    # -- events --------------------------------------------------------------

    def wait_not_empty(self) -> Event:
        """Event that fires when at least one word is present."""
        ev = self.sim.event(f"{self.name}.not_empty")
        if self._words:
            ev.trigger()
        else:
            self._not_empty_waiters.append(ev)
        return ev

    def wait_not_full(self) -> Event:
        """Event that fires when at least one word of space exists."""
        ev = self.sim.event(f"{self.name}.not_full")
        if self.can_push():
            ev.trigger()
        else:
            self._not_full_waiters.append(ev)
        return ev

    def _wake(self, waiters: List[Event]) -> None:
        while waiters:
            waiters.pop(0).trigger()

    def add_push_hook(self, callback) -> None:
        """One-shot callback on the next push (level-change edge).

        Unlike :meth:`wait_not_empty` — which fires immediately while
        the FIFO is merely non-empty — a push hook only fires when a new
        word actually arrives, which is what a consumer waiting for a
        *whole block* must re-arm on to avoid same-cycle livelock.
        """
        self._push_hooks.append(callback)

    def add_pop_hook(self, callback) -> None:
        """One-shot callback on the next pop."""
        self._pop_hooks.append(callback)

    def _fire_hooks(self, hooks: List) -> None:
        if hooks:
            ready, hooks[:] = list(hooks), []
            for cb in ready:
                cb()

    # -- security ---------------------------------------------------------

    def purge(self) -> int:
        """Drop all contents (hardware re-init on authentication failure).

        Returns the number of words discarded.
        """
        dropped = len(self._words)
        self._words.clear()
        self.purge_count += 1
        self._wake(self._not_full_waiters)
        return dropped

    def snapshot(self) -> List[int]:
        """Copy of current contents, oldest first (for tests/debug)."""
        return list(self._words)
