"""The event queue, processes and events.

Model
-----
- :class:`Simulator` owns an integer clock (``now``, in cycles) and a
  priority queue of pending callbacks.
- A :class:`Process` wraps a generator.  The generator may yield:

  * :class:`Delay` — resume after N cycles;
  * :class:`Event` — resume when the event triggers (the yield
    expression evaluates to the event's value);
  * ``None`` — resume in the same cycle, after already-scheduled
    callbacks (a "delta cycle", useful to let signals settle).

- An :class:`Event` triggers at most once and fans out to any number of
  waiters.  Waiting on an already-triggered event resumes immediately
  with the stored value (latch semantics — this is exactly what the
  paper's custom ``HALT`` needs to avoid the done-pulse race).

Determinism: ties in time are broken by insertion order, so a given
program produces one reproducible schedule.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError


class Delay:
    """Yielded by a process to sleep for *cycles* (must be >= 0).

    A ``__slots__`` object rather than a frozen dataclass: models
    construct one per process step, so construction cost is part of the
    kernel's per-event overhead.  ``cycles`` stays read-only (the
    scheduler's Delay fast path relies on construction-time validation,
    so a mutable field could smuggle a negative delay past it).
    """

    __slots__ = ("_cycles",)

    def __init__(self, cycles: int):
        if cycles < 0:
            raise SimulationError(f"negative delay: {cycles}")
        object.__setattr__(self, "_cycles", cycles)

    @property
    def cycles(self) -> int:
        return self._cycles

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Delay is immutable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Delay({self._cycles})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Delay) and other._cycles == self._cycles

    def __hash__(self) -> int:
        return hash((Delay, self._cycles))


class Event:
    """A one-shot occurrence processes can wait on.

    Once triggered, the value is latched: late waiters resume
    immediately.  Triggering twice raises.
    """

    __slots__ = ("sim", "name", "_triggered", "_value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._triggered = False
        self._value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has fired."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value the event fired with (None until triggered)."""
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event now, resuming all waiters this cycle."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self.sim.call_soon(cb, value)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register *callback(value)*; runs immediately if already fired."""
        if self._triggered:
            self.sim.call_soon(callback, self._value)
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "triggered" if self._triggered else "pending"
        return f"Event({self.name!r}, {state})"


class Process:
    """A running generator bound to the simulator.

    The process's :attr:`done` event triggers with the generator's
    return value when it finishes.
    """

    __slots__ = ("sim", "name", "generator", "done", "_finished")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.generator = generator
        self.done = Event(sim, f"{self.name}.done")
        self._finished = False

    @property
    def finished(self) -> bool:
        """Whether the generator has run to completion."""
        return self._finished

    def _step(self, send_value: Any = None) -> None:
        try:
            yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self._finished = True
            self.done.trigger(stop.value)
            return
        cls = yielded.__class__
        if cls is Delay:
            # Fast path for the dominant yield: Delay validated its own
            # cycles >= 0, so the scheduled time can never be in the
            # past and the entry is pushed without call_at's guard.
            sim = self.sim
            entry = _Entry(sim.now + yielded._cycles, sim._seq, self._step, None)
            sim._seq += 1
            sim._pending += 1
            heappush(sim._queue, entry)
        elif cls is Event or isinstance(yielded, Event):
            yielded.add_waiter(self._step)
        elif yielded is None:
            self.sim.call_soon(self._step, None)
        elif isinstance(yielded, Delay):  # pragma: no cover - Delay subclass
            self.sim.call_at(self.sim.now + yielded.cycles, self._step, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {yielded!r}; expected "
                "Delay, Event or None"
            )


class _Entry:
    """A heap record: ``__slots__`` + a hand-written ``__lt__`` is both
    lighter to allocate and faster to sift than the dataclass it
    replaced (dataclass ``order=True`` compares via tuple building)."""

    __slots__ = ("time", "seq", "callback", "argument", "cancelled", "consumed")

    def __init__(self, time: int, seq: int, callback: Callable, argument: Any):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.argument = argument
        self.cancelled = False
        self.consumed = False

    def __lt__(self, other: "_Entry") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class Simulator:
    """The discrete-event scheduler (one instance per modeled device).

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> def proc():
    ...     yield Delay(5)
    ...     log.append(sim.now)
    >>> _ = sim.add_process(proc())
    >>> sim.run()
    >>> log
    [5]
    """

    def __init__(self) -> None:
        self.now = 0
        self._queue: List[_Entry] = []
        self._seq = 0
        self._running = False
        #: Live count of queued, non-cancelled callbacks (kept exact on
        #: every push/pop/cancel so :attr:`pending_events` is O(1)).
        self._pending = 0

    # -- scheduling primitives -------------------------------------------

    def call_at(self, time: int, callback: Callable, argument: Any = None) -> _Entry:
        """Schedule ``callback(argument)`` at absolute cycle *time*."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        entry = _Entry(time, self._seq, callback, argument)
        self._seq += 1
        self._pending += 1
        heappush(self._queue, entry)
        return entry

    def cancel(self, entry: _Entry) -> bool:
        """Cancel a scheduled entry; returns whether it was still live.

        The entry stays in the heap (lazy deletion) but is skipped by
        the run loop; the pending counter drops immediately.  Cancelling
        an entry that already executed (or was cancelled before) is a
        no-op returning False — the counter only moves for live entries.
        """
        if entry.cancelled or entry.consumed:
            return False
        entry.cancelled = True
        self._pending -= 1
        return True

    def call_later(self, delay: int, callback: Callable, argument: Any = None) -> _Entry:
        """Schedule ``callback(argument)`` *delay* cycles from now."""
        return self.call_at(self.now + delay, callback, argument)

    def call_soon(self, callback: Callable, argument: Any = None) -> _Entry:
        """Schedule ``callback(argument)`` later in the current cycle."""
        return self.call_at(self.now, callback, argument)

    # -- processes and events --------------------------------------------

    def add_process(self, generator: Generator, name: str = "") -> Process:
        """Register *generator* as a process starting this cycle."""
        proc = Process(self, generator, name)
        self.call_soon(proc._step, None)
        return proc

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot event."""
        return Event(self, name)

    def timeout(self, cycles: int, value: Any = None) -> Event:
        """An event that fires *cycles* from now with *value*."""
        ev = Event(self, f"timeout@{self.now + cycles}")
        self.call_later(cycles, ev.trigger, value)
        return ev

    # -- execution --------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: int = 50_000_000) -> None:
        """Run until the queue drains or *until* cycles is reached.

        ``max_events`` is a runaway guard for buggy models: exceeding it
        raises :class:`SimulationError` instead of hanging the host.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        processed = 0
        queue = self._queue
        pop = heappop
        try:
            while queue:
                entry = queue[0]
                if entry.cancelled:
                    pop(queue)
                    continue
                if until is not None and entry.time > until:
                    self.now = until
                    return
                pop(queue)
                entry.consumed = True
                self._pending -= 1
                self.now = entry.time
                entry.callback(entry.argument)
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway model?"
                    )
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def run_until_event(self, event: Event, limit: int = 1_000_000_000) -> Any:
        """Run until *event* triggers; returns its value.

        Raises :class:`SimulationError` if the queue drains (deadlock)
        or the cycle *limit* passes without the event firing.
        """
        queue = self._queue
        while not event.triggered:
            if not queue:
                raise SimulationError(
                    f"deadlock: queue drained at cycle {self.now} while "
                    f"waiting for {event.name!r}"
                )
            if self.now > limit:
                raise SimulationError(
                    f"cycle limit {limit} exceeded waiting for {event.name!r}"
                )
            entry = heappop(queue)
            if entry.cancelled:
                continue
            entry.consumed = True
            self._pending -= 1
            self.now = entry.time
            entry.callback(entry.argument)
        return event.value

    @property
    def pending_events(self) -> int:
        """Number of queued (non-cancelled) callbacks (O(1): a live
        counter maintained on push/pop/cancel, not a heap scan)."""
        return self._pending
