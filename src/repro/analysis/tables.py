"""Plain-text table rendering for the benchmark reports."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: List[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table (benchmarks print these)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
