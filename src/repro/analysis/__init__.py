"""Analysis: cycle equations, throughput conversion, area model, tables.

These modules turn simulator measurements into the paper's reported
artifacts: the section VII.A loop equations (:mod:`cycles`), Table II
throughput rows (:mod:`throughput`), the resource inventory behind
Table III's area column (:mod:`area`), latency statistics for the
mapping trade-off (:mod:`latency`) and text renderers (:mod:`tables`).
"""

from repro.analysis.cycles import LoopModel, paper_loop_cycles
from repro.analysis.throughput import (
    CLOCK_HZ_DEFAULT,
    PAPER_TABLE2,
    Table2Row,
    WorkloadReport,
    mbps,
    theoretical_table2,
)
from repro.analysis.area import AreaModel, COMPONENT_AREAS
from repro.analysis.latency import latency_stats, LatencyStats
from repro.analysis.tables import render_table

__all__ = [
    "LoopModel",
    "paper_loop_cycles",
    "CLOCK_HZ_DEFAULT",
    "PAPER_TABLE2",
    "Table2Row",
    "WorkloadReport",
    "mbps",
    "theoretical_table2",
    "AreaModel",
    "COMPONENT_AREAS",
    "latency_stats",
    "LatencyStats",
    "render_table",
]
