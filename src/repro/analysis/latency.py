"""Latency statistics for the mapping trade-off (E7) and QoS (E9).

Two percentile flavours live here and they are deliberately different:

- :func:`_percentile` interpolates between neighbouring order
  statistics (the classic "linear" method) — smooth summaries for the
  mapping trade-off plots;
- :func:`nearest_rank_percentile` is the **exact nearest-rank**
  method: it always returns a value that actually occurred in the
  sample, which is what an SLA assertion wants — "p99 latency was
  2 481 cycles" must name a real packet, not an average of two.  Pure
  Python, no numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample, in cycles and microseconds."""

    count: int
    mean_cycles: float
    p50_cycles: float
    p99_cycles: float
    max_cycles: int
    clock_hz: float

    @property
    def mean_us(self) -> float:
        """Mean latency in microseconds."""
        return self.mean_cycles / self.clock_hz * 1e6

    @property
    def p99_us(self) -> float:
        """99th-percentile latency in microseconds."""
        return self.p99_cycles / self.clock_hz * 1e6

    @property
    def max_us(self) -> float:
        """Worst-case latency in microseconds."""
        return self.max_cycles / self.clock_hz * 1e6


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = q * (len(sorted_values) - 1)
    lo = int(idx)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = idx - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def nearest_rank_percentile(values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of *values* (0 for an empty sample).

    ``q`` is a fraction in ``(0, 1]`` — ``0.99`` for p99.  Nearest-rank
    definition: the smallest sample value such that at least ``q`` of
    the sample is <= it, i.e. the order statistic at rank
    ``ceil(q * n)`` (1-indexed).  Always an element of *values*; no
    interpolation, no numpy.  ``q=1.0`` is the sample maximum.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"percentile fraction must be in (0, 1], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def nearest_rank_percentiles(
    values: Sequence[float], fractions: Iterable[float] = (0.5, 0.99, 0.999)
) -> Dict[float, float]:
    """Several :func:`nearest_rank_percentile` cuts, sorting once."""
    ordered = sorted(values)
    out: Dict[float, float] = {}
    for q in fractions:
        if not 0.0 < q <= 1.0:
            raise ValueError(
                f"percentile fraction must be in (0, 1], got {q}"
            )
        if not ordered:
            out[q] = 0.0
        else:
            rank = max(1, math.ceil(q * len(ordered)))
            out[q] = ordered[rank - 1]
    return out


def latency_stats(latencies_cycles: Sequence[int], clock_hz: float = 190e6) -> LatencyStats:
    """Summarise a latency sample (cycles)."""
    values = sorted(latencies_cycles)
    if not values:
        return LatencyStats(0, 0.0, 0.0, 0.0, 0, clock_hz)
    return LatencyStats(
        count=len(values),
        mean_cycles=sum(values) / len(values),
        p50_cycles=_percentile(values, 0.50),
        p99_cycles=_percentile(values, 0.99),
        max_cycles=values[-1],
        clock_hz=clock_hz,
    )
