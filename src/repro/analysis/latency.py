"""Latency statistics for the mapping trade-off (E7) and QoS (E9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample, in cycles and microseconds."""

    count: int
    mean_cycles: float
    p50_cycles: float
    p99_cycles: float
    max_cycles: int
    clock_hz: float

    @property
    def mean_us(self) -> float:
        """Mean latency in microseconds."""
        return self.mean_cycles / self.clock_hz * 1e6

    @property
    def p99_us(self) -> float:
        """99th-percentile latency in microseconds."""
        return self.p99_cycles / self.clock_hz * 1e6

    @property
    def max_us(self) -> float:
        """Worst-case latency in microseconds."""
        return self.max_cycles / self.clock_hz * 1e6


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = q * (len(sorted_values) - 1)
    lo = int(idx)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = idx - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def latency_stats(latencies_cycles: Sequence[int], clock_hz: float = 190e6) -> LatencyStats:
    """Summarise a latency sample (cycles)."""
    values = sorted(latencies_cycles)
    if not values:
        return LatencyStats(0, 0.0, 0.0, 0.0, 0, clock_hz)
    return LatencyStats(
        count=len(values),
        mean_cycles=sum(values) / len(values),
        p50_cycles=_percentile(values, 0.50),
        p99_cycles=_percentile(values, 0.99),
        max_cycles=values[-1],
        clock_hz=clock_hz,
    )
