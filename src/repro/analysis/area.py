"""Resource (area) model behind Table III's slices/BRAM column.

The paper reports 4084 slices and 26 BRAMs for the 4-core MCCP on a
Virtex-4 SX35, and per-module figures in Table IV (AES 351 slices /
4 BRAM; Whirlpool 1153 / 4).  The per-component budget below
reconstructs the device total from published anchors plus documented
estimates; the invariant the tests check is that the 4-core sum lands
on the paper's totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: (slices, brams) per component instance.  Anchored values are marked.
COMPONENT_AREAS: Dict[str, Tuple[int, int]] = {
    # Per core:
    "aes_unit": (351, 4),          # anchor: Table IV (AES + key interface)
    "ghash_core": (250, 0),        # digit-serial multiplier estimate
    "cu_datapath": (120, 0),       # bank register, decoder, XOR/INC/IO
    "controller_8bit": (96, 0),    # PicoBlaze-class controller
    "fifos": (40, 2),              # two 512x32 FIFOs (BRAM-backed)
    "key_cache": (20, 0),          # round-key storage interface
    # Shared (per pair of cores): dual-port instruction memory.
    "instruction_memory_pair": (8, 1),
    # Device level (key memory and scheduler state fit distributed RAM,
    # so the BRAM budget is carried entirely by the cores + shared
    # instruction memories, matching the paper's 26-BRAM total).
    "task_scheduler": (120, 0),
    "key_scheduler": (220, 0),
    "crossbar": (160, 0),
    "key_memory": (24, 0),
    "control_glue": (36, 0),
}

#: The paper's synthesis totals.
PAPER_TOTAL_SLICES = 4084
PAPER_TOTAL_BRAMS = 26


@dataclass(frozen=True)
class AreaModel:
    """Compute device area for an N-core MCCP."""

    core_count: int = 4

    def per_core(self) -> Tuple[int, int]:
        """(slices, brams) of one cryptographic core."""
        parts = ["aes_unit", "ghash_core", "cu_datapath", "controller_8bit", "fifos", "key_cache"]
        slices = sum(COMPONENT_AREAS[p][0] for p in parts)
        brams = sum(COMPONENT_AREAS[p][1] for p in parts)
        return slices, brams

    def device_total(self) -> Tuple[int, int]:
        """(slices, brams) of the whole MCCP."""
        core_s, core_b = self.per_core()
        pairs = (self.core_count + 1) // 2
        shared = ["task_scheduler", "key_scheduler", "crossbar", "key_memory", "control_glue"]
        slices = (
            self.core_count * core_s
            + pairs * COMPONENT_AREAS["instruction_memory_pair"][0]
            + sum(COMPONENT_AREAS[p][0] for p in shared)
        )
        brams = (
            self.core_count * core_b
            + pairs * COMPONENT_AREAS["instruction_memory_pair"][1]
            + sum(COMPONENT_AREAS[p][1] for p in shared)
        )
        return slices, brams

    def inventory(self) -> List[Tuple[str, int, int, int]]:
        """(component, count, slices_total, brams_total) rows."""
        rows = []
        per_core_parts = [
            "aes_unit", "ghash_core", "cu_datapath", "controller_8bit", "fifos", "key_cache",
        ]
        for part in per_core_parts:
            s, b = COMPONENT_AREAS[part]
            rows.append((part, self.core_count, self.core_count * s, self.core_count * b))
        pairs = (self.core_count + 1) // 2
        s, b = COMPONENT_AREAS["instruction_memory_pair"]
        rows.append(("instruction_memory_pair", pairs, pairs * s, pairs * b))
        for part in ["task_scheduler", "key_scheduler", "crossbar", "key_memory", "control_glue"]:
            s, b = COMPONENT_AREAS[part]
            rows.append((part, 1, s, b))
        return rows
