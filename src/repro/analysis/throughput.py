"""Throughput accounting: Table II helpers and workload reports.

"MCCP encryption throughputs at 190 MHz (theoretical / 2 KB packet)":
the theoretical column is ``cores * 128 bits / T_loop * f``; the packet
column comes from simulating real 2 KB packets.  ``PAPER_TABLE2`` pins
the published values for paper-vs-measured reporting.

:class:`WorkloadReport` is the aggregate record every
:meth:`repro.radio.sdr_platform.SdrPlatform.run_workload` run returns.
Since the dataplane refactor it also carries per-channel queue-depth
and backpressure statistics, so a batched run exposes how well the
flush policy coalesced (queue peaks, dispatch widths, what triggered
each flush) alongside the classic throughput/latency numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cycles import LoopModel
from repro.analysis.latency import nearest_rank_percentile
from repro.unit.timing import DEFAULT_TIMING, TimingModel

CLOCK_HZ_DEFAULT = 190e6

#: Priority-class display names (control > interactive > bulk; lower
#: integer = more important).  Kept here — not imported from the radio
#: layer — because analysis sits below radio in the dependency order.
CLASS_NAMES: Dict[int, str] = {0: "control", 1: "interactive", 2: "bulk"}


@dataclass
class WorkloadReport:
    """Aggregate results of a workload run."""

    total_cycles: int
    packets_done: int
    payload_bytes: int
    latencies: List[int] = field(default_factory=list)
    per_channel_bytes: Dict[int, int] = field(default_factory=dict)
    # -- dataplane statistics (batched submission pipeline) ------------
    #: Deepest each channel's coalescing queue ever got.
    per_channel_queue_peak: Dict[int, int] = field(default_factory=dict)
    #: Batch-engine dispatches per channel.
    per_channel_batches: Dict[int, int] = field(default_factory=dict)
    #: Flush trigger -> count ("size", "deadline", "forced").
    flush_causes: Dict[str, int] = field(default_factory=dict)
    #: Core-path submissions that hit NoResourceError and retried
    #: (radio-side queueing; always 0 for fully batched workloads).
    backpressure_retries: int = 0
    #: Which dataplane ran the workload ("cores"/"batched"/"pipelined";
    #: empty for reports built outside run_workload).
    dataplane: str = ""
    #: Peak number of concurrently in-flight (submitted, uncollected)
    #: dispatches across all channels — the pipelined dataplane's
    #: overlap; 0 on the synchronous dataplanes.
    pipeline_in_flight_peak: int = 0
    #: ENCRYPT/DECRYPT requests the task scheduler ran on cores (0 when
    #: every packet flowed through the batch engine).
    core_submits: int = 0
    # -- receive-side traffic (rx_fraction workloads) ------------------
    #: Packets generated as receive-side (DECRYPT) traffic, including
    #: the ones the channel model then lost.
    rx_packets: int = 0
    #: Rx packets lost before arrival (never entered the dataplane;
    #: excluded from ``packets_done``).
    rx_lost: int = 0
    #: Packets that failed tag verification (corrupted rx traffic);
    #: each was rejected without releasing plaintext or disturbing its
    #: batch-mates.
    auth_failures: int = 0
    # -- resilience (fault-injection recovery accounting) --------------
    #: Backend spans / key fetches re-attempted after a retryable
    #: failure.
    retries: int = 0
    #: Wall-clock watchdogs that expired a backend span.
    watchdog_fires: int = 0
    #: Backend degradations down the process -> thread -> inline chain.
    degradations: int = 0
    #: Degradation reasons, in order (e.g. "process -> thread: ...").
    degradation_reasons: List[str] = field(default_factory=list)
    #: Packets bisect-isolated out of a poisoned batch.
    quarantined: int = 0
    #: Jobs routed to a dead-letter queue (quarantines plus key-fetch
    #: exhaustion); capped by ``SlaSpec.max_dead_lettered``.
    dead_lettered: int = 0
    #: Injected faults that fired during the run (best-effort count:
    #: faults inside shared-nothing process workers tally locally).
    faults_injected: int = 0
    #: AES key-schedule rebuilds observed inside arena dispatch workers
    #: during the run.  With persistent warm-cache workers this is zero
    #: in steady state — each worker expands a key once, then serves
    #: every later batch from its warm schedule until a rekey epoch
    #: bump invalidates exactly that key.
    key_schedule_expansions: int = 0
    # -- overload protection / SLA accounting ---------------------------
    #: Per-priority-class latency samples (cycles); the feed for the
    #: p50/p99/p999 SLA percentiles.  Keys are priority integers
    #: (0 = control, 1 = interactive, 2 = bulk).
    per_class_latencies: Dict[int, List[int]] = field(default_factory=dict)
    #: Packets the admission controller admitted, per priority class
    #: (empty when no admission policy ran).
    admitted_by_class: Dict[int, int] = field(default_factory=dict)
    #: Packets shed by admission control, per priority class.  Shed is
    #: its own budget: never counted in ``auth_failures`` or
    #: ``dead_lettered``, and excluded from ``packets_done``.
    shed_by_class: Dict[int, int] = field(default_factory=dict)
    #: Shed counts per cause ("watermark", "pressure", "defer_budget").
    shed_causes: Dict[str, int] = field(default_factory=dict)
    #: The exact shed set as sorted ``(channel_id, sequence)`` pairs —
    #: deterministically reproducible from the seed; the overload
    #: suite pins it equal across backends and dataplanes.
    shed_packets: List[Tuple[int, int]] = field(default_factory=list)
    #: Defer waits the admission controller imposed (a packet may
    #: defer several times before admitting or shedding).
    deferrals: int = 0
    #: Typed :class:`repro.errors.BackpressureError` signals bounded
    #: channel queues raised during the run.
    backpressure_signals: int = 0
    # -- circuit breaker ------------------------------------------------
    #: Backend circuit-breaker trips (CLOSED/HALF_OPEN -> OPEN).
    breaker_trips: int = 0
    #: Spans an OPEN breaker routed around a sick backend.
    breaker_bypasses: int = 0
    #: Breakers that closed again after successful half-open probes.
    breaker_recoveries: int = 0
    # -- adaptive flush controller (FlushPolicy(mode="auto")) -----------
    #: Knob changes the adaptive controllers applied across channels
    #: (window decisions that actually moved a knob; holds not counted).
    autotune_adjustments: int = 0
    #: Per-channel decision traces — every closed observation window as
    #: a JSON-safe dict (window stats in, knobs before/after, cause).
    #: Identical across repeats and execution backends for the same
    #: seed, so "why did it widen here" is answerable offline from any
    #: sweep artifact.
    autotune_traces: Dict[int, List[dict]] = field(default_factory=dict)
    #: The workload advisor's picks, when consulted (``WorkloadSpec``
    #: with ``autotune=AutotuneConfig(advise_backend=True)`` and no
    #: pinned backend); empty/zero otherwise.
    autotune_backend: str = ""
    autotune_policy: str = ""
    autotune_pipeline_depth: int = 0
    # -- session layer --------------------------------------------------
    #: Sessions the session manager started / ran to teardown.
    sessions_started: int = 0
    sessions_completed: int = 0
    #: Mid-session channel handoffs performed.
    handoffs: int = 0
    #: Per-session rekeys through the key scheduler.
    rekeys: int = 0

    @property
    def shed(self) -> int:
        """Total packets shed by admission control."""
        return sum(self.shed_by_class.values())

    def offered_by_class(self) -> Dict[int, int]:
        """Admitted + shed per class (the admission-visible load)."""
        out = dict(self.admitted_by_class)
        for priority, count in self.shed_by_class.items():
            out[priority] = out.get(priority, 0) + count
        return out

    def drop_fraction(self, priority: int) -> float:
        """Shed share of the offered load for one priority class."""
        offered = self.offered_by_class().get(priority, 0)
        if offered == 0:
            return 0.0
        return self.shed_by_class.get(priority, 0) / offered

    def class_percentile_us(
        self,
        priority: int,
        q: float,
        clock_hz: float = CLOCK_HZ_DEFAULT,
    ) -> float:
        """Exact nearest-rank latency percentile for one class, in us."""
        samples = self.per_class_latencies.get(priority, [])
        return nearest_rank_percentile(samples, q) / clock_hz * 1e6

    def sla_summary(
        self, clock_hz: float = CLOCK_HZ_DEFAULT
    ) -> Dict[str, Dict[str, float]]:
        """p50/p99/p999 + drop fraction per priority class (by name)."""
        out: Dict[str, Dict[str, float]] = {}
        for priority in sorted(
            set(self.per_class_latencies) | set(self.offered_by_class())
        ):
            name = CLASS_NAMES.get(priority, f"p{priority}")
            out[name] = {
                "p50_us": self.class_percentile_us(priority, 0.50, clock_hz),
                "p99_us": self.class_percentile_us(priority, 0.99, clock_hz),
                "p999_us": self.class_percentile_us(priority, 0.999, clock_hz),
                "drop_fraction": self.drop_fraction(priority),
                "completed": float(
                    len(self.per_class_latencies.get(priority, ()))
                ),
                "shed": float(self.shed_by_class.get(priority, 0)),
            }
        return out

    def check_sla(
        self, spec: "SlaSpec", clock_hz: float = CLOCK_HZ_DEFAULT
    ) -> List[str]:
        """Violations of *spec* (empty list = the SLA holds)."""
        return spec.violations(self, clock_hz)

    def throughput_mbps(self, clock_hz: float = CLOCK_HZ_DEFAULT) -> float:
        """Aggregate payload throughput at *clock_hz*."""
        if self.total_cycles == 0:
            return 0.0
        seconds = self.total_cycles / clock_hz
        return 8 * self.payload_bytes / seconds / 1e6

    def mean_latency_us(self, clock_hz: float = CLOCK_HZ_DEFAULT) -> float:
        """Mean packet latency in microseconds."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies) / clock_hz * 1e6

    def max_latency_us(self, clock_hz: float = CLOCK_HZ_DEFAULT) -> float:
        """Worst-case packet latency in microseconds."""
        if not self.latencies:
            return 0.0
        return max(self.latencies) / clock_hz * 1e6

    @property
    def batches(self) -> int:
        """Total batch-engine dispatches across channels."""
        return sum(self.per_channel_batches.values())

    def mean_batch_width(self) -> float:
        """Average packets per batch-engine dispatch (0 if none ran)."""
        total = self.batches
        if total == 0:
            return 0.0
        batched_packets = self.packets_done - self.core_submits
        return batched_packets / total

    def queue_peak(self) -> int:
        """Deepest coalescing queue observed on any channel."""
        return max(self.per_channel_queue_peak.values(), default=0)


@dataclass(frozen=True)
class ClassSla:
    """Service-level budgets for one priority class (None = unchecked)."""

    #: Latency budgets in microseconds (exact nearest-rank percentiles).
    p50_us: Optional[float] = None
    p99_us: Optional[float] = None
    p999_us: Optional[float] = None
    #: Max shed share of the class's offered load (0.0 = never shed).
    max_drop_fraction: Optional[float] = None
    #: Require at least this many completed packets in the class, so a
    #: latency budget cannot pass vacuously on an empty sample.
    min_completed: int = 0


@dataclass(frozen=True)
class SlaSpec:
    """An asserted service level: per-class budgets + run-level caps.

    Built for scenarios: ``report.check_sla(spec)`` returns a list of
    human-readable violations (empty = the SLA holds), so an
    experiment can hard-fail with the exact broken budget in the
    message.  Latency cuts use the exact nearest-rank percentile
    (:func:`repro.analysis.latency.nearest_rank_percentile`) — every
    reported number is a latency some real packet paid.
    """

    #: Budgets per priority class (0 = control, 1 = interactive,
    #: 2 = bulk).
    classes: Dict[int, ClassSla] = field(default_factory=dict)
    #: Run-level cap on authentication failures (None = unchecked).
    max_auth_failures: Optional[int] = None
    #: Run-level cap on dead-lettered jobs (None = unchecked).
    max_dead_lettered: Optional[int] = None

    def violations(
        self, report: WorkloadReport, clock_hz: float = CLOCK_HZ_DEFAULT
    ) -> List[str]:
        """Every budget *report* breaks, most important class first."""
        out: List[str] = []
        for priority in sorted(self.classes):
            budget = self.classes[priority]
            name = CLASS_NAMES.get(priority, f"p{priority}")
            completed = len(report.per_class_latencies.get(priority, ()))
            if completed < budget.min_completed:
                out.append(
                    f"{name}: only {completed} completed packets "
                    f"(min {budget.min_completed})"
                )
            for q, cap in (
                (0.50, budget.p50_us),
                (0.99, budget.p99_us),
                (0.999, budget.p999_us),
            ):
                if cap is None:
                    continue
                got = report.class_percentile_us(priority, q, clock_hz)
                if got > cap:
                    out.append(
                        f"{name}: p{q * 100:g} latency {got:.1f}us "
                        f"over budget {cap:.1f}us"
                    )
            if budget.max_drop_fraction is not None:
                got = report.drop_fraction(priority)
                if got > budget.max_drop_fraction:
                    out.append(
                        f"{name}: drop fraction {got:.3f} over budget "
                        f"{budget.max_drop_fraction:.3f}"
                    )
        if (
            self.max_auth_failures is not None
            and report.auth_failures > self.max_auth_failures
        ):
            out.append(
                f"auth failures {report.auth_failures} over budget "
                f"{self.max_auth_failures}"
            )
        if (
            self.max_dead_lettered is not None
            and report.dead_lettered > self.max_dead_lettered
        ):
            out.append(
                f"dead-lettered {report.dead_lettered} over budget "
                f"{self.max_dead_lettered}"
            )
        return out


#: Table II as published: {(mode_config, key_bits): (theoretical, 2KB)}
#: mode_config in {"gcm_1", "gcm_4x1", "ccm_1", "ccm_4x1", "ccm_2", "ccm_2x2"}.
PAPER_TABLE2: Dict[Tuple[str, int], Tuple[int, int]] = {
    ("gcm_1", 128): (496, 437),
    ("gcm_4x1", 128): (1984, 1748),
    ("ccm_1", 128): (233, 214),
    ("ccm_4x1", 128): (932, 856),
    ("ccm_2", 128): (442, 393),
    ("ccm_2x2", 128): (884, 786),
    ("gcm_1", 192): (426, 382),
    ("gcm_4x1", 192): (1704, 1528),
    ("ccm_1", 192): (202, 187),
    ("ccm_4x1", 192): (808, 748),
    ("ccm_2", 192): (386, 348),
    ("ccm_2x2", 192): (772, 696),
    ("gcm_1", 256): (374, 337),
    ("gcm_4x1", 256): (1496, 1348),
    ("ccm_1", 256): (178, 171),
    ("ccm_4x1", 256): (712, 684),
    ("ccm_2", 256): (342, 313),
    ("ccm_2x2", 256): (684, 626),
}

#: The abstract's headline number: max aggregate throughput.
PAPER_MAX_THROUGHPUT_MBPS = 1700  # "1.7 Gbps"


@dataclass(frozen=True)
class Table2Row:
    """One cell pair of Table II."""

    config: str
    key_bits: int
    theoretical_mbps: float
    packet_mbps: float
    paper_theoretical: int
    paper_packet: int


def mbps(payload_bits: int, cycles: int, clock_hz: float = CLOCK_HZ_DEFAULT) -> float:
    """Convert (bits, cycles) to Mbps at *clock_hz*."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return payload_bits * clock_hz / cycles / 1e6


def _config_parts(config: str) -> Tuple[str, int, int]:
    """(mode, cores_per_packet, parallel_packets) for a Table II config."""
    table = {
        "gcm_1": ("gcm", 1, 1),
        "gcm_4x1": ("gcm", 1, 4),
        "ccm_1": ("ccm1", 1, 1),
        "ccm_4x1": ("ccm1", 1, 4),
        "ccm_2": ("ccm2", 2, 1),
        "ccm_2x2": ("ccm2", 2, 2),
    }
    return table[config]


def theoretical_mbps(
    config: str,
    key_bits: int,
    timing: TimingModel = DEFAULT_TIMING,
    clock_hz: float = CLOCK_HZ_DEFAULT,
) -> float:
    """The theoretical column of Table II from the loop model."""
    mode, _cores, packets = _config_parts(config)
    loop = LoopModel(timing).period(mode, key_bits)
    return packets * mbps(128, loop, clock_hz)


def theoretical_table2(
    timing: TimingModel = DEFAULT_TIMING, clock_hz: float = CLOCK_HZ_DEFAULT
) -> List[Table2Row]:
    """All Table II rows with the theoretical column filled in."""
    rows = []
    for (config, key_bits), (paper_theo, paper_pkt) in sorted(
        PAPER_TABLE2.items(), key=lambda kv: (kv[0][1], kv[0][0])
    ):
        rows.append(
            Table2Row(
                config=config,
                key_bits=key_bits,
                theoretical_mbps=round(theoretical_mbps(config, key_bits, timing, clock_hz), 1),
                packet_mbps=float("nan"),
                paper_theoretical=paper_theo,
                paper_packet=paper_pkt,
            )
        )
    return rows
