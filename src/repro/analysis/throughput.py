"""Table II reproduction helpers.

"MCCP encryption throughputs at 190 MHz (theoretical / 2 KB packet)":
the theoretical column is ``cores * 128 bits / T_loop * f``; the packet
column comes from simulating real 2 KB packets.  ``PAPER_TABLE2`` pins
the published values for paper-vs-measured reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.cycles import LoopModel
from repro.unit.timing import DEFAULT_TIMING, TimingModel

CLOCK_HZ_DEFAULT = 190e6

#: Table II as published: {(mode_config, key_bits): (theoretical, 2KB)}
#: mode_config in {"gcm_1", "gcm_4x1", "ccm_1", "ccm_4x1", "ccm_2", "ccm_2x2"}.
PAPER_TABLE2: Dict[Tuple[str, int], Tuple[int, int]] = {
    ("gcm_1", 128): (496, 437),
    ("gcm_4x1", 128): (1984, 1748),
    ("ccm_1", 128): (233, 214),
    ("ccm_4x1", 128): (932, 856),
    ("ccm_2", 128): (442, 393),
    ("ccm_2x2", 128): (884, 786),
    ("gcm_1", 192): (426, 382),
    ("gcm_4x1", 192): (1704, 1528),
    ("ccm_1", 192): (202, 187),
    ("ccm_4x1", 192): (808, 748),
    ("ccm_2", 192): (386, 348),
    ("ccm_2x2", 192): (772, 696),
    ("gcm_1", 256): (374, 337),
    ("gcm_4x1", 256): (1496, 1348),
    ("ccm_1", 256): (178, 171),
    ("ccm_4x1", 256): (712, 684),
    ("ccm_2", 256): (342, 313),
    ("ccm_2x2", 256): (684, 626),
}

#: The abstract's headline number: max aggregate throughput.
PAPER_MAX_THROUGHPUT_MBPS = 1700  # "1.7 Gbps"


@dataclass(frozen=True)
class Table2Row:
    """One cell pair of Table II."""

    config: str
    key_bits: int
    theoretical_mbps: float
    packet_mbps: float
    paper_theoretical: int
    paper_packet: int


def mbps(payload_bits: int, cycles: int, clock_hz: float = CLOCK_HZ_DEFAULT) -> float:
    """Convert (bits, cycles) to Mbps at *clock_hz*."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return payload_bits * clock_hz / cycles / 1e6


def _config_parts(config: str) -> Tuple[str, int, int]:
    """(mode, cores_per_packet, parallel_packets) for a Table II config."""
    table = {
        "gcm_1": ("gcm", 1, 1),
        "gcm_4x1": ("gcm", 1, 4),
        "ccm_1": ("ccm1", 1, 1),
        "ccm_4x1": ("ccm1", 1, 4),
        "ccm_2": ("ccm2", 2, 1),
        "ccm_2x2": ("ccm2", 2, 2),
    }
    return table[config]


def theoretical_mbps(
    config: str,
    key_bits: int,
    timing: TimingModel = DEFAULT_TIMING,
    clock_hz: float = CLOCK_HZ_DEFAULT,
) -> float:
    """The theoretical column of Table II from the loop model."""
    mode, _cores, packets = _config_parts(config)
    loop = LoopModel(timing).period(mode, key_bits)
    return packets * mbps(128, loop, clock_hz)


def theoretical_table2(
    timing: TimingModel = DEFAULT_TIMING, clock_hz: float = CLOCK_HZ_DEFAULT
) -> List[Table2Row]:
    """All Table II rows with the theoretical column filled in."""
    rows = []
    for (config, key_bits), (paper_theo, paper_pkt) in sorted(
        PAPER_TABLE2.items(), key=lambda kv: (kv[0][1], kv[0][0])
    ):
        rows.append(
            Table2Row(
                config=config,
                key_bits=key_bits,
                theoretical_mbps=round(theoretical_mbps(config, key_bits, timing, clock_hz), 1),
                packet_mbps=float("nan"),
                paper_theoretical=paper_theo,
                paper_packet=paper_pkt,
            )
        )
    return rows
