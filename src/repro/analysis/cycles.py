"""Section VII.A's loop-cycle equations, as checkable functions.

    T_GCMloop  = T_CTR = T_SAES + T_FAES                 = 49
    T_CCMloop (2 cores) = T_CBC = T_SAES + T_FAES + T_XOR = 55
    T_CCMloop (1 core)  = T_CTR + T_CBC                   = 104

with "+8 cycles for 192-bit keys and 8 more for 256-bit keys" per AES
pass.  ``paper_loop_cycles`` returns the paper's numbers; ``LoopModel``
recomputes them from the timing model; the E1 benchmark/tests compare
both against the *measured* steady-state periods of simulated firmware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.params import Algorithm
from repro.unit.timing import DEFAULT_TIMING, TimingModel

#: The paper's published loop periods for 128-bit keys.
PAPER_T_GCM_128 = 49
PAPER_T_CBC_128 = 55
PAPER_T_CCM1_128 = 104
PAPER_KEYSTEP_EXTRA = 8


def paper_loop_cycles(mode: str, key_bits: int) -> int:
    """The paper's loop period for *mode* ('gcm'|'ctr'|'cbc'|'ccm1'|'ccm2')."""
    step = {128: 0, 192: 1, 256: 2}[key_bits]
    base = {
        "gcm": PAPER_T_GCM_128,
        "ctr": PAPER_T_GCM_128,
        "cbc": PAPER_T_CBC_128,
        "ccm2": PAPER_T_CBC_128,
        "ccm1": PAPER_T_CCM1_128,
    }[mode]
    # ccm1 contains two AES passes per block, so it steps twice as fast.
    passes = 2 if mode == "ccm1" else 1
    return base + passes * step * PAPER_KEYSTEP_EXTRA


@dataclass(frozen=True)
class LoopModel:
    """Loop periods recomputed from a timing model."""

    timing: TimingModel = DEFAULT_TIMING

    def period(self, mode: str, key_bits: int) -> int:
        """Model-predicted steady-state loop period."""
        if mode in ("gcm", "ctr"):
            return self.timing.gcm_loop(key_bits)
        if mode in ("cbc", "ccm2"):
            return self.timing.cbc_loop(key_bits)
        if mode == "ccm1":
            return self.timing.ccm_one_core_loop(key_bits)
        raise ValueError(f"unknown mode {mode!r}")

    def all_periods(self) -> Dict[str, Dict[int, int]]:
        """Every (mode, key size) period."""
        return {
            mode: {kb: self.period(mode, kb) for kb in (128, 192, 256)}
            for mode in ("gcm", "ctr", "cbc", "ccm1", "ccm2")
        }

    def algorithm_loop(self, algorithm: Algorithm, key_bits: int, cores: int = 1) -> int:
        """Loop period for a device algorithm under a core mapping."""
        if algorithm in (Algorithm.GCM, Algorithm.CTR):
            return self.period("gcm", key_bits)
        if algorithm is Algorithm.CBC_MAC:
            return self.period("cbc", key_bits)
        if algorithm is Algorithm.CCM:
            return self.period("ccm2" if cores == 2 else "ccm1", key_bits)
        raise ValueError(f"no loop model for {algorithm!r}")
