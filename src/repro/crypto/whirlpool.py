"""Whirlpool hash function (ISO/IEC 10118-3), from scratch.

Whirlpool is the second module the paper loads into the reconfigurable
Cryptographic Unit region (Table IV: 1153 slices / 4 BRAM, 97 kB
bitstream).  The implementation follows the final (2003) specification:

- 512-bit state as an 8x8 byte matrix filled row-wise;
- round function γ (SubBytes), π (ShiftColumns: column *c* rotated down
  by *c*), θ (MixRows by the circulant MDS matrix cir(1,1,4,1,8,5,2,9)
  over GF(2^8) mod x^8+x^4+x^3+x^2+1), σ (AddRoundKey);
- 10 rounds; key schedule runs the same round function with round
  constants drawn from the S-box;
- Miyaguchi–Preneel compression and 256-bit length padding.

The S-box is generated from the specification's E / E^-1 / R mini-boxes
rather than transcribed, for the same reason as the AES tables.
"""

from __future__ import annotations

from typing import List, Sequence

ROUNDS = 10
BLOCK_BYTES = 64
DIGEST_BYTES = 64

WP_POLY = 0x11D  # x^8 + x^4 + x^3 + x^2 + 1

# Specification mini-boxes (4-bit).
_E = [0x1, 0xB, 0x9, 0xC, 0xD, 0x6, 0xF, 0x3, 0xE, 0x8, 0x7, 0x4, 0xA, 0x2, 0x5, 0x0]
_R = [0x7, 0xC, 0xB, 0xD, 0xE, 0x4, 0x9, 0xF, 0x6, 0x3, 0x8, 0xA, 0x2, 0x5, 0x1, 0x0]
_E_INV = [0] * 16
for _i, _v in enumerate(_E):
    _E_INV[_v] = _i


def _build_sbox() -> List[int]:
    sbox = []
    for x in range(256):
        a1 = _E[x >> 4]
        b1 = _E_INV[x & 0xF]
        r = _R[a1 ^ b1]
        a2 = _E[a1 ^ r]
        b2 = _E_INV[b1 ^ r]
        sbox.append((a2 << 4) | b2)
    return sbox


SBOX = _build_sbox()


def _gf_mul(a: int, b: int) -> int:
    """GF(2^8) product modulo the Whirlpool polynomial 0x11D."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= WP_POLY
        b >>= 1
    return result & 0xFF


#: First row of the circulant diffusion matrix.
_CIR = (0x01, 0x01, 0x04, 0x01, 0x08, 0x05, 0x02, 0x09)

# Pre-computed multiplication tables for each distinct matrix constant.
_MUL = {c: [_gf_mul(x, c) for x in range(256)] for c in set(_CIR)}


def _gamma(state: List[int]) -> List[int]:
    """SubBytes."""
    return [SBOX[b] for b in state]


def _pi(state: List[int]) -> List[int]:
    """ShiftColumns: column c rotated downwards by c positions."""
    out = [0] * 64
    for c in range(8):
        for r in range(8):
            out[((r + c) % 8) * 8 + c] = state[r * 8 + c]
    return out


def _theta(state: List[int]) -> List[int]:
    """MixRows: state <- state x C with C[i][j] = cir[(j - i) mod 8]."""
    out = [0] * 64
    for r in range(8):
        row = state[r * 8 : r * 8 + 8]
        base = r * 8
        for c in range(8):
            acc = 0
            for k in range(8):
                acc ^= _MUL[_CIR[(c - k) % 8]][row[k]]
            out[base + c] = acc
    return out


def _sigma(state: List[int], key: Sequence[int]) -> List[int]:
    """AddRoundKey."""
    return [s ^ k for s, k in zip(state, key)]


def _round_constants() -> List[List[int]]:
    consts = []
    for r in range(1, ROUNDS + 1):
        rc = [0] * 64
        for j in range(8):
            rc[j] = SBOX[8 * (r - 1) + j]
        consts.append(rc)
    return consts


_RC = _round_constants()


def _w_cipher(key: bytes, block: bytes) -> bytes:
    """The W block cipher at the heart of Whirlpool."""
    k = list(key)
    s = _sigma(list(block), k)
    for r in range(ROUNDS):
        k = _sigma(_theta(_pi(_gamma(k))), _RC[r])
        s = _sigma(_theta(_pi(_gamma(s))), k)
    return bytes(s)


def compress(h: bytes, block: bytes) -> bytes:
    """Miyaguchi–Preneel compression: ``W_H(m) xor m xor H``."""
    if len(h) != BLOCK_BYTES or len(block) != BLOCK_BYTES:
        raise ValueError("compress expects 64-byte state and block")
    w = _w_cipher(h, block)
    return bytes(a ^ b ^ c for a, b, c in zip(w, block, h))


class Whirlpool:
    """Incremental Whirlpool hasher with the usual update/digest API.

    Examples
    --------
    >>> Whirlpool(b"abc").hexdigest()[:16]
    '4e2448a4c6f486bb'
    """

    def __init__(self, data: bytes = b""):
        self._h = bytes(BLOCK_BYTES)
        self._buffer = b""
        self._length_bits = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Whirlpool":
        """Absorb *data*; may be called repeatedly."""
        self._length_bits += 8 * len(data)
        self._buffer += data
        while len(self._buffer) >= BLOCK_BYTES:
            self._h = compress(self._h, self._buffer[:BLOCK_BYTES])
            self._buffer = self._buffer[BLOCK_BYTES:]
        return self

    def _padded_tail(self) -> bytes:
        # Append the 0x80 marker, zero-fill to 32 bytes short of a block
        # boundary, then the 256-bit message length in bits.
        tail = self._buffer + b"\x80"
        pad_to = BLOCK_BYTES - 32
        if len(tail) % BLOCK_BYTES > pad_to or len(tail) % BLOCK_BYTES == 0:
            tail += b"\x00" * (BLOCK_BYTES - len(tail) % BLOCK_BYTES)
            tail += b"\x00" * pad_to
        else:
            tail += b"\x00" * (pad_to - len(tail) % BLOCK_BYTES)
        tail += self._length_bits.to_bytes(32, "big")
        return tail

    def digest(self) -> bytes:
        """Return the 64-byte digest (does not consume internal state)."""
        h = self._h
        tail = self._padded_tail()
        for i in range(0, len(tail), BLOCK_BYTES):
            h = compress(h, tail[i : i + BLOCK_BYTES])
        return h

    def hexdigest(self) -> str:
        """Hex form of :meth:`digest`."""
        return self.digest().hex()


def whirlpool(data: bytes) -> bytes:
    """One-shot Whirlpool digest of *data*."""
    return Whirlpool(data).digest()
