"""GMAC — GCM with an empty plaintext (SP 800-38D section 3).

Authentication-only channels (the "authenticated only data" of the
paper's ENCRYPT instruction with ``Data Size == 0``) reduce GCM to GMAC;
exposing it separately keeps that radio use case first-class.
"""

from __future__ import annotations

from repro.crypto.modes.gcm import gcm_decrypt, gcm_encrypt
from repro.errors import AuthenticationFailure


def gmac(key: bytes, iv: bytes, aad: bytes, tag_length: int = 16) -> bytes:
    """Compute the GMAC tag over *aad*."""
    _, tag = gcm_encrypt(key, iv, b"", aad=aad, tag_length=tag_length)
    return tag


def gmac_verify(key: bytes, iv: bytes, aad: bytes, tag: bytes) -> bool:
    """Verify a GMAC tag; returns True/False rather than raising."""
    try:
        gcm_decrypt(key, iv, b"", tag, aad=aad)
    except AuthenticationFailure:
        return False
    return True
