"""Counter (CTR) mode, NIST SP 800-38A section 6.5.

The MCCP's INC core increments the 16 *least significant bits* of a
128-bit counter block (paper section V.A), matching GCM's 32-bit —
actually 16-bit-sufficient — wrapping increment for packet-sized data:
a 2 KB packet spans 128 blocks, far below the 2^16 wrap.  The reference
implementation uses the same 16-bit wrapping increment by default so
device and gold model agree bit-for-bit, with the increment width
configurable for standard-compliant wider counters.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.errors import BlockSizeError
from repro.utils.bytesops import xor_bytes

BLOCK_BYTES = 16


def increment_counter(block: bytes, inc_bits: int = 16, by: int = 1) -> bytes:
    """Increment the low *inc_bits* bits of a 16-byte counter block.

    Mirrors the hardware INC core: 16-bit increment by 1..4, the upper
    112 bits untouched (wraps modulo 2^inc_bits).
    """
    if len(block) != BLOCK_BYTES:
        raise BlockSizeError(f"counter block must be 16 bytes, got {len(block)}")
    if inc_bits <= 0 or inc_bits > 128 or inc_bits % 8 != 0:
        raise ValueError(f"inc_bits must be a positive multiple of 8 <= 128, got {inc_bits}")
    if by < 0:
        raise ValueError("increment must be non-negative")
    nbytes = inc_bits // 8
    prefix = block[:-nbytes] if nbytes < BLOCK_BYTES else b""
    low = int.from_bytes(block[-nbytes:], "big")
    low = (low + by) % (1 << inc_bits)
    return prefix + low.to_bytes(nbytes, "big")


def ctr_keystream(cipher: AES, initial_counter: bytes, nblocks: int, inc_bits: int = 16) -> bytes:
    """Generate *nblocks* 16-byte keystream blocks from *initial_counter*.

    The first keystream block is ``E_K(initial_counter)``; each
    subsequent block encrypts the incremented counter.
    """
    if len(initial_counter) != BLOCK_BYTES:
        raise BlockSizeError(
            f"initial counter must be 16 bytes, got {len(initial_counter)}"
        )
    if nblocks < 0:
        raise ValueError("nblocks must be non-negative")
    out = bytearray()
    counter = initial_counter
    for _ in range(nblocks):
        out += cipher.encrypt_block(counter)
        counter = increment_counter(counter, inc_bits)
    return bytes(out)


def ctr_xcrypt(cipher: AES, initial_counter: bytes, data: bytes, inc_bits: int = 16) -> bytes:
    """Encrypt or decrypt *data* in CTR mode (the operation is its own inverse).

    *data* may be any length; the final keystream block is truncated.
    """
    if not data:
        return b""
    nblocks = -(-len(data) // BLOCK_BYTES)
    stream = ctr_keystream(cipher, initial_counter, nblocks, inc_bits)
    return xor_bytes(data, stream[: len(data)])
