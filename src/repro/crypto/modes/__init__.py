"""Block-cipher modes of operation supported by the MCCP.

The MCCP executes CTR, CBC-MAC, CCM and GCM (paper section IV.D).  These
reference implementations follow the NIST special publications the paper
cites: SP 800-38A (CTR), SP 800-38C (CCM, which subsumes CBC-MAC) and
SP 800-38D (GCM/GMAC).  They serve as the gold model the device
simulation is checked against, and they are usable as a normal software
crypto library in their own right.
"""

from repro.crypto.modes.ctr import ctr_keystream, ctr_xcrypt
from repro.crypto.modes.cbc_mac import cbc_mac
from repro.crypto.modes.ccm import (
    ccm_decrypt,
    ccm_encrypt,
    format_b0,
    format_counter_block,
    format_associated_data,
)
from repro.crypto.modes.gcm import (
    gcm_decrypt,
    gcm_encrypt,
    gcm_j0,
    gcm_length_block,
)
from repro.crypto.modes.gmac import gmac

__all__ = [
    "ctr_keystream",
    "ctr_xcrypt",
    "cbc_mac",
    "ccm_decrypt",
    "ccm_encrypt",
    "format_b0",
    "format_counter_block",
    "format_associated_data",
    "gcm_decrypt",
    "gcm_encrypt",
    "gcm_j0",
    "gcm_length_block",
    "gmac",
]
