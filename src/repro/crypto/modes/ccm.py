"""CCM — Counter with CBC-MAC (NIST SP 800-38C / RFC 3610).

The formatting functions (``B_0``, associated-data encoding, counter
blocks) are exposed separately because in the MCCP they are executed by
the *communication controller*, not by the cryptographic cores: the
paper (section VI.B) requires data to be fully formatted before it is
pushed into a core's input FIFO.  The device model and the radio
substrate both call these helpers.

Counter increments use the standard big-endian increment over the
*q*-byte counter field.  With the radio's 13-byte nonces, ``q == 2`` and
the field is exactly the 16 bits the hardware INC core updates, so the
device and this reference agree bit-for-bit.
"""

from __future__ import annotations

import hmac
from typing import Tuple

from repro.crypto.aes import AES
from repro.crypto.fast import fast_enabled
from repro.crypto.modes.cbc_mac import cbc_mac
from repro.errors import AuthenticationFailure, NonceError, TagError
from repro.utils.bytesops import pad_zeros, xor_bytes

BLOCK_BYTES = 16

#: Valid tag lengths per SP 800-38C (4..16, even).
VALID_TAG_LENGTHS = (4, 6, 8, 10, 12, 14, 16)

#: Valid nonce lengths (7..13 bytes; q = 15 - n ranges 2..8).
VALID_NONCE_LENGTHS = tuple(range(7, 14))


def _check_params(nonce: bytes, tag_length: int, payload_len: int) -> int:
    if len(nonce) not in VALID_NONCE_LENGTHS:
        raise NonceError(
            f"CCM nonce must be 7..13 bytes, got {len(nonce)}"
        )
    if tag_length not in VALID_TAG_LENGTHS:
        raise TagError(
            f"CCM tag length must be one of {VALID_TAG_LENGTHS}, got {tag_length}"
        )
    q = 15 - len(nonce)
    if payload_len >= (1 << (8 * q)):
        raise ValueError(
            f"payload of {payload_len} bytes does not fit the {q}-byte length field"
        )
    return q


def format_b0(nonce: bytes, aad_len: int, payload_len: int, tag_length: int) -> bytes:
    """Build the ``B_0`` block (SP 800-38C appendix A.2.1)."""
    q = _check_params(nonce, tag_length, payload_len)
    flags = (
        (0x40 if aad_len > 0 else 0x00)
        | (((tag_length - 2) // 2) << 3)
        | (q - 1)
    )
    return bytes([flags]) + nonce + payload_len.to_bytes(q, "big")


def format_associated_data(aad: bytes) -> bytes:
    """Encode the associated data with its length prefix, zero-padded.

    Supports the two length encodings relevant to packet radio:
    short (< 2^16 - 2^8) and 32-bit (with the ``0xFFFE`` marker).
    """
    if not aad:
        return b""
    a = len(aad)
    if a < (1 << 16) - (1 << 8):
        encoded = a.to_bytes(2, "big") + aad
    elif a < (1 << 32):
        encoded = b"\xff\xfe" + a.to_bytes(4, "big") + aad
    else:
        raise ValueError("associated data longer than 2^32 bytes is unsupported")
    return pad_zeros(encoded, BLOCK_BYTES)


def format_counter_block(nonce: bytes, index: int) -> bytes:
    """Build counter block ``A_index`` (flags | nonce | counter)."""
    q = 15 - len(nonce)
    if len(nonce) not in VALID_NONCE_LENGTHS:
        raise NonceError(f"CCM nonce must be 7..13 bytes, got {len(nonce)}")
    if index >= (1 << (8 * q)):
        raise ValueError(f"counter index {index} does not fit {q} bytes")
    return bytes([q - 1]) + nonce + index.to_bytes(q, "big")


def _ctr_stream(cipher: AES, nonce: bytes, nblocks: int) -> bytes:
    """Keystream S_1..S_nblocks (A_0 is reserved for the tag)."""
    out = bytearray()
    for i in range(1, nblocks + 1):
        out += cipher.encrypt_block(format_counter_block(nonce, i))
    return bytes(out)


def ccm_encrypt(
    key: bytes,
    nonce: bytes,
    plaintext: bytes,
    aad: bytes = b"",
    tag_length: int = 16,
    use_fast: "bool | None" = None,
) -> Tuple[bytes, bytes]:
    """CCM authenticated encryption.

    Returns ``(ciphertext, tag)`` with ``len(tag) == tag_length``.
    Routes through :func:`repro.crypto.fast.bulk.ccm_seal` unless the
    fast engine is switched off.
    """
    if fast_enabled(use_fast):
        from repro.crypto.fast.bulk import ccm_seal

        return ccm_seal(key, nonce, plaintext, aad, tag_length)
    cipher = AES(key, use_fast=False)
    _check_params(nonce, tag_length, len(plaintext))

    b = (
        format_b0(nonce, len(aad), len(plaintext), tag_length)
        + format_associated_data(aad)
        + pad_zeros(plaintext, BLOCK_BYTES)
    )
    t_full = cbc_mac(cipher, b, use_fast=False)

    nblocks = -(-len(plaintext) // BLOCK_BYTES)
    stream = _ctr_stream(cipher, nonce, nblocks)
    ciphertext = xor_bytes(plaintext, stream[: len(plaintext)]) if plaintext else b""

    s0 = cipher.encrypt_block(format_counter_block(nonce, 0))
    tag = xor_bytes(t_full, s0)[:tag_length]
    return ciphertext, tag


def ccm_decrypt(
    key: bytes,
    nonce: bytes,
    ciphertext: bytes,
    tag: bytes,
    aad: bytes = b"",
    use_fast: "bool | None" = None,
) -> bytes:
    """CCM authenticated decryption.

    Raises
    ------
    AuthenticationFailure
        If the tag does not verify.  Per SP 800-38C no plaintext is
        released on failure (the hardware analogue re-initialises the
        output FIFO, paper section IV.C).
    """
    if fast_enabled(use_fast):
        from repro.crypto.fast.bulk import ccm_open

        return ccm_open(key, nonce, ciphertext, tag, aad)
    cipher = AES(key, use_fast=False)
    tag_length = len(tag)
    _check_params(nonce, tag_length, len(ciphertext))

    nblocks = -(-len(ciphertext) // BLOCK_BYTES)
    stream = _ctr_stream(cipher, nonce, nblocks)
    plaintext = (
        xor_bytes(ciphertext, stream[: len(ciphertext)]) if ciphertext else b""
    )

    b = (
        format_b0(nonce, len(aad), len(plaintext), tag_length)
        + format_associated_data(aad)
        + pad_zeros(plaintext, BLOCK_BYTES)
    )
    t_full = cbc_mac(cipher, b, use_fast=False)
    s0 = cipher.encrypt_block(format_counter_block(nonce, 0))
    expected = xor_bytes(t_full, s0)[:tag_length]

    if not hmac.compare_digest(expected, tag):
        raise AuthenticationFailure("CCM tag verification failed")
    return plaintext
