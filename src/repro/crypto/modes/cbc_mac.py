"""CBC-MAC over full blocks (the FIPS-113 / SP 800-38C building block).

This is the raw chained MAC the MCCP's CBC-MAC firmware computes:
``Y_0 = E_K(B_0); Y_i = E_K(B_i xor Y_{i-1})``.  CCM (SP 800-38C) wraps
it with the B0/associated-data formatting implemented in
:mod:`repro.crypto.modes.ccm`; raw CBC-MAC on its own is only secure
for fixed-length messages, which is exactly how the radio uses it.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.crypto.fast import fast_enabled
from repro.crypto.fast.bulk import cbc_mac_fast
from repro.errors import BlockSizeError
from repro.utils.bytesops import xor_bytes

BLOCK_BYTES = 16


def cbc_mac(
    cipher: AES,
    data: bytes,
    iv: bytes = b"\x00" * BLOCK_BYTES,
    use_fast: "bool | None" = None,
) -> bytes:
    """Compute the CBC-MAC of *data* (a whole number of 16-byte blocks).

    Parameters
    ----------
    iv:
        Chaining start value; all-zero per FIPS-113.  CCM effectively
        starts the chain at zero and feeds ``B_0`` as the first block.
    use_fast:
        Tri-state fast-path override; the fast path keeps the chaining
        state as words (:func:`repro.crypto.fast.bulk.cbc_mac_fast`).
    """
    if fast_enabled(use_fast):
        return cbc_mac_fast(cipher.schedule, data, iv)
    if len(data) % BLOCK_BYTES != 0:
        raise BlockSizeError(
            f"CBC-MAC input length {len(data)} is not a multiple of 16"
        )
    if len(iv) != BLOCK_BYTES:
        raise BlockSizeError(f"CBC-MAC IV must be 16 bytes, got {len(iv)}")
    if not data:
        raise BlockSizeError("CBC-MAC requires at least one block")
    y = iv
    for i in range(0, len(data), BLOCK_BYTES):
        y = cipher.encrypt_block(xor_bytes(y, data[i : i + BLOCK_BYTES]))
    return y
