"""GCM — Galois/Counter Mode (NIST SP 800-38D).

Exposes the ``J_0`` derivation and the length block separately because
the MCCP's communication controller performs all data formatting before
feeding the cores (paper section VI.B): a core receives ``J_0``, the
padded AAD, the padded plaintext and the length block as ready-made
128-bit words; its firmware (Listing 1 of the paper) only runs the
SAES/XOR/SGFM/INC pipeline.
"""

from __future__ import annotations

import hmac
from typing import Tuple

from repro.crypto.aes import AES
from repro.crypto.fast import bulk as fast_bulk
from repro.crypto.fast import fast_enabled
from repro.crypto.ghash import GHash
from repro.errors import AuthenticationFailure, NonceError, TagError
from repro.utils.bytesops import pad_zeros, xor_bytes

BLOCK_BYTES = 16

#: Tag lengths permitted by SP 800-38D (bytes).
VALID_TAG_LENGTHS = (4, 8, 12, 13, 14, 15, 16)


def inc32(block: bytes, by: int = 1) -> bytes:
    """Increment the low 32 bits of a 16-byte block (SP 800-38D inc32)."""
    low = (int.from_bytes(block[12:], "big") + by) & 0xFFFFFFFF
    return block[:12] + low.to_bytes(4, "big")


def gcm_j0(cipher: AES, iv: bytes, use_fast: "bool | None" = None) -> bytes:
    """Derive the pre-counter block ``J_0`` from the IV.

    The 96-bit IV fast path appends ``0^31 || 1``; other IV lengths run
    through GHASH with a length block.
    """
    if not iv:
        raise NonceError("GCM IV must be non-empty")
    if len(iv) == 12:
        return iv + b"\x00\x00\x00\x01"
    h = cipher.encrypt_block(b"\x00" * BLOCK_BYTES)
    g = GHash(h, use_fast=use_fast)
    g.update_blocks(pad_zeros(iv, BLOCK_BYTES))
    g.update((0).to_bytes(8, "big") + (8 * len(iv)).to_bytes(8, "big"))
    return g.digest()


def gcm_length_block(aad_len: int, data_len: int) -> bytes:
    """The final GHASH block: ``[len(A)]_64 || [len(C)]_64`` in bits."""
    return (8 * aad_len).to_bytes(8, "big") + (8 * data_len).to_bytes(8, "big")


def _gctr(cipher: AES, icb: bytes, data: bytes) -> bytes:
    """GCTR: CTR mode with inc32, starting at *icb*."""
    if not data:
        return b""
    out = bytearray()
    counter = icb
    for i in range(0, len(data), BLOCK_BYTES):
        chunk = data[i : i + BLOCK_BYTES]
        stream = cipher.encrypt_block(counter)
        out += xor_bytes(chunk, stream[: len(chunk)])
        counter = inc32(counter)
    return bytes(out)


def _ghash_tag(
    cipher: AES,
    h: bytes,
    j0: bytes,
    aad: bytes,
    ciphertext: bytes,
    tag_length: int,
    use_fast: "bool | None" = None,
) -> bytes:
    g = GHash(h, use_fast=use_fast)
    if aad:
        g.update_blocks(pad_zeros(aad, BLOCK_BYTES))
    if ciphertext:
        g.update_blocks(pad_zeros(ciphertext, BLOCK_BYTES))
    g.update(gcm_length_block(len(aad), len(ciphertext)))
    s = g.digest()
    return xor_bytes(cipher.encrypt_block(j0), s)[:tag_length]


def gcm_encrypt(
    key: bytes,
    iv: bytes,
    plaintext: bytes,
    aad: bytes = b"",
    tag_length: int = 16,
    use_fast: "bool | None" = None,
) -> Tuple[bytes, bytes]:
    """GCM authenticated encryption; returns ``(ciphertext, tag)``.

    Routes through the bulk fast engine
    (:func:`repro.crypto.fast.bulk.gcm_seal`) unless the fast path is
    switched off, in which case the block-at-a-time reference runs.
    """
    if tag_length not in VALID_TAG_LENGTHS:
        raise TagError(
            f"GCM tag length must be one of {VALID_TAG_LENGTHS}, got {tag_length}"
        )
    if fast_enabled(use_fast):
        return fast_bulk.gcm_seal(key, iv, plaintext, aad, tag_length)
    cipher = AES(key, use_fast=False)
    h = cipher.encrypt_block(b"\x00" * BLOCK_BYTES)
    j0 = gcm_j0(cipher, iv, use_fast=False)
    ciphertext = _gctr(cipher, inc32(j0), plaintext)
    tag = _ghash_tag(cipher, h, j0, aad, ciphertext, tag_length, use_fast=False)
    return ciphertext, tag


def gcm_decrypt(
    key: bytes,
    iv: bytes,
    ciphertext: bytes,
    tag: bytes,
    aad: bytes = b"",
    use_fast: "bool | None" = None,
) -> bytes:
    """GCM authenticated decryption.

    Raises
    ------
    AuthenticationFailure
        If the tag does not verify; no plaintext is released.
    """
    if len(tag) not in VALID_TAG_LENGTHS:
        raise TagError(f"GCM tag length {len(tag)} is invalid")
    if fast_enabled(use_fast):
        return fast_bulk.gcm_open(key, iv, ciphertext, tag, aad)
    cipher = AES(key, use_fast=False)
    h = cipher.encrypt_block(b"\x00" * BLOCK_BYTES)
    j0 = gcm_j0(cipher, iv, use_fast=False)
    expected = _ghash_tag(cipher, h, j0, aad, ciphertext, len(tag), use_fast=False)
    if not hmac.compare_digest(expected, tag):
        raise AuthenticationFailure("GCM tag verification failed")
    return _gctr(cipher, inc32(j0), ciphertext)
