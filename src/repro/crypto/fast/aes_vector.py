"""Vectorised bulk counter-mode AES (numpy-gated).

Counter-mode keystream blocks are mutually independent, so the whole
message can be encrypted as one batched sweep: the T-table round runs
over numpy ``uint32`` arrays holding one column word per block, and each
table lookup becomes a single gather across every block of the packet.
This is the software analogue of the paper's observation that CTR-style
modes parallelise freely while feedback modes do not (section II.B) —
here the "parallel cores" are SIMD lanes instead of FPGA slices.

numpy is optional: :data:`HAVE_NUMPY` gates the path and the bulk APIs
in :mod:`repro.crypto.fast.bulk` fall back to the scalar T-table loop,
so the package never *requires* the dependency.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

HAVE_NUMPY = _np is not None

#: Below this many blocks the scalar loop wins (array setup dominates).
MIN_VECTOR_BLOCKS = 4

if HAVE_NUMPY:
    from repro.crypto.aes_tables import SBOX
    from repro.crypto.fast.aes_ttable import TE0, TE1, TE2, TE3

    _TE0 = _np.array(TE0, dtype=_np.uint32)
    _TE1 = _np.array(TE1, dtype=_np.uint32)
    _TE2 = _np.array(TE2, dtype=_np.uint32)
    _TE3 = _np.array(TE3, dtype=_np.uint32)
    _SBOX = _np.array(SBOX, dtype=_np.uint32)
    #: ShiftRows as row permutations of the packed (4, N) state.
    _ROT1 = _np.array([1, 2, 3, 0])
    _ROT2 = _np.array([2, 3, 0, 1])
    _ROT3 = _np.array([3, 0, 1, 2])

#: Capacity of the round-key-array memo (mirrors ``expand_key_cached``).
ROUND_KEY_ARRAY_SLOTS = 256

if HAVE_NUMPY:

    @lru_cache(maxsize=ROUND_KEY_ARRAY_SLOTS)
    def _round_keys_array(round_keys):
        """uint32 array view of an expanded schedule, memoized per schedule.

        The lane-parallel CBC-MAC calls :func:`encrypt_state_vector` once
        per block step under one unchanging schedule, so the tuple->array
        conversion must not sit inside that loop.
        """
        return _np.array(round_keys, dtype=_np.uint32)


def clear_vector_caches() -> None:
    """Drop the round-key-array memo (no-op when numpy is absent)."""
    if HAVE_NUMPY:
        _round_keys_array.cache_clear()


def encrypt_state_vector(state, round_keys: Sequence[Sequence[int]]):
    """Encrypt a batch of blocks held as one packed ``(4, N)`` state.

    Row *i* holds column word *i* of every block (lane).  Packing the
    four words into one array quarters the number of numpy dispatches
    per round versus four independent word arrays, which is what makes
    narrow batches (CBC-MAC lanes) worthwhile.  Returns the transformed
    ``(4, N)`` array; the caller owns byte packing.
    """
    rounds = len(round_keys) - 1
    if not isinstance(round_keys, tuple):
        round_keys = tuple(tuple(words) for words in round_keys)
    rk = _round_keys_array(round_keys)
    s = state ^ rk[0][:, None]
    for r in range(1, rounds):
        s = (
            _TE0[s >> 24]
            ^ _TE1[(s[_ROT1] >> 16) & 255]
            ^ _TE2[(s[_ROT2] >> 8) & 255]
            ^ _TE3[s[_ROT3] & 255]
        ) ^ rk[r][:, None]
    return (
        (_SBOX[s >> 24] << 24)
        | (_SBOX[(s[_ROT1] >> 16) & 255] << 16)
        | (_SBOX[(s[_ROT2] >> 8) & 255] << 8)
        | _SBOX[s[_ROT3] & 255]
    ) ^ rk[rounds][:, None]


def state_to_bytes(state) -> bytes:
    """Serialise a packed ``(4, N)`` state to N big-endian 16-byte blocks."""
    return state.T.astype(">u4").tobytes()


def _encrypt_words_vector(w0, w1, w2, w3, round_keys: Sequence[Sequence[int]]) -> bytes:
    """Encrypt a batch given as four uint32 word arrays; returns bytes."""
    return state_to_bytes(
        encrypt_state_vector(_np.stack((w0, w1, w2, w3)), round_keys)
    )


def ctr_keystream_vector(
    round_keys: Sequence[Sequence[int]],
    initial_counter: int,
    nblocks: int,
    inc_bits: int,
) -> Optional[bytes]:
    """Keystream for *nblocks* counters starting at *initial_counter*.

    The counter's low *inc_bits* bits increment by one per block,
    wrapping modulo ``2**inc_bits`` (matching
    :func:`repro.crypto.modes.ctr.increment_counter` and GCM's inc32).
    Returns ``None`` when the batch shape is outside what this engine
    vectorises (no numpy, tiny batches, or an increment field wider
    than 64 bits) — the caller falls back to the scalar loop.
    """
    if not HAVE_NUMPY or nblocks < MIN_VECTOR_BLOCKS or not 0 < inc_bits <= 64:
        return None
    c0 = initial_counter
    low0 = c0 & ((1 << inc_bits) - 1)
    hi = c0 >> inc_bits << inc_bits
    lows = low0 + _np.arange(nblocks, dtype=_np.uint64)
    if inc_bits < 64:
        lows &= _np.uint64((1 << inc_bits) - 1)
    # (uint64 addition already wraps mod 2^64 for inc_bits == 64.)
    w0 = _np.full(nblocks, (hi >> 96) & 0xFFFFFFFF, dtype=_np.uint32)
    w1 = _np.full(nblocks, (hi >> 64) & 0xFFFFFFFF, dtype=_np.uint32)
    if inc_bits <= 32:
        w2 = _np.full(nblocks, (hi >> 32) & 0xFFFFFFFF, dtype=_np.uint32)
        w3 = _np.uint32(hi & 0xFFFFFFFF) | lows.astype(_np.uint32)
    else:
        w2 = _np.uint32((hi >> 32) & 0xFFFFFFFF) | (lows >> _np.uint64(32)).astype(_np.uint32)
        w3 = lows.astype(_np.uint32)
    return _encrypt_words_vector(w0, w1, w2, w3, round_keys)


def encrypt_blocks_vector(
    blocks: bytes, round_keys: Sequence[Sequence[int]]
) -> Optional[bytes]:
    """ECB-encrypt a whole number of 16-byte *blocks* in one sweep.

    Used by the CCM counter path when the counter blocks are already
    materialised.  Returns ``None`` when vectorisation does not apply.
    """
    nblocks = len(blocks) // 16
    if not HAVE_NUMPY or nblocks < MIN_VECTOR_BLOCKS:
        return None
    words = _np.frombuffer(blocks, dtype=">u4").reshape(nblocks, 4)
    return _encrypt_words_vector(
        words[:, 0].astype(_np.uint32),
        words[:, 1].astype(_np.uint32),
        words[:, 2].astype(_np.uint32),
        words[:, 3].astype(_np.uint32),
        round_keys,
    )
