"""Vectorised bulk counter-mode AES (numpy-gated).

Counter-mode keystream blocks are mutually independent, so the whole
message can be encrypted as one batched sweep: the T-table round runs
over numpy ``uint32`` arrays holding one column word per block, and each
table lookup becomes a single gather across every block of the packet.
This is the software analogue of the paper's observation that CTR-style
modes parallelise freely while feedback modes do not (section II.B) —
here the "parallel cores" are SIMD lanes instead of FPGA slices.

numpy is optional: :data:`HAVE_NUMPY` gates the path and the bulk APIs
in :mod:`repro.crypto.fast.bulk` fall back to the scalar T-table loop,
so the package never *requires* the dependency.
"""

from __future__ import annotations

from typing import Optional, Sequence

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

HAVE_NUMPY = _np is not None

#: Below this many blocks the scalar loop wins (array setup dominates).
MIN_VECTOR_BLOCKS = 4

if HAVE_NUMPY:
    from repro.crypto.aes_tables import SBOX
    from repro.crypto.fast.aes_ttable import TE0, TE1, TE2, TE3

    _TE0 = _np.array(TE0, dtype=_np.uint32)
    _TE1 = _np.array(TE1, dtype=_np.uint32)
    _TE2 = _np.array(TE2, dtype=_np.uint32)
    _TE3 = _np.array(TE3, dtype=_np.uint32)
    _SBOX = _np.array(SBOX, dtype=_np.uint32)


def _encrypt_words_vector(w0, w1, w2, w3, round_keys: Sequence[Sequence[int]]) -> bytes:
    """Encrypt a batch of blocks held as four uint32 word arrays."""
    rounds = len(round_keys) - 1
    rk = round_keys[0]
    w0 = w0 ^ _np.uint32(rk[0])
    w1 = w1 ^ _np.uint32(rk[1])
    w2 = w2 ^ _np.uint32(rk[2])
    w3 = w3 ^ _np.uint32(rk[3])
    for r in range(1, rounds):
        rk = round_keys[r]
        n0 = _TE0[w0 >> 24] ^ _TE1[(w1 >> 16) & 255] ^ _TE2[(w2 >> 8) & 255] ^ _TE3[w3 & 255] ^ _np.uint32(rk[0])
        n1 = _TE0[w1 >> 24] ^ _TE1[(w2 >> 16) & 255] ^ _TE2[(w3 >> 8) & 255] ^ _TE3[w0 & 255] ^ _np.uint32(rk[1])
        n2 = _TE0[w2 >> 24] ^ _TE1[(w3 >> 16) & 255] ^ _TE2[(w0 >> 8) & 255] ^ _TE3[w1 & 255] ^ _np.uint32(rk[2])
        n3 = _TE0[w3 >> 24] ^ _TE1[(w0 >> 16) & 255] ^ _TE2[(w1 >> 8) & 255] ^ _TE3[w2 & 255] ^ _np.uint32(rk[3])
        w0, w1, w2, w3 = n0, n1, n2, n3
    rk = round_keys[rounds]
    sb = _SBOX
    o0 = ((sb[w0 >> 24] << 24) | (sb[(w1 >> 16) & 255] << 16) | (sb[(w2 >> 8) & 255] << 8) | sb[w3 & 255]) ^ _np.uint32(rk[0])
    o1 = ((sb[w1 >> 24] << 24) | (sb[(w2 >> 16) & 255] << 16) | (sb[(w3 >> 8) & 255] << 8) | sb[w0 & 255]) ^ _np.uint32(rk[1])
    o2 = ((sb[w2 >> 24] << 24) | (sb[(w3 >> 16) & 255] << 16) | (sb[(w0 >> 8) & 255] << 8) | sb[w1 & 255]) ^ _np.uint32(rk[2])
    o3 = ((sb[w3 >> 24] << 24) | (sb[(w0 >> 16) & 255] << 16) | (sb[(w1 >> 8) & 255] << 8) | sb[w2 & 255]) ^ _np.uint32(rk[3])
    out = _np.empty((len(o0), 4), dtype=">u4")
    out[:, 0] = o0
    out[:, 1] = o1
    out[:, 2] = o2
    out[:, 3] = o3
    return out.tobytes()


def ctr_keystream_vector(
    round_keys: Sequence[Sequence[int]],
    initial_counter: int,
    nblocks: int,
    inc_bits: int,
) -> Optional[bytes]:
    """Keystream for *nblocks* counters starting at *initial_counter*.

    The counter's low *inc_bits* bits increment by one per block,
    wrapping modulo ``2**inc_bits`` (matching
    :func:`repro.crypto.modes.ctr.increment_counter` and GCM's inc32).
    Returns ``None`` when the batch shape is outside what this engine
    vectorises (no numpy, tiny batches, or an increment field wider
    than 64 bits) — the caller falls back to the scalar loop.
    """
    if not HAVE_NUMPY or nblocks < MIN_VECTOR_BLOCKS or not 0 < inc_bits <= 64:
        return None
    c0 = initial_counter
    low0 = c0 & ((1 << inc_bits) - 1)
    hi = c0 >> inc_bits << inc_bits
    lows = low0 + _np.arange(nblocks, dtype=_np.uint64)
    if inc_bits < 64:
        lows &= _np.uint64((1 << inc_bits) - 1)
    # (uint64 addition already wraps mod 2^64 for inc_bits == 64.)
    w0 = _np.full(nblocks, (hi >> 96) & 0xFFFFFFFF, dtype=_np.uint32)
    w1 = _np.full(nblocks, (hi >> 64) & 0xFFFFFFFF, dtype=_np.uint32)
    if inc_bits <= 32:
        w2 = _np.full(nblocks, (hi >> 32) & 0xFFFFFFFF, dtype=_np.uint32)
        w3 = _np.uint32(hi & 0xFFFFFFFF) | lows.astype(_np.uint32)
    else:
        w2 = _np.uint32((hi >> 32) & 0xFFFFFFFF) | (lows >> _np.uint64(32)).astype(_np.uint32)
        w3 = lows.astype(_np.uint32)
    return _encrypt_words_vector(w0, w1, w2, w3, round_keys)


def encrypt_blocks_vector(
    blocks: bytes, round_keys: Sequence[Sequence[int]]
) -> Optional[bytes]:
    """ECB-encrypt a whole number of 16-byte *blocks* in one sweep.

    Used by the CCM counter path when the counter blocks are already
    materialised.  Returns ``None`` when vectorisation does not apply.
    """
    nblocks = len(blocks) // 16
    if not HAVE_NUMPY or nblocks < MIN_VECTOR_BLOCKS:
        return None
    words = _np.frombuffer(blocks, dtype=">u4").reshape(nblocks, 4)
    return _encrypt_words_vector(
        words[:, 0].astype(_np.uint32),
        words[:, 1].astype(_np.uint32),
        words[:, 2].astype(_np.uint32),
        words[:, 3].astype(_np.uint32),
        round_keys,
    )
