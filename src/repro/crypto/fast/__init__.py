"""The fast-path bulk crypto engine.

The reference implementations in :mod:`repro.crypto` mirror the paper's
hardware organisation (iterative byte-wise AES rounds, bit-serial and
digit-serial GF(2^128) multipliers) and stay deliberately readable; that
costs two to three orders of magnitude against what software AES-GCM can
do.  This subpackage is the software analogue of the silicon the MCCP
deploys:

- :mod:`repro.crypto.fast.aes_ttable` — T-table AES operating on four
  32-bit column words (Chodowiec & Gaj lineage, the same organisation
  the paper's AES core implements in FPGA LUTs), plus an LRU-memoized
  key expansion so repeated channel traffic never re-expands.
- :mod:`repro.crypto.fast.aes_vector` — an optional numpy-vectorised
  bulk counter-mode engine that encrypts every counter block of a
  message in one batched sweep (gated: pure-Python fallback when numpy
  is absent).
- :mod:`repro.crypto.fast.gf128_tables` — tabulated GF(2^128)
  multiplication via per-subkey Shoup byte tables, the software
  analogue of the Lemsitzer-style digit-serial multiplier the GHASH
  core models.
- :mod:`repro.crypto.fast.bulk` — one-call whole-message APIs
  (``ctr_stream``, ``gcm_seal``/``gcm_open``, ``ccm_seal``/``ccm_open``)
  that the modes, the baselines and the firmware reference checks all
  route through.

Every fast path is byte-identical to the reference path; the test suite
cross-checks them on the published NIST vectors and randomized messages.

Switching
---------
``REPRO_FAST=0`` in the environment (or :func:`set_fast` at run time,
or ``use_fast=False`` on the individual APIs) falls back to the
reference implementations for auditability.  The digit-serial GHASH
path used as the hardware *cycle model* is never replaced — only the
functional math is accelerated.
"""

from __future__ import annotations

import os
from typing import Optional

#: Values of ``REPRO_FAST`` that disable the fast engine.
_FALSY = ("0", "false", "no", "off")

#: Process-wide fast-path switch, seeded from the environment.
FAST_ENABLED = os.environ.get("REPRO_FAST", "1").strip().lower() not in _FALSY


def fast_enabled(override: Optional[bool] = None) -> bool:
    """Resolve a per-call ``use_fast`` override against the global switch."""
    if override is None:
        return FAST_ENABLED
    return bool(override)


def set_fast(enabled: bool) -> bool:
    """Flip the process-wide fast-path switch; returns the previous value."""
    global FAST_ENABLED
    previous = FAST_ENABLED
    FAST_ENABLED = bool(enabled)
    return previous


def clear_caches() -> None:
    """Drop the process-global memo caches (isolation hook).

    The key-schedule LRU, the per-subkey Shoup tables and the H-power
    table sets are warm-path optimisations shared by every workload in
    a process.  All of them are bounded LRUs (see the ``*_SLOTS``
    constants next to each cache), so key churn cannot grow memory
    without limit; this hook additionally empties them outright.  The
    experiment sweep runner calls it before timing-tagged cases so
    measured ops/s never depend on which earlier cases happened to
    share the worker.
    """
    expand_key_cached.cache_clear()
    ghash_tables.cache_clear()
    clear_hpower_caches()
    clear_vector_caches()


if hasattr(os, "register_at_fork"):
    # Fork safety: a child must never inherit a parent LRU that a
    # sibling thread had mid-mutation (ProcessPoolBackend forks while
    # thread shards may be warming caches).  Children start cold and
    # rebuild lazily; the pool initializer repeats this for spawn-based
    # pools, where there is no fork to hook.
    os.register_at_fork(after_in_child=clear_caches)


def encrypt_block_dispatch(block, round_keys, use_fast: Optional[bool] = None):
    """Encrypt one block via the T-table or reference path per the switch."""
    if fast_enabled(use_fast):
        return encrypt_block_tt(block, round_keys)
    from repro.crypto.aes import encrypt_block_with_schedule

    return encrypt_block_with_schedule(block, round_keys)


def expand_key_dispatch(key: bytes, use_fast: Optional[bool] = None):
    """Expand *key* via the LRU memo or the plain reference expansion."""
    if fast_enabled(use_fast):
        return expand_key_cached(bytes(key))
    from repro.crypto.aes import expand_key

    return expand_key(key)


from repro.crypto.fast.aes_ttable import (  # noqa: E402
    encrypt_block_tt,
    expand_key_cached,
)
from repro.crypto.fast.aes_vector import clear_vector_caches  # noqa: E402
from repro.crypto.fast.gf128_tables import (  # noqa: E402
    gf128_mul_tabulated,
    ghash_tables,
)
from repro.crypto.fast.ghash_hpower import (  # noqa: E402
    clear_hpower_caches,
    ghash_blocks_hpower,
    hpower_tables,
    hpower_tables_vec,
)
from repro.crypto.fast.bulk import (  # noqa: E402
    cbc_mac_fast,
    ccm_open,
    ccm_seal,
    ctr_stream,
    gcm_open,
    gcm_seal,
)
from repro.crypto.fast.arena import (  # noqa: E402
    PacketArena,
    bump_key_epoch,
    key_epoch,
)
from repro.crypto.fast.batch import (  # noqa: E402
    cbc_mac_many,
    ccm_open_many,
    ccm_seal_many,
    gcm_open_many,
    gcm_seal_many,
    gmac_many,
    seal_open_many,
)
from repro.crypto.fast.exec import (  # noqa: E402
    ExecutionBackend,
    InlineBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
    default_backend,
    make_backend,
    resolve_backend,
    set_default_backend,
)

__all__ = [
    "FAST_ENABLED",
    "fast_enabled",
    "set_fast",
    "clear_caches",
    "encrypt_block_dispatch",
    "expand_key_dispatch",
    "encrypt_block_tt",
    "expand_key_cached",
    "gf128_mul_tabulated",
    "ghash_tables",
    "ghash_blocks_hpower",
    "hpower_tables",
    "hpower_tables_vec",
    "cbc_mac_fast",
    "ccm_seal",
    "ccm_open",
    "ctr_stream",
    "gcm_seal",
    "gcm_open",
    "cbc_mac_many",
    "ccm_seal_many",
    "ccm_open_many",
    "gcm_seal_many",
    "gcm_open_many",
    "gmac_many",
    "seal_open_many",
    "PacketArena",
    "key_epoch",
    "bump_key_epoch",
    "ExecutionBackend",
    "InlineBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "make_backend",
    "resolve_backend",
    "default_backend",
    "set_default_backend",
]
