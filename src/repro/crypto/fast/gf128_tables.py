"""Tabulated GF(2^128) multiplication (Shoup's byte tables).

The MCCP's GHASH core is a digit-serial multiplier after Lemsitzer et
al. — 3 bits of the multiplier per clock, 43 clocks per product.  The
classic *software* counterpart (Shoup; adopted by SP 800-38D's own
reference code) precomputes, for a fixed subkey ``H``, the products of
every byte value at every byte position: one 128-bit multiplication
then collapses to sixteen table lookups and XORs.

Table construction is cheap because multiplication is linear over
GF(2): the sixteen single-byte rows derive from ``H`` by repeated
multiply-by-x (eight per byte position, folded into a 256-entry
byte-reduction table), and each row fills from its single-bit entries
by XOR.  Per-``H`` tables live behind an LRU cache keyed on the subkey
— the same memoized-precomputation pattern as the AES key schedule —
so a GHASH stream pays the build cost once per session key.

Element representation matches :mod:`repro.crypto.gf128`: 128-bit ints,
most significant bit = coefficient of x^0, reduction by R = 0xE1 << 120.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.crypto.gf128 import MASK128, R_POLY

#: Reduction of a byte shifted out below bit 0: ``_R_BYTE[b]`` is the
#: field value of ``b`` (as the low byte) multiplied by x^8, i.e. eight
#: conditional-reduce steps folded into one lookup.
_R_BYTE: List[int] = [0] * 256
for _b in range(256):
    _v = _b
    for _ in range(8):
        _v = (_v >> 1) ^ (R_POLY if _v & 1 else 0)
    _R_BYTE[_b] = _v
del _b, _v


def _mul_x8(v: int) -> int:
    """Multiply a field element by x^8 (one byte-position shift)."""
    return (v >> 8) ^ _R_BYTE[v & 255]


#: Capacity of the per-subkey Shoup-table memo.  Key-churn workloads
#: cycle through arbitrarily many subkeys; the LRU bound keeps the
#: process footprint fixed (each table set is 16 x 256 128-bit ints).
GHASH_TABLE_SLOTS = 64


def build_ghash_tables(h: int) -> Tuple[Tuple[int, ...], ...]:
    """Construct the Shoup tables for subkey *h* (uncached).

    :func:`ghash_tables` wraps this in the per-subkey LRU; the H-power
    engine (:mod:`repro.crypto.fast.ghash_hpower`) calls it directly so
    building ``H^1..H^k`` does not churn the single-subkey cache.
    """
    if not 0 <= h <= MASK128:
        raise ValueError("subkey must be a 128-bit non-negative integer")
    # Row for byte position 0 (the most significant byte of the block,
    # which holds coefficients x^0..x^7 in GHASH bit order).
    row = [0] * 256
    cur = h
    for bit in (128, 64, 32, 16, 8, 4, 2, 1):
        row[bit] = cur
        cur = (cur >> 1) ^ (R_POLY if cur & 1 else 0)
    for b in range(1, 256):
        low = b & -b
        if b != low:
            row[b] = row[low] ^ row[b ^ low]
    tables = [row]
    for _ in range(15):
        prev = tables[-1]
        tables.append([_mul_x8(v) for v in prev])
    return tuple(tuple(r) for r in tables)


@lru_cache(maxsize=GHASH_TABLE_SLOTS)
def ghash_tables(h: int) -> Tuple[Tuple[int, ...], ...]:
    """Shoup tables for subkey *h*: ``tables[i][b]`` is the product of
    *h* with byte value *b* placed at byte position *i* (MSB first).

    16 x 256 entries; built once per subkey and memoized (bounded LRU,
    :data:`GHASH_TABLE_SLOTS` subkeys).
    """
    return build_ghash_tables(h)


def gf128_mul_tabulated(x: int, y: int) -> int:
    """Product of *x* and *y* via *y*'s Shoup tables.

    Byte-identical to :func:`repro.crypto.gf128.gf128_mul`; intended for
    the GHASH pattern where *y* (the subkey) is fixed across many *x*.
    """
    if not 0 <= x <= MASK128 or not 0 <= y <= MASK128:
        raise ValueError("operands must be 128-bit non-negative integers")
    tables = ghash_tables(y)
    z = 0
    shift = 120
    for row in tables:
        z ^= row[(x >> shift) & 255]
        shift -= 8
    return z


#: Lazily built global tables for the squaring map (Frobenius).
_SQUARE_TABLES = None


def _square_tables():
    """Byte tables for squaring: ``tables[i][b]`` is the square of the
    element whose only nonzero byte is *b* at byte position *i*.

    Squaring is GF(2)-linear, so these 16 x 256 entries — built once
    per process — turn any square into sixteen lookups.  They derive
    from ``x^(2k)`` for k = 0..127, walked out by repeated
    multiply-by-x^2.
    """
    global _SQUARE_TABLES
    if _SQUARE_TABLES is None:
        sq_single = [0] * 128
        cur = 1 << 127  # the identity element x^0
        for k in range(128):
            sq_single[k] = cur
            for _ in range(2):  # advance x^(2k) -> x^(2k+2)
                cur = (cur >> 1) ^ (R_POLY if cur & 1 else 0)
        tables = []
        for i in range(16):
            row = [0] * 256
            for j in range(8):
                # Byte i, bit j holds the coefficient of x^(8i + 7 - j).
                row[1 << j] = sq_single[8 * i + 7 - j]
            for b in range(1, 256):
                low = b & -b
                if b != low:
                    row[b] = row[low] ^ row[b ^ low]
            tables.append(row)
        _SQUARE_TABLES = tables
    return _SQUARE_TABLES


def gf128_sqr_tabulated(z: int) -> int:
    """Square *z* via the global Frobenius tables (16 lookups)."""
    if not 0 <= z <= MASK128:
        raise ValueError("operand must be a 128-bit non-negative integer")
    tables = _square_tables()
    out = 0
    shift = 120
    for row in tables:
        out ^= row[(z >> shift) & 255]
        shift -= 8
    return out


def ghash_blocks_tabulated(h: int, acc: int, data: bytes) -> int:
    """Absorb whole 16-byte blocks of *data* into accumulator *acc*.

    Runs the GHASH chain ``acc = (acc xor block) * H`` with the
    tabulated multiplier, unrolled over the sixteen byte positions so
    the hot loop never leaves this frame.
    """
    tables = ghash_tables(h)
    (t0, t1, t2, t3, t4, t5, t6, t7,
     t8, t9, t10, t11, t12, t13, t14, t15) = tables
    for i in range(0, len(data), 16):
        x = acc ^ int.from_bytes(data[i : i + 16], "big")
        acc = (
            t0[(x >> 120) & 255]
            ^ t1[(x >> 112) & 255]
            ^ t2[(x >> 104) & 255]
            ^ t3[(x >> 96) & 255]
            ^ t4[(x >> 88) & 255]
            ^ t5[(x >> 80) & 255]
            ^ t6[(x >> 72) & 255]
            ^ t7[(x >> 64) & 255]
            ^ t8[(x >> 56) & 255]
            ^ t9[(x >> 48) & 255]
            ^ t10[(x >> 40) & 255]
            ^ t11[(x >> 32) & 255]
            ^ t12[(x >> 24) & 255]
            ^ t13[(x >> 16) & 255]
            ^ t14[(x >> 8) & 255]
            ^ t15[x & 255]
        )
    return acc
