"""H-power GHASH: fold k blocks per Horner step.

The GHASH chain ``Y_i = (Y_{i-1} xor X_i) * H`` is a Horner evaluation
of the polynomial ``sum X_i * H^(n-i+1)``, so any k consecutive blocks
can be absorbed in one step once the powers ``H^1..H^k`` are known:

    Y' = (Y xor B_0)*H^k  xor  B_1*H^(k-1)  xor ... xor  B_{k-1}*H

The k products are mutually independent — this is the software shape of
the paper's observation that a GHASH tree of multipliers trades area
for latency, with SIMD gathers standing in for parallel digit-serial
cores.  Each power gets its own Shoup byte tables
(:mod:`repro.crypto.fast.gf128_tables`), so one fold is ``16*k``
independent table lookups:

- **numpy variant** — the per-power tables live in two ``(k, 16, 256)``
  ``uint64`` arrays (high/low halves of each 128-bit entry); a whole
  fold is two fancy-indexed gathers over a ``(k, 16)`` index grid plus
  two XOR reductions.
- **pure-Python fold** — walks the same per-power tables with plain
  lookups.  It exists for the no-numpy environments and for the
  equivalence tests; per block it costs the same 16 lookups as the
  serial tabulated chain, so the scalar dispatcher prefers the chain.

Both variants are byte-identical to the serial chain; the dispatcher
(:func:`ghash_blocks_hpower`) picks per message size and numpy
availability.  Table sets are LRU-memoized per ``(subkey, k)`` and
dropped by :func:`repro.crypto.fast.clear_caches`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.crypto.fast.gf128_tables import (
    build_ghash_tables,
    gf128_mul_tabulated,
    ghash_blocks_tabulated,
)
from repro.crypto.gf128 import MASK128

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

HAVE_NUMPY = _np is not None

BLOCK_BYTES = 16

#: Fold width (blocks per Horner step) for the vectorised engine.
DEFAULT_FOLD = 64

#: Fold width cap for the pure-Python fold: per-power tables are ~16 x
#: 256 128-bit ints each, and the scalar fold gains nothing from wide k,
#: so the cap bounds the memo footprint.
PY_FOLD_MAX = 8

#: Messages shorter than this many blocks stay on the serial tabulated
#: chain (table-gather setup would dominate).
MIN_FOLD_BLOCKS = 16

#: Capacity of the per-(subkey, fold) H-power memo caches.  One numpy
#: entry at the default fold is ~4 MiB (64 x 16 x 256 x 16 bytes), so
#: the bound keys the worst-case footprint, not the key-churn rate.
HPOWER_SLOTS = 8

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _powers(h: int, k: int) -> List[int]:
    """``[H^1, H^2, .., H^k]`` via the tabulated multiplier."""
    if not 0 <= h <= MASK128:
        raise ValueError("subkey must be a 128-bit non-negative integer")
    if k < 1:
        raise ValueError(f"fold width must be >= 1, got {k}")
    powers = [h]
    for _ in range(k - 1):
        powers.append(gf128_mul_tabulated(powers[-1], h))
    return powers


@lru_cache(maxsize=HPOWER_SLOTS)
def hpower_tables(h: int, k: int = PY_FOLD_MAX) -> Tuple[Tuple[Tuple[int, ...], ...], ...]:
    """Per-power Shoup tables: ``tables[p-1]`` multiplies by ``H^p``.

    Pure-Python representation (tuples of 128-bit ints), used by the
    scalar fold; bounded LRU per ``(subkey, k)``.
    """
    return tuple(build_ghash_tables(p) for p in _powers(h, k))


@lru_cache(maxsize=HPOWER_SLOTS)
def hpower_tables_vec(h: int, k: int = DEFAULT_FOLD):
    """The H-power tables as two ``(k, 16, 256)`` uint64 numpy arrays.

    ``hi[p-1, pos, b]`` / ``lo[p-1, pos, b]`` hold the high/low halves
    of byte value *b* at byte position *pos* multiplied by ``H^p``.
    The per-power Python tables are built transiently and discarded —
    only the packed arrays stay resident in the LRU.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("hpower_tables_vec requires numpy")
    hi = _np.empty((k, 16, 256), dtype=_np.uint64)
    lo = _np.empty((k, 16, 256), dtype=_np.uint64)
    for index, power in enumerate(_powers(h, k)):
        flat = [value for row in build_ghash_tables(power) for value in row]
        hi[index] = _np.array(
            [value >> 64 for value in flat], dtype=_np.uint64
        ).reshape(16, 256)
        lo[index] = _np.array(
            [value & _MASK64 for value in flat], dtype=_np.uint64
        ).reshape(16, 256)
    return hi, lo


def clear_hpower_caches() -> None:
    """Drop both H-power memos (hooked into ``fast.clear_caches``)."""
    hpower_tables.cache_clear()
    hpower_tables_vec.cache_clear()


def _fold_python(h: int, acc: int, data: bytes, fold: int) -> int:
    """Scalar k-block Horner fold (the pure-Python fallback)."""
    k = max(1, min(fold, PY_FOLD_MAX))
    tables = hpower_tables(h, k)
    nblocks = len(data) // BLOCK_BYTES
    offset = 0
    group = nblocks % k or k  # ragged head, then full k-groups
    while offset < nblocks:
        acc_next = 0
        for j in range(group):
            start = BLOCK_BYTES * (offset + j)
            x = int.from_bytes(data[start : start + BLOCK_BYTES], "big")
            if j == 0:
                x ^= acc
            rows = tables[group - j - 1]
            shift = 120
            for row in rows:
                acc_next ^= row[(x >> shift) & 255]
                shift -= 8
        acc = acc_next
        offset += group
        group = k
    return acc


def _fold_vector(h: int, acc: int, data: bytes, fold: int) -> int:
    """Vectorised fold: two gathers + two XOR reductions per k-group."""
    hi, lo = hpower_tables_vec(h, fold)
    nblocks = len(data) // BLOCK_BYTES
    buf = _np.frombuffer(data, dtype=_np.uint8).reshape(nblocks, BLOCK_BYTES)
    positions = _np.arange(16)
    offset = 0
    group = nblocks % fold or fold
    lanes = _np.arange(group - 1, -1, -1).reshape(group, 1)
    while offset < nblocks:
        x = buf[offset : offset + group]
        if acc:
            x = x.copy()
            x[0] ^= _np.frombuffer(acc.to_bytes(16, "big"), dtype=_np.uint8)
        acc_hi = int(_np.bitwise_xor.reduce(hi[lanes, positions, x], axis=None))
        acc_lo = int(_np.bitwise_xor.reduce(lo[lanes, positions, x], axis=None))
        acc = (acc_hi << 64) | acc_lo
        offset += group
        if group != fold:
            group = fold
            lanes = _np.arange(fold - 1, -1, -1).reshape(fold, 1)
    return acc


def ghash_blocks_hpower(
    h: int, acc: int, data: bytes, fold: int = DEFAULT_FOLD
) -> int:
    """Absorb whole 16-byte blocks of *data* with H-power folding.

    Byte-identical to :func:`ghash_blocks_tabulated`; dispatches to the
    vectorised fold for long-enough messages when numpy is present, and
    to the serial tabulated chain otherwise (the scalar fold pays the
    same 16 lookups per block as the chain, so it is kept for explicit
    use and the fallback tests rather than the scalar hot path).
    """
    if len(data) // BLOCK_BYTES < MIN_FOLD_BLOCKS or fold < 2:
        return ghash_blocks_tabulated(h, acc, data)
    if HAVE_NUMPY:
        return _fold_vector(h, acc, data, fold)
    return ghash_blocks_tabulated(h, acc, data)
