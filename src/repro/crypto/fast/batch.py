"""Multi-packet batch AEAD: lane-parallel CBC-MAC and fused counters.

The one-call APIs in :mod:`repro.crypto.fast.bulk` accelerate a single
message; this module accelerates a *batch* of same-key packets — the
shape of the paper's many-channel traffic, where the MCCP keeps every
core busy on one session key's packet stream.  Three mechanisms:

- **lane-parallel CBC-MAC** (:func:`cbc_mac_many`) — CBC-MAC's
  feedback chain cannot batch across blocks, but N packets' chains are
  mutually independent, so they run as N lanes of one packed ``(4, N)``
  T-table state (:func:`repro.crypto.fast.aes_vector
  .encrypt_state_vector`): every AES round is a handful of numpy
  gathers across all lanes.  This is the software restatement of the
  paper's two-core CCM split — the MAC half stops serialising the
  batch.  Ragged batches sort lanes by block count so shorter packets
  simply retire early.  Without numpy, lanes run round-robin through
  the scalar T-table round, preserving the ragged-lane structure.
- **fused counter runs** (:func:`_fused_keystream`) — every packet's
  CTR blocks (and GCM's ``E(J_0)`` tag masks) are mutually
  independent, so the whole batch's counters become one packed
  encryption sweep instead of one numpy dispatch per packet.
- **H-power GHASH** — per-packet tags fold through
  :func:`repro.crypto.fast.ghash_hpower.ghash_blocks_hpower` with the
  batch's shared subkey tables.

Batch opens verify before they decrypt where the mode allows it:
:func:`gcm_open_many` checks every tag off a 1-block-per-packet mask
sweep and runs the payload keystream sweep only for the survivors
(CCM tags cover the plaintext, so :func:`ccm_open_many` cannot skip —
see its docstring).

Packet *data*/*aad* accept scatter-gather form: either one bytes-like
or a sequence of segments that are joined without caller-side copies.
Every output is byte-identical to the sequential one-call APIs (and so
to the reference implementations); the equivalence suite pins
batch == sequential == reference across modes, packet counts and
ragged length mixes.

Every ``*_many`` entry point additionally accepts a ``backend=``
(:mod:`repro.crypto.fast.exec`): packets shard into contiguous spans,
each span runs the unsharded engine on a worker, and the span results
are concatenated in span order — so the merged output is positionally
and byte-identical to the inline run (per-packet outputs never depend
on lane packing).  :func:`seal_open_many` is the mixed-direction form
the MCCP dispatch uses: seal shards and open shards of one coalesced
batch join a single backend pass, so the two sweeps genuinely overlap
on thread/process workers.

Process backends with a packet arena (:mod:`repro.crypto.fast.arena`)
additionally get the **descriptor dataplane**: the batch stages every
payload into one shared-memory generation and each shard call pickles
only ``(slab name, offsets, lengths)`` descriptors; workers compute
over ``memoryview``s of the mapped slab and write results back in
place, so neither inputs nor outputs ever cross the process boundary
through pickle.  The merged results — and the fault-plan decisions,
which key on the same span-leading nonces — are byte-identical to the
pickling dataplane and to inline.
"""

from __future__ import annotations

import hmac
from typing import List, Optional, Sequence, Tuple, Union

from repro.crypto.fast import aes_vector
from repro.crypto.fast.aes_ttable import encrypt_words_tt, expand_key_cached
from repro.crypto.fast.bulk import (
    BLOCK_BYTES,
    KeyOrSchedule,
    Schedule,
    _gcm_j0_int,
    _ghash_aad_ct,
    _inc32,
    _schedule,
    ccm_open,
    ccm_seal,
    gcm_open,
    gcm_seal,
    xor_data,
)
from repro.crypto.fast.arena import attach_view, note_key_epoch
from repro.crypto.fast.exec import INLINE, BackendSpec, resolve_backend
from repro.errors import (
    BackendError,
    BlockSizeError,
    InjectedFault,
    QuarantinedPacketError,
    ReproError,
    TagError,
)
from repro.resilience import faults as _faults
from repro.utils.bytesops import pad_zeros

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

HAVE_NUMPY = _np is not None

#: Batches narrower than this run the scalar paths (numpy dispatch
#: overhead beats the lane win below it).
MIN_LANES = 8

Buffers = Union[bytes, bytearray, memoryview, Sequence[bytes]]

#: ``(initial_counter, inc_bits, nblocks)`` — one packet's counter run.
_CounterSpec = Tuple[int, int, int]

_ZERO_IV = b"\x00" * BLOCK_BYTES


def gather(data: Buffers) -> bytes:
    """Coalesce a scatter-gather buffer list into one bytes object."""
    if isinstance(data, (bytes, bytearray, memoryview)):
        return bytes(data)
    return b"".join(bytes(segment) for segment in data)


# -- backend sharding ------------------------------------------------------
#
# Every packet's outputs depend only on its own (nonce, data, aad[, tag])
# under the shared key — never on which lanes it shares a sweep with —
# so a batch may split into contiguous spans, each span run the inline
# engine on any worker, and the span results concatenate back in span
# order, positionally and byte-identical to the unsharded run.  Shard
# workers are top-level functions over plain-bytes packets (pickle for
# the process backend) and execute with ``backend=INLINE`` so a worker
# can never recursively re-enter its own pool.


def _norm_seal_packet(packet: Sequence) -> Tuple[bytes, bytes, bytes]:
    """``(nonce, data, aad)`` as plain bytes (pickle-safe, no views)."""
    return (
        bytes(packet[0]),
        gather(packet[1]),
        gather(packet[2]) if len(packet) > 2 else b"",
    )


def _norm_open_packet(packet: Sequence) -> Tuple[bytes, bytes, bytes, bytes]:
    """``(nonce, data, tag, aad)`` as plain bytes."""
    return (
        bytes(packet[0]),
        gather(packet[1]),
        bytes(packet[2]),
        gather(packet[3]) if len(packet) > 3 else b"",
    )


def _seal_shard(mode: str, key: bytes, packets, tag_length: int, fault=None):
    """One span of a sharded seal batch, run inline on a worker."""
    with _faults.executing(fault):
        return _SEAL_MANY[mode](key, packets, tag_length, backend=INLINE)


def _open_shard(mode: str, key: bytes, packets, fault=None):
    """One span of a sharded open batch, run inline on a worker."""
    with _faults.executing(fault):
        return _OPEN_MANY[mode](key, packets, backend=INLINE)


def _check_poisoned(packets) -> None:
    """Raise for the first packet an active fault plan has poisoned.

    Membership of the plan's nonce set is the whole decision, so the
    same packet faults identically on every backend and in every
    shard/bisect re-run — which is what lets the isolate path converge
    on exactly the poisoned packet.
    """
    plan = _faults.active_plan()
    if plan is None or not plan.poisoned:
        return
    for packet in packets:
        nonce = bytes(packet[0])
        if plan.is_poisoned(nonce):
            raise InjectedFault(f"injected batch error (nonce {nonce.hex()})")


# -- arena (descriptor) dataplane ------------------------------------------
#
# With a shared-memory packet arena on the backend, a dispatch stages
# every payload into one Generation and ships span *descriptors*
# instead of bytes.  Wire format (all offsets into the named slab):
#
#   seal: (nonce, data_off, data_len, aad_off, aad_len, out_off)
#         out region = ciphertext[data_len] + tag[tag_length]
#   open: (nonce, tag, data_off, data_len, aad_off, aad_len, out_off)
#         out region = plaintext[data_len], written only on auth success
#
# Workers never write input regions, so a crashed span retries (or
# quarantine-bisects) from intact inputs; out regions are per-packet
# disjoint, so re-running a span rewrites the same bytes.  Each shard
# returns only ``(key_schedule_expansions, verified_flags|None)`` —
# the payloads stay in the slab and the parent reads them back in
# place.


def _dispatch_arena(backend):
    """The backend's packet arena, when it offers one for dispatches."""
    probe = getattr(backend, "dispatch_arena", None)
    return probe() if probe is not None else None


def _buffer_length(data: Buffers) -> int:
    """Payload length without gathering (scatter lists stay scattered)."""
    if isinstance(data, (bytes, bytearray, memoryview)):
        return len(data)
    return sum(len(segment) for segment in data)


def _stage_arena(arena, seal_packets, open_packets, tag_length: int):
    """Write both direction lists into one generation; descriptors out."""
    total = 0
    for packet in seal_packets:
        data_len = _buffer_length(packet[1])
        aad_len = _buffer_length(packet[2]) if len(packet) > 2 else 0
        total += data_len + aad_len + data_len + tag_length
    for packet in open_packets:
        data_len = _buffer_length(packet[1])
        aad_len = _buffer_length(packet[3]) if len(packet) > 3 else 0
        total += data_len + aad_len + data_len
    generation = arena.reserve(total)
    seal_descs = []
    for packet in seal_packets:
        data_off, data_len = generation.write(packet[1])
        aad_off, aad_len = generation.write(
            packet[2] if len(packet) > 2 else b""
        )
        out_off = generation.alloc(data_len + tag_length)
        seal_descs.append(
            (bytes(packet[0]), data_off, data_len, aad_off, aad_len, out_off)
        )
    open_descs = []
    for packet in open_packets:
        data_off, data_len = generation.write(packet[1])
        aad_off, aad_len = generation.write(
            packet[3] if len(packet) > 3 else b""
        )
        out_off = generation.alloc(data_len)
        open_descs.append(
            (bytes(packet[0]), bytes(packet[2]),
             data_off, data_len, aad_off, aad_len, out_off)
        )
    return generation, seal_descs, open_descs


def _arena_seal_shard(mode: str, key: bytes, key_ref, slab_name: str,
                      descs, tag_length: int, fault=None):
    """One seal span of an arena dispatch; results written in place."""
    with _faults.executing(fault):
        cache_info = expand_key_cached.cache_info
        before = cache_info().misses
        note_key_epoch(key, key_ref)
        view = attach_view(slab_name)
        packets = [
            (nonce, view[d:d + dl], view[a:a + al])
            for nonce, d, dl, a, al, _out in descs
        ]
        results = _SEAL_MANY[mode](key, packets, tag_length, backend=INLINE)
        for (_n, _d, dl, _a, _al, out), (ciphertext, tag) in zip(
            descs, results
        ):
            view[out:out + dl] = ciphertext
            view[out + dl:out + dl + len(tag)] = tag
        return cache_info().misses - before, None


def _arena_open_shard(mode: str, key: bytes, key_ref, slab_name: str,
                      descs, fault=None):
    """One open span; plaintext in place, auth verdicts on the wire."""
    with _faults.executing(fault):
        cache_info = expand_key_cached.cache_info
        before = cache_info().misses
        note_key_epoch(key, key_ref)
        view = attach_view(slab_name)
        packets = [
            (nonce, view[d:d + dl], tag, view[a:a + al])
            for nonce, tag, d, dl, a, al, _out in descs
        ]
        results = _OPEN_MANY[mode](key, packets, backend=INLINE)
        verified = []
        for (_n, _t, _d, dl, _a, _al, out), plaintext in zip(descs, results):
            if plaintext is None:
                verified.append(False)
            else:
                view[out:out + dl] = plaintext
                verified.append(True)
        return cache_info().misses - before, verified


def _arena_collect(backend, generation, shards, n_seal_spans,
                   seal_descs, open_descs, tag_length: int):
    """Read a finished arena dispatch back out of the slab, in order."""
    view = generation.view
    expansions = 0
    for expanded, _flags in shards[:n_seal_spans]:
        expansions += expanded
    sealed = [
        (bytes(view[out:out + dl]),
         bytes(view[out + dl:out + dl + tag_length]))
        for _n, _d, dl, _a, _al, out in seal_descs
    ]
    verified: List[bool] = []
    for expanded, flags in shards[n_seal_spans:]:
        expansions += expanded
        verified.extend(flags)
    opened = [
        bytes(view[out:out + dl]) if ok else None
        for (_n, _t, _d, dl, _a, _al, out), ok in zip(open_descs, verified)
    ]
    record = getattr(backend, "record_worker_expansions", None)
    if record is not None:
        record(expansions)
    return sealed, opened


def _arena_packets(generation, seal_descs, open_descs):
    """Rebuild plain-bytes packets from staged inputs (quarantine path).

    Workers never write input regions, so these are byte-identical to
    what was staged — the quarantine bisect therefore converges on the
    same packets it would have seen on the pickling dataplane.
    """
    view = generation.view
    seals = [
        (nonce, bytes(view[d:d + dl]), bytes(view[a:a + al]))
        for nonce, d, dl, a, al, _out in seal_descs
    ]
    opens = [
        (nonce, bytes(view[d:d + dl]), tag, bytes(view[a:a + al]))
        for nonce, tag, d, dl, a, al, _out in open_descs
    ]
    return seals, opens


def _arena_submit(backend, arena, mode: str, key: bytes, key_ref,
                  seal_packets, open_packets, tag_length: int,
                  isolate: bool):
    """Launch one descriptor dispatch; None when it would not shard."""
    seal_spans = backend.shard_spans(len(seal_packets))
    open_spans = backend.shard_spans(len(open_packets))
    if len(seal_spans) + len(open_spans) <= 1:
        return None
    generation, seal_descs, open_descs = _stage_arena(
        arena, seal_packets, open_packets, tag_length
    )
    plan = _faults.active_plan()
    slab = generation.slab_name

    def _call(fn, args, span_nonce):
        if plan is None:
            return (fn, args)
        return (fn, args, _faults.FaultPoint(plan, (span_nonce,)))

    calls = [
        _call(
            _arena_seal_shard,
            (mode, key, key_ref, slab, seal_descs[start:stop], tag_length),
            seal_descs[start][0],
        )
        for start, stop in seal_spans
    ] + [
        _call(
            _arena_open_shard,
            (mode, key, key_ref, slab, open_descs[start:stop]),
            open_descs[start][0],
        )
        for start, stop in open_spans
    ]

    def _collect(shards):
        return _arena_collect(
            backend, generation, shards, len(seal_spans),
            seal_descs, open_descs, tag_length,
        )

    quarantine = None
    if isolate:
        def quarantine():
            seals, opens = _arena_packets(generation, seal_descs, open_descs)
            return _quarantine_pair(mode, key, seals, opens, tag_length)

    return SealOpenHandle(
        backend.submit(calls), _collect, quarantine, generation.release
    )


def _sharded_calls(backend, mode: str, key: bytes, seals, opens,
                   tag_length: int):
    """Build per-span shard calls over *normalized* packet lists.

    Returns ``(calls, n_seal_spans)``, or None when the work collapses
    to a single call (caller falls through to a whole-dispatch run):
    two single-span direction halves still ship as two calls, so a
    small mixed dispatch's seal and open sweeps overlap on the workers
    even when neither half is wide enough to shard by itself.

    When a fault plan is active each shard call carries a
    :class:`FaultPoint` keyed by the span's first nonce: the executing
    backend stamps in the live attempt number, and the worker applies
    crash/hang/slow faults locally with the plan installed
    thread-locally (so nonce-poison checks cross process boundaries).
    """
    seal_spans = backend.shard_spans(len(seals))
    open_spans = backend.shard_spans(len(opens))
    if len(seal_spans) + len(open_spans) <= 1:
        return None
    plan = _faults.active_plan()

    def _call(fn, args, span_nonce):
        if plan is None:
            return (fn, args)
        return (fn, args, _faults.FaultPoint(plan, (span_nonce,)))

    calls = [
        _call(_seal_shard, (mode, key, seals[start:stop], tag_length),
              seals[start][0])
        for start, stop in seal_spans
    ] + [
        _call(_open_shard, (mode, key, opens[start:stop]), opens[start][0])
        for start, stop in open_spans
    ]
    return calls, len(seal_spans)


def _merge_shards(shards, n_seal_spans):
    """Concatenate span results back into ``(sealed, opened)`` order."""
    sealed: List[Tuple[bytes, bytes]] = []
    for shard in shards[:n_seal_spans]:
        sealed.extend(shard)
    opened: List[Optional[bytes]] = []
    for shard in shards[n_seal_spans:]:
        opened.extend(shard)
    return sealed, opened


def _run_sharded(backend, mode: str, key: bytes, seal_packets, open_packets,
                 tag_length: int):
    """Shard both direction lists into one backend pass; merge in order.

    Returns ``(sealed, opened)`` — each positionally identical to the
    inline ``*_many`` result for its list — or None when the work
    collapses to a single call (see :func:`_sharded_calls`).  Backends
    offering a packet arena take the descriptor dataplane instead of
    pickling the payloads; results are byte-identical either way.
    """
    key = bytes(key)
    arena = _dispatch_arena(backend)
    if arena is not None:
        handle = _arena_submit(
            backend, arena, mode, key, None,
            list(seal_packets), list(open_packets), tag_length,
            isolate=False,
        )
        if handle is not None:
            return handle.result()
    seals = [_norm_seal_packet(p) for p in seal_packets]
    opens = [_norm_open_packet(p) for p in open_packets]
    built = _sharded_calls(backend, mode, key, seals, opens, tag_length)
    if built is None:
        return None
    calls, n_seal_spans = built
    return _merge_shards(backend.run(calls), n_seal_spans)


def _quarantine_split(packets: List, runner) -> List:
    """Bisect a failing span down to per-packet results.

    Healthy packets keep their normal results; each packet whose
    singleton run still raises gets a :class:`QuarantinedPacketError`
    in its slot instead of failing the whole span.  Backend
    infrastructure errors propagate — they are the retry machinery's
    business, not a poisoned packet.
    """
    if not packets:
        return []
    try:
        return list(runner(packets))
    except BackendError:
        raise
    except ReproError as exc:
        if len(packets) == 1:
            return [QuarantinedPacketError(str(exc))]
        mid = len(packets) // 2
        return _quarantine_split(packets[:mid], runner) + _quarantine_split(
            packets[mid:], runner
        )


def _quarantine_pair(mode, key, seals, opens, tag_length):
    """Bisect both direction lists inline (the isolate fallback)."""
    return (
        _quarantine_split(
            list(seals),
            lambda span: _SEAL_MANY[mode](
                key, span, tag_length, backend=INLINE
            ),
        ),
        _quarantine_split(
            list(opens),
            lambda span: _OPEN_MANY[mode](key, span, backend=INLINE),
        ),
    )


def seal_open_many(
    mode: str,
    key: bytes,
    seal_packets: Sequence[Sequence],
    open_packets: Sequence[Sequence],
    tag_length: int = 16,
    backend: BackendSpec = None,
    isolate: bool = False,
    key_ref: Optional[Tuple[object, int]] = None,
) -> Tuple[List[Tuple[bytes, bytes]], List[Optional[bytes]]]:
    """Seal one list and open another under one key, one backend pass.

    *mode* is ``"gcm"`` or ``"ccm"``.  This is the MCCP dispatch form:
    a coalesced channel batch splits into its ENCRYPT and DECRYPT
    halves and both halves' shards join a single
    :meth:`repro.crypto.fast.exec.ExecutionBackend.run` call, so mixed
    seal+open traffic overlaps across workers instead of serialising
    direction by direction.  Results are positionally and
    byte-identical to calling the two ``*_many`` APIs inline —
    whichever dataplane (descriptor arena or pickling) carried them.

    With ``isolate=True`` a packet-level :class:`ReproError` (a
    poisoned packet, a malformed nonce) no longer fails the whole
    dispatch: the failing direction bisects inline until the bad
    packets stand alone, and each gets a
    :class:`QuarantinedPacketError` instance in its result slot —
    batchmates keep their byte-identical results.  Backend
    infrastructure errors still propagate (after the backend's own
    retry/degradation machinery has given up on them).

    *key_ref* — an optional ``(key_id, epoch)`` pair from
    :mod:`repro.crypto.fast.arena` — tags the dispatch for the warm
    workers' rekey invalidation protocol; it never affects results.
    """
    return seal_open_submit(
        mode, key, seal_packets, open_packets, tag_length,
        backend=backend, isolate=isolate, key_ref=key_ref,
    ).result()


def _seal_open_whole(mode, key, seals, opens, tag_length):
    """Both directions of one dispatch as a single worker call.

    The un-sharded form :func:`seal_open_submit` uses when the span
    count collapses to one: thanks to the backends' serial guard a
    single call always executes in the submitting thread, where the
    caller's fault plan is already installed — the same context the
    synchronous fall-through runs in.
    """
    return (
        _SEAL_MANY[mode](key, seals, tag_length, backend=INLINE),
        _OPEN_MANY[mode](key, opens, backend=INLINE),
    )


class SealOpenHandle:
    """One in-flight :func:`seal_open_many` dispatch (futures form).

    Returned by :func:`seal_open_submit`; ``done()``/``poll()`` are
    non-blocking, ``result()`` waits and yields the same
    ``(sealed, opened)`` pair — byte-identical to the blocking call,
    memoized, with the same ``isolate=True`` quarantine semantics
    applied at collection time.  The dataplane-specific halves ride in
    as callables: *collect* turns the backend's shard results into the
    pair, *quarantine* (None = not isolating) rebuilds the pair from
    the original packets when a packet-level error surfaces, and
    *cleanup* releases dispatch-scoped resources (an arena generation)
    exactly once, success or failure.
    """

    __slots__ = ("_handle", "_collect", "_quarantine", "_cleanup", "_result")

    def __init__(self, handle, collect, quarantine=None, cleanup=None):
        self._handle = handle
        self._collect = collect
        self._quarantine = quarantine
        self._cleanup = cleanup
        self._result = None

    def done(self) -> bool:
        """Non-blocking: would :meth:`result` still wait on workers?"""
        return self._handle.done()

    def poll(self) -> bool:
        """Alias of :meth:`done`."""
        return self.done()

    def result(self):
        """The ``(sealed, opened)`` pair, in submission order (memoized)."""
        if self._result is None:
            self._result = self._resolve()
        return self._result

    def _resolve(self):
        try:
            try:
                shards = self._handle.result()
            except ReproError as exc:
                if self._quarantine is None or isinstance(exc, BackendError):
                    raise
                return self._quarantine()
            return self._collect(shards)
        finally:
            if self._cleanup is not None:
                self._cleanup()


def seal_open_submit(
    mode: str,
    key: bytes,
    seal_packets: Sequence[Sequence],
    open_packets: Sequence[Sequence],
    tag_length: int = 16,
    backend: BackendSpec = None,
    isolate: bool = False,
    key_ref: Optional[Tuple[object, int]] = None,
) -> SealOpenHandle:
    """Launch a mixed dispatch without waiting; a :class:`SealOpenHandle`.

    The futures form of :func:`seal_open_many` — same arguments, same
    ``(sealed, opened)`` result (byte-identical, including the
    ``isolate=True`` quarantine behaviour), but the backend pass is
    *submitted* and the caller gets the handle back immediately, so a
    simulator can keep coalescing the next batch while thread/process
    workers chew on this one.  Packets are captured eagerly — staged
    into the arena, or normalized to plain bytes — as submission-time
    state, immune to later caller mutation; recovery — retries,
    watchdog, degradation, quarantine bisection — all runs inside
    ``result()``.

    When the backend offers a packet arena the dispatch ships as span
    descriptors over one shared-memory generation (released when the
    handle resolves); otherwise the packets pickle per shard.  *key_ref*
    (``(key_id, epoch)``) rides along to the warm workers' rekey
    protocol on the arena dataplane.
    """
    if mode not in _SEAL_MANY:
        raise ValueError(f"unknown batch mode {mode!r}; valid: gcm, ccm")
    backend = resolve_backend(backend)
    key = bytes(key)
    arena = _dispatch_arena(backend)
    if arena is not None:
        handle = _arena_submit(
            backend, arena, mode, key, key_ref,
            list(seal_packets), list(open_packets), tag_length, isolate,
        )
        if handle is not None:
            return handle
    seals = [_norm_seal_packet(p) for p in seal_packets]
    opens = [_norm_open_packet(p) for p in open_packets]
    built = None
    if backend.workers > 1:
        built = _sharded_calls(backend, mode, key, seals, opens, tag_length)
    if built is not None:
        calls, n_seal_spans = built
        collect = lambda shards: _merge_shards(shards, n_seal_spans)  # noqa: E731
    else:
        calls = [(_seal_open_whole, (mode, key, seals, opens, tag_length))]
        collect = lambda shards: shards[0]  # noqa: E731
    quarantine = None
    if isolate:
        quarantine = lambda: _quarantine_pair(  # noqa: E731
            mode, key, seals, opens, tag_length
        )
    return SealOpenHandle(backend.submit(calls), collect, quarantine)


# -- lane-parallel CBC-MAC -------------------------------------------------


def _lane_order(messages: Sequence[bytes]) -> Tuple[List[int], List[int]]:
    """Lanes sorted by descending block count (ragged retirement order)."""
    counts = [len(m) // BLOCK_BYTES for m in messages]
    order = sorted(range(len(messages)), key=lambda i: (-counts[i], i))
    return order, counts


def _cbc_mac_lanes_vector(
    round_keys: Schedule, messages: Sequence[bytes], iv: bytes
) -> List[bytes]:
    """All chains as lanes of one packed state; shorter lanes retire."""
    from bisect import bisect_left

    order, counts = _lane_order(messages)
    lanes = len(messages)
    sorted_negated = [-counts[i] for i in order]
    max_blocks = counts[order[0]]
    blocks = _np.zeros((max_blocks, 4, lanes), dtype=_np.uint32)
    for rank, index in enumerate(order):
        words = _np.frombuffer(messages[index], dtype=">u4").reshape(-1, 4)
        blocks[: counts[index], :, rank] = words
    state = _np.repeat(
        _np.frombuffer(iv, dtype=">u4").astype(_np.uint32).reshape(4, 1),
        lanes,
        axis=1,
    )
    for step in range(max_blocks):
        active = bisect_left(sorted_negated, -step)
        state[:, :active] = aes_vector.encrypt_state_vector(
            state[:, :active] ^ blocks[step, :, :active], round_keys
        )
    raw = aes_vector.state_to_bytes(state)
    macs: List[Optional[bytes]] = [None] * lanes
    for rank, index in enumerate(order):
        macs[index] = raw[BLOCK_BYTES * rank : BLOCK_BYTES * (rank + 1)]
    return macs


def _cbc_mac_lanes_scalar(
    round_keys: Schedule, messages: Sequence[bytes], iv: bytes
) -> List[bytes]:
    """Round-robin the lanes through the scalar T-table round.

    Same ragged-lane structure as the vector path (lane *i* absorbs its
    block *t* before any lane absorbs block *t+1*), so the fallback and
    the vector engine walk the batch in the same order.
    """
    order, counts = _lane_order(messages)
    states = [int.from_bytes(iv, "big")] * len(messages)
    max_blocks = counts[order[0]] if order else 0
    for step in range(max_blocks):
        start = BLOCK_BYTES * step
        for index in order:
            if counts[index] <= step:
                break  # descending order: every later lane retired too
            x = states[index] ^ int.from_bytes(
                messages[index][start : start + BLOCK_BYTES], "big"
            )
            o0, o1, o2, o3 = encrypt_words_tt(
                (x >> 96) & 0xFFFFFFFF,
                (x >> 64) & 0xFFFFFFFF,
                (x >> 32) & 0xFFFFFFFF,
                x & 0xFFFFFFFF,
                round_keys,
            )
            states[index] = (o0 << 96) | (o1 << 64) | (o2 << 32) | o3
    return [state.to_bytes(BLOCK_BYTES, "big") for state in states]


def _cbc_mac_shard(key_or_schedule, messages, iv):
    """One span of a sharded CBC-MAC batch, run inline on a worker."""
    return cbc_mac_many(key_or_schedule, messages, iv, backend=INLINE)


def cbc_mac_many(
    key_or_schedule: KeyOrSchedule,
    messages: Sequence[bytes],
    iv: bytes = _ZERO_IV,
    backend: BackendSpec = None,
) -> List[bytes]:
    """CBC-MAC every message of a same-key batch, lane-parallel.

    Byte-identical to mapping :func:`repro.crypto.fast.bulk
    .cbc_mac_fast` over *messages*; the batch form exists because the
    per-message feedback chain is the serialising half of CCM.  A
    *backend* shards the lanes across workers (each chain is
    lane-local, so sharding cannot change any MAC).
    """
    if len(iv) != BLOCK_BYTES:
        raise BlockSizeError(f"CBC-MAC IV must be 16 bytes, got {len(iv)}")
    for message in messages:
        if len(message) % BLOCK_BYTES != 0:
            raise BlockSizeError(
                f"CBC-MAC input length {len(message)} is not a multiple of 16"
            )
        if not message:
            raise BlockSizeError("CBC-MAC requires at least one block")
    if not messages:
        return []
    backend = resolve_backend(backend)
    if backend.workers > 1:
        spans = backend.shard_spans(len(messages))
        if len(spans) > 1:
            lanes = [bytes(message) for message in messages]
            shards = backend.run(
                [
                    (_cbc_mac_shard, (key_or_schedule, lanes[a:b], bytes(iv)))
                    for a, b in spans
                ]
            )
            return [mac for shard in shards for mac in shard]
    round_keys = _schedule(key_or_schedule)
    if HAVE_NUMPY and len(messages) >= MIN_LANES:
        return _cbc_mac_lanes_vector(round_keys, messages, iv)
    return _cbc_mac_lanes_scalar(round_keys, messages, iv)


# -- fused counter keystreams ----------------------------------------------


def _fused_keystream(
    round_keys: Schedule, specs: Sequence[_CounterSpec]
) -> List[bytes]:
    """Keystream for every counter run in one packed encryption sweep.

    Each spec is ``(initial_counter, inc_bits, nblocks)`` with the low
    *inc_bits* bits incrementing per block (the
    :func:`repro.crypto.fast.bulk.ctr_stream` semantics, inc widths up
    to 64 bits — GCM's inc32 and CCM's 8q-bit fields both qualify).
    """
    from repro.crypto.fast.bulk import ctr_stream

    if not (HAVE_NUMPY and sum(spec[2] for spec in specs) >= MIN_LANES):
        return [
            ctr_stream(round_keys, c0.to_bytes(BLOCK_BYTES, "big"), nblocks, inc_bits)
            for c0, inc_bits, nblocks in specs
        ]
    total = sum(spec[2] for spec in specs)
    state = _np.empty((4, total), dtype=_np.uint32)
    offset = 0
    for c0, inc_bits, nblocks in specs:
        if nblocks == 0:
            continue
        mask = (1 << inc_bits) - 1
        hi = c0 >> inc_bits << inc_bits
        lows = _np.uint64(c0 & mask) + _np.arange(nblocks, dtype=_np.uint64)
        if inc_bits < 64:
            lows &= _np.uint64(mask)
        lane = slice(offset, offset + nblocks)
        state[0, lane] = (hi >> 96) & 0xFFFFFFFF
        state[1, lane] = (hi >> 64) & 0xFFFFFFFF
        if inc_bits <= 32:
            state[2, lane] = (hi >> 32) & 0xFFFFFFFF
            state[3, lane] = _np.uint32(hi & 0xFFFFFFFF) | lows.astype(_np.uint32)
        else:
            state[2, lane] = _np.uint32((hi >> 32) & 0xFFFFFFFF) | (
                lows >> _np.uint64(32)
            ).astype(_np.uint32)
            state[3, lane] = lows.astype(_np.uint32)
        offset += nblocks
    raw = aes_vector.state_to_bytes(
        aes_vector.encrypt_state_vector(state, round_keys)
    )
    streams = []
    offset = 0
    for _, _, nblocks in specs:
        streams.append(raw[BLOCK_BYTES * offset : BLOCK_BYTES * (offset + nblocks)])
        offset += nblocks
    return streams


# -- GCM / GMAC ------------------------------------------------------------


def _gcm_tag_hpower(
    h: int, j0_mask: bytes, aad: bytes, ciphertext: bytes, tag_length: int
) -> bytes:
    """GHASH(aad, ct, lengths) xor E(J_0), H-power folded."""
    acc = _ghash_aad_ct(h, aad, ciphertext)
    return xor_data(acc.to_bytes(BLOCK_BYTES, "big"), j0_mask)[:tag_length]


def _gcm_front(
    key: bytes, packets: Sequence[Sequence], aad_index: int
) -> Tuple[Schedule, int, List[bytes], List[bytes], List[int]]:
    """Shared GCM batch front end: schedule, H, gathered fields, J_0s.

    Packet field 0 is the IV and field 1 the data (plaintext for seal,
    ciphertext for open); *aad_index* locates the optional aad (seal
    packets carry it at 2, open packets at 3 after the tag).
    """
    round_keys = expand_key_cached(bytes(key))
    from repro.crypto.fast.aes_ttable import encrypt_block_tt

    h = int.from_bytes(encrypt_block_tt(_ZERO_IV, round_keys), "big")
    ivs = [bytes(packet[0]) for packet in packets]
    datas = [gather(packet[1]) for packet in packets]
    aads = [
        gather(packet[aad_index]) if len(packet) > aad_index else b""
        for packet in packets
    ]
    j0s = [_gcm_j0_int(h, iv) for iv in ivs]
    return round_keys, h, datas, aads, j0s


def gcm_seal_many(
    key: bytes,
    packets: Sequence[Sequence],
    tag_length: int = 16,
    backend: BackendSpec = None,
) -> List[Tuple[bytes, bytes]]:
    """Seal a same-key GCM batch; returns ``[(ciphertext, tag), ...]``.

    *packets* is a sequence of ``(iv, plaintext)`` or ``(iv, plaintext,
    aad)``; plaintext and aad may be scatter-gather segment lists.
    Byte-identical to calling :func:`repro.crypto.fast.bulk.gcm_seal`
    per packet, whatever *backend* shards the batch across.
    """
    from repro.crypto.modes.gcm import VALID_TAG_LENGTHS

    if tag_length not in VALID_TAG_LENGTHS:
        raise TagError(
            f"GCM tag length must be one of {VALID_TAG_LENGTHS}, got {tag_length}"
        )
    if not packets:
        return []
    _check_poisoned(packets)
    backend = resolve_backend(backend)
    if backend.workers > 1:
        sharded = _run_sharded(backend, "gcm", key, packets, (), tag_length)
        if sharded is not None:
            return sharded[0]
    if not HAVE_NUMPY:
        return [
            gcm_seal(key, bytes(p[0]), gather(p[1]), gather(p[2]) if len(p) > 2 else b"", tag_length)
            for p in packets
        ]
    round_keys, h, datas, aads, j0s = _gcm_front(key, packets, 2)
    specs: List[_CounterSpec] = [
        (_inc32(j0), 32, -(-len(data) // BLOCK_BYTES))
        for j0, data in zip(j0s, datas)
    ]
    specs += [(j0, 32, 1) for j0 in j0s]  # E(J_0) tag masks, same sweep
    streams = _fused_keystream(round_keys, specs)
    keystreams = streams[: len(packets)]
    masks = streams[len(packets) :]
    results = []
    for data, aad, stream, mask in zip(datas, aads, keystreams, masks):
        ciphertext = xor_data(data, stream)
        tag = _gcm_tag_hpower(h, mask, aad, ciphertext, tag_length)
        results.append((ciphertext, tag))
    return results


def gcm_open_many(
    key: bytes,
    packets: Sequence[Sequence],
    backend: BackendSpec = None,
) -> List[Optional[bytes]]:
    """Open a same-key GCM batch; ``None`` marks an authentication failure.

    *packets* is a sequence of ``(iv, ciphertext, tag)`` or ``(iv,
    ciphertext, tag, aad)``.  Failed packets release no plaintext;
    every other packet still opens (per-packet isolation, the batch
    analogue of the core purging one output FIFO).

    Verification runs **first**: GCM tags authenticate the ciphertext,
    so one 1-block-per-packet sweep yields every ``E(J_0)`` mask, the
    H-power GHASH checks all tags, and only the surviving packets join
    the payload keystream sweep — a forged 2 KB packet costs one AES
    block plus a GHASH, not a 128-block decrypt that is then discarded.
    Survivors' outputs are unaffected by failed lanes (their keystream
    counters depend only on their own J_0, not on lane packing).
    """
    from repro.crypto.modes.gcm import VALID_TAG_LENGTHS

    if not packets:
        return []
    for packet in packets:
        if len(bytes(packet[2])) not in VALID_TAG_LENGTHS:
            raise TagError(f"GCM tag length {len(bytes(packet[2]))} is invalid")
    _check_poisoned(packets)
    backend = resolve_backend(backend)
    if backend.workers > 1:
        sharded = _run_sharded(backend, "gcm", key, (), packets, 16)
        if sharded is not None:
            return sharded[1]
    if not HAVE_NUMPY:
        # bulk.gcm_open already verifies before generating the payload
        # keystream, so the scalar fallback early-rejects per packet.
        return [
            _open_one(
                gcm_open,
                key,
                bytes(p[0]),
                gather(p[1]),
                bytes(p[2]),
                gather(p[3]) if len(p) > 3 else b"",
            )
            for p in packets
        ]
    round_keys, h, ciphertexts, aads, j0s = _gcm_front(key, packets, 3)
    masks = _fused_keystream(round_keys, [(j0, 32, 1) for j0 in j0s])
    verified: List[bool] = []
    for packet, ciphertext, aad, mask in zip(packets, ciphertexts, aads, masks):
        tag = bytes(packet[2])
        expected = _gcm_tag_hpower(h, mask, aad, ciphertext, len(tag))
        verified.append(hmac.compare_digest(expected, tag))
    survivor_specs: List[_CounterSpec] = [
        (_inc32(j0), 32, -(-len(ciphertext) // BLOCK_BYTES))
        for j0, ciphertext, ok in zip(j0s, ciphertexts, verified)
        if ok
    ]
    streams = iter(_fused_keystream(round_keys, survivor_specs))
    return [
        xor_data(ciphertext, next(streams)) if ok else None
        for ciphertext, ok in zip(ciphertexts, verified)
    ]


def gmac_many(
    key: bytes,
    packets: Sequence[Sequence],
    tag_length: int = 16,
    backend: BackendSpec = None,
) -> List[bytes]:
    """GMAC tags for a batch of ``(iv, aad)`` packets (empty plaintext)."""
    sealed = gcm_seal_many(
        key,
        [(packet[0], b"", packet[1]) for packet in packets],
        tag_length,
        backend=backend,
    )
    return [tag for _, tag in sealed]


# -- CCM -------------------------------------------------------------------


def _ccm_prepare(
    key: bytes, nonces: Sequence[bytes], datas: Sequence[bytes]
) -> Tuple[Schedule, List[bytes], List[bytes]]:
    """Schedule plus every packet's ``(S_0, keystream)`` in one sweep."""
    from repro.crypto.modes.ccm import format_counter_block

    round_keys = expand_key_cached(bytes(key))
    specs: List[_CounterSpec] = []
    for nonce, data in zip(nonces, datas):
        a0 = int.from_bytes(format_counter_block(nonce, 0), "big")
        nblocks = -(-len(data) // BLOCK_BYTES)
        specs.append((a0, 8 * (15 - len(nonce)), nblocks + 1))  # A_0..A_m
    runs = _fused_keystream(round_keys, specs)
    s0s = [run[:BLOCK_BYTES] for run in runs]
    streams = [run[BLOCK_BYTES:] for run in runs]
    return round_keys, s0s, streams


def ccm_seal_many(
    key: bytes,
    packets: Sequence[Sequence],
    tag_length: int = 16,
    backend: BackendSpec = None,
) -> List[Tuple[bytes, bytes]]:
    """Seal a same-key CCM batch; returns ``[(ciphertext, tag), ...]``.

    *packets* is a sequence of ``(nonce, plaintext)`` or ``(nonce,
    plaintext, aad)`` (scatter-gather allowed).  The CBC-MAC half runs
    lane-parallel across the batch; byte-identical to per-packet
    :func:`repro.crypto.fast.bulk.ccm_seal`, whatever *backend* shards
    the batch across.
    """
    from repro.crypto.modes.ccm import (
        _check_params,
        format_associated_data,
        format_b0,
    )

    if not packets:
        return []
    _check_poisoned(packets)
    backend = resolve_backend(backend)
    if backend.workers > 1:
        sharded = _run_sharded(backend, "ccm", key, packets, (), tag_length)
        if sharded is not None:
            return sharded[0]
    if not HAVE_NUMPY:
        return [
            ccm_seal(key, bytes(p[0]), gather(p[1]), gather(p[2]) if len(p) > 2 else b"", tag_length)
            for p in packets
        ]
    nonces = [bytes(packet[0]) for packet in packets]
    datas = [gather(packet[1]) for packet in packets]
    aads = [gather(packet[2]) if len(packet) > 2 else b"" for packet in packets]
    blobs = []
    for nonce, data, aad in zip(nonces, datas, aads):
        _check_params(nonce, tag_length, len(data))
        blobs.append(
            format_b0(nonce, len(aad), len(data), tag_length)
            + format_associated_data(aad)
            + pad_zeros(data, BLOCK_BYTES)
        )
    round_keys, s0s, streams = _ccm_prepare(key, nonces, datas)
    macs = cbc_mac_many(round_keys, blobs, backend=INLINE)
    results = []
    for data, mac, s0, stream in zip(datas, macs, s0s, streams):
        ciphertext = xor_data(data, stream) if data else b""
        results.append((ciphertext, xor_data(mac, s0)[:tag_length]))
    return results


def ccm_open_many(
    key: bytes,
    packets: Sequence[Sequence],
    backend: BackendSpec = None,
) -> List[Optional[bytes]]:
    """Open a same-key CCM batch; ``None`` marks an authentication failure.

    *packets* is a sequence of ``(nonce, ciphertext, tag)`` or
    ``(nonce, ciphertext, tag, aad)``.

    Unlike GCM, CCM's tag authenticates the *plaintext*, so
    verification inherently requires the full keystream and CBC-MAC
    sweeps — there is no work to skip for a forged packet (the
    early-reject fast-out lives in :func:`gcm_open_many`).  What this
    path does guarantee is isolation: a failed lane releases no
    plaintext and cannot perturb surviving lanes' outputs, whose MAC
    chains and counters are lane-local.
    """
    from repro.crypto.modes.ccm import (
        _check_params,
        format_associated_data,
        format_b0,
    )

    if not packets:
        return []
    _check_poisoned(packets)
    backend = resolve_backend(backend)
    if backend.workers > 1:
        sharded = _run_sharded(backend, "ccm", key, (), packets, 16)
        if sharded is not None:
            return sharded[1]
    if not HAVE_NUMPY:
        return [
            _open_one(
                ccm_open,
                key,
                bytes(p[0]),
                gather(p[1]),
                bytes(p[2]),
                gather(p[3]) if len(p) > 3 else b"",
            )
            for p in packets
        ]
    nonces = [bytes(packet[0]) for packet in packets]
    ciphertexts = [gather(packet[1]) for packet in packets]
    tags = [bytes(packet[2]) for packet in packets]
    aads = [gather(packet[3]) if len(packet) > 3 else b"" for packet in packets]
    for nonce, ciphertext, tag in zip(nonces, ciphertexts, tags):
        _check_params(nonce, len(tag), len(ciphertext))
    round_keys, s0s, streams = _ccm_prepare(key, nonces, ciphertexts)
    plaintexts = [
        xor_data(ciphertext, stream) if ciphertext else b""
        for ciphertext, stream in zip(ciphertexts, streams)
    ]
    blobs = [
        format_b0(nonce, len(aad), len(plaintext), len(tag))
        + format_associated_data(aad)
        + pad_zeros(plaintext, BLOCK_BYTES)
        for nonce, aad, plaintext, tag in zip(nonces, aads, plaintexts, tags)
    ]
    macs = cbc_mac_many(round_keys, blobs, backend=INLINE)
    results: List[Optional[bytes]] = []
    for mac, s0, tag, plaintext in zip(macs, s0s, tags, plaintexts):
        expected = xor_data(mac, s0)[: len(tag)]
        if hmac.compare_digest(expected, tag):
            results.append(plaintext)
        else:
            results.append(None)
    return results


def _open_one(open_fn, key, nonce, ciphertext, tag, aad) -> Optional[bytes]:
    """Per-packet open for the scalar fallback (None on auth failure)."""
    from repro.errors import AuthenticationFailure

    try:
        return open_fn(key, nonce, ciphertext, tag, aad)
    except AuthenticationFailure:
        return None


#: Mode tag -> batch entry point (the shard workers' dispatch tables;
#: module level so the references pickle into process-pool workers).
_SEAL_MANY = {"gcm": gcm_seal_many, "ccm": ccm_seal_many}
_OPEN_MANY = {"gcm": gcm_open_many, "ccm": ccm_open_many}
