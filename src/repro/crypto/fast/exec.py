"""Pluggable execution backends for the batch crypto sweeps.

The batch engine (:mod:`repro.crypto.fast.batch`) turns N same-key
packets into a handful of fused numpy sweeps, but until this module
every sweep ran on one Python thread — the software restatement of the
paper's many-core parallelism stopped at one core.  An
:class:`ExecutionBackend` is the seam that fixes that: callers hand it
an ordered list of independent ``(fn, args)`` calls (typically one per
packet shard, or one per seal/open direction of a coalesced dispatch)
and get the results back **in submission order**, whatever ran where.
Three implementations:

- :class:`InlineBackend` — run the calls sequentially in the calling
  thread.  Today's behaviour, and the default (``REPRO_BACKEND=inline``).
- :class:`ThreadPoolBackend` — a bounded ``ThreadPoolExecutor``.  The
  numpy gather/XOR sweeps under the batch engine release the GIL, so
  shards genuinely overlap on multi-core hosts; shared state (the LRU
  key-schedule/Shoup/H-power caches, channel statistics) stays visible,
  which is why this backend is also allowed to overlap whole
  per-channel dispatches (:meth:`ExecutionBackend.supports_shared_state`).
- :class:`ProcessPoolBackend` — shared-nothing worker processes.  Each
  worker starts with cold memo caches (the pool initializer and the
  ``os.register_at_fork`` hook in :mod:`repro.crypto.fast` both call
  ``clear_caches``) and rebuilds them lazily, so a fork can never
  observe a cache mid-mutation.  Two dataplanes share the pool:

  - the **arena dataplane** (default): payloads live in a
    shared-memory packet arena (:mod:`repro.crypto.fast.arena`) and
    shard calls pickle only span descriptors; workers stay warm
    across dispatches, so key-schedule/H-power caches persist
    (:attr:`ProcessPoolBackend.worker_expansions` counts rebuilds).
  - the **pickling dataplane**: arguments pickle in full — the
    fallback whenever shared memory is unavailable
    (:attr:`ProcessPoolBackend.arena_degraded_reason` records why,
    structurally, results byte-identical), or on request
    (``REPRO_ARENA=0`` / the ``process-pickle`` spec).

  Where child processes are impossible (daemonic workers of an outer
  multiprocessing pool, sandboxed runners) the backend degrades to
  inline execution and records why in
  :attr:`ProcessPoolBackend.degraded_reason` rather than failing the
  dispatch.

Determinism contract: a backend only ever changes *where* calls run,
never what they compute or the order results come back in — the
equivalence suite pins inline == thread == process byte-for-byte
across the crypto, MCCP and radio layers.

Asynchronous half: :meth:`ExecutionBackend.submit` is the futures
form of :meth:`ExecutionBackend.run` — it hands the calls to the pool
*without waiting* and returns a :class:`BatchHandle` whose
``poll()``/``done()`` probe completion and whose ``result()`` drains
the span (applying the same recovery machinery, so
``backend.run(calls)`` and ``backend.submit(calls).result()`` are
byte-identical — ``run`` is literally implemented that way).  This is
what lets the simulated dataplane overlap sim-event processing with
crypto execution (the paper's pipelining lifted to the system level,
:mod:`repro.radio.comm_controller`): the caller submits a batch, keeps
coalescing the next one, and collects the handle when the completion
is due.  Backends with no overlap to offer (inline, a degraded or
single-worker pool) return an *unlaunched* handle that simply computes
at ``result()`` time — same bytes, no concurrency.

Self-healing: :meth:`ExecutionBackend.run` owns the recovery loop.
Infrastructure failures (:class:`repro.errors.BackendError`: a worker
crash, a watchdog timeout, an injected fault) are retried per span
with exponential backoff under a :class:`ResiliencePolicy`; when the
retries are exhausted the backend degrades down the chain ``process``
→ ``thread`` → ``inline`` (sticky, reason recorded in
:attr:`ExecutionBackend.degradations`) instead of failing the
dispatch.  Crypto errors are never retried or swallowed — a backend
changes where calls run and how infrastructure failures heal, never
what correct calls compute.

Selection: ``REPRO_BACKEND`` in the environment (``inline``,
``thread``/``thread:N``, ``process``/``process:N`` with ``N`` worker
cap; ``process-arena``/``process-pickle`` pin the process dataplane,
and ``REPRO_ARENA=0`` flips bare ``process`` to pickling) seeds the
process-wide default; every ``backend=`` parameter up the stack
(``*_many`` APIs, ``Mccp.dispatch_jobs``, ``SdrPlatform.run_workload``)
accepts a backend instance, a spec string, or ``None`` for the default.
"""

from __future__ import annotations

import atexit
import os
import time
from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.errors import BackendError, BatchTimeoutError, WorkerCrashError
from repro.resilience import stats as resilience_stats
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultPoint
from repro.resilience.policy import DEFAULT_POLICY, ResiliencePolicy

#: One unit of backend work: a callable plus positional arguments.  A
#: third element — a :class:`FaultPoint` — may ride along when fault
#: injection is active; the backend stamps it into a directive (with
#: the live attempt number and its own name) appended to the args.
Call = Union[Tuple[Callable, tuple], Tuple[Callable, tuple, FaultPoint]]

#: A backend parameter anywhere up the stack: an instance, a spec
#: string ("thread:4"), or None for the process-wide default.
BackendSpec = Union["ExecutionBackend", str, None]

#: Smallest shard worth shipping to a worker: below this the dispatch
#: overhead (task hand-off, and pickling for processes) beats the win.
DEFAULT_MIN_SHARD = 4


def _process_worker_init() -> None:
    """Pool initializer: start every worker with cold memo caches.

    Top-level (not a closure) so it pickles by reference under both
    fork and spawn start methods.  Forked workers additionally run the
    ``os.register_at_fork`` hook; spawn workers start cold anyway —
    either way no worker can inherit a parent LRU mid-mutation.
    """
    from repro.crypto.fast import clear_caches
    from repro.resilience.faults import mark_exec_worker

    clear_caches()
    # Lets an injected worker_crash hard-exit the child (a genuine
    # BrokenProcessPool) instead of raising into the parent.
    mark_exec_worker()


class _Success:
    """Per-call outcome: the call returned *value*."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value


class _Failure:
    """Per-call outcome: the call raised *error*."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


def _serial_outcomes(calls: Sequence[Tuple[Callable, tuple]]) -> List[object]:
    """Run prepared calls in the calling thread, one outcome per call.

    Retryable (:class:`BackendError`) failures keep the sweep going so
    every retryable span is known before the retry round; the first
    non-retryable failure stops execution immediately — it will be
    raised anyway, and later calls must not run twice.
    """
    outcomes: List[object] = []
    for fn, args in calls:
        try:
            outcomes.append(_Success(fn(*args)))
        except BackendError as exc:
            outcomes.append(_Failure(exc))
        except Exception as exc:
            outcomes.append(_Failure(exc))
            break
    return outcomes


class BatchHandle:
    """One in-flight backend span: the futures half of the API.

    Returned by :meth:`ExecutionBackend.submit`.  ``done()`` (and its
    alias ``poll()``) report, without blocking, whether ``result()``
    would still have to wait on remote workers; ``result()`` waits for
    the span, runs the same retry/watchdog/degradation machinery the
    blocking :meth:`ExecutionBackend.run` applies, and returns the
    per-call results in submission order — byte-identical to what
    ``run()`` on the same calls would have returned.

    The outcome is memoized: every ``result()`` call after the first
    returns the same list (or re-raises the same error), mirroring
    ``concurrent.futures`` semantics.  Handles are not thread-safe;
    one owner collects them.
    """

    __slots__ = ("_backend", "_calls", "_policy", "_token", "_results", "_error")

    def __init__(
        self,
        backend: Optional["ExecutionBackend"],
        calls: List[Call],
        policy: Optional[ResiliencePolicy],
        token: Optional[object],
    ):
        self._backend = backend
        self._calls = calls
        self._policy = policy
        #: Backend-private record of the already-launched first attempt
        #: (e.g. a futures list).  None = nothing is in flight; the
        #: whole span runs synchronously inside :meth:`result`.
        self._token = token
        self._results: Optional[List[object]] = None
        self._error: Optional[BaseException] = None

    @classmethod
    def completed(cls, results: List[object]) -> "BatchHandle":
        """A handle that is already done (empty spans, precomputed work)."""
        handle = cls(None, [], None, None)
        handle._results = results
        return handle

    def done(self) -> bool:
        """True when :meth:`result` will not block on in-flight work.

        Non-blocking.  An unlaunched handle (no async capability — see
        :meth:`ExecutionBackend.submit`) reports True: its ``result()``
        computes in the calling thread, it never *waits*.  Note that a
        True here does not promise the recovery machinery will not run
        — a collected failure may still retry inside ``result()``.
        """
        if self._results is not None or self._error is not None:
            return True
        if self._token is None:
            return True
        return self._backend._token_done(self._token)

    def poll(self) -> bool:
        """Alias of :meth:`done` (the submit()/poll() naming)."""
        return self.done()

    def result(self) -> List[object]:
        """Wait for the span; results in submission order (memoized).

        First call drains the in-flight attempt (watchdogged per the
        policy) and heals failures exactly as
        :meth:`ExecutionBackend.run` would: per-span retries with
        backoff, then chain degradation.  Call exceptions and
        exhausted infrastructure failures raise — and raise again on
        every later call.
        """
        if self._error is not None:
            raise self._error
        if self._results is None:
            token, self._token = self._token, None
            try:
                self._results = self._backend._collect(
                    self._calls, self._policy, token
                )
            except BaseException as exc:
                self._error = exc
                raise
        return self._results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "in-flight"
        return f"<BatchHandle {len(self._calls)} call(s), {state}>"


class ExecutionBackend(ABC):
    """Where the batch engine's independent sweeps execute."""

    #: Stable identifier recorded in bench metadata and artifacts.
    name: str = "abstract"

    #: True when workers share the caller's address space (inline,
    #: threads): callers may then hand the backend closures over live
    #: objects (e.g. whole per-channel flushes).  Process backends get
    #: only picklable top-level calls.
    supports_shared_state: bool = True

    def __init__(self) -> None:
        #: Per-instance recovery budget (None = module default).
        self.resilience: Optional[ResiliencePolicy] = None
        #: Sticky degradation target after an unhealable infrastructure
        #: failure: once set, every run is delegated down the chain.
        self._degraded_to: Optional["ExecutionBackend"] = None
        #: Recorded degradation reasons, in order (crash-driven chain
        #: degradation; the process backend's *structural* fallback
        #: keeps its own ``degraded_reason`` attribute).
        self.degradations: List[str] = []
        #: Circuit breaker, created lazily from the first policy that
        #: carries a :class:`~repro.resilience.breaker.BreakerPolicy`.
        #: While OPEN, :meth:`submit` routes spans straight to the
        #: fallback — proactive and recoverable, unlike the sticky
        #: ``_degraded_to`` chain.
        self._breaker: Optional[CircuitBreaker] = None

    @property
    @abstractmethod
    def workers(self) -> int:
        """Upper bound on concurrently executing calls (>= 1)."""

    @abstractmethod
    def _execute(
        self,
        calls: Sequence[Tuple[Callable, tuple]],
        timeout: Optional[float],
    ) -> List[object]:
        """Run prepared calls once; per-call outcomes in order.

        Returns :class:`_Success`/:class:`_Failure` wrappers (may be
        shorter than *calls* if execution stopped at a non-retryable
        failure).  Raises :class:`BackendError` for *pool-level*
        failures that doomed the whole span — a broken process pool,
        a watchdog timeout — which the retry loop owns.
        """

    def fallback(self) -> Optional["ExecutionBackend"]:
        """Next link of the degradation chain (None = nowhere to go)."""
        return None

    def reset_degradation(self) -> None:
        """Forget sticky crash degradation (test/bench isolation)."""
        self._degraded_to = None
        self.degradations.clear()
        if self._breaker is not None:
            self._breaker.reset()

    def _breaker_for(
        self, policy: ResiliencePolicy
    ) -> Optional[CircuitBreaker]:
        """The instance breaker, created on first breaker-ful policy."""
        if self._breaker is None and policy.breaker is not None:
            self._breaker = CircuitBreaker(policy.breaker)
        return self._breaker

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        """The live circuit breaker, if a policy ever configured one."""
        return self._breaker

    def run(
        self,
        calls: Sequence[Call],
        policy: Optional[ResiliencePolicy] = None,
    ) -> List[object]:
        """Execute every call; results in submission order.

        Implemented as submit-then-drain — ``self.submit(calls,
        policy).result()`` — so the blocking and futures halves of the
        API can never diverge.  Exceptions raised by a call propagate
        to the caller (after all submitted work has been collected or
        abandoned by the pool) — a backend never swallows a crypto
        error.  Infrastructure failures (:class:`BackendError`) are
        healed instead: failed spans retry with exponential backoff, a
        watchdogged span that overruns is abandoned and retried, and
        when retries are exhausted the span completes on the fallback
        chain (``process`` → ``thread`` → ``inline``) with the reason
        recorded — degradation is sticky for the instance.
        """
        return self.submit(calls, policy).result()

    def submit(
        self,
        calls: Sequence[Call],
        policy: Optional[ResiliencePolicy] = None,
    ) -> BatchHandle:
        """Launch the calls without waiting; a :class:`BatchHandle`.

        The futures half of :meth:`run`: pool backends hand the span
        to their workers immediately and return, so the caller can
        keep doing other work (coalescing the next batch, advancing
        sim time) while the crypto executes — ``handle.result()``
        later collects it, byte-identical to what ``run()`` would have
        returned.  Backends with no overlap to offer — inline, a
        single-worker or degraded pool, a one-call span — return an
        *unlaunched* handle whose ``result()`` simply computes on the
        spot: same results, no concurrency.

        Only the first attempt is launched eagerly; all recovery
        (retries, watchdog, chain degradation) runs inside
        ``result()``, where failures surface exactly as :meth:`run`
        surfaces them.  The watchdog budget covers the *collection* of
        the span, mirroring the blocking path's accounting.
        """
        calls = list(calls)
        if not calls:
            return BatchHandle.completed([])
        if policy is None:
            policy = self.resilience or DEFAULT_POLICY
        if self._degraded_to is not None:
            return self._degraded_to.submit(calls, policy)
        breaker = self._breaker_for(policy)
        if breaker is not None and breaker.should_bypass():
            target = self.fallback()
            if target is not None:
                # Route around the sick backend without paying its
                # retry/watchdog tax; the breaker's half-open probes
                # decide when spans come back here.
                return target.submit(calls, policy)
        return BatchHandle(self, calls, policy, self._launch(calls))

    def _launch(self, calls: List[Call]) -> Optional[object]:
        """Start attempt 0 asynchronously; a token, or None.

        None means this backend has nothing to launch (no pool, one
        worker, a serial-sized span): the handle stays unlaunched and
        ``result()`` runs the ordinary blocking path.  A non-None
        token is backend-private state for :meth:`_token_done` /
        :meth:`_token_collect` (for the pools: the futures list).
        """
        return None

    def _token_done(self, token: object) -> bool:
        """Non-blocking: has every launched call finished (or died)?"""
        return all(future.done() for future in token)

    def _token_collect(
        self, token: object, timeout: Optional[float]
    ) -> List[object]:
        """Drain a launched attempt into per-call outcomes (in order).

        Raises :class:`BackendError` for pool-level failures exactly
        as :meth:`_execute` would — the retry loop treats a collected
        first attempt and a blocking attempt identically.
        """
        return _pooled_outcomes(token, timeout)

    def _collect(
        self,
        calls: List[Call],
        policy: ResiliencePolicy,
        token: Optional[object],
    ) -> List[object]:
        """Resolve a handle: drain the launched attempt, heal, merge."""
        if token is None:
            return self._run_recovering(calls, policy)
        return self._run_recovering(
            calls,
            policy,
            first=lambda: self._token_collect(token, policy.watchdog_seconds),
        )

    def _prepare(
        self, call: Call, attempt: int
    ) -> Tuple[Callable, tuple]:
        """Bind a call for execution, stamping any fault directive."""
        if len(call) == 2:
            return call  # type: ignore[return-value]
        fn, args, point = call
        return fn, (*args, point.directive(attempt, self.name))

    def _run_recovering(
        self,
        calls: List[Call],
        policy: ResiliencePolicy,
        first: Optional[Callable[[], List[object]]] = None,
    ) -> List[object]:
        # *first*, when given, supplies attempt 0's outcomes from work
        # already launched on THIS backend (a collected submit token) —
        # so the degradation shortcut must not reroute it; anything
        # after attempt 0 runs through the ordinary machinery.
        if self._degraded_to is not None and first is None:
            return self._degraded_to._run_recovering(calls, policy)
        breaker = self._breaker_for(policy)
        results: List[object] = [None] * len(calls)
        pending = list(range(len(calls)))
        attempt = 0
        while True:
            try:
                if first is not None:
                    launched, first = first, None
                    outcomes = launched()
                else:
                    prepared = [
                        self._prepare(calls[i], attempt) for i in pending
                    ]
                    outcomes = self._execute(prepared, policy.watchdog_seconds)
            except BackendError as exc:
                if breaker is not None:
                    breaker.record_failure()
                if attempt < policy.max_retries:
                    attempt = self._note_retry(attempt, policy)
                    continue
                return self._degrade_or_raise(
                    exc, calls, pending, results, policy
                )
            failed: List[int] = []
            span_error: Optional[BackendError] = None
            for index, outcome in zip(pending, outcomes):
                if isinstance(outcome, _Failure):
                    if isinstance(outcome.error, BackendError):
                        failed.append(index)
                        if span_error is None:
                            span_error = outcome.error
                    else:
                        raise outcome.error
                else:
                    results[index] = outcome.value
            if not failed:
                if breaker is not None:
                    breaker.record_success()
                return results
            if breaker is not None:
                breaker.record_failure()
            pending = failed
            if attempt < policy.max_retries:
                attempt = self._note_retry(attempt, policy)
                continue
            assert span_error is not None
            return self._degrade_or_raise(
                span_error, calls, pending, results, policy
            )

    @staticmethod
    def _note_retry(attempt: int, policy: ResiliencePolicy) -> int:
        resilience_stats.record_retry()
        pause = policy.backoff(attempt)
        if pause > 0:
            time.sleep(pause)
        return attempt + 1

    def _degrade_or_raise(
        self,
        error: BackendError,
        calls: List[Call],
        pending: List[int],
        results: List[object],
        policy: ResiliencePolicy,
    ) -> List[object]:
        """Retries exhausted: hand the still-failing spans down the chain."""
        target = self.fallback() if policy.degrade else None
        if target is None:
            raise error
        reason = f"{self.name} -> {target.name}: {error}"
        self.degradations.append(reason)
        self._degraded_to = target
        resilience_stats.record_degradation(reason)
        healed = target._run_recovering([calls[i] for i in pending], policy)
        for index, value in zip(pending, healed):
            results[index] = value
        return results

    def shard_spans(
        self, count: int, min_shard: int = DEFAULT_MIN_SHARD
    ) -> List[Tuple[int, int]]:
        """Split ``range(count)`` into contiguous per-worker spans.

        At most :attr:`workers` spans, each at least *min_shard* items
        (so tiny batches never shard), sizes differing by at most one
        so the merge is deterministic: concatenating span results in
        order reproduces the unsharded result order exactly.
        """
        if count <= 0:
            return []
        shards = min(max(1, self.workers), max(1, count // max(1, min_shard)))
        if shards <= 1:
            return [(0, count)]
        base, extra = divmod(count, shards)
        spans, start = [], 0
        for index in range(shards):
            stop = start + base + (1 if index < extra else 0)
            spans.append((start, stop))
            start = stop
        return spans

    def close(self) -> None:
        """Release pooled workers (idempotent; inline is a no-op)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} workers={self.workers}>"


class InlineBackend(ExecutionBackend):
    """Run every call sequentially in the calling thread (default).

    The end of the degradation chain: no pool to break, no worker to
    crash, nothing for a watchdog to abandon — injected worker faults
    are inert here, which is what makes chain degradation terminate.
    """

    name = "inline"
    supports_shared_state = True

    @property
    def workers(self) -> int:
        return 1

    def _execute(
        self,
        calls: Sequence[Tuple[Callable, tuple]],
        timeout: Optional[float],
    ) -> List[object]:
        # Inline execution cannot be preempted; the watchdog does not
        # apply (timeout intentionally unused).
        return _serial_outcomes(calls)


def _pooled_outcomes(futures, timeout: Optional[float]):
    """Collect future results in submission order under one deadline.

    The deadline covers the whole span, not each future: a hung worker
    must cost one watchdog budget, however wide the batch.  Raises
    :class:`BatchTimeoutError` on expiry with the futures abandoned
    (cancelled where still possible).
    """
    from concurrent.futures import BrokenExecutor
    from concurrent.futures import TimeoutError as FutureTimeout

    deadline = None if timeout is None else time.monotonic() + timeout
    outcomes: List[object] = []
    for future in futures:
        remaining = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        try:
            outcomes.append(_Success(future.result(remaining)))
        except FutureTimeout:
            for pending in futures:
                pending.cancel()
            resilience_stats.record_watchdog()
            raise BatchTimeoutError(
                f"backend span exceeded its {timeout:.3f}s watchdog"
            ) from None
        except BrokenExecutor:
            # Pool-level, not call-level: the owning backend converts
            # it to a retryable WorkerCrashError.
            raise
        except BackendError as exc:
            outcomes.append(_Failure(exc))
        except Exception as exc:
            outcomes.append(_Failure(exc))
    return outcomes


class ThreadPoolBackend(ExecutionBackend):
    """Bounded thread pool; numpy sweeps release the GIL and overlap."""

    name = "thread"
    supports_shared_state = True

    def __init__(self, workers: Optional[int] = None):
        super().__init__()
        if workers is not None and workers < 1:
            raise ValueError(f"thread backend needs >= 1 worker, got {workers}")
        self._requested = workers
        self._pool = None

    @property
    def workers(self) -> int:
        return self._requested or (os.cpu_count() or 1)

    def fallback(self) -> Optional[ExecutionBackend]:
        return INLINE

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def _execute(
        self,
        calls: Sequence[Tuple[Callable, tuple]],
        timeout: Optional[float],
    ) -> List[object]:
        if len(calls) <= 1 or self.workers <= 1:
            return _serial_outcomes(calls)
        pool = self._ensure_pool()
        futures = [pool.submit(fn, *args) for fn, args in calls]
        return _pooled_outcomes(futures, timeout)

    def _launch(self, calls: List[Call]) -> Optional[object]:
        if len(calls) <= 1 or self.workers <= 1:
            return None
        pool = self._ensure_pool()
        futures = []
        for call in calls:
            fn, args = self._prepare(call, 0)
            futures.append(pool.submit(fn, *args))
        return futures

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessPoolBackend(ExecutionBackend):
    """Shared-nothing worker processes with fork-safe cold caches.

    Calls must be top-level functions with picklable arguments.  When
    the host cannot fork children (daemonic multiprocessing workers,
    restricted sandboxes) the backend degrades to inline execution —
    results stay byte-identical, only the overlap is lost — and
    :attr:`degraded_reason` records why for bench metadata.
    """

    name = "process"
    supports_shared_state = False

    def __init__(
        self, workers: Optional[int] = None, arena: Optional[bool] = None
    ):
        super().__init__()
        if workers is not None and workers < 1:
            raise ValueError(f"process backend needs >= 1 worker, got {workers}")
        self._requested = workers
        self._pool = None
        self._fallback: Optional[ThreadPoolBackend] = None
        #: Why the backend fell back to inline execution (None = it
        #: has not; pools are created lazily on the first wide run).
        #: This is the *structural* fallback — child processes are
        #: impossible here, full stop — distinct from the crash-driven
        #: chain degradation recorded in :attr:`degradations`.
        self.degraded_reason: Optional[str] = None
        #: Arena dataplane switch: True/False pin it; None follows
        #: ``REPRO_ARENA`` (default on).
        self._arena_requested = (
            _env_arena_default() if arena is None else bool(arena)
        )
        self._arena = None
        #: Why arena dispatches fell back to the pickling dataplane
        #: (None = they have not).  Structural and sticky, like
        #: :attr:`degraded_reason`: shared memory is unusable on this
        #: host, results stay byte-identical over pickling.
        self.arena_degraded_reason: Optional[str] = None
        #: Key-schedule expansions reported by arena shard workers —
        #: the warm-cache observable: a steady-state same-key storm
        #: stops incrementing this once every worker has expanded the
        #: key once, and a rekey adds at most one per worker.
        self.worker_expansions = 0

    @property
    def workers(self) -> int:
        if self.degraded_reason is not None:
            return 1
        return self._requested or (os.cpu_count() or 1)

    def dispatch_arena(self):
        """The packet arena for descriptor-based dispatches, or None.

        None routes the caller to the pickling dataplane: the arena is
        off (``REPRO_ARENA=0`` / ``process-pickle`` / ``arena=False``),
        this backend cannot run concurrent workers anyway (degraded or
        single-worker — descriptors would only add indirection), or
        shared memory turned out to be unusable here, in which case
        :attr:`arena_degraded_reason` records why, exactly once.
        """
        if (
            not self._arena_requested
            or self._degraded_to is not None
            or self.arena_degraded_reason is not None
            or self.workers <= 1
        ):
            return None
        if self._arena is None:
            try:
                from repro.crypto.fast.arena import PacketArena

                self._arena = PacketArena()
            except Exception as exc:
                self.arena_degraded_reason = (
                    f"shared-memory arena unavailable: {exc}"
                )
                return None
        return self._arena

    def record_worker_expansions(self, count: int) -> None:
        """Tally key-schedule expansions a collected dispatch reported."""
        self.worker_expansions += count

    def fallback(self) -> Optional[ExecutionBackend]:
        """Degrade to threads first: overlap survives a broken pool."""
        if self._fallback is None:
            self._fallback = ThreadPoolBackend(self._requested)
        return self._fallback

    def _ensure_pool(self):
        if self._pool is not None or self.degraded_reason is not None:
            return self._pool
        import multiprocessing

        if multiprocessing.current_process().daemon:
            # Children of daemonic pool workers are forbidden; e.g. a
            # bench kernel running inside the sweep runner's pool.
            self.degraded_reason = "daemonic process cannot spawn workers"
            return None
        try:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=_process_worker_init
            )
        except (OSError, ValueError, RuntimeError) as exc:
            self.degraded_reason = f"process pool unavailable: {exc}"
        return self._pool

    def _abandon_pool(self) -> None:
        """Drop the pool without waiting (hung or broken workers)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _execute(
        self,
        calls: Sequence[Tuple[Callable, tuple]],
        timeout: Optional[float],
    ) -> List[object]:
        if len(calls) <= 1 or self.workers <= 1:
            return _serial_outcomes(calls)
        pool = self._ensure_pool()
        if pool is None:
            return _serial_outcomes(calls)
        from concurrent.futures.process import BrokenProcessPool

        try:
            futures = [pool.submit(fn, *args) for fn, args in calls]
            return _pooled_outcomes(futures, timeout)
        except BrokenProcessPool as exc:
            # Pool-level failure: a worker died, not a call raising.
            # Drop the dead pool and report retryable; the retry loop
            # recreates a fresh pool, and persistent crashes degrade
            # down the chain instead of failing the dispatch.
            self._abandon_pool()
            raise WorkerCrashError(f"process pool broke: {exc}") from exc
        except BatchTimeoutError:
            # The hung worker keeps its slot until the child exits;
            # abandon the pool so the retry starts on healthy workers.
            self._abandon_pool()
            raise

    def _launch(self, calls: List[Call]) -> Optional[object]:
        if len(calls) <= 1 or self.workers <= 1:
            return None
        pool = self._ensure_pool()
        if pool is None:
            return None
        from concurrent.futures.process import BrokenProcessPool

        try:
            futures = []
            for call in calls:
                fn, args = self._prepare(call, 0)
                futures.append(pool.submit(fn, *args))
            return futures
        except BrokenProcessPool:
            # The pool died before the span even launched; drop it and
            # hand back an unlaunched handle — result() recreates a
            # fresh pool through the ordinary blocking path.
            self._abandon_pool()
            return None

    def _token_collect(
        self, token: object, timeout: Optional[float]
    ) -> List[object]:
        from concurrent.futures.process import BrokenProcessPool

        try:
            return _pooled_outcomes(token, timeout)
        except BrokenProcessPool as exc:
            # Same translation as _execute: pool-level death of a
            # launched span is retryable, on a fresh pool.
            self._abandon_pool()
            raise WorkerCrashError(f"process pool broke: {exc}") from exc
        except BatchTimeoutError:
            self._abandon_pool()
            raise

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._fallback is not None:
            self._fallback.close()
        if self._arena is not None:
            self._arena.close()
            self._arena = None


#: Shared inline singleton: shard workers execute through this so a
#: worker can never recursively re-enter its own pool.
INLINE = InlineBackend()


def _env_arena_default() -> bool:
    """Whether bare ``process`` backends use the arena (``REPRO_ARENA``)."""
    text = os.environ.get("REPRO_ARENA", "1").strip().lower()
    return text not in ("0", "off", "false", "no", "pickle")


def make_backend(spec: Union[ExecutionBackend, str]) -> ExecutionBackend:
    """Build a backend from a spec: instance, or ``name[:workers]``.

    Accepted names: ``inline``, ``thread``, ``process`` (a ``:N``
    suffix caps the worker count, e.g. ``thread:4``).  The process
    dataplane can be pinned regardless of ``REPRO_ARENA``:
    ``process-arena`` forces the shared-memory arena and
    ``process-pickle`` forces per-call pickling.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    text = str(spec).strip().lower()
    name, _, workers_text = text.partition(":")
    try:
        workers = int(workers_text) if workers_text else None
    except ValueError:
        raise ValueError(
            f"bad worker count in backend spec {spec!r}; use e.g. 'thread:4'"
        ) from None
    if name in ("", "inline"):
        if workers not in (None, 1):
            raise ValueError("the inline backend has exactly one worker")
        return InlineBackend()
    if name in ("thread", "threads", "threadpool"):
        return ThreadPoolBackend(workers)
    if name in ("process", "processes", "processpool"):
        return ProcessPoolBackend(workers)
    if name in ("process-arena", "process_arena"):
        return ProcessPoolBackend(workers, arena=True)
    if name in ("process-pickle", "process_pickle"):
        return ProcessPoolBackend(workers, arena=False)
    raise ValueError(
        f"unknown execution backend {spec!r}; valid: inline, "
        "thread[:N], process[:N], process-arena[:N], process-pickle[:N] "
        "(REPRO_BACKEND uses the same syntax)"
    )


#: Lazily-built process-wide default (None = re-read REPRO_BACKEND).
_DEFAULT_BACKEND: Optional[ExecutionBackend] = None


def default_backend() -> ExecutionBackend:
    """The process-wide backend, seeded from ``REPRO_BACKEND``."""
    global _DEFAULT_BACKEND
    if _DEFAULT_BACKEND is None:
        _DEFAULT_BACKEND = make_backend(os.environ.get("REPRO_BACKEND", "inline"))
    return _DEFAULT_BACKEND


def set_default_backend(spec: BackendSpec) -> Optional[ExecutionBackend]:
    """Install the process-wide default; returns the previous one.

    ``None`` uninstalls it, so the next :func:`default_backend` call
    re-reads ``REPRO_BACKEND`` (test isolation hook).  The previous
    backend is returned un-closed — callers own its lifetime.
    """
    global _DEFAULT_BACKEND
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = None if spec is None else make_backend(spec)
    return previous


#: Memoized spec-string resolutions.  Layers may *store* a spec string
#: (e.g. ``CommController.backend = "thread:2"``) and resolve it on
#: every dispatch; constructing a fresh pool-backed instance each time
#: would leak one executor per dispatch, so equal specs share one
#: instance for the life of the process.
_SHARED_BACKENDS: dict = {}


def resolve_backend(backend: BackendSpec = None) -> ExecutionBackend:
    """Resolve a ``backend=`` parameter: instance, spec string or None.

    **This is the single normalization point for** :data:`BackendSpec`
    **values.**  Every layer that accepts ``backend=`` (the ``*_many``
    APIs, :class:`~repro.mccp.mccp.Mccp`,
    :class:`~repro.radio.comm_controller.CommController`,
    ``SdrPlatform.run_workload``) funnels through here rather than
    re-resolving defensively.  The contract:

    - an :class:`ExecutionBackend` **instance** is a no-op
      pass-through — the very same object comes back, its lifetime
      stays with whoever constructed it, and resolving twice is
      therefore always safe and free;
    - a **spec string** (``"thread:4"``) resolves to a process-shared
      instance, memoized per normalized spec, so layers that *store* a
      spec and resolve per dispatch reuse one warm pool instead of
      leaking an executor each time;
    - ``None`` means the process-wide :func:`default_backend` (seeded
      from ``REPRO_BACKEND``).

    Idempotent by construction: ``resolve_backend(resolve_backend(x))
    is resolve_backend(x)`` for every accepted ``x``.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        return default_backend()
    if isinstance(backend, str):
        key = backend.strip().lower()
        shared = _SHARED_BACKENDS.get(key)
        if shared is None:
            shared = _SHARED_BACKENDS[key] = make_backend(key)
        return shared
    return make_backend(backend)


@atexit.register
def _close_shared_backends() -> None:
    """Shut the module-lifetime pools down before interpreter teardown.

    ProcessPoolExecutor's own atexit hook races module teardown when a
    pool is simply abandoned (spurious ``Exception ignored ...``
    tracebacks on stderr under ``REPRO_BACKEND=process``); closing the
    default and spec-shared backends explicitly drains them while the
    runtime is still whole.
    """
    global _DEFAULT_BACKEND
    for backend in (_DEFAULT_BACKEND, *_SHARED_BACKENDS.values()):
        if backend is not None:
            backend.close()
    _DEFAULT_BACKEND = None
    _SHARED_BACKENDS.clear()


__all__ = [
    "Call",
    "BackendSpec",
    "DEFAULT_MIN_SHARD",
    "DEFAULT_POLICY",
    "ResiliencePolicy",
    "BatchHandle",
    "ExecutionBackend",
    "InlineBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "INLINE",
    "make_backend",
    "default_backend",
    "set_default_backend",
    "resolve_backend",
]
