"""Shared-memory packet arena for the process backend's zero-copy path.

The pickling dataplane ships every packet's payload bytes through a
``ProcessPoolExecutor`` twice (args in, results out) — at 2 KB radio
widths that serialisation tax is why ``ProcessPoolBackend`` loses to
inline (the ROADMAP item PR 9 closed).  The arena removes the payload
from the
wire entirely: one batch's scatter-gather inputs and result regions
live in a ``multiprocessing.shared_memory`` slab, the only thing
pickled per shard is a tuple of **span descriptors** (slab name +
offsets/lengths), and workers read and write ``memoryview``s over the
mapped slab in place.

Allocation model
----------------
A :class:`PacketArena` owns a small set of slabs.  :meth:`reserve`
hands out a :class:`Generation` — one batch's contiguous bump-pointer
region inside a single slab (a generation never spans slabs, so one
descriptor namespace covers the whole dispatch).  Releasing the last
live generation of the current slab rewinds its bump pointer to zero
(*generation recycling*: steady-state traffic reuses the same pages
forever); a reservation that cannot fit grows the arena by retiring
the current slab (it is unlinked once its own generations release) and
cutting a larger one.  Ragged and zero-length payloads are just
offsets; there is no per-packet framing.

Lifecycle hygiene
-----------------
Slabs are unlinked when the owning :class:`PacketArena` is closed
(``ProcessPoolBackend.close`` does this) and, as a backstop, by an
``atexit`` hook over every live arena — bench loops and aborted runs
never leak ``/dev/shm`` segments.  An ``os.register_at_fork`` hook
disowns arenas in forked children so a child's ``atexit`` can never
unlink a parent's live slab, and Python 3.11's unconditional
``resource_tracker`` registration is suppressed on worker-side
attaches (:func:`attach_view`) so a worker's tracker traffic cannot
unlink — or unregister — a segment the parent still owns.  Crashed
workers hold no unlink rights at all — reclamation is always the
owner's.

Rekey epoch protocol
--------------------
Persistent workers keep warm per-key-id state (the AES key-schedule /
GHASH table LRUs stay hot across dispatches).  The parent tags each
dispatch with ``(key_id, epoch)`` from :func:`key_epoch`;
``KeyScheduler.invalidate`` (the rekey path) calls
:func:`bump_key_epoch`, and :func:`note_key_epoch` on the worker drops
exactly the rotated key id's warm record when the shipped epoch is
newer than the one it last saw — other keys' warm state is untouched.
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Initial slab size.  Two orders of magnitude above a width-32 batch
#: of 2 KB packets (inputs + aad + result regions), so steady radio
#: traffic recycles one slab; bigger reservations grow the arena.
DEFAULT_SLAB_BYTES = 4 << 20

#: Every slab name starts with this (plus the owning pid), so tests
#: and post-mortems can count live ``/dev/shm`` segments per process.
NAME_PREFIX = "repro-arena"

BufferLike = Union[bytes, bytearray, memoryview]
Buffers = Union[BufferLike, Sequence[BufferLike]]


def _new_segment(name: str, size: int):
    """Create one shared-memory segment (the monkeypatch seam)."""
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name, create=True, size=size)


class _Slab:
    """One shared-memory segment plus its bump-pointer accounting."""

    __slots__ = ("shm", "name", "capacity", "used", "live")

    def __init__(self, shm) -> None:
        self.shm = shm
        self.name = shm.name
        self.capacity = len(shm.buf)
        #: Bump pointer: next free offset.
        self.used = 0
        #: Generations carved from this slab and not yet released.
        self.live = 0


class Generation:
    """One batch's contiguous reservation inside a single slab.

    A bump-pointer sub-allocator: :meth:`alloc` and :meth:`write` hand
    out offsets strictly inside ``[base, limit)``, so concurrent
    generations (pipelined dispatches in flight together) can never
    alias each other's regions.  Released exactly once, by whoever
    collected the dispatch (:func:`PacketArena.release` is idempotent).
    """

    __slots__ = ("_arena", "_slab", "base", "limit", "_cursor", "released")

    def __init__(self, arena: "PacketArena", slab: _Slab, base: int,
                 limit: int) -> None:
        self._arena = arena
        self._slab = slab
        self.base = base
        self.limit = limit
        self._cursor = base
        self.released = False

    @property
    def slab_name(self) -> str:
        """The shared-memory segment name descriptors refer to."""
        return self._slab.name

    @property
    def view(self) -> memoryview:
        """The owner's mapping of the whole slab (offset namespace)."""
        return self._slab.shm.buf

    @property
    def nbytes(self) -> int:
        """Reserved size of this generation."""
        return self.limit - self.base

    def alloc(self, nbytes: int) -> int:
        """Carve *nbytes* out of the reservation; the region's offset."""
        if nbytes < 0:
            raise ValueError(f"cannot alloc {nbytes} bytes")
        offset = self._cursor
        if offset + nbytes > self.limit:
            raise RuntimeError(
                f"arena generation overflow: alloc({nbytes}) at offset "
                f"{offset} exceeds the {self.nbytes}-byte reservation "
                "(the staging size computation is wrong)"
            )
        self._cursor = offset + nbytes
        return offset

    def write(self, data: Buffers) -> Tuple[int, int]:
        """Copy *data* (scatter-gather allowed) in; ``(offset, length)``.

        Segments of a scatter list land contiguously, so the region is
        the gathered payload without an intermediate ``bytes`` join.
        """
        buf = self._slab.shm.buf
        if isinstance(data, (bytes, bytearray, memoryview)):
            segments: Sequence[BufferLike] = (data,)
        else:
            segments = data
        length = sum(len(segment) for segment in segments)
        offset = self.alloc(length)
        cursor = offset
        for segment in segments:
            end = cursor + len(segment)
            buf[cursor:end] = bytes(segment) if not isinstance(
                segment, (bytes, bytearray, memoryview)
            ) else segment
            cursor = end
        return offset, length

    def release(self) -> None:
        """Hand the region back (idempotent; recycling is the arena's)."""
        self._arena.release(self)


#: Owner-side registry: slab name -> SharedMemory, so executing arena
#: calls in the owning process (inline fall-through, thread fallback,
#: the serial guard) resolves views locally instead of re-attaching.
_OWNED: Dict[str, object] = {}

#: Worker-side attach cache: slab name -> SharedMemory (one mapping
#: per segment per worker process, persistent across dispatches).
_ATTACHED: Dict[str, object] = {}

#: Every live arena in this process (atexit / fork bookkeeping).
_ARENAS: "weakref.WeakSet[PacketArena]" = weakref.WeakSet()


class PacketArena:
    """A slab allocator over ``multiprocessing.shared_memory``.

    Thread-safe; one instance serves every dispatch of one
    ``ProcessPoolBackend`` (batched and pipelined dataplanes alike).
    Construction cuts the first slab eagerly so hosts without usable
    shared memory fail *here* — the backend turns that into a recorded
    structural fallback, never a dispatch error.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, slab_bytes: int = DEFAULT_SLAB_BYTES) -> None:
        if slab_bytes < 1:
            raise ValueError(f"slab_bytes must be >= 1, got {slab_bytes}")
        self._slab_bytes = slab_bytes
        self._lock = threading.Lock()
        self._owner_pid = os.getpid()
        self.closed = False
        #: Retired slabs still holding live generations.
        self._retired: List[_Slab] = []
        # -- observability (tests, bench metadata) ------------------------
        self.slabs_created = 0
        self.grows = 0
        self.recycles = 0
        self._current = self._cut_slab(slab_bytes)
        _ARENAS.add(self)

    # -- slab management ---------------------------------------------------

    def _cut_slab(self, capacity: int) -> _Slab:
        with PacketArena._counter_lock:
            PacketArena._counter += 1
            serial = PacketArena._counter
        name = f"{NAME_PREFIX}-{os.getpid()}-{serial}"
        slab = _Slab(_new_segment(name, capacity))
        _OWNED[slab.name] = slab.shm
        self.slabs_created += 1
        return slab

    def _unlink_slab(self, slab: _Slab) -> None:
        _OWNED.pop(slab.name, None)
        try:
            slab.shm.close()
        except BufferError:  # pragma: no cover - exported views alive
            pass
        if self._owner_pid == os.getpid():
            try:
                slab.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # -- reservation -------------------------------------------------------

    def reserve(self, nbytes: int) -> Generation:
        """A contiguous *nbytes* region in one slab, as a generation."""
        if nbytes < 0:
            raise ValueError(f"cannot reserve {nbytes} bytes")
        with self._lock:
            if self.closed:
                raise RuntimeError("arena is closed")
            slab = self._current
            if slab.used + nbytes > slab.capacity:
                # An idle current slab always has used == 0 (release
                # rewinds it), so landing here means the slab is either
                # busy with live generations or simply too small: cut a
                # bigger one.  A busy slab retires and is unlinked when
                # its own generations release.
                capacity = slab.capacity * 2 if slab.live else slab.capacity
                capacity = max(capacity, self._slab_bytes)
                while capacity < nbytes:
                    capacity *= 2
                if slab.live:
                    self._retired.append(slab)
                else:
                    self._unlink_slab(slab)
                slab = self._current = self._cut_slab(capacity)
                self.grows += 1
            generation = Generation(self, slab, slab.used, slab.used + nbytes)
            slab.used += nbytes
            slab.live += 1
            return generation

    def release(self, generation: Generation) -> None:
        """Return a generation; recycle or unlink its slab when idle."""
        with self._lock:
            if generation.released:
                return
            generation.released = True
            if self.closed:
                return  # close() already reclaimed every slab
            slab = generation._slab
            slab.live -= 1
            if slab.live > 0:
                return
            if slab is self._current:
                if not self.closed:
                    slab.used = 0  # recycle in place
                    self.recycles += 1
                    return
                self._unlink_slab(slab)
            elif slab in self._retired:
                self._retired.remove(slab)
                self._unlink_slab(slab)

    # -- introspection -----------------------------------------------------

    @property
    def live_generations(self) -> int:
        with self._lock:
            slabs = [self._current, *self._retired]
            return sum(slab.live for slab in slabs if slab is not None)

    def segment_names(self) -> List[str]:
        """Names of every segment this arena currently keeps mapped."""
        with self._lock:
            slabs = [self._current, *self._retired]
            return [slab.name for slab in slabs if slab is not None]

    # -- teardown ----------------------------------------------------------

    def _disown(self) -> None:
        """Forked child: drop unlink rights over the parent's slabs."""
        self._owner_pid = -1

    def close(self) -> None:
        """Unlink every slab (idempotent).  In-flight views go stale —
        callers release generations before closing the backend."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            for slab in [self._current, *self._retired]:
                if slab is not None and slab.live == 0:
                    self._unlink_slab(slab)
            # Busy slabs (a generation abandoned mid-flight) are still
            # reclaimed: the owner's close beats a leaked /dev/shm
            # segment, which is the hygiene contract of this module.
            for slab in [self._current, *self._retired]:
                if slab is not None and slab.live > 0:
                    slab.live = 0
                    self._unlink_slab(slab)
            self._current = None  # type: ignore[assignment]
            self._retired = []


# -- attach (worker side) ------------------------------------------------


def attach_view(name: str) -> memoryview:
    """The mapped buffer of slab *name*, wherever this runs.

    In the owning process this resolves through the live arena's own
    mapping; in a pool worker it attaches once per segment and caches
    the mapping for the worker's lifetime.  Python 3.11 registers every
    POSIX attach with the ``resource_tracker`` unconditionally, which
    would let a worker's tracker unlink a segment the parent still
    owns at worker exit — the registration is suppressed for the
    attach (the owner unlinks explicitly; see the module docstring).
    """
    owned = _OWNED.get(name)
    if owned is not None:
        return owned.buf
    shm = _ATTACHED.get(name)
    if shm is None:
        from multiprocessing import resource_tracker, shared_memory

        # Suppress the registration rather than undo it: workers share
        # the owner's tracker process, so a worker-side ``unregister``
        # would clobber the owner's own registration and turn the
        # owner's eventual unlink into tracker noise.
        registered = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = registered
        _ATTACHED[name] = shm
    return shm.buf


def detach_all() -> None:
    """Drop this process's worker-side attach cache (test isolation)."""
    for shm in _ATTACHED.values():
        try:
            shm.close()
        except BufferError:  # pragma: no cover - caller kept a view
            pass
    _ATTACHED.clear()


# -- rekey epoch protocol ------------------------------------------------

_EPOCH_LOCK = threading.Lock()

#: Parent-side truth: key id -> rotation epoch (0 = never rotated).
_KEY_EPOCHS: Dict[object, int] = {}

#: Worker-side record of the freshest ``(epoch, key bytes)`` seen per
#: key id — the warm state the epoch protocol invalidates.
_WARM_KEYS: Dict[object, Tuple[int, bytes]] = {}


def key_epoch(key_id: object) -> int:
    """Current rotation epoch of *key_id* (parent side)."""
    with _EPOCH_LOCK:
        return _KEY_EPOCHS.get(key_id, 0)


def bump_key_epoch(key_id: object) -> int:
    """Advance *key_id*'s epoch (the ``invalidate``/rekey hook)."""
    with _EPOCH_LOCK:
        epoch = _KEY_EPOCHS.get(key_id, 0) + 1
        _KEY_EPOCHS[key_id] = epoch
        return epoch


def note_key_epoch(key: bytes, key_ref: Optional[Tuple[object, int]]) -> bool:
    """Worker-side half of the protocol; True when *key_id* rotated.

    Records the shipped ``(key_id, epoch)`` and drops exactly the
    rotated key id's previous warm record on an epoch change — the old
    schedule becomes unreachable and ages out of the bounded LRU while
    every other key id's warm state stays hot.
    """
    if key_ref is None:
        return False
    key_id, epoch = key_ref
    seen = _WARM_KEYS.get(key_id)
    rotated = seen is not None and seen[0] != epoch
    if seen is None or rotated:
        _WARM_KEYS[key_id] = (epoch, bytes(key))
    return rotated


def warm_keys() -> Dict[object, Tuple[int, bytes]]:
    """This process's warm-key records (introspection for tests)."""
    return dict(_WARM_KEYS)


def clear_warm_keys() -> None:
    """Forget every warm-key record (test isolation / fork hook)."""
    _WARM_KEYS.clear()


# -- process-level hygiene -----------------------------------------------


@atexit.register
def _close_arenas() -> None:
    """Backstop: unlink every live arena before interpreter teardown."""
    for arena in list(_ARENAS):
        arena.close()


def _after_fork_in_child() -> None:
    # The child inherits the parent's mappings but must never unlink
    # them — only the owning process reclaims slabs.  Warm-key records
    # stay truthful only per process, so the child starts cold (the
    # crypto LRUs are cleared by repro.crypto.fast's own fork hook).
    for arena in list(_ARENAS):
        arena._disown()
    _ATTACHED.clear()
    clear_warm_keys()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX CI
    os.register_at_fork(after_in_child=_after_fork_in_child)


__all__ = [
    "DEFAULT_SLAB_BYTES",
    "NAME_PREFIX",
    "PacketArena",
    "Generation",
    "attach_view",
    "detach_all",
    "key_epoch",
    "bump_key_epoch",
    "note_key_epoch",
    "warm_keys",
    "clear_warm_keys",
]
