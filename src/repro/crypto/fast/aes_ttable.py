"""T-table AES (Chodowiec & Gaj lineage).

The classic software formulation of the AES round: SubBytes, ShiftRows
and MixColumns collapse into four 256-entry tables of 32-bit words, so
one round over the whole state is sixteen table lookups and sixteen
XORs on four column words — no per-byte state list, no row shuffling.
The tables are generated once at import from the same algebraic
``SBOX``/``MUL2``/``MUL3`` tables the reference implementation uses, so
there is exactly one source of truth for the field arithmetic.

``expand_key_cached`` wraps the FIPS-197 expansion in an LRU memo: the
MCCP pre-computes round keys into per-core key caches precisely because
traffic re-uses session keys packet after packet, and the software fast
path mirrors that (the batfish-style "precompute once per key" pattern).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.crypto.aes_tables import MUL2, MUL3, SBOX
from repro.errors import BlockSizeError

BLOCK_BYTES = 16

#: Encryption T-tables: TE0[x] packs the MixColumns column of SBOX[x]
#: for byte position 0; TE1..TE3 are byte rotations for positions 1..3.
TE0: List[int] = [0] * 256
TE1: List[int] = [0] * 256
TE2: List[int] = [0] * 256
TE3: List[int] = [0] * 256

for _x in range(256):
    _s = SBOX[_x]
    _t = (MUL2[_s] << 24) | (_s << 16) | (_s << 8) | MUL3[_s]
    TE0[_x] = _t
    TE1[_x] = ((_t >> 8) | (_t << 24)) & 0xFFFFFFFF
    TE2[_x] = ((_t >> 16) | (_t << 16)) & 0xFFFFFFFF
    TE3[_x] = ((_t >> 24) | (_t << 8)) & 0xFFFFFFFF
del _x, _s, _t


@lru_cache(maxsize=256)
def expand_key_cached(key: bytes) -> Tuple[Tuple[int, ...], ...]:
    """FIPS-197 key expansion, memoized per key.

    Returns the schedule as an immutable tuple of ``(rounds + 1)``
    4-word tuples — the same layout as :func:`repro.crypto.aes.expand_key`
    but safe to share between every cipher object holding the key.
    """
    from repro.crypto.aes import expand_key

    return tuple(tuple(rk) for rk in expand_key(key))


def encrypt_words_tt(
    w0: int, w1: int, w2: int, w3: int, round_keys: Sequence[Sequence[int]]
) -> Tuple[int, int, int, int]:
    """Encrypt one block given as four 32-bit column words.

    This is the innermost software kernel; callers that already hold the
    state as words (the bulk counter engine) skip all byte conversion.
    """
    rounds = len(round_keys) - 1
    rk = round_keys[0]
    w0 ^= rk[0]
    w1 ^= rk[1]
    w2 ^= rk[2]
    w3 ^= rk[3]
    t0, t1, t2, t3 = TE0, TE1, TE2, TE3
    for r in range(1, rounds):
        rk = round_keys[r]
        n0 = t0[w0 >> 24] ^ t1[(w1 >> 16) & 255] ^ t2[(w2 >> 8) & 255] ^ t3[w3 & 255] ^ rk[0]
        n1 = t0[w1 >> 24] ^ t1[(w2 >> 16) & 255] ^ t2[(w3 >> 8) & 255] ^ t3[w0 & 255] ^ rk[1]
        n2 = t0[w2 >> 24] ^ t1[(w3 >> 16) & 255] ^ t2[(w0 >> 8) & 255] ^ t3[w1 & 255] ^ rk[2]
        n3 = t0[w3 >> 24] ^ t1[(w0 >> 16) & 255] ^ t2[(w1 >> 8) & 255] ^ t3[w2 & 255] ^ rk[3]
        w0, w1, w2, w3 = n0, n1, n2, n3
    rk = round_keys[rounds]
    sb = SBOX
    return (
        ((sb[w0 >> 24] << 24) | (sb[(w1 >> 16) & 255] << 16) | (sb[(w2 >> 8) & 255] << 8) | sb[w3 & 255]) ^ rk[0],
        ((sb[w1 >> 24] << 24) | (sb[(w2 >> 16) & 255] << 16) | (sb[(w3 >> 8) & 255] << 8) | sb[w0 & 255]) ^ rk[1],
        ((sb[w2 >> 24] << 24) | (sb[(w3 >> 16) & 255] << 16) | (sb[(w0 >> 8) & 255] << 8) | sb[w1 & 255]) ^ rk[2],
        ((sb[w3 >> 24] << 24) | (sb[(w0 >> 16) & 255] << 16) | (sb[(w1 >> 8) & 255] << 8) | sb[w2 & 255]) ^ rk[3],
    )


def encrypt_block_tt(block: bytes, round_keys: Sequence[Sequence[int]]) -> bytes:
    """T-table encryption of one 16-byte block (byte-identical to the
    reference :func:`repro.crypto.aes.encrypt_block_with_schedule`)."""
    if len(block) != BLOCK_BYTES:
        raise BlockSizeError(f"AES block must be 16 bytes, got {len(block)}")
    c = int.from_bytes(block, "big")
    o0, o1, o2, o3 = encrypt_words_tt(
        (c >> 96) & 0xFFFFFFFF,
        (c >> 64) & 0xFFFFFFFF,
        (c >> 32) & 0xFFFFFFFF,
        c & 0xFFFFFFFF,
        round_keys,
    )
    return ((o0 << 96) | (o1 << 64) | (o2 << 32) | o3).to_bytes(16, "big")
