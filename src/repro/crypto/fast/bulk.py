"""One-call bulk APIs: whole-message CTR, GCM, CCM and CBC-MAC.

These are the entry points the mode layer, the baselines and the
firmware reference checks route through when the fast engine is
enabled.  Each call takes a raw key (memoized expansion) or a
pre-expanded schedule, runs the batched counter engine plus the
tabulated GHASH, and returns exactly the bytes the reference
implementations in :mod:`repro.crypto.modes` produce.

The block-at-a-time reference code remains the specification; this
module is only ever an accelerated restatement of it, and the
equivalence suite holds the two byte-identical on every vector.
"""

from __future__ import annotations

import hmac
from typing import Sequence, Tuple, Union

from repro.crypto.fast.aes_ttable import (
    encrypt_block_tt,
    encrypt_words_tt,
    expand_key_cached,
)
from repro.crypto.fast.aes_vector import ctr_keystream_vector, encrypt_blocks_vector
from repro.crypto.fast.ghash_hpower import ghash_blocks_hpower
from repro.errors import AuthenticationFailure, BlockSizeError, NonceError, TagError
from repro.utils.bytesops import pad_zeros, xor_bytes

BLOCK_BYTES = 16

Schedule = Sequence[Sequence[int]]
KeyOrSchedule = Union[bytes, Schedule]


def _schedule(key_or_schedule: KeyOrSchedule) -> Schedule:
    """Accept a raw key (expanded via the LRU memo) or a ready schedule."""
    if isinstance(key_or_schedule, (bytes, bytearray)):
        return expand_key_cached(bytes(key_or_schedule))
    return key_or_schedule


def xor_data(data: bytes, keystream: bytes) -> bytes:
    """XOR *data* against (a prefix of) *keystream*."""
    if not data:
        return b""
    return xor_bytes(data, keystream[: len(data)])


# -- CTR ------------------------------------------------------------------


def ctr_stream(
    key_or_schedule: KeyOrSchedule,
    initial_counter: bytes,
    nblocks: int,
    inc_bits: int = 16,
) -> bytes:
    """Generate *nblocks* keystream blocks in one bulk call.

    Semantics match :func:`repro.crypto.modes.ctr.ctr_keystream`: the
    first block encrypts *initial_counter* and the low *inc_bits* bits
    increment by one per block, wrapping modulo ``2**inc_bits``.
    """
    if len(initial_counter) != BLOCK_BYTES:
        raise BlockSizeError(
            f"initial counter must be 16 bytes, got {len(initial_counter)}"
        )
    # Same increment-width rule as modes.ctr.increment_counter, so the
    # fast and reference paths accept and reject identical inputs.
    if inc_bits <= 0 or inc_bits > 128 or inc_bits % 8 != 0:
        raise ValueError(
            f"inc_bits must be a positive multiple of 8 <= 128, got {inc_bits}"
        )
    if nblocks < 0:
        raise ValueError("nblocks must be non-negative")
    if nblocks == 0:
        return b""
    round_keys = _schedule(key_or_schedule)
    c0 = int.from_bytes(initial_counter, "big")
    stream = ctr_keystream_vector(round_keys, c0, nblocks, inc_bits)
    if stream is not None:
        return stream
    # Scalar fallback: counter arithmetic on ints, T-table rounds.
    mask = (1 << inc_bits) - 1
    hi = c0 >> inc_bits << inc_bits
    low = c0 & mask
    out = bytearray()
    append = out.extend
    for _ in range(nblocks):
        c = hi | low
        o0, o1, o2, o3 = encrypt_words_tt(
            (c >> 96) & 0xFFFFFFFF,
            (c >> 64) & 0xFFFFFFFF,
            (c >> 32) & 0xFFFFFFFF,
            c & 0xFFFFFFFF,
            round_keys,
        )
        append(((o0 << 96) | (o1 << 64) | (o2 << 32) | o3).to_bytes(16, "big"))
        low = (low + 1) & mask
    return bytes(out)


def ctr_xcrypt_bulk(
    key_or_schedule: KeyOrSchedule,
    initial_counter: bytes,
    data: bytes,
    inc_bits: int = 16,
) -> bytes:
    """Encrypt/decrypt *data* in CTR mode as one bulk call."""
    if not data:
        return b""
    nblocks = -(-len(data) // BLOCK_BYTES)
    stream = ctr_stream(key_or_schedule, initial_counter, nblocks, inc_bits)
    return xor_data(data, stream)


# -- CBC-MAC --------------------------------------------------------------


def cbc_mac_fast(
    key_or_schedule: KeyOrSchedule,
    data: bytes,
    iv: bytes = b"\x00" * BLOCK_BYTES,
) -> bytes:
    """CBC-MAC over whole blocks with the chaining state kept as words.

    The feedback dependency makes this the one mode that cannot batch
    across blocks (the paper's section II.B argument, in software), so
    the win here is the T-table round plus zero per-block byte churn.
    """
    if len(data) % BLOCK_BYTES != 0:
        raise BlockSizeError(
            f"CBC-MAC input length {len(data)} is not a multiple of 16"
        )
    if len(iv) != BLOCK_BYTES:
        raise BlockSizeError(f"CBC-MAC IV must be 16 bytes, got {len(iv)}")
    if not data:
        raise BlockSizeError("CBC-MAC requires at least one block")
    round_keys = _schedule(key_or_schedule)
    y = int.from_bytes(iv, "big")
    for i in range(0, len(data), BLOCK_BYTES):
        x = y ^ int.from_bytes(data[i : i + BLOCK_BYTES], "big")
        o0, o1, o2, o3 = encrypt_words_tt(
            (x >> 96) & 0xFFFFFFFF,
            (x >> 64) & 0xFFFFFFFF,
            (x >> 32) & 0xFFFFFFFF,
            x & 0xFFFFFFFF,
            round_keys,
        )
        y = (o0 << 96) | (o1 << 64) | (o2 << 32) | o3
    return y.to_bytes(BLOCK_BYTES, "big")


# -- GCM ------------------------------------------------------------------


def _inc32(c: int, by: int = 1) -> int:
    """SP 800-38D inc32 on a 128-bit counter held as an int."""
    return (c & ~0xFFFFFFFF) | ((c + by) & 0xFFFFFFFF)


def _gcm_j0_int(h: int, iv: bytes) -> int:
    if not iv:
        raise NonceError("GCM IV must be non-empty")
    if len(iv) == 12:
        return (int.from_bytes(iv, "big") << 32) | 1
    acc = ghash_blocks_hpower(h, 0, pad_zeros(iv, BLOCK_BYTES))
    length_block = (8 * len(iv)).to_bytes(16, "big")
    return ghash_blocks_hpower(h, acc, length_block)


def _ghash_aad_ct(h: int, aad: bytes, ciphertext: bytes) -> int:
    """GHASH accumulator over padded aad, padded ciphertext and lengths."""
    acc = 0
    if aad:
        acc = ghash_blocks_hpower(h, acc, pad_zeros(aad, BLOCK_BYTES))
    if ciphertext:
        acc = ghash_blocks_hpower(h, acc, pad_zeros(ciphertext, BLOCK_BYTES))
    length_block = (8 * len(aad)).to_bytes(8, "big") + (
        8 * len(ciphertext)
    ).to_bytes(8, "big")
    return ghash_blocks_hpower(h, acc, length_block)


def _gcm_tag(
    round_keys: Schedule,
    h: int,
    j0: int,
    aad: bytes,
    ciphertext: bytes,
    tag_length: int,
) -> bytes:
    acc = _ghash_aad_ct(h, aad, ciphertext)
    ej0 = int.from_bytes(
        encrypt_block_tt(j0.to_bytes(BLOCK_BYTES, "big"), round_keys), "big"
    )
    return (acc ^ ej0).to_bytes(BLOCK_BYTES, "big")[:tag_length]


def gcm_seal(
    key: bytes,
    iv: bytes,
    plaintext: bytes,
    aad: bytes = b"",
    tag_length: int = 16,
) -> Tuple[bytes, bytes]:
    """Whole-message GCM encryption; returns ``(ciphertext, tag)``."""
    from repro.crypto.modes.gcm import VALID_TAG_LENGTHS

    if tag_length not in VALID_TAG_LENGTHS:
        raise TagError(
            f"GCM tag length must be one of {VALID_TAG_LENGTHS}, got {tag_length}"
        )
    round_keys = expand_key_cached(bytes(key))
    h = int.from_bytes(
        encrypt_block_tt(b"\x00" * BLOCK_BYTES, round_keys), "big"
    )
    j0 = _gcm_j0_int(h, iv)
    icb = _inc32(j0).to_bytes(BLOCK_BYTES, "big")
    ciphertext = ctr_xcrypt_bulk(round_keys, icb, plaintext, inc_bits=32)
    tag = _gcm_tag(round_keys, h, j0, aad, ciphertext, tag_length)
    return ciphertext, tag


def gcm_open(
    key: bytes,
    iv: bytes,
    ciphertext: bytes,
    tag: bytes,
    aad: bytes = b"",
) -> bytes:
    """Whole-message GCM decryption; raises on tag mismatch.

    Tag length is validated up front: without it a zero-length tag
    would compare equal to a zero-length expected tag and authenticate
    anything.
    """
    from repro.crypto.modes.gcm import VALID_TAG_LENGTHS

    if len(tag) not in VALID_TAG_LENGTHS:
        raise TagError(f"GCM tag length {len(tag)} is invalid")
    round_keys = expand_key_cached(bytes(key))
    h = int.from_bytes(
        encrypt_block_tt(b"\x00" * BLOCK_BYTES, round_keys), "big"
    )
    j0 = _gcm_j0_int(h, iv)
    expected = _gcm_tag(round_keys, h, j0, aad, ciphertext, len(tag))
    if not hmac.compare_digest(expected, tag):
        raise AuthenticationFailure("GCM tag verification failed")
    icb = _inc32(j0).to_bytes(BLOCK_BYTES, "big")
    return ctr_xcrypt_bulk(round_keys, icb, ciphertext, inc_bits=32)


# -- CCM ------------------------------------------------------------------


def _ccm_keystream(
    round_keys: Schedule, nonce: bytes, nblocks: int
) -> Tuple[bytes, bytes]:
    """Return ``(S_0, S_1..S_nblocks)`` for the CCM counter chain."""
    from repro.crypto.modes.ccm import format_counter_block

    a0 = format_counter_block(nonce, 0)
    s0 = encrypt_block_tt(a0, round_keys)
    if nblocks == 0:
        return s0, b""
    q = 15 - len(nonce)
    a1 = format_counter_block(nonce, 1)
    # The q-byte counter field increments without wrapping (payload
    # length is bounded by 2^(8q)), which matches low-8q-bit increment.
    stream = ctr_stream(round_keys, a1, nblocks, inc_bits=8 * q)
    return s0, stream


def ccm_seal(
    key: bytes,
    nonce: bytes,
    plaintext: bytes,
    aad: bytes = b"",
    tag_length: int = 16,
) -> Tuple[bytes, bytes]:
    """Whole-message CCM encryption; returns ``(ciphertext, tag)``."""
    from repro.crypto.modes.ccm import (
        _check_params,
        format_associated_data,
        format_b0,
    )

    round_keys = expand_key_cached(bytes(key))
    _check_params(nonce, tag_length, len(plaintext))
    b = (
        format_b0(nonce, len(aad), len(plaintext), tag_length)
        + format_associated_data(aad)
        + pad_zeros(plaintext, BLOCK_BYTES)
    )
    t_full = cbc_mac_fast(round_keys, b)
    nblocks = -(-len(plaintext) // BLOCK_BYTES)
    s0, stream = _ccm_keystream(round_keys, nonce, nblocks)
    ciphertext = xor_data(plaintext, stream) if plaintext else b""
    tag = xor_data(t_full, s0)[:tag_length]
    return ciphertext, tag


def ccm_open(
    key: bytes,
    nonce: bytes,
    ciphertext: bytes,
    tag: bytes,
    aad: bytes = b"",
) -> bytes:
    """Whole-message CCM decryption; raises on tag mismatch."""
    from repro.crypto.modes.ccm import (
        _check_params,
        format_associated_data,
        format_b0,
    )

    round_keys = expand_key_cached(bytes(key))
    tag_length = len(tag)
    _check_params(nonce, tag_length, len(ciphertext))
    nblocks = -(-len(ciphertext) // BLOCK_BYTES)
    s0, stream = _ccm_keystream(round_keys, nonce, nblocks)
    plaintext = xor_data(ciphertext, stream) if ciphertext else b""
    b = (
        format_b0(nonce, len(aad), len(plaintext), tag_length)
        + format_associated_data(aad)
        + pad_zeros(plaintext, BLOCK_BYTES)
    )
    t_full = cbc_mac_fast(round_keys, b)
    expected = xor_data(t_full, s0)[:tag_length]
    if not hmac.compare_digest(expected, tag):
        raise AuthenticationFailure("CCM tag verification failed")
    return plaintext


def ecb_encrypt_blocks(
    key_or_schedule: KeyOrSchedule, blocks: bytes
) -> bytes:
    """ECB-encrypt a whole number of 16-byte blocks (vectorised when
    possible) — the building block for pre-materialised counter runs."""
    if len(blocks) % BLOCK_BYTES:
        raise BlockSizeError(
            f"ECB input length {len(blocks)} is not a multiple of 16"
        )
    round_keys = _schedule(key_or_schedule)
    out = encrypt_blocks_vector(blocks, round_keys)
    if out is not None:
        return out
    return b"".join(
        encrypt_block_tt(blocks[i : i + BLOCK_BYTES], round_keys)
        for i in range(0, len(blocks), BLOCK_BYTES)
    )
