"""GF(2^128) arithmetic for GHASH (NIST SP 800-38D).

Two multiplier implementations are provided:

- :func:`gf128_mul` — the straightforward bit-serial reference.
- :func:`gf128_mul_digit_serial` — a digit-serial multiplier processing
  *digit_bits* bits of the multiplier per step, mirroring the MCCP's
  GHASH core, which uses 3-bit digits and completes one 128-bit
  multiplication in 43 steps (ceil(128 / 3) = 43, paper section V.A
  after Lemsitzer et al.).  Both produce identical results; the digit
  count doubles as the cycle model for the hardware core.

Element representation follows SP 800-38D: a 128-bit integer whose most
significant bit is the coefficient of x^0 ("reflected" polynomial
ordering), with reduction polynomial R = 0xE1000000...0.
"""

from __future__ import annotations

from typing import Tuple

#: SP 800-38D reduction constant: x^128 = x^7 + x^2 + x + 1 in the
#: reflected bit order used by GHASH.
R_POLY = 0xE1 << 120

MASK128 = (1 << 128) - 1

#: Digit width of the hardware digit-serial multiplier.
HW_DIGIT_BITS = 3

#: Steps (== clock cycles) the hardware multiplier takes per product.
HW_GHASH_CYCLES = -(-128 // HW_DIGIT_BITS)  # ceil(128/3) == 43

#: Multiplicative identity element (the polynomial "1" in GHASH bit order).
ONE = 1 << 127


def gf128_mul(x: int, y: int) -> int:
    """Bit-serial product of *x* and *y* in the GHASH field.

    Algorithm 1 of SP 800-38D: scan *x* from the most significant bit;
    accumulate *y*-multiples while halving (shifting right) *y* with
    conditional reduction.
    """
    if not 0 <= x <= MASK128 or not 0 <= y <= MASK128:
        raise ValueError("operands must be 128-bit non-negative integers")
    z = 0
    v = y
    for i in range(127, -1, -1):
        if (x >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ R_POLY
        else:
            v >>= 1
    return z


def gf128_mul_digit_serial(
    x: int, y: int, digit_bits: int = HW_DIGIT_BITS
) -> Tuple[int, int]:
    """Digit-serial product mirroring the hardware multiplier.

    Consumes *digit_bits* bits of *x* per step (MSB first); each step
    corresponds to one clock of the hardware core, which wires
    *digit_bits* conditional-reduce stages in combinational cascade so a
    full 128-bit product takes ``ceil(128 / digit_bits)`` cycles — 43
    for the paper's 3-bit digits.

    Returns ``(product, steps)``.  The product is always identical to
    :func:`gf128_mul`; *steps* feeds the timing model.
    """
    if digit_bits < 1 or digit_bits > 128:
        raise ValueError(f"digit_bits must be in [1, 128], got {digit_bits}")
    if not 0 <= x <= MASK128 or not 0 <= y <= MASK128:
        raise ValueError("operands must be 128-bit non-negative integers")

    steps = -(-128 // digit_bits)
    z = 0
    v = y
    bit_index = 127
    for _step in range(steps):
        # One hardware clock: a cascade of `digit_bits` bit-serial stages.
        for _ in range(digit_bits):
            if bit_index < 0:
                break  # final digit is zero-padded below bit 0
            if (x >> bit_index) & 1:
                z ^= v
            if v & 1:
                v = (v >> 1) ^ R_POLY
            else:
                v >>= 1
            bit_index -= 1
    return z, steps


def gf128_pow(x: int, n: int, use_fast: "bool | None" = None) -> int:
    """Raise *x* to the *n*-th power by square-and-multiply.

    The fast path runs left-to-right so the multiplicand is always the
    fixed base *x*: one cached Shoup table for *x* serves every
    multiply step, and squarings use the global tabulated Frobenius
    map (squaring is GF(2)-linear) — no per-step table builds.
    ``use_fast=False`` pins the bit-serial reference.
    """
    if n < 0:
        raise ValueError("negative exponents are not supported")
    # Imported lazily: the fast package builds its tables from this module.
    from repro.crypto.fast import fast_enabled

    if fast_enabled(use_fast) and n:
        from repro.crypto.fast.gf128_tables import (
            gf128_mul_tabulated,
            gf128_sqr_tabulated,
        )

        result = ONE
        for i in range(n.bit_length() - 1, -1, -1):
            result = gf128_sqr_tabulated(result)
            if (n >> i) & 1:
                result = gf128_mul_tabulated(result, x)
        return result
    result = ONE
    base = x
    while n:
        if n & 1:
            result = gf128_mul(result, base)
        base = gf128_mul(base, base)
        n >>= 1
    return result
