"""Bit-exact reference cryptography (the "gold model").

This subpackage implements, from scratch, every cryptographic primitive
the MCCP uses:

- :mod:`repro.crypto.aes` — AES-128/192/256 (FIPS-197), iterative.
- :mod:`repro.crypto.gf128` — GF(2^128) arithmetic used by GHASH,
  including a digit-serial multiplier mirroring the hardware core.
- :mod:`repro.crypto.ghash` — the GHASH universal hash (SP 800-38D).
- :mod:`repro.crypto.modes` — CTR, CBC-MAC, CCM, GCM, GMAC.
- :mod:`repro.crypto.whirlpool` — the Whirlpool hash (ISO/IEC 10118-3),
  used by the partial-reconfiguration experiment (paper Table IV).

The device model (``repro.unit`` / ``repro.core`` / ``repro.mccp``) is
validated bit-for-bit against this layer, which is itself validated
against the embedded NIST/ISO test vectors in
:mod:`repro.crypto.testvectors`.
"""

from repro.crypto.aes import AES, aes_encrypt_block, expand_key
# (The live switch state is read through fast_enabled() — re-exporting
# the FAST_ENABLED constant would snapshot it at import time and go
# stale the moment set_fast() rebinds it.)
from repro.crypto.fast import (
    ccm_open,
    ccm_seal,
    ctr_stream,
    expand_key_cached,
    fast_enabled,
    gcm_open,
    gcm_seal,
    gf128_mul_tabulated,
    set_fast,
)
from repro.crypto.ghash import GHash, ghash
from repro.crypto.gf128 import gf128_mul, gf128_mul_digit_serial, gf128_pow
from repro.crypto.whirlpool import Whirlpool, whirlpool
from repro.crypto.modes import (
    cbc_mac,
    ccm_decrypt,
    ccm_encrypt,
    ctr_keystream,
    ctr_xcrypt,
    gcm_decrypt,
    gcm_encrypt,
    gmac,
)

__all__ = [
    "AES",
    "aes_encrypt_block",
    "expand_key",
    "expand_key_cached",
    "fast_enabled",
    "set_fast",
    "GHash",
    "ghash",
    "gf128_mul",
    "gf128_mul_digit_serial",
    "gf128_mul_tabulated",
    "gf128_pow",
    "Whirlpool",
    "whirlpool",
    "cbc_mac",
    "ccm_decrypt",
    "ccm_encrypt",
    "ccm_seal",
    "ccm_open",
    "ctr_keystream",
    "ctr_stream",
    "ctr_xcrypt",
    "gcm_decrypt",
    "gcm_encrypt",
    "gcm_seal",
    "gcm_open",
    "gmac",
]
