"""AES block cipher (FIPS-197), iterative round structure.

The implementation deliberately follows the *iterative* organisation of
the hardware core used in the MCCP (paper section V.A, after Chodowiec &
Gaj): one round per iteration over a 4x4 byte state, SubBytes via
look-up table.  Key expansion is implemented separately because in the
device the Key Scheduler pre-computes round keys into each core's Key
Cache (paper section III.A) — the cipher itself only ever consumes an
expanded key.

Only encryption is required by the MCCP (CTR/CCM/GCM use the forward
cipher for both directions); the inverse cipher is provided here purely
as a reference-model convenience for round-trip property tests.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import BlockSizeError, KeySizeError
from repro.crypto.aes_tables import (
    INV_SBOX,
    MUL2,
    MUL3,
    MUL9,
    MUL11,
    MUL13,
    MUL14,
    RCON,
    SBOX,
)

#: Number of rounds per key size in bytes.
ROUNDS_BY_KEY_BYTES = {16: 10, 24: 12, 32: 14}

#: Supported key sizes in bits (mirrors the device's key-size field).
KEY_BITS = (128, 192, 256)

BLOCK_BYTES = 16


def _sub_word(word: int) -> int:
    return (
        (SBOX[(word >> 24) & 0xFF] << 24)
        | (SBOX[(word >> 16) & 0xFF] << 16)
        | (SBOX[(word >> 8) & 0xFF] << 8)
        | SBOX[word & 0xFF]
    )


def _rot_word(word: int) -> int:
    return ((word << 8) | (word >> 24)) & 0xFFFFFFFF


def expand_key(key: bytes) -> List[List[int]]:
    """FIPS-197 key expansion.

    Returns ``rounds + 1`` round keys, each a list of four 32-bit words
    (big-endian column order) — the exact layout the device's Key Cache
    stores.
    """
    if len(key) not in ROUNDS_BY_KEY_BYTES:
        raise KeySizeError(
            f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
        )
    nk = len(key) // 4
    rounds = ROUNDS_BY_KEY_BYTES[len(key)]
    total_words = 4 * (rounds + 1)

    words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
    for i in range(nk, total_words):
        temp = words[i - 1]
        if i % nk == 0:
            temp = _sub_word(_rot_word(temp)) ^ (RCON[i // nk] << 24)
        elif nk > 6 and i % nk == 4:
            temp = _sub_word(temp)
        words.append(words[i - nk] ^ temp)

    return [words[4 * r : 4 * r + 4] for r in range(rounds + 1)]


def _state_from_bytes(block: bytes) -> List[int]:
    # State stored column-major as 16 bytes: state[4*c + r] = byte r of column c.
    return list(block)


def _bytes_from_state(state: Sequence[int]) -> bytes:
    return bytes(state)


def _add_round_key(state: List[int], round_key: Sequence[int]) -> None:
    for c in range(4):
        w = round_key[c]
        state[4 * c] ^= (w >> 24) & 0xFF
        state[4 * c + 1] ^= (w >> 16) & 0xFF
        state[4 * c + 2] ^= (w >> 8) & 0xFF
        state[4 * c + 3] ^= w & 0xFF


def _sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _inv_sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = INV_SBOX[state[i]]


def _shift_rows(state: List[int]) -> None:
    # Row r of the state is bytes state[r], state[4+r], state[8+r], state[12+r].
    for r in range(1, 4):
        row = [state[4 * c + r] for c in range(4)]
        row = row[r:] + row[:r]
        for c in range(4):
            state[4 * c + r] = row[c]


def _inv_shift_rows(state: List[int]) -> None:
    for r in range(1, 4):
        row = [state[4 * c + r] for c in range(4)]
        row = row[-r:] + row[:-r]
        for c in range(4):
            state[4 * c + r] = row[c]


def _mix_columns(state: List[int]) -> None:
    for c in range(4):
        a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
        state[4 * c] = MUL2[a0] ^ MUL3[a1] ^ a2 ^ a3
        state[4 * c + 1] = a0 ^ MUL2[a1] ^ MUL3[a2] ^ a3
        state[4 * c + 2] = a0 ^ a1 ^ MUL2[a2] ^ MUL3[a3]
        state[4 * c + 3] = MUL3[a0] ^ a1 ^ a2 ^ MUL2[a3]


def _inv_mix_columns(state: List[int]) -> None:
    for c in range(4):
        a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
        state[4 * c] = MUL14[a0] ^ MUL11[a1] ^ MUL13[a2] ^ MUL9[a3]
        state[4 * c + 1] = MUL9[a0] ^ MUL14[a1] ^ MUL11[a2] ^ MUL13[a3]
        state[4 * c + 2] = MUL13[a0] ^ MUL9[a1] ^ MUL14[a2] ^ MUL11[a3]
        state[4 * c + 3] = MUL11[a0] ^ MUL13[a1] ^ MUL9[a2] ^ MUL14[a3]


def encrypt_block_with_schedule(block: bytes, round_keys: Sequence[Sequence[int]]) -> bytes:
    """Encrypt one 16-byte block with pre-expanded *round_keys*.

    This is the entry point the device model uses: the Key Cache holds
    the expanded schedule and the AES core runs the iterative rounds.
    """
    if len(block) != BLOCK_BYTES:
        raise BlockSizeError(f"AES block must be 16 bytes, got {len(block)}")
    rounds = len(round_keys) - 1
    state = _state_from_bytes(block)
    _add_round_key(state, round_keys[0])
    for r in range(1, rounds):
        _sub_bytes(state)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[r])
    _sub_bytes(state)
    _shift_rows(state)
    _add_round_key(state, round_keys[rounds])
    return _bytes_from_state(state)


def decrypt_block_with_schedule(block: bytes, round_keys: Sequence[Sequence[int]]) -> bytes:
    """Inverse cipher (reference-model only; the device omits it)."""
    if len(block) != BLOCK_BYTES:
        raise BlockSizeError(f"AES block must be 16 bytes, got {len(block)}")
    rounds = len(round_keys) - 1
    state = _state_from_bytes(block)
    _add_round_key(state, round_keys[rounds])
    for r in range(rounds - 1, 0, -1):
        _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, round_keys[r])
        _inv_mix_columns(state)
    _inv_shift_rows(state)
    _inv_sub_bytes(state)
    _add_round_key(state, round_keys[0])
    return _bytes_from_state(state)


def aes_encrypt_block(key: bytes, block: bytes, use_fast: "bool | None" = None) -> bytes:
    """One-shot single-block encryption (memoized expansion on the fast path)."""
    from repro.crypto.fast import encrypt_block_dispatch, expand_key_dispatch, fast_enabled

    fast = fast_enabled(use_fast)
    return encrypt_block_dispatch(block, expand_key_dispatch(key, fast), fast)


class AES:
    """AES cipher object holding an expanded key schedule.

    By default the object rides the fast T-table engine
    (:mod:`repro.crypto.fast`) with an LRU-memoized key expansion;
    ``use_fast=False`` (or ``REPRO_FAST=0`` in the environment) pins it
    to the readable reference rounds.  Both paths are byte-identical.

    Parameters
    ----------
    key:
        16-, 24- or 32-byte secret key.
    use_fast:
        Tri-state fast-path override (None = follow the global switch).

    Examples
    --------
    >>> AES(bytes(16)).encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    def __init__(self, key: bytes, use_fast: "bool | None" = None):
        from repro.crypto.fast import expand_key_dispatch, fast_enabled
        from repro.crypto.fast.aes_ttable import encrypt_block_tt

        key = bytes(key)
        self._use_fast = fast_enabled(use_fast)
        self._round_keys = expand_key_dispatch(key, self._use_fast)
        self._encrypt = (
            encrypt_block_tt if self._use_fast else encrypt_block_with_schedule
        )
        self.key_bits = len(key) * 8
        self.rounds = len(self._round_keys) - 1

    @property
    def round_keys(self) -> List[List[int]]:
        """The expanded schedule (list of rounds, each 4x 32-bit words)."""
        return [list(rk) for rk in self._round_keys]

    @property
    def schedule(self) -> Sequence[Sequence[int]]:
        """The internal schedule, uncopied (for the bulk fast engine)."""
        return self._round_keys

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        return self._encrypt(block, self._round_keys)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block (reference-model only)."""
        return decrypt_block_with_schedule(block, self._round_keys)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AES(key_bits={self.key_bits})"
