"""AES constant tables, generated algebraically at import time.

Generating the S-box from the GF(2^8) inverse plus the affine map (and
the round constants from repeated doubling) avoids transcription errors
in 256-entry literal tables and documents *why* the tables hold the
values they do (FIPS-197 sections 4.2 and 5.1.1).

The hardware prototype stores SubBytes in FPGA look-up tables (paper
section V.A, citing Chodowiec & Gaj); these tables are the software
equivalent of those LUTs.
"""

from __future__ import annotations

from typing import List, Tuple

AES_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1, the Rijndael field polynomial


def gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the Rijndael polynomial."""
    result = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= AES_POLY
        b >>= 1
    return result & 0xFF


def _gf_inverse_table() -> List[int]:
    """Tabulate multiplicative inverses in GF(2^8) via the generator 3.

    0x03 generates the multiplicative group of the Rijndael field, so
    exponent/log tables give every inverse without per-element
    extended-Euclid runs.
    """
    exp = [0] * 255
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = gf_mul(x, 0x03)
    inv = [0] * 256
    for a in range(1, 256):
        inv[a] = exp[(255 - log[a]) % 255]
    return inv


def _affine(x: int) -> int:
    """The FIPS-197 affine transformation over GF(2)."""
    result = 0
    for bit in range(8):
        b = (
            (x >> bit)
            ^ (x >> ((bit + 4) % 8))
            ^ (x >> ((bit + 5) % 8))
            ^ (x >> ((bit + 6) % 8))
            ^ (x >> ((bit + 7) % 8))
            ^ (0x63 >> bit)
        ) & 1
        result |= b << bit
    return result


def _build_sboxes() -> Tuple[List[int], List[int]]:
    inv = _gf_inverse_table()
    sbox = [_affine(inv[x]) for x in range(256)]
    inv_sbox = [0] * 256
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sboxes()

# Round constants: RCON[i] = x^(i-1) in GF(2^8); index 0 unused, enough
# entries for AES-128's 10 rounds (the longest rcon consumer).
RCON: List[int] = [0]
_rc = 1
for _ in range(14):
    RCON.append(_rc)
    _rc = gf_mul(_rc, 0x02)
del _rc

# MixColumns multiplication tables (by 2 and 3 for the forward cipher,
# by 9, 11, 13, 14 for the inverse cipher).
MUL2 = [gf_mul(x, 2) for x in range(256)]
MUL3 = [gf_mul(x, 3) for x in range(256)]
MUL9 = [gf_mul(x, 9) for x in range(256)]
MUL11 = [gf_mul(x, 11) for x in range(256)]
MUL13 = [gf_mul(x, 13) for x in range(256)]
MUL14 = [gf_mul(x, 14) for x in range(256)]

__all__ = [
    "AES_POLY",
    "SBOX",
    "INV_SBOX",
    "RCON",
    "MUL2",
    "MUL3",
    "MUL9",
    "MUL11",
    "MUL13",
    "MUL14",
    "gf_mul",
]
