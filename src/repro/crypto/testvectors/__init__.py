"""Embedded test vectors.

Two provenance classes:

- :mod:`repro.crypto.testvectors.published` — hand-copied from the
  primary standards documents (FIPS-197 appendix C, RFC 3610,
  SP 800-38D's original validation set, the Whirlpool ISO vectors).
- :mod:`repro.crypto.testvectors.generated` — a wider deterministic
  matrix pinned from the OpenSSL-backed ``cryptography`` package
  (cross-implementation agreement), committed as static data.

Helper accessors decode hex at call time so the data modules stay pure
literals.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

from repro.crypto.testvectors import generated, published


class AesVector(NamedTuple):
    key: bytes
    plaintext: bytes
    ciphertext: bytes


class GcmVector(NamedTuple):
    key: bytes
    iv: bytes
    aad: bytes
    plaintext: bytes
    ciphertext: bytes
    tag: bytes


class CcmVector(NamedTuple):
    key: bytes
    nonce: bytes
    aad: bytes
    plaintext: bytes
    ciphertext: bytes
    tag: bytes
    tag_length: int


class CtrVector(NamedTuple):
    key: bytes
    counter: bytes
    plaintext: bytes
    ciphertext: bytes


class HashVector(NamedTuple):
    message: bytes
    digest: bytes


def _h(s: str) -> bytes:
    return bytes.fromhex(s)


def aes_vectors() -> List[AesVector]:
    """All single-block AES KATs (published + generated)."""
    out = [AesVector(*map(_h, v)) for v in published.AES_ECB]
    out += [AesVector(*map(_h, v)) for v in generated.AES_ECB]
    return out


def gcm_vectors() -> List[GcmVector]:
    """All GCM vectors (published + generated)."""
    out = [GcmVector(*map(_h, v)) for v in published.GCM]
    out += [GcmVector(*map(_h, v)) for v in generated.GCM]
    return out


def ccm_vectors() -> List[CcmVector]:
    """All CCM vectors (published + generated)."""
    out = [
        CcmVector(*(list(map(_h, v[:-1])) + [v[-1]])) for v in published.CCM
    ]
    out += [
        CcmVector(*(list(map(_h, v[:-1])) + [v[-1]])) for v in generated.CCM
    ]
    return out


def ctr_vectors() -> List[CtrVector]:
    """All CTR vectors (generated; 16-bit-increment compatible)."""
    return [CtrVector(*map(_h, v)) for v in generated.CTR]


def whirlpool_vectors() -> List[HashVector]:
    """The ISO Whirlpool known-answer vectors."""
    return [HashVector(m.encode(), _h(d)) for m, d in published.WHIRLPOOL]


def iter_all_aead() -> Iterator[tuple]:
    """Iterate over (mode_name, vector) pairs for GCM and CCM."""
    for v in gcm_vectors():
        yield ("gcm", v)
    for v in ccm_vectors():
        yield ("ccm", v)
