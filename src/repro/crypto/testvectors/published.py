"""Known-answer vectors copied from the primary standards documents.

Sources
-------
- ``AES_ECB``: FIPS-197 appendix C (C.1, C.2, C.3) plus the ubiquitous
  all-zero KAT.
- ``GCM``: test cases 1 and 2 of the original GCM validation set
  reproduced in SP 800-38D's public test vectors (AES-128, 96-bit IV).
- ``CCM``: RFC 3610 packet vector #1 and SP 800-38C example 1.
- ``WHIRLPOOL``: the ISO/IEC 10118-3 reference vectors.

Formats match :mod:`repro.crypto.testvectors.generated`.
"""

AES_ECB = [
    # FIPS-197 C.1: AES-128
    (
        "000102030405060708090a0b0c0d0e0f",
        "00112233445566778899aabbccddeeff",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    # FIPS-197 C.2: AES-192
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "00112233445566778899aabbccddeeff",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    # FIPS-197 C.3: AES-256
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
    # All-zero key and block (the GCM H-subkey of the zero key)
    (
        "00000000000000000000000000000000",
        "00000000000000000000000000000000",
        "66e94bd4ef8a2c3b884cfa59ca342b2e",
    ),
]

GCM = [
    # GCM spec test case 1: empty AAD and plaintext
    (
        "00000000000000000000000000000000",
        "000000000000000000000000",
        "",
        "",
        "",
        "58e2fccefa7e3061367f1d57a4e7455a",
    ),
]

CCM = [
    # RFC 3610 packet vector #1
    (
        "c0c1c2c3c4c5c6c7c8c9cacbcccdcecf",
        "00000003020100a0a1a2a3a4a5",
        "0001020304050607",
        "08090a0b0c0d0e0f101112131415161718191a1b1c1d1e",
        "588c979a61c663d2f066d0c2c0f989806d5f6b61dac384",
        "17e8d12cfdf926e0",
        8,
    ),
    # SP 800-38C example 1
    (
        "404142434445464748494a4b4c4d4e4f",
        "10111213141516",
        "0001020304050607",
        "20212223",
        "7162015b",
        "4dac255d",
        4,
    ),
]

WHIRLPOOL = [
    (
        "",
        "19fa61d75522a4669b44e39c1d2e1726c530232130d407f89afee0964997f7a7"
        "3e83be698b288febcf88e3e03c4f0757ea8964e59b63d93708b138cc42a66eb3",
    ),
    (
        "a",
        "8aca2602792aec6f11a67206531fb7d7f0dff59413145e6973c45001d0087b42"
        "d11bc645413aeff63a42391a39145a591a92200d560195e53b478584fdae231a",
    ),
    (
        "abc",
        "4e2448a4c6f486bb16b6562c73b4020bf3043e3a731bce721ae1b303d97e6d4c"
        "7181eebdb6c57e277d0e34957114cbd6c797fc9d95d8b582d225292076d4eef5",
    ),
    (
        "The quick brown fox jumps over the lazy dog",
        "b97de512e91e3828b40d2b0fdce9ceb3c4a71f9bea8d88e75c4fa854df36725f"
        "d2b52eb6544edcacd6f8beddfea403cb55ae31f03ad62a5ef54e42ee82c3fb35",
    ),
    (
        "The quick brown fox jumps over the lazy eog",
        "c27ba124205f72e6847f3e19834f925cc666d0974167af915bb462420ed40cc5"
        "0900d85a1f923219d832357750492d5c143011a76988344c2635e69d06f2d38c",
    ),
]
