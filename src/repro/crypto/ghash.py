"""GHASH universal hash (NIST SP 800-38D section 6.4).

GHASH_H(X) for a bit string X that is a whole number of 128-bit blocks:
``Y_0 = 0; Y_i = (Y_{i-1} xor X_i) * H``; the result is the final Y.

The class form mirrors the hardware GHASH core: ``LOADH`` loads the hash
subkey, ``SGFM`` absorbs one block (one digit-serial multiplication, 43
cycles), ``FGFM`` reads the accumulator out.
"""

from __future__ import annotations

from repro.errors import BlockSizeError
from repro.crypto.fast import fast_enabled
from repro.crypto.fast.gf128_tables import ghash_blocks_tabulated
from repro.crypto.fast.ghash_hpower import ghash_blocks_hpower
from repro.crypto.gf128 import HW_DIGIT_BITS, gf128_mul, gf128_mul_digit_serial

BLOCK_BYTES = 16


class GHash:
    """Incremental GHASH mirroring the hardware core's LOADH/SGFM/FGFM.

    The functional math rides the tabulated Shoup multiplier
    (:mod:`repro.crypto.fast.gf128_tables`) unless the fast engine is
    switched off; the digit-serial path — the hardware *cycle model* —
    always runs the stepped multiplier so :attr:`cycles` stays faithful.

    Parameters
    ----------
    h:
        The 16-byte hash subkey ``H = AES_K(0^128)``.
    digit_serial:
        When true, each absorbed block uses the digit-serial multiplier
        and :attr:`cycles` accumulates the hardware cycle count.
    use_fast:
        Tri-state fast-path override (None = follow the global switch).
    """

    def __init__(self, h: bytes, digit_serial: bool = False, use_fast: "bool | None" = None):
        if len(h) != BLOCK_BYTES:
            raise BlockSizeError(f"GHASH subkey must be 16 bytes, got {len(h)}")
        self._h = int.from_bytes(h, "big")
        self._acc = 0
        self._digit_serial = digit_serial
        self._use_fast = (not digit_serial) and fast_enabled(use_fast)
        #: Total hardware multiplier cycles consumed so far.
        self.cycles = 0
        #: Number of blocks absorbed.
        self.blocks = 0

    def update(self, block: bytes) -> "GHash":
        """Absorb one 16-byte block (hardware ``SGFM``)."""
        if len(block) != BLOCK_BYTES:
            raise BlockSizeError(
                f"GHASH blocks must be 16 bytes, got {len(block)}"
            )
        if self._digit_serial:
            x = self._acc ^ int.from_bytes(block, "big")
            self._acc, steps = gf128_mul_digit_serial(x, self._h, HW_DIGIT_BITS)
            self.cycles += steps
        elif self._use_fast:
            self._acc = ghash_blocks_tabulated(self._h, self._acc, block)
        else:
            x = self._acc ^ int.from_bytes(block, "big")
            self._acc = gf128_mul(x, self._h)
        self.blocks += 1
        return self

    def update_blocks(self, data: bytes) -> "GHash":
        """Absorb a whole number of blocks from *data*."""
        if len(data) % BLOCK_BYTES != 0:
            raise BlockSizeError(
                f"data length {len(data)} is not a multiple of 16"
            )
        if self._use_fast:
            # Long absorbs fold k blocks per step over H-power tables;
            # short ones stay on the serial tabulated chain.
            self._acc = ghash_blocks_hpower(self._h, self._acc, data)
            self.blocks += len(data) // BLOCK_BYTES
            return self
        for i in range(0, len(data), BLOCK_BYTES):
            self.update(data[i : i + BLOCK_BYTES])
        return self

    def digest(self) -> bytes:
        """Read the accumulator (hardware ``FGFM``); does not reset."""
        return self._acc.to_bytes(BLOCK_BYTES, "big")

    def reset(self) -> "GHash":
        """Clear the accumulator for a new message (same subkey)."""
        self._acc = 0
        self.blocks = 0
        return self


def ghash(h: bytes, data: bytes) -> bytes:
    """One-shot GHASH of *data* (must be a multiple of 16 bytes)."""
    return GHash(h).update_blocks(data).digest()
