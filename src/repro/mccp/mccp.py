"""The MCCP device facade (paper Fig. 1).

Builds the whole device — N cores with neighbour-wired inter-core
registers and pairwise-shared instruction memories, key memory/
scheduler, crossbar, task scheduler — and exposes both interfaces:

- the **register-level protocol** of section III.B
  (:meth:`execute_instruction`: 32-bit instruction register in, 8-bit
  return register out, charged scheduler overhead), and
- **convenience methods** (:meth:`open_channel`, :meth:`submit`, …)
  used by the communication controller and the benchmarks.

It also exposes the **batched submission path** (:meth:`enqueue_job` /
:meth:`enqueue_packet` / :meth:`dispatch_jobs` / :meth:`flush_channel`
/ :meth:`flush_batches`): same-key :class:`repro.mccp.channel
.PacketJob` records queue on their channel and drain
:attr:`Channel.coalesce_limit` at a time through the multi-packet
batch engine (:mod:`repro.crypto.fast.batch`) — lane-parallel CBC-MAC,
fused counter sweeps, H-power GHASH.  This layer is the functional
software analogue of the paper's many-channel pipelining, not the
cycle model: it produces the same bytes the simulated cores would
(:meth:`submit` runs the cycle-accurate core path).  Simulated time
for batched dispatches is charged by the communication controller's
dataplane (:mod:`repro.radio.comm_controller`), which pops batches
under the channel's :class:`repro.mccp.channel.FlushPolicy` and calls
:meth:`dispatch_jobs` per dispatch; the synchronous
:meth:`flush_channel` / :meth:`flush_batches` remain the zero-sim-time
entry points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.crypto_core import CryptoCore
from repro.core.params import Algorithm, Direction
from repro.crypto.fast.exec import INLINE, BackendSpec, resolve_backend
from repro.crypto.modes.ccm import _check_params as _ccm_check_params
from repro.crypto.modes.gcm import VALID_TAG_LENGTHS as _GCM_VALID_TAG_LENGTHS
from repro.errors import (
    ChannelError,
    InjectedFault,
    KeyStoreError,
    NoResourceError,
    ProtocolError,
    QuarantinedPacketError,
)
from repro.mccp.channel import Channel, PacketJob
from repro.resilience import faults as _faults
from repro.resilience import stats as _resilience_stats
from repro.mccp.crossbar import Crossbar
from repro.mccp.instructions import (
    CloseInstr,
    DecryptInstr,
    EncryptInstr,
    Instruction,
    OpenInstr,
    RetrieveDataInstr,
    ReturnCode,
    TransferDoneInstr,
)
from repro.mccp.key_memory import KeyMemory
from repro.mccp.key_scheduler import KeyScheduler
from repro.mccp.task_scheduler import PendingRequest, TaskScheduler
from repro.radio.formatting import FormattedTask
from repro.sim.kernel import Simulator
from repro.sim.tracing import TraceRecorder
from repro.unit.timing import DEFAULT_TIMING, TimingModel

#: The paper's implemented configuration.
DEFAULT_CORE_COUNT = 4

#: Algorithms the batched submission path can dispatch (GMAC rides GCM
#: with an empty payload, matching the ENCRYPT instruction's
#: authenticated-only form).
BATCHABLE_ALGORITHMS = (Algorithm.GCM, Algorithm.CCM)


@dataclass
class BatchResult:
    """Outcome of one packet dispatched through the batch engine."""

    #: False when tag verification failed (DECRYPT only); no payload is
    #: released in that case, mirroring the core purging its FIFO.
    ok: bool
    #: Ciphertext (ENCRYPT) or plaintext (DECRYPT, empty on failure).
    payload: bytes
    #: The freshly computed tag (ENCRYPT only).
    tag: Optional[bytes] = None
    #: Why the packet failed *other than* authentication: a quarantined
    #: (poisoned) packet or an unreadable key.  ``ok`` is False and the
    #: dataplane routes the job to the dead-letter queue instead of
    #: counting an auth failure.  None on every healthy packet.
    error: Optional[str] = None


#: Attempts at a key-memory read before the whole batch dead-letters
#: (the first try plus two retries, mirroring the backend default).
KEY_FETCH_ATTEMPTS = 3


class DispatchHandle:
    """One in-flight :meth:`Mccp.dispatch_jobs` batch (futures form).

    Returned by :meth:`Mccp.dispatch_jobs_async`.  ``done()``/``poll()``
    probe the underlying backend span without blocking; ``result()``
    waits, stamps every job's :attr:`PacketJob.result`, updates the
    channel counters, and returns the :class:`BatchResult` list —
    byte-identical to what the blocking :meth:`Mccp.dispatch_jobs`
    returns for the same batch, and memoized.  A batch that
    dead-lettered at submit time (unreadable key) comes back as an
    already-completed handle.
    """

    __slots__ = (
        "_mccp", "_channel", "_batch",
        "_seal_indices", "_open_indices", "_handle", "_results",
    )

    def __init__(self, mccp, channel, batch, seal_indices, open_indices,
                 handle):
        self._mccp = mccp
        self._channel = channel
        self._batch = batch
        self._seal_indices = seal_indices
        self._open_indices = open_indices
        self._handle = handle
        self._results: Optional[List[BatchResult]] = None

    @classmethod
    def completed(cls, results: List[BatchResult]) -> "DispatchHandle":
        """A handle whose batch already resolved at submit time."""
        handle = cls(None, None, (), (), (), None)
        handle._results = results
        return handle

    def done(self) -> bool:
        """Non-blocking: would :meth:`result` still wait on workers?"""
        if self._results is not None:
            return True
        return self._handle.done()

    def poll(self) -> bool:
        """Alias of :meth:`done`."""
        return self.done()

    def result(self) -> List[BatchResult]:
        """Collect the batch: stamp jobs, update stats (memoized)."""
        if self._results is None:
            sealed, opened = self._handle.result()
            self._results = self._mccp._finish_batch(
                self._channel, self._batch,
                self._seal_indices, self._open_indices, sealed, opened,
            )
            self._channel.stats["batches"] = (
                self._channel.stats.get("batches", 0) + 1
            )
        return self._results


class Mccp:
    """A complete Multi-Core Crypto-Processor instance."""

    def __init__(
        self,
        sim: Simulator,
        core_count: int = DEFAULT_CORE_COUNT,
        timing: TimingModel = DEFAULT_TIMING,
        policy=None,
        trace: Optional[TraceRecorder] = None,
        key_memory: Optional[KeyMemory] = None,
        backend: BackendSpec = None,
        max_channels: Optional[int] = None,
    ):
        if core_count < 1:
            raise ProtocolError("MCCP needs at least one core")
        self.sim = sim
        self.timing = timing
        #: Where batched dispatches execute (:mod:`repro.crypto.fast
        #: .exec`): an :class:`ExecutionBackend`, a spec string, or
        #: None for the process default (``REPRO_BACKEND``).  Per-call
        #: ``backend=`` arguments override it.
        self.backend = backend
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)

        self.cores: List[CryptoCore] = [
            CryptoCore(sim, timing, index=i, trace=self.trace)
            for i in range(core_count)
        ]
        # Inter-core ports: each core sends to its right neighbour (ring),
        # matching the paper's neighbour pairing of shared memories.
        for i, core in enumerate(self.cores):
            right = self.cores[(i + 1) % core_count]
            core.unit.ic_out = right.unit.ic_in

        self.key_memory = key_memory if key_memory is not None else KeyMemory()
        self.key_scheduler = KeyScheduler(sim, self.key_memory, timing)
        self.crossbar = Crossbar(sim, timing)
        scheduler_kwargs = {}
        if max_channels is not None:
            # Session-scale workloads multiplex thousands of sessions
            # above the channel layer; the hardware table size stays
            # the default for everyone else.
            scheduler_kwargs["max_channels"] = max_channels
        self.scheduler = TaskScheduler(
            sim,
            self.cores,
            self.key_scheduler,
            self.crossbar,
            timing,
            policy=policy,
            trace=self.trace,
            **scheduler_kwargs,
        )

        #: Mirrors the hardware registers of section III.B.
        self.instruction_register = 0
        self.return_register = 0

    # -- register-level protocol ------------------------------------------------

    def execute_instruction(self, instr: Instruction) -> Tuple[ReturnCode, int]:
        """Run one control instruction; returns (code, aux value).

        This is the four-step protocol collapsed to a call: write the
        instruction register, pulse start, busy-wait done, read the
        return register.  The aux value is the channel id (OPEN) or
        request id (ENCRYPT/DECRYPT/RETRIEVE DATA).

        Note: the register-level path cannot carry the full formatted
        task (the hardware receives data through the FIFOs separately);
        ENCRYPT/DECRYPT here only *reserves* resources.  The
        communication controller model uses :meth:`submit` which takes
        the formatted task directly.
        """
        from repro.mccp.instructions import encode_instruction

        self.instruction_register = encode_instruction(instr)
        try:
            if isinstance(instr, OpenInstr):
                channel = self.scheduler.open_channel(instr.algorithm, instr.key_id)
                code, aux = ReturnCode.OK, channel.channel_id
            elif isinstance(instr, CloseInstr):
                self.scheduler.close_channel(instr.channel_id)
                code, aux = ReturnCode.OK, 0
            elif isinstance(instr, (EncryptInstr, DecryptInstr)):
                # Resource check only (see docstring).
                needed = 1
                if not self.scheduler.idle_core_indices():
                    code, aux = ReturnCode.NO_RESOURCE, 0
                else:
                    code, aux = ReturnCode.OK, needed
            elif isinstance(instr, RetrieveDataInstr):
                request = self.scheduler.next_available_request()
                if request is None:
                    code, aux = ReturnCode.NOT_READY, 0
                else:
                    ok, rid = self.scheduler.retrieve(request)
                    code = ReturnCode.OK if ok else ReturnCode.AUTH_FAIL
                    aux = rid
            elif isinstance(instr, TransferDoneInstr):
                request = self.scheduler.requests.get(instr.request_id)
                if request is None:
                    code, aux = ReturnCode.ERROR, 0
                else:
                    self.scheduler.transfer_done(request)
                    code, aux = ReturnCode.OK, instr.request_id
            else:
                code, aux = ReturnCode.ERROR, 0
        except NoResourceError:
            code, aux = ReturnCode.NO_RESOURCE, 0
        except ChannelError:
            code, aux = ReturnCode.UNKNOWN_CHANNEL, 0

        self.return_register = ((aux & 0xF) << 4) | int(code)
        return code, aux

    # -- convenience API (communication-controller path) --------------------------

    def load_session_key(self, key_id: int, key: bytes) -> None:
        """Main-controller action: install a session key."""
        self.key_memory.load_key(key_id, key)

    def open_channel(
        self, algorithm: Algorithm, key_id: int, tag_length: int = 16
    ):
        """OPEN convenience wrapper; returns the Channel."""
        return self.scheduler.open_channel(algorithm, key_id, tag_length)

    def close_channel(self, channel_id: int) -> None:
        """CLOSE convenience wrapper."""
        self.scheduler.close_channel(channel_id)

    def submit(
        self,
        channel_id: int,
        tasks: Sequence[FormattedTask],
        priority: int = 1,
        job: Optional["PacketJob"] = None,
    ) -> PendingRequest:
        """ENCRYPT/DECRYPT + data upload entry point (see CommController)."""
        return self.scheduler.submit(channel_id, tasks, priority, job=job)

    # -- batched submission path (software multi-packet fast path) -----------------

    def enqueue_packet(
        self,
        channel_id: int,
        data: bytes,
        aad: bytes = b"",
        direction: Direction = Direction.ENCRYPT,
        nonce: Optional[bytes] = None,
        tag: Optional[bytes] = None,
    ) -> int:
        """Queue one packet for batched dispatch; returns queue depth.

        Convenience wrapper over :meth:`enqueue_job` for callers that
        deal in raw bytes rather than :class:`PacketJob` records (the
        communication controller builds jobs directly).
        """
        return self.enqueue_job(
            channel_id,
            PacketJob(
                direction=direction,
                nonce=b"" if nonce is None else bytes(nonce),
                data=bytes(data),
                aad=bytes(aad),
                tag=None if tag is None else bytes(tag),
            ),
        )

    def enqueue_job(self, channel_id: int, job: PacketJob) -> int:
        """Queue one :class:`PacketJob` for batched dispatch.

        Returns the queue depth.  The caller owns the nonce (the
        communication controller issues them; reusing one under the
        same key is a protocol violation this layer cannot detect).
        DECRYPT jobs must carry the received tag.  Nothing runs until a
        flush drains the queue, so callers control the coalescing
        window as well as the per-dispatch width (the channel's
        :class:`repro.mccp.channel.FlushPolicy`).
        """
        channel = self.scheduler.get_channel(channel_id)
        if not channel.is_open:
            raise ChannelError(f"channel {channel_id} is closed")
        if channel.algorithm not in BATCHABLE_ALGORITHMS:
            raise ProtocolError(
                f"batched submission supports AEAD channels, "
                f"not {channel.algorithm.name}"
            )
        if not job.nonce:
            raise ProtocolError("batched packets need a caller-issued nonce")
        if job.direction is Direction.DECRYPT:
            if job.tag is None:
                raise ProtocolError("DECRYPT packets must carry the received tag")
            if len(job.tag) != channel.tag_length:
                # Verifying against whatever length arrives would let a
                # forger downgrade to the shortest valid tag.
                raise ProtocolError(
                    f"channel {channel_id} verifies {channel.tag_length}-byte "
                    f"tags, got {len(job.tag)}"
                )
        if channel.algorithm is Algorithm.CCM:
            # Reject bad nonce/payload sizes now: by flush time the batch
            # has left the queue and an exception would drop its packets.
            _ccm_check_params(bytes(job.nonce), channel.tag_length, len(job.data))
        elif channel.tag_length not in _GCM_VALID_TAG_LENGTHS:
            raise ProtocolError(
                f"channel {channel_id} has GCM tag length "
                f"{channel.tag_length}, valid: {_GCM_VALID_TAG_LENGTHS}"
            )
        job.channel_id = channel_id
        return channel.enqueue(job)

    def dispatch_jobs(
        self,
        channel_id: int,
        jobs: Sequence[PacketJob],
        backend: BackendSpec = None,
    ) -> List[BatchResult]:
        """Run one already-dequeued batch of *jobs* through the engine.

        The dataplane's inner step: the communication controller pops a
        batch (charging its modelled control/transfer time), then calls
        this to produce the bytes.  Each job's :attr:`PacketJob.result`
        is stamped; channel statistics (``packets_processed``,
        ``bytes_processed``, ``auth_failures``, ``stats['batches']``)
        update as the paper's per-channel counters would.  *backend*
        (default: the device's :attr:`backend`) decides where the
        seal/open sweeps execute; results are byte-identical and
        identically ordered whichever backend runs them.

        Implemented as submit-then-drain over
        :meth:`dispatch_jobs_async`, so the blocking and pipelined
        dataplanes can never diverge.
        """
        return self.dispatch_jobs_async(channel_id, jobs, backend).result()

    def dispatch_jobs_async(
        self,
        channel_id: int,
        jobs: Sequence[PacketJob],
        backend: BackendSpec = None,
    ) -> DispatchHandle:
        """Submit one batch without waiting; a :class:`DispatchHandle`.

        The futures form of :meth:`dispatch_jobs`: the key fetch (with
        its retry loop) and the backend submission happen here, then
        the caller gets the handle back while thread/process workers
        run the crypto — the pipelined dataplane keeps coalescing the
        *next* batch meanwhile.  Job stamping, channel counters and the
        quarantine/dead-letter routing all run inside
        ``handle.result()``; an unreadable key dead-letters the whole
        batch immediately and returns an already-completed handle.
        """
        channel = self.scheduler.get_channel(channel_id)
        resolved = resolve_backend(
            backend if backend is not None else self.backend
        )
        key, key_error = self._fetch_key_resilient(channel, jobs)
        if key is None:
            results = self._dead_letter_batch(channel, jobs, key_error)
            channel.stats["batches"] = channel.stats.get("batches", 0) + 1
            return DispatchHandle.completed(results)
        return self._start_batch(channel, key, jobs, resolved)

    def _fetch_key_resilient(
        self, channel: Channel, jobs: Sequence[PacketJob]
    ) -> Tuple[Optional[bytes], str]:
        """Key-memory read with retry; ``(key, '')`` or ``(None, why)``.

        A read error — real :class:`KeyStoreError`, or injected at the
        ``key_error`` site — retries up to :data:`KEY_FETCH_ATTEMPTS`
        total attempts; exhaustion reports the reason so the caller can
        dead-letter the batch instead of unwinding the dataplane.
        """
        plan = _faults.active_plan()
        fault_key = (channel.channel_id, jobs[0].sequence if jobs else 0)
        last_error = ""
        for attempt in range(KEY_FETCH_ATTEMPTS):
            try:
                if plan is not None and plan.decide(
                    "key_error", fault_key, attempt
                ):
                    _resilience_stats.record_fault()
                    raise InjectedFault(
                        f"injected key-memory read error "
                        f"(channel {channel.channel_id}, key {channel.key_id})"
                    )
                return self.key_memory.fetch_for_scheduler(channel.key_id), ""
            except (KeyStoreError, InjectedFault) as exc:
                last_error = str(exc)
                if attempt + 1 < KEY_FETCH_ATTEMPTS:
                    _resilience_stats.record_retry()
        return None, last_error

    def _dead_letter_batch(
        self, channel: Channel, jobs: Sequence[PacketJob], reason: str
    ) -> List[BatchResult]:
        """Fail every job in the batch into the dead-letter queue."""
        results = []
        for job in jobs:
            result = BatchResult(ok=False, payload=b"", error=reason)
            job.result = result
            results.append(result)
            channel.packets_processed += 1
            channel.bytes_processed += len(job.data)
            channel.dead_letters.append(job)
        channel.stats["dead_lettered"] = channel.stats.get(
            "dead_lettered", 0
        ) + len(jobs)
        _resilience_stats.record_dead_letter(len(jobs))
        return results

    def flush_channel(
        self, channel_id: int, backend: BackendSpec = None
    ) -> List[BatchResult]:
        """Drain one channel's queue through the batch engine.

        One entry point into the canonical flush lifecycle documented
        on :class:`repro.mccp.channel.FlushPolicy` — specifically the
        *explicit force* trigger, taken with zero simulated time.
        Packets dispatch in submission order, :attr:`Channel
        .coalesce_limit` per batch; results come back in the same
        order.  The simulated dataplane
        (:class:`repro.radio.comm_controller.CommController`) drives
        :meth:`dispatch_jobs` itself so it can charge scheduler and
        crossbar time per dispatch; its force-drain is ``flush_now``.
        """
        channel = self.scheduler.get_channel(channel_id)
        results: List[BatchResult] = []
        while channel.pending:
            results.extend(
                self.dispatch_jobs(channel_id, channel.take_batch(), backend)
            )
        return results

    def flush_batches(
        self, backend: BackendSpec = None
    ) -> Dict[int, List[BatchResult]]:
        """Flush every channel with queued packets; id -> results.

        The all-channels form of :meth:`flush_channel` — the same
        *explicit force* trigger of the canonical flush lifecycle
        documented on :class:`repro.mccp.channel.FlushPolicy`, applied
        to every non-empty queue in channel-id order.

        Per-channel flushes are mutually independent (disjoint queues,
        stats and keys), so a shared-state backend with more than one
        worker drains the channels concurrently — each channel's own
        dispatches stay inline on its worker, which keeps the per-pool
        work non-reentrant.  Process backends (and inline) drain
        channels sequentially and parallelise inside each dispatch
        instead.  Either way the mapping and every result list are
        identical to the sequential drain.
        """
        resolved = resolve_backend(backend if backend is not None else self.backend)
        pending_ids = [
            channel_id
            for channel_id, channel in sorted(self.scheduler.channels.items())
            if channel.pending
        ]
        if (
            resolved.supports_shared_state
            and resolved.workers > 1
            and len(pending_ids) > 1
        ):
            results = resolved.run(
                [(self.flush_channel, (cid, INLINE)) for cid in pending_ids]
            )
            return dict(zip(pending_ids, results))
        return {
            channel_id: self.flush_channel(channel_id, resolved)
            for channel_id in pending_ids
        }

    def _start_batch(
        self,
        channel: Channel,
        key: bytes,
        batch: Sequence[PacketJob],
        backend: BackendSpec = None,
    ) -> DispatchHandle:
        """Submit one coalesced batch; seals and opens share a sweep.

        The two direction lists go through :func:`repro.crypto.fast
        .batch.seal_open_submit` as one backend pass, so a mixed
        batch's encrypt and decrypt sweeps overlap across workers —
        and the submission returns immediately, leaving the caller
        free until :meth:`DispatchHandle.result`.

        Dispatches run with ``isolate=True``: a packet-level failure (a
        poisoned packet under fault injection) quarantines alone — the
        job gets a failed :class:`BatchResult` carrying the error,
        joins the channel's dead-letter queue, and its batchmates'
        results stay byte-identical to the fault-free run.  Only
        genuine tag-verification failures count toward
        :attr:`Channel.auth_failures`.

        The dispatch is tagged with ``key_ref=(key_id, epoch)`` so the
        arena dataplane's persistent workers can keep their per-key
        warm caches honest: :meth:`repro.mccp.key_scheduler
        .KeyScheduler.invalidate` bumps the epoch on rekey, and workers
        drop exactly the rotated key's warm record (results never
        depend on this — it is purely a cache-invalidation signal).
        """
        from repro.crypto.fast import batch as fast_batch
        from repro.crypto.fast.arena import key_epoch

        plan = _faults.active_plan()
        if plan is not None:
            # Mark injected batch errors while channel/sequence are in
            # hand; the engine checks nonce membership, which crosses
            # process boundaries with the plan.
            for job in batch:
                if plan.decide(
                    "batch_error", (channel.channel_id, job.sequence)
                ) and not plan.is_poisoned(job.nonce):
                    plan.poison(job.nonce)
                    _resilience_stats.record_fault()
        mode = "gcm" if channel.algorithm is Algorithm.GCM else "ccm"
        seal_indices = [
            i for i, p in enumerate(batch) if p.direction is Direction.ENCRYPT
        ]
        open_indices = [
            i for i, p in enumerate(batch) if p.direction is Direction.DECRYPT
        ]
        handle = fast_batch.seal_open_submit(
            mode,
            key,
            [(batch[i].nonce, batch[i].data, batch[i].aad) for i in seal_indices],
            [
                (batch[i].nonce, batch[i].data, batch[i].tag, batch[i].aad)
                for i in open_indices
            ],
            channel.tag_length,
            backend=backend,
            isolate=True,
            key_ref=(channel.key_id, key_epoch(channel.key_id)),
        )
        return DispatchHandle(
            self, channel, list(batch), seal_indices, open_indices, handle
        )

    def _finish_batch(
        self,
        channel: Channel,
        batch: Sequence[PacketJob],
        seal_indices: Sequence[int],
        open_indices: Sequence[int],
        sealed,
        opened,
    ) -> List[BatchResult]:
        """Fan collected sweep results back onto the jobs, in order."""
        results: List[Optional[BatchResult]] = [None] * len(batch)
        for i, item in zip(seal_indices, sealed):
            if isinstance(item, QuarantinedPacketError):
                results[i] = BatchResult(ok=False, payload=b"", error=str(item))
            else:
                ciphertext, tag = item
                results[i] = BatchResult(ok=True, payload=ciphertext, tag=tag)
        for i, item in zip(open_indices, opened):
            if isinstance(item, QuarantinedPacketError):
                results[i] = BatchResult(ok=False, payload=b"", error=str(item))
            else:
                results[i] = BatchResult(
                    ok=item is not None, payload=item or b""
                )
        for job, result in zip(batch, results):
            job.result = result
            channel.packets_processed += 1
            channel.bytes_processed += len(job.data)
            if result.error is not None:
                channel.dead_letters.append(job)
                channel.stats["dead_lettered"] = (
                    channel.stats.get("dead_lettered", 0) + 1
                )
                _resilience_stats.record_quarantine()
                _resilience_stats.record_dead_letter()
            elif not result.ok:
                channel.auth_failures += 1
        return results

    @property
    def idle_cores(self) -> int:
        """Number of currently idle cores."""
        return len(self.scheduler.idle_core_indices())

    def utilisation(self) -> float:
        """Fraction of cores currently busy."""
        busy = sum(1 for c in self.cores if c.busy)
        return busy / len(self.cores)
