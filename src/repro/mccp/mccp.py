"""The MCCP device facade (paper Fig. 1).

Builds the whole device — N cores with neighbour-wired inter-core
registers and pairwise-shared instruction memories, key memory/
scheduler, crossbar, task scheduler — and exposes both interfaces:

- the **register-level protocol** of section III.B
  (:meth:`execute_instruction`: 32-bit instruction register in, 8-bit
  return register out, charged scheduler overhead), and
- **convenience methods** (:meth:`open_channel`, :meth:`submit`, …)
  used by the communication controller and the benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.crypto_core import CryptoCore
from repro.core.params import Algorithm
from repro.errors import ChannelError, NoResourceError, ProtocolError
from repro.mccp.crossbar import Crossbar
from repro.mccp.instructions import (
    CloseInstr,
    DecryptInstr,
    EncryptInstr,
    Instruction,
    OpenInstr,
    RetrieveDataInstr,
    ReturnCode,
    TransferDoneInstr,
)
from repro.mccp.key_memory import KeyMemory
from repro.mccp.key_scheduler import KeyScheduler
from repro.mccp.task_scheduler import PendingRequest, TaskScheduler
from repro.radio.formatting import FormattedTask
from repro.sim.kernel import Simulator
from repro.sim.tracing import TraceRecorder
from repro.unit.timing import DEFAULT_TIMING, TimingModel

#: The paper's implemented configuration.
DEFAULT_CORE_COUNT = 4


class Mccp:
    """A complete Multi-Core Crypto-Processor instance."""

    def __init__(
        self,
        sim: Simulator,
        core_count: int = DEFAULT_CORE_COUNT,
        timing: TimingModel = DEFAULT_TIMING,
        policy=None,
        trace: Optional[TraceRecorder] = None,
        key_memory: Optional[KeyMemory] = None,
    ):
        if core_count < 1:
            raise ProtocolError("MCCP needs at least one core")
        self.sim = sim
        self.timing = timing
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)

        self.cores: List[CryptoCore] = [
            CryptoCore(sim, timing, index=i, trace=self.trace)
            for i in range(core_count)
        ]
        # Inter-core ports: each core sends to its right neighbour (ring),
        # matching the paper's neighbour pairing of shared memories.
        for i, core in enumerate(self.cores):
            right = self.cores[(i + 1) % core_count]
            core.unit.ic_out = right.unit.ic_in

        self.key_memory = key_memory if key_memory is not None else KeyMemory()
        self.key_scheduler = KeyScheduler(sim, self.key_memory, timing)
        self.crossbar = Crossbar(sim, timing)
        self.scheduler = TaskScheduler(
            sim,
            self.cores,
            self.key_scheduler,
            self.crossbar,
            timing,
            policy=policy,
            trace=self.trace,
        )

        #: Mirrors the hardware registers of section III.B.
        self.instruction_register = 0
        self.return_register = 0

    # -- register-level protocol ------------------------------------------------

    def execute_instruction(self, instr: Instruction) -> Tuple[ReturnCode, int]:
        """Run one control instruction; returns (code, aux value).

        This is the four-step protocol collapsed to a call: write the
        instruction register, pulse start, busy-wait done, read the
        return register.  The aux value is the channel id (OPEN) or
        request id (ENCRYPT/DECRYPT/RETRIEVE DATA).

        Note: the register-level path cannot carry the full formatted
        task (the hardware receives data through the FIFOs separately);
        ENCRYPT/DECRYPT here only *reserves* resources.  The
        communication controller model uses :meth:`submit` which takes
        the formatted task directly.
        """
        from repro.mccp.instructions import encode_instruction

        self.instruction_register = encode_instruction(instr)
        try:
            if isinstance(instr, OpenInstr):
                channel = self.scheduler.open_channel(instr.algorithm, instr.key_id)
                code, aux = ReturnCode.OK, channel.channel_id
            elif isinstance(instr, CloseInstr):
                self.scheduler.close_channel(instr.channel_id)
                code, aux = ReturnCode.OK, 0
            elif isinstance(instr, (EncryptInstr, DecryptInstr)):
                # Resource check only (see docstring).
                needed = 1
                if not self.scheduler.idle_core_indices():
                    code, aux = ReturnCode.NO_RESOURCE, 0
                else:
                    code, aux = ReturnCode.OK, needed
            elif isinstance(instr, RetrieveDataInstr):
                request = self.scheduler.next_available_request()
                if request is None:
                    code, aux = ReturnCode.NOT_READY, 0
                else:
                    ok, rid = self.scheduler.retrieve(request)
                    code = ReturnCode.OK if ok else ReturnCode.AUTH_FAIL
                    aux = rid
            elif isinstance(instr, TransferDoneInstr):
                request = self.scheduler.requests.get(instr.request_id)
                if request is None:
                    code, aux = ReturnCode.ERROR, 0
                else:
                    self.scheduler.transfer_done(request)
                    code, aux = ReturnCode.OK, instr.request_id
            else:
                code, aux = ReturnCode.ERROR, 0
        except NoResourceError:
            code, aux = ReturnCode.NO_RESOURCE, 0
        except ChannelError:
            code, aux = ReturnCode.UNKNOWN_CHANNEL, 0

        self.return_register = ((aux & 0xF) << 4) | int(code)
        return code, aux

    # -- convenience API (communication-controller path) --------------------------

    def load_session_key(self, key_id: int, key: bytes) -> None:
        """Main-controller action: install a session key."""
        self.key_memory.load_key(key_id, key)

    def open_channel(
        self, algorithm: Algorithm, key_id: int, tag_length: int = 16
    ):
        """OPEN convenience wrapper; returns the Channel."""
        return self.scheduler.open_channel(algorithm, key_id, tag_length)

    def close_channel(self, channel_id: int) -> None:
        """CLOSE convenience wrapper."""
        self.scheduler.close_channel(channel_id)

    def submit(
        self, channel_id: int, tasks: Sequence[FormattedTask], priority: int = 1
    ) -> PendingRequest:
        """ENCRYPT/DECRYPT + data upload entry point (see CommController)."""
        return self.scheduler.submit(channel_id, tasks, priority)

    @property
    def idle_cores(self) -> int:
        """Number of currently idle cores."""
        return len(self.scheduler.idle_core_indices())

    def utilisation(self) -> float:
        """Fraction of cores currently busy."""
        busy = sum(1 for c in self.cores if c.busy)
        return busy / len(self.cores)
