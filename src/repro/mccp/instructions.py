"""The 32-bit control instruction set (paper section III.B).

Encoding (our concrete layout for the paper's abstract format)::

    bits [31:28]  opcode
    bits [27:20]  operand A   (algorithm / channel id)
    bits [19:10]  operand B   (key id / header size in blocks)
    bits [9:0]    operand C   (data size in blocks)

Header/data sizes are carried in 128-bit blocks (the communication
controller formats packets before upload, so block counts are what the
cores consume).  The 8-bit return register carries a :class:`ReturnCode`
in the low nibble and a channel/request id in the high nibble for the
instructions that return one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.core.params import Algorithm
from repro.errors import ProtocolError


class Opcode(enum.IntEnum):
    """Instruction opcodes."""

    OPEN = 0x1
    CLOSE = 0x2
    ENCRYPT = 0x3
    DECRYPT = 0x4
    RETRIEVE_DATA = 0x5
    TRANSFER_DONE = 0x6


class ReturnCode(enum.IntEnum):
    """Low-nibble return codes in the return register."""

    OK = 0x1
    ERROR = 0x2
    NO_RESOURCE = 0x3
    AUTH_FAIL = 0x4
    UNKNOWN_CHANNEL = 0x5
    NOT_READY = 0x6


@dataclass(frozen=True)
class OpenInstr:
    """OPEN Algorithm, Key ID -> channel id or error."""

    algorithm: Algorithm
    key_id: int


@dataclass(frozen=True)
class CloseInstr:
    """CLOSE Channel ID."""

    channel_id: int


@dataclass(frozen=True)
class EncryptInstr:
    """ENCRYPT Channel ID, Header Size, Data Size (sizes in blocks)."""

    channel_id: int
    header_blocks: int
    data_blocks: int


@dataclass(frozen=True)
class DecryptInstr:
    """DECRYPT Channel ID, Header Size, Data Size (sizes in blocks)."""

    channel_id: int
    header_blocks: int
    data_blocks: int


@dataclass(frozen=True)
class RetrieveDataInstr:
    """RETRIEVE DATA — after the Data Available interrupt."""


@dataclass(frozen=True)
class TransferDoneInstr:
    """TRANSFER DONE — all FIFO I/O for the current request finished."""

    request_id: int


Instruction = Union[
    OpenInstr, CloseInstr, EncryptInstr, DecryptInstr, RetrieveDataInstr, TransferDoneInstr
]


def encode_instruction(instr: Instruction) -> int:
    """Pack an instruction into the 32-bit instruction register format."""
    if isinstance(instr, OpenInstr):
        return (Opcode.OPEN << 28) | (int(instr.algorithm) << 20) | (instr.key_id << 10)
    if isinstance(instr, CloseInstr):
        return (Opcode.CLOSE << 28) | (instr.channel_id << 20)
    if isinstance(instr, EncryptInstr):
        return (
            (Opcode.ENCRYPT << 28)
            | (instr.channel_id << 20)
            | (instr.header_blocks << 10)
            | instr.data_blocks
        )
    if isinstance(instr, DecryptInstr):
        return (
            (Opcode.DECRYPT << 28)
            | (instr.channel_id << 20)
            | (instr.header_blocks << 10)
            | instr.data_blocks
        )
    if isinstance(instr, RetrieveDataInstr):
        return Opcode.RETRIEVE_DATA << 28
    if isinstance(instr, TransferDoneInstr):
        return (Opcode.TRANSFER_DONE << 28) | (instr.request_id << 20)
    raise ProtocolError(f"cannot encode {instr!r}")


def decode_instruction(word: int) -> Instruction:
    """Unpack a 32-bit instruction register value."""
    if not 0 <= word < (1 << 32):
        raise ProtocolError(f"instruction word {word:#x} exceeds 32 bits")
    opcode = (word >> 28) & 0xF
    a = (word >> 20) & 0xFF
    b = (word >> 10) & 0x3FF
    c = word & 0x3FF
    if opcode == Opcode.OPEN:
        try:
            algorithm = Algorithm(a)
        except ValueError as exc:
            raise ProtocolError(f"unknown algorithm id {a:#x}") from exc
        return OpenInstr(algorithm, b)
    if opcode == Opcode.CLOSE:
        return CloseInstr(a)
    if opcode == Opcode.ENCRYPT:
        return EncryptInstr(a, b, c)
    if opcode == Opcode.DECRYPT:
        return DecryptInstr(a, b, c)
    if opcode == Opcode.RETRIEVE_DATA:
        return RetrieveDataInstr()
    if opcode == Opcode.TRANSFER_DONE:
        return TransferDoneInstr(a)
    raise ProtocolError(f"unknown opcode {opcode:#x}")
