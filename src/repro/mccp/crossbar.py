"""The Cross Bar (paper section III.A).

"Each Cryptographic Core communicates with the communication controller
through the Cross Bar; it enables the Task Scheduler to select a
specific core for I/O access."  The model tracks which core currently
owns the external I/O port (granted by RETRIEVE DATA / the upload phase
of ENCRYPT) and charges one cycle per 32-bit word moved, which is what
serialises concurrent packet uploads in the multi-core benchmarks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.crypto_core import CryptoCore
from repro.sim.kernel import Delay, Simulator
from repro.unit.timing import TimingModel
from repro.utils.bits import bytes_to_words32


class Crossbar:
    """External-port arbiter plus word-transfer engine."""

    def __init__(self, sim: Simulator, timing: TimingModel):
        self.sim = sim
        self.timing = timing
        self._granted: Optional[int] = None
        #: Total words moved through the external port (both directions).
        self.words_moved = 0

    @property
    def granted_core(self) -> Optional[int]:
        """Index of the core currently granted external I/O (None = none)."""
        return self._granted

    def grant(self, core_index: int) -> None:
        """Connect *core_index* to the external port."""
        self._granted = core_index

    def release(self) -> None:
        """Disconnect the external port."""
        self._granted = None

    # -- transfer processes ----------------------------------------------------
    #
    # Transfers charge per-word cycles but are not serialised against the
    # grant: the model assumes a multi-port switch (each core port can
    # move one word per cycle concurrently).  ``grant`` tracks the
    # RETRIEVE-DATA protocol state only.

    def upload_blocks(self, core: CryptoCore, blocks) -> "object":
        """Process: stream *blocks* into the core's input FIFO."""

        def proc():
            for block in blocks:
                for word in bytes_to_words32(block):
                    while not core.in_fifo.can_push():
                        yield core.in_fifo.wait_not_full()
                    core.in_fifo.push_word(word)
                    self.words_moved += 1
                    yield Delay(self.timing.crossbar_word_cycles)
            return self.sim.now

        return self.sim.add_process(proc(), name=f"xbar.up.{core.name}")

    def download_words(self, core: CryptoCore, sink: list, nwords: int) -> "object":
        """Process: pop exactly *nwords* words from the core's output FIFO."""

        def proc():
            remaining = nwords
            while remaining > 0:
                while not core.out_fifo.can_pop():
                    yield core.out_fifo.wait_not_empty()
                sink.append(core.out_fifo.pop_word())
                self.words_moved += 1
                remaining -= 1
                yield Delay(self.timing.crossbar_word_cycles)
            return self.sim.now

        return self.sim.add_process(proc(), name=f"xbar.down.{core.name}")
