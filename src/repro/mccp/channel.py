"""Channel state (paper section III.B: OPEN/CLOSE lifecycle).

A channel binds an algorithm to a session key id.  Packets from the
same channel may be processed concurrently on different cores
(section IV.D), so the channel itself holds no per-packet state.

For the software batch engine the channel additionally carries a
coalescing queue: packets enqueued via :meth:`Mccp.enqueue_packet`
wait here until a flush drains them, :attr:`Channel.coalesce_limit` at
a time, into one multi-packet dispatch
(:mod:`repro.crypto.fast.batch`).  That is the software restatement of
the paper's many-channel pipelining — same-key packets share one pass
through the engine instead of paying per-packet dispatch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.params import Algorithm, Direction

#: Default packets-per-dispatch for the batched submission path.  The
#: lane-parallel CBC-MAC and fused counter sweeps amortise best around
#: this width on 2 KB packets; it is a per-channel knob, not a constant.
DEFAULT_COALESCE_LIMIT = 32


@dataclass
class QueuedPacket:
    """One packet awaiting batched dispatch on its channel."""

    direction: Direction
    #: Caller-owned nonce (the communication controller issues nonces;
    #: the channel layer never invents them).
    nonce: bytes
    #: Plaintext (ENCRYPT) or ciphertext (DECRYPT).
    data: bytes
    aad: bytes = b""
    #: Expected tag (DECRYPT only).
    tag: Optional[bytes] = None


class ChannelState(enum.Enum):
    """Lifecycle of a channel."""

    OPEN = "open"
    CLOSED = "closed"


@dataclass
class Channel:
    """One open communication channel."""

    channel_id: int
    algorithm: Algorithm
    key_id: int
    key_bits: int
    state: ChannelState = ChannelState.OPEN
    #: Default tag length for the channel's packets (bytes).
    tag_length: int = 16
    #: Statistics.
    packets_processed: int = 0
    bytes_processed: int = 0
    auth_failures: int = 0
    stats: dict = field(default_factory=dict)
    #: Packets queued for batched dispatch (drained by flush).
    pending: List[QueuedPacket] = field(default_factory=list)
    #: Max packets coalesced into one batch-engine dispatch.
    coalesce_limit: int = DEFAULT_COALESCE_LIMIT

    @property
    def is_open(self) -> bool:
        """Whether the channel accepts new packet requests."""
        return self.state is ChannelState.OPEN

    @property
    def pending_count(self) -> int:
        """Packets currently waiting for a batched flush."""
        return len(self.pending)

    def enqueue(self, packet: QueuedPacket) -> int:
        """Queue one packet for batched dispatch; returns queue depth."""
        self.pending.append(packet)
        return len(self.pending)

    def take_batch(self) -> List[QueuedPacket]:
        """Pop up to :attr:`coalesce_limit` packets, submission order."""
        limit = max(1, self.coalesce_limit)
        batch, self.pending = self.pending[:limit], self.pending[limit:]
        return batch

    def close(self) -> None:
        """Transition to CLOSED (idempotent)."""
        self.state = ChannelState.CLOSED
