"""Channel state (paper section III.B: OPEN/CLOSE lifecycle).

A channel binds an algorithm to a session key id.  Packets from the
same channel may be processed concurrently on different cores
(section IV.D), so the channel itself holds no per-packet state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.params import Algorithm


class ChannelState(enum.Enum):
    """Lifecycle of a channel."""

    OPEN = "open"
    CLOSED = "closed"


@dataclass
class Channel:
    """One open communication channel."""

    channel_id: int
    algorithm: Algorithm
    key_id: int
    key_bits: int
    state: ChannelState = ChannelState.OPEN
    #: Default tag length for the channel's packets (bytes).
    tag_length: int = 16
    #: Statistics.
    packets_processed: int = 0
    bytes_processed: int = 0
    auth_failures: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def is_open(self) -> bool:
        """Whether the channel accepts new packet requests."""
        return self.state is ChannelState.OPEN

    def close(self) -> None:
        """Transition to CLOSED (idempotent)."""
        self.state = ChannelState.CLOSED
