"""Channel state (paper section III.B: OPEN/CLOSE lifecycle).

A channel binds an algorithm to a session key id.  Packets from the
same channel may be processed concurrently on different cores
(section IV.D), so the channel itself holds no per-packet state.

Since the dataplane refactor the channel is also the coalescing point
of the unified :class:`PacketJob` pipeline: every packet the radio
submits — whether it will run on the simulated cores or through the
software batch engine — becomes one ``PacketJob``, and batch-engine
jobs queue here until a flush drains them.  The channel's
:class:`FlushPolicy` decides *when* that happens: a size threshold
(``coalesce_limit`` jobs trigger an immediate dispatch) and a sim-time
idle deadline (``flush_deadline`` cycles after the oldest queued job,
so low-rate channels never stall a packet indefinitely waiting for
batch-mates).  That is the software restatement of the paper's
many-channel pipelining — same-key packets share one pass through the
engine instead of paying per-packet dispatch — with the latency
guard-rail a real radio needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.core.params import Algorithm, Direction

#: Default packets-per-dispatch for the batched submission path.  The
#: lane-parallel CBC-MAC and fused counter sweeps amortise best around
#: this width on 2 KB packets; it is a per-channel knob, not a constant.
DEFAULT_COALESCE_LIMIT = 32

#: Default idle deadline (cycles) before an under-filled batch is
#: forced out.  At the paper's 190 MHz clock this is ~43 us — far under
#: every profile's latency budget but long enough for a saturating
#: channel to fill a batch many times over.
DEFAULT_FLUSH_DEADLINE = 8192


@dataclass
class FlushPolicy:
    """When a channel's queued jobs are dispatched.

    **The canonical flush lifecycle** (every flush entry point —
    ``CommController.flush_now``, ``Mccp.flush_channel``,
    ``Mccp.flush_batches`` — is one view of this sequence):

    1. **Coalesce** — submitted jobs queue in :attr:`Channel.pending`,
       in submission order, until a trigger fires.
    2. **Trigger** — either the *size threshold* (``coalesce_limit``
       queued jobs), the *idle deadline* (``flush_deadline`` cycles
       after the oldest queued job), or an *explicit force*
       (``flush_now`` / the zero-sim-time ``flush_channel`` /
       ``flush_batches`` drains).
    3. **Dispatch** — jobs pop :attr:`Channel.coalesce_limit` at a
       time (never more per batch) and run through the batch engine;
       while a popped batch is computing it is accounted in
       :attr:`Channel.in_flight`.
    4. **Fan-out** — each job's completion fires in submission order
       within its channel, whatever executed where (and, under the
       pipelined dataplane, in whatever wall-clock order batches
       actually finished).

    ``coalesce_limit`` is the size threshold *and* the per-dispatch
    width cap: reaching it triggers an immediate flush, and no dispatch
    ever exceeds it.  ``flush_deadline`` bounds how long the *oldest*
    queued job may wait (in simulated cycles) before an under-filled
    batch is forced out; ``None`` disables the deadline (size-only
    flushing — callers must drain explicitly at end of stream) and
    ``0`` dispatches on the enqueueing cycle (still coalescing jobs
    that arrive within the same cycle).

    ``mode`` names the policy flavour.  ``"fixed"`` applies the two
    static knobs above verbatim for the whole run.  ``"auto"`` starts
    from the same two knobs but hands them to the adaptive controller
    (:class:`repro.mccp.autotune.FlushController`, attached lazily by
    the communication controller at first submission): the controller
    observes windowed per-channel statistics in simulated cycles and
    retunes ``coalesce_limit``/``flush_deadline`` at window
    boundaries, recording every decision in a trace.  Auto never
    changes payload bytes — only batching geometry, and therefore
    latency/throughput.
    """

    coalesce_limit: int = DEFAULT_COALESCE_LIMIT
    flush_deadline: Optional[int] = DEFAULT_FLUSH_DEADLINE
    mode: str = "fixed"

    def __post_init__(self) -> None:
        if self.coalesce_limit < 0:
            raise ValueError(
                f"coalesce_limit must be >= 0, got {self.coalesce_limit}; "
                "a negative width would silently disable size-triggered "
                "flushing downstream"
            )
        if self.coalesce_limit == 0:
            # Documented floor: "dispatch immediately" callers write 0.
            self.coalesce_limit = 1
        if self.flush_deadline is not None and self.flush_deadline < 0:
            raise ValueError(
                f"flush_deadline must be >= 0 or None, got {self.flush_deadline}"
            )
        if self.mode not in ("fixed", "auto"):
            raise ValueError(
                f"unknown FlushPolicy mode {self.mode!r}; valid: 'fixed' "
                "(static knobs) or 'auto' (adaptive controller)"
            )


@dataclass
class PacketJob:
    """One packet's traversal of the dataplane, submit to completion.

    The single job abstraction both execution engines share: the
    communication controller formats a radio packet into a job, the
    channel layer queues and coalesces it, and either the cycle-model
    cores (``via_cores=True``) or the software batch engine carry it
    out.  The crypto payload fields (``direction``/``nonce``/``data``/
    ``aad``/``tag``) are what the engines consume; the accounting
    fields let completions fan back out to per-packet records with
    correct latency attribution.

    The payload fields are deliberately buffer-friendly: the batch
    layer treats ``data``/``aad`` as read-only bytes-likes, so the
    arena dataplane (:mod:`repro.crypto.fast.arena`) can copy them
    once into a shared-memory slab and hand workers offset/length
    descriptors instead of pickling payload bytes per dispatch.
    Nothing downstream mutates these fields in place.
    """

    direction: Direction
    #: Caller-owned nonce (the communication controller issues nonces;
    #: the channel layer never invents them).
    nonce: bytes
    #: Plaintext (ENCRYPT) or ciphertext (DECRYPT).
    data: bytes
    aad: bytes = b""
    #: Expected tag (DECRYPT only).
    tag: Optional[bytes] = None

    # -- identity / accounting ------------------------------------------------
    channel_id: int = -1
    sequence: int = 0
    priority: int = 1
    #: Cycle the radio created the packet (latency epoch).
    created_cycle: int = 0
    #: Cycle the job entered its channel queue.
    enqueued_cycle: int = 0
    #: Cycle the completion record was stamped (None while in flight).
    completed_cycle: Optional[int] = None

    # -- routing --------------------------------------------------------------
    #: True = dispatch on the simulated cores (cycle model); False =
    #: coalesce through the software batch engine.
    via_cores: bool = False
    #: Two-core CCM split (cores engine only).
    two_core: bool = False

    # -- completion -----------------------------------------------------------
    #: Kernel Event triggered with the CompletedTransfer (owner-set).
    completion: Optional[Any] = None
    #: Engine-level outcome (:class:`repro.mccp.mccp.BatchResult`).
    result: Optional[Any] = None
    #: Comm-level record (:class:`repro.radio.comm_controller
    #: .CompletedTransfer`), stamped by the dataplane.
    transfer: Optional[Any] = None


#: Pre-dataplane name for a queued batch-path packet; the job carries
#: the same crypto fields, so old constructor calls keep working.
QueuedPacket = PacketJob


class ChannelState(enum.Enum):
    """Lifecycle of a channel."""

    OPEN = "open"
    CLOSED = "closed"


@dataclass
class Channel:
    """One open communication channel."""

    channel_id: int
    algorithm: Algorithm
    key_id: int
    key_bits: int
    state: ChannelState = ChannelState.OPEN
    #: Default tag length for the channel's packets (bytes).
    tag_length: int = 16
    #: Statistics.
    packets_processed: int = 0
    bytes_processed: int = 0
    auth_failures: int = 0
    stats: dict = field(default_factory=dict)
    #: Jobs queued for batched dispatch (drained by flush).
    pending: List[PacketJob] = field(default_factory=list)
    #: Jobs popped by a drain but not yet completed (a dispatch in its
    #: simulated control/transfer window).  Teardown guards must treat
    #: these like queued jobs: they are no longer in ``pending`` but
    #: their completions have not fired.
    in_flight: int = 0
    #: When queued jobs dispatch (size threshold + idle deadline).
    flush_policy: FlushPolicy = field(default_factory=FlushPolicy)
    #: Jobs that failed unrecoverably (quarantined packet, unreadable
    #: key) and were pulled out of the normal completion stream's
    #: accounting: each carries a failed ``result`` whose ``error``
    #: says why.  The per-channel quarantine the SLA budgets
    #: (``SlaSpec.max_dead_lettered``) draw drop accounting from.
    dead_letters: List[PacketJob] = field(default_factory=list)
    #: Bound on :attr:`pending` (the high watermark): an enqueue that
    #: would exceed it raises :class:`repro.errors.BackpressureError`
    #: instead of growing the queue.  None (the default) keeps the
    #: historical unbounded behaviour.
    capacity: Optional[int] = None
    #: Hysteresis floor: once the queue has hit the high watermark the
    #: channel stays :attr:`under_pressure` until a drain brings the
    #: depth back to this level (None = ``capacity // 2``).  The
    #: admission controller sheds low-priority traffic while the flag
    #: is set, so shedding doesn't flap per-packet around the
    #: watermark.
    low_watermark: Optional[int] = None
    #: Sticky overload flag (see :attr:`low_watermark`).
    under_pressure: bool = False
    #: The adaptive controller driving this channel's knobs when its
    #: policy is ``mode="auto"`` (:class:`repro.mccp.autotune
    #: .FlushController`, attached lazily by the communication
    #: controller); None on fixed-policy channels.
    autotune: Optional[Any] = None

    @property
    def coalesce_limit(self) -> int:
        """Max jobs coalesced into one dispatch (flush-policy view)."""
        return self.flush_policy.coalesce_limit

    @coalesce_limit.setter
    def coalesce_limit(self, value: int) -> None:
        # Route through FlushPolicy validation: a negative width raises
        # the constructor's pointed error instead of silently clamping;
        # 0 keeps its documented "dispatch immediately" floor of 1.
        from dataclasses import replace

        self.flush_policy = replace(
            self.flush_policy, coalesce_limit=int(value)
        )

    @property
    def is_open(self) -> bool:
        """Whether the channel accepts new packet requests."""
        return self.state is ChannelState.OPEN

    @property
    def pending_count(self) -> int:
        """Jobs currently waiting for a batched flush."""
        return len(self.pending)

    @property
    def oldest_pending_cycle(self) -> Optional[int]:
        """Enqueue cycle of the oldest queued job (deadline anchor)."""
        return self.pending[0].enqueued_cycle if self.pending else None

    @property
    def effective_low_watermark(self) -> int:
        """Hysteresis floor in jobs (only meaningful when bounded)."""
        if self.low_watermark is not None:
            return self.low_watermark
        return max(1, (self.capacity or 2) // 2)

    def enqueue(self, job: PacketJob) -> int:
        """Queue one job for batched dispatch; returns queue depth.

        On a bounded channel (non-None :attr:`capacity`) an enqueue at
        the high watermark refuses the job with
        :class:`repro.errors.BackpressureError` — the typed signal the
        producer (or the admission controller) reacts to — and marks
        the channel :attr:`under_pressure` until a drain clears it.
        """
        depth = len(self.pending)
        if self.capacity is not None and depth >= self.capacity:
            self.under_pressure = True
            stats = self.stats
            stats["backpressure_signals"] = (
                stats.get("backpressure_signals", 0) + 1
            )
            from repro.errors import BackpressureError

            raise BackpressureError(self.channel_id, depth, self.capacity)
        self.pending.append(job)
        depth += 1
        stats = self.stats
        stats["jobs_enqueued"] = stats.get("jobs_enqueued", 0) + 1
        if depth > stats.get("queue_peak", 0):
            stats["queue_peak"] = depth
        if self.capacity is not None and depth >= self.capacity:
            self.under_pressure = True
        return depth

    def take_batch(self) -> List[PacketJob]:
        """Pop up to :attr:`coalesce_limit` jobs, submission order."""
        limit = max(1, self.coalesce_limit)
        batch, self.pending = self.pending[:limit], self.pending[limit:]
        if (
            self.under_pressure
            and len(self.pending) <= self.effective_low_watermark
        ):
            self.under_pressure = False
        return batch

    def close(self) -> None:
        """Transition to CLOSED (idempotent)."""
        self.state = ChannelState.CLOSED
