"""The MCCP top level (paper section III, Fig. 1).

One task scheduler, one key scheduler backed by a write-protected key
memory, a crossbar, and N cryptographic cores (4 in the paper; the
count is a constructor parameter, as section III.A promises).  The
device is controlled exclusively through the 32-bit instruction
register / 8-bit return register protocol of section III.B.
"""

from repro.mccp.instructions import (
    CloseInstr,
    DecryptInstr,
    EncryptInstr,
    Instruction,
    OpenInstr,
    RetrieveDataInstr,
    ReturnCode,
    TransferDoneInstr,
    decode_instruction,
)
from repro.mccp.autotune import (
    AutotuneConfig,
    BackendAdvice,
    FlushController,
    TrafficProfile,
    advise_backend,
)
from repro.mccp.key_memory import KeyMemory
from repro.mccp.key_scheduler import KeyScheduler
from repro.mccp.crossbar import Crossbar
from repro.mccp.channel import Channel, ChannelState, FlushPolicy, PacketJob
from repro.mccp.task_scheduler import PendingRequest, TaskScheduler
from repro.mccp.mccp import Mccp

__all__ = [
    "CloseInstr",
    "DecryptInstr",
    "EncryptInstr",
    "Instruction",
    "OpenInstr",
    "RetrieveDataInstr",
    "ReturnCode",
    "TransferDoneInstr",
    "decode_instruction",
    "AutotuneConfig",
    "BackendAdvice",
    "FlushController",
    "TrafficProfile",
    "advise_backend",
    "KeyMemory",
    "KeyScheduler",
    "Crossbar",
    "Channel",
    "ChannelState",
    "FlushPolicy",
    "PacketJob",
    "PendingRequest",
    "TaskScheduler",
    "Mccp",
]
