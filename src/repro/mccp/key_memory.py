"""The write-protected session Key Memory (paper section III.A).

Session keys are generated and written by the *main controller* of the
platform, never by the MCCP: "the Key Memory cannot be accessed in
write mode by the MCCP.  In addition, there is no way to get the secret
session key directly from the MCCP data port."  The model enforces both
properties: writes go through a distinct main-controller handle and
reads are only served to the Key Scheduler.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.errors import KeyStoreError


class KeyMemory:
    """Session-key store with a write-capability handle."""

    def __init__(self, slots: int = 32):
        if slots <= 0:
            raise KeyStoreError("key memory needs at least one slot")
        self.slots = slots
        self._keys: Dict[int, bytes] = {}
        self._sealed = False
        #: Read counter per key id (audit trail).
        self.read_counts: Dict[int, int] = {}
        # The audit trail must stay exact when concurrent per-channel
        # drains (Mccp.flush_batches on a thread backend) fetch keys —
        # channels may share a key id, and an unlocked read-modify-
        # write would lose counts.
        self._read_lock = threading.Lock()

    # -- main-controller (red side) interface --------------------------------

    def load_key(self, key_id: int, key: bytes) -> None:
        """Install a session key (main controller only)."""
        if self._sealed:
            raise KeyStoreError("key memory is sealed; no further writes")
        if not 0 <= key_id < self.slots:
            raise KeyStoreError(f"key id {key_id} out of range (slots={self.slots})")
        if len(key) not in (16, 24, 32):
            raise KeyStoreError(f"key must be 16/24/32 bytes, got {len(key)}")
        self._keys[key_id] = bytes(key)

    def erase_key(self, key_id: int) -> None:
        """Zeroise one key (main controller only)."""
        self._keys.pop(key_id, None)

    def seal(self) -> None:
        """Lock the memory against further writes (mission start)."""
        self._sealed = True

    # -- key-scheduler interface ----------------------------------------------

    def fetch_for_scheduler(self, key_id: int) -> bytes:
        """Serve a key to the Key Scheduler (the only reader)."""
        try:
            key = self._keys[key_id]
        except KeyError as exc:
            raise KeyStoreError(f"no session key with id {key_id}") from exc
        with self._read_lock:
            self.read_counts[key_id] = self.read_counts.get(key_id, 0) + 1
        return key

    def key_bits(self, key_id: int) -> int:
        """Key size in bits for *key_id* (metadata is not secret)."""
        try:
            return 8 * len(self._keys[key_id])
        except KeyError as exc:
            raise KeyStoreError(f"no session key with id {key_id}") from exc

    def has_key(self, key_id: int) -> bool:
        """Whether a key is present."""
        return key_id in self._keys

    def __contains__(self, key_id: int) -> bool:
        return self.has_key(key_id)

    def __repr__(self) -> str:  # pragma: no cover - never leak key material
        return f"KeyMemory(slots={self.slots}, loaded={sorted(self._keys)})"
