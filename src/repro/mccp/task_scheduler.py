"""The Task Scheduler (paper sections III.A–III.C).

Dispatches cryptographic tasks to cores: allocates channels (OPEN),
selects cores for ENCRYPT/DECRYPT via a pluggable mapping policy
(first-idle by default, as in the paper's current release), launches
the Key Scheduler, loads firmware, raises the ``Data Available``
interrupt when a core finishes, and arbitrates the crossbar for
RETRIEVE DATA.

Each control instruction is charged
:attr:`TimingModel.scheduler_overhead_cycles` of 8-bit-controller
software time, which is where the small fixed gap between theoretical
and packet throughput partly comes from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.crypto_core import CoreResult, CryptoCore
from repro.core.params import Algorithm
from repro.errors import ChannelError, NoResourceError, ProtocolError
from repro.mccp.channel import Channel, PacketJob
from repro.mccp.crossbar import Crossbar
from repro.mccp.key_scheduler import KeyScheduler
from repro.radio.formatting import FormattedTask
from repro.sim.kernel import Delay, Event, Simulator
from repro.sim.signals import Signal
from repro.sim.tracing import TraceRecorder
from repro.unit.timing import TimingModel

#: The paper's hardware channel-table size; the software scheduler
#: accepts a larger ``max_channels`` for session-scale workloads
#: (thousands of concurrent sessions above the channel layer).
MAX_CHANNELS = 16


class RequestState(enum.Enum):
    """Lifecycle of one ENCRYPT/DECRYPT request."""

    RUNNING = "running"
    DATA_AVAILABLE = "data_available"
    RETRIEVED = "retrieved"
    DONE = "done"


@dataclass
class PendingRequest:
    """Book-keeping for one in-flight packet task."""

    request_id: int
    channel_id: int
    core_indices: Tuple[int, ...]
    tasks: Tuple[FormattedTask, ...]
    submit_cycle: int
    state: RequestState = RequestState.RUNNING
    results: List[CoreResult] = field(default_factory=list)
    complete_cycle: Optional[int] = None
    done_event: Optional[Event] = None
    #: Triggers when all cores finished (the Data Available edge).
    ready_event: Optional[Event] = None
    #: The dataplane job this request carries out (None for callers
    #: that drive :meth:`TaskScheduler.submit` with raw tasks).
    job: Optional["PacketJob"] = None

    @property
    def auth_failed(self) -> bool:
        """True if any participating core reported AUTH_FAIL."""
        return any(r.auth_failed for r in self.results)

    @property
    def output_core_index(self) -> int:
        """The core whose output FIFO holds the request's results.

        For two-core CCM that is the CTR-role core (the second index).
        """
        return self.core_indices[-1]


class TaskScheduler:
    """Core allocation and request tracking."""

    def __init__(
        self,
        sim: Simulator,
        cores: Sequence[CryptoCore],
        key_scheduler: KeyScheduler,
        crossbar: Crossbar,
        timing: TimingModel,
        policy=None,
        trace: Optional[TraceRecorder] = None,
        max_channels: int = MAX_CHANNELS,
    ):
        from repro.sched.first_idle import FirstIdlePolicy

        if max_channels < 1:
            raise ProtocolError("max_channels must be >= 1")
        self.max_channels = max_channels
        self.sim = sim
        self.cores = list(cores)
        self.key_scheduler = key_scheduler
        self.crossbar = crossbar
        self.timing = timing
        self.policy = policy if policy is not None else FirstIdlePolicy()
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)

        self.channels: Dict[int, Channel] = {}
        self.requests: Dict[int, PendingRequest] = {}
        self._next_channel = 0
        self._next_request = 0
        #: Level signal: number of requests in DATA_AVAILABLE state.  The
        #: rising edge is the paper's Data Available interrupt.
        self.data_available = Signal(sim, "mccp.data_available", initial=0)
        #: Aggregate statistics.
        self.requests_submitted = 0
        self.requests_rejected = 0

    # -- channels ----------------------------------------------------------

    def open_channel(
        self, algorithm: Algorithm, key_id: int, tag_length: int = 16
    ) -> Channel:
        """OPEN: allocate a channel bound to (algorithm, key id)."""
        if len(self.channels) >= self.max_channels:
            raise NoResourceError("no free channel slots")
        key_bits = self.key_scheduler.key_memory.key_bits(key_id)
        channel = Channel(
            channel_id=self._next_channel,
            algorithm=algorithm,
            key_id=key_id,
            key_bits=key_bits,
            tag_length=tag_length,
        )
        self.channels[channel.channel_id] = channel
        self._next_channel += 1
        self.trace.record(
            self.sim.now, "sched", "open", channel=channel.channel_id,
            algorithm=algorithm.name,
        )
        return channel

    def close_channel(self, channel_id: int) -> None:
        """CLOSE: tear the channel down (pending requests must be done)."""
        channel = self._channel(channel_id)
        busy = [
            r for r in self.requests.values()
            if r.channel_id == channel_id and r.state is not RequestState.DONE
        ]
        if busy:
            raise ChannelError(
                f"channel {channel_id} has {len(busy)} unfinished requests"
            )
        if channel.pending or channel.in_flight:
            raise ChannelError(
                f"channel {channel_id} has {len(channel.pending)} packets "
                f"queued for batched dispatch and {channel.in_flight} in a "
                "dispatch in flight (flush first)"
            )
        channel.close()
        del self.channels[channel_id]

    def get_channel(self, channel_id: int) -> Channel:
        """Resolve an open channel id; raises :class:`ChannelError`."""
        return self._channel(channel_id)

    def _channel(self, channel_id: int) -> Channel:
        try:
            return self.channels[channel_id]
        except KeyError as exc:
            raise ChannelError(f"unknown channel {channel_id}") from exc

    # -- core selection -----------------------------------------------------

    def idle_core_indices(self) -> List[int]:
        """Cores currently free (ordered by index).

        A core whose output FIFO still holds words is *not* free even
        though its firmware has halted: the hardware keeps a core
        allocated until TRANSFER DONE (section IV.C), and remapping it
        earlier would start the next task's drainer against a FIFO the
        previous task's drainer is still popping — the two download
        processes would interleave and scatter both packets' words.
        The encrypt path rarely hits the window (its output is drained
        while the core runs), but DECRYPT output legitimately sits in
        the FIFO from RESULT until the post-RETRIEVE download, which
        receive-side workloads exposed.
        """
        return [
            c.index
            for c in self.cores
            if not c.busy and not c.out_fifo.can_pop()
        ]

    # -- request submission ----------------------------------------------------

    def submit(
        self,
        channel_id: int,
        tasks: Sequence[FormattedTask],
        priority: int = 1,
        job: Optional[PacketJob] = None,
    ) -> PendingRequest:
        """Assign a formatted packet task to core(s), first-idle order.

        *tasks* holds one task (single-core modes) or the (MAC, CTR)
        pair of a two-core CCM split; *job* is the dataplane
        :class:`PacketJob` the request carries out, if any.  Raises
        :class:`NoResourceError` when not enough idle cores exist —
        the error-flag path of the paper's ENCRYPT instruction.
        """
        channel = self._channel(channel_id)
        if not channel.is_open:
            raise ChannelError(f"channel {channel_id} is closed")
        needed = len(tasks)
        chosen = self.policy.select_cores(self, needed, priority)
        if chosen is None or len(chosen) < needed:
            self.requests_rejected += 1
            raise NoResourceError(
                f"{needed} idle core(s) required, "
                f"{len(self.idle_core_indices())} available"
            )

        request = PendingRequest(
            request_id=self._next_request,
            channel_id=channel_id,
            core_indices=tuple(chosen),
            tasks=tuple(tasks),
            submit_cycle=self.sim.now,
            job=job,
        )
        self._next_request += 1
        self.requests[request.request_id] = request
        self.requests_submitted += 1
        request.done_event = self.sim.event(f"req{request.request_id}.done")
        request.ready_event = self.sim.event(f"req{request.request_id}.ready")

        if len(chosen) == 2:
            # Cross-wire the inter-core shift registers for this pair:
            # the MAC core forwards the MAC to the CTR core, and (on
            # decryption) the CTR core forwards plaintext back.
            mac_core, ctr_core = self.cores[chosen[0]], self.cores[chosen[1]]
            mac_core.unit.ic_out = ctr_core.unit.ic_in
            ctr_core.unit.ic_out = mac_core.unit.ic_in

        for core_index, task in zip(chosen, tasks):
            core = self.cores[core_index]
            # Round keys must be in the core's cache before start.
            if task.params.algorithm is not Algorithm.WHIRLPOOL:
                if (
                    not core.key_cache.loaded
                    or core.key_cache.key_id != channel.key_id
                ):
                    self.key_scheduler.load_sync(channel.key_id, core.key_cache)
            done = core.assign_task(task.params)
            done.add_waiter(
                lambda result, req=request, idx=core_index: self._core_finished(
                    req, idx, result
                )
            )
        self.trace.record(
            self.sim.now,
            "sched",
            "submit",
            request=request.request_id,
            cores=list(chosen),
            algorithm=channel.algorithm.name,
        )
        return request

    def _core_finished(self, request: PendingRequest, core_index: int, result) -> None:
        request.results.append(result)
        if len(request.results) == len(request.core_indices):
            request.state = RequestState.DATA_AVAILABLE
            request.complete_cycle = self.sim.now
            channel = self.channels.get(request.channel_id)
            if channel is not None:
                channel.packets_processed += 1
                if request.auth_failed:
                    channel.auth_failures += 1
            self.data_available.set(self.data_available.value + 1)
            if request.ready_event is not None:
                request.ready_event.trigger(request)
            self.trace.record(
                self.sim.now, "sched", "data_available", request=request.request_id
            )

    # -- retrieval ---------------------------------------------------------------

    def next_available_request(self) -> Optional[PendingRequest]:
        """Oldest request waiting for RETRIEVE DATA."""
        waiting = [
            r for r in self.requests.values()
            if r.state is RequestState.DATA_AVAILABLE
        ]
        return min(waiting, key=lambda r: r.request_id) if waiting else None

    def retrieve(self, request: PendingRequest) -> Tuple[bool, int]:
        """RETRIEVE DATA: returns (ok, request_id) and grants the crossbar.

        On AUTH_FAIL the output FIFO was already purged by the core; no
        crossbar grant happens (there is nothing to read).
        """
        if request.state is not RequestState.DATA_AVAILABLE:
            raise ProtocolError(
                f"request {request.request_id} not in DATA_AVAILABLE state"
            )
        self.data_available.set(self.data_available.value - 1)
        if request.auth_failed:
            request.state = RequestState.DONE
            self._finish(request)
            return False, request.request_id
        request.state = RequestState.RETRIEVED
        self.crossbar.grant(request.output_core_index)
        return True, request.request_id

    def transfer_done(self, request: PendingRequest) -> None:
        """TRANSFER DONE: release the crossbar, finish the request."""
        if request.state is RequestState.RETRIEVED:
            self.crossbar.release()
        request.state = RequestState.DONE
        self._finish(request)

    def _finish(self, request: PendingRequest) -> None:
        if request.done_event is not None and not request.done_event.triggered:
            request.done_event.trigger(request)

    # -- timing helper -------------------------------------------------------------

    def overhead_delay(self) -> Delay:
        """The scheduler-software cost of one control instruction."""
        return Delay(self.timing.scheduler_overhead_cycles)
