"""The Key Scheduler (paper sections III.A and VI.B).

"Before launching the key scheduling, the Task Scheduler loads the
session key ID into the Key Scheduler which gets the right session key
from the Key Memory" and expands it into the target core's key cache.

Expansion is charged realistic cycles: the FIPS-197 schedule produces
``4 * (rounds + 1)`` 32-bit words through a 32-bit datapath
(:attr:`TimingModel.key_schedule_word_cycles` cycles each).  Round keys
land in the core's cache *before* the core starts, off the per-packet
critical path — exactly why the paper pre-computes them.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.key_cache import KeyCache
from repro.crypto.aes import ROUNDS_BY_KEY_BYTES
# Dispatched expansion: LRU-memoized T-table-engine schedule when the
# fast path is on, plain FIPS-197 reference otherwise.  The *charged*
# cycles are unaffected — only the host-side computation is memoized.
from repro.crypto.fast import expand_key_dispatch as expand_key
from repro.mccp.key_memory import KeyMemory
from repro.sim.kernel import Delay, Event, Simulator
from repro.unit.timing import TimingModel


class KeyScheduler:
    """Expands session keys into core key caches."""

    def __init__(self, sim: Simulator, key_memory: KeyMemory, timing: TimingModel):
        self.sim = sim
        self.key_memory = key_memory
        self.timing = timing
        #: (key_id -> expanded schedule) memo so re-keying an already
        #: scheduled channel is free, as a small hardware cache would be.
        self._memo: Dict[int, Tuple[list, int]] = {}
        #: Total expansions performed (cache-miss counter).
        self.expansions = 0

    def schedule_cycles(self, key_bits: int) -> int:
        """Cycles to expand a key of *key_bits* bits."""
        rounds = ROUNDS_BY_KEY_BYTES[key_bits // 8]
        words = 4 * (rounds + 1)
        return words * self.timing.key_schedule_word_cycles

    def load(self, key_id: int, cache: KeyCache) -> Event:
        """Expand key *key_id* into *cache*; returns a completion event."""
        done = self.sim.event(f"keysched.{key_id}")

        if key_id in self._memo:
            round_keys, key_bits = self._memo[key_id]
            # Cached schedule: only the cache-write transfer is charged.
            delay = 4 * (len(round_keys)) * self.timing.key_schedule_word_cycles // 4
        else:
            key = self.key_memory.fetch_for_scheduler(key_id)
            round_keys = expand_key(key)
            key_bits = 8 * len(key)
            self._memo[key_id] = (round_keys, key_bits)
            self.expansions += 1
            delay = self.schedule_cycles(key_bits)

        def finish():
            yield Delay(delay)
            cache.install(round_keys, key_bits, key_id)
            done.trigger(key_bits)

        self.sim.add_process(finish(), name=f"keysched.load.{key_id}")
        return done

    def invalidate(self, key_id: int) -> bool:
        """Drop the memoized schedule for *key_id* (rekey hook).

        Rewriting key material in the key memory must be paired with
        this, or subsequent loads would install the *old* round keys
        from the memo.  Returns whether a memo entry existed.

        Also bumps the key's arena epoch
        (:func:`repro.crypto.fast.arena.bump_key_epoch`): subsequent
        dispatches carry the new ``(key_id, epoch)`` tag and the
        process backend's persistent workers drop exactly this key's
        warm schedule record — the software restatement of the paper's
        key-cache invalidation on rekey, extended across worker
        processes.
        """
        from repro.crypto.fast.arena import bump_key_epoch

        bump_key_epoch(key_id)
        return self._memo.pop(key_id, None) is not None

    def load_sync(self, key_id: int, cache: KeyCache) -> int:
        """Immediate (zero-time) variant for tests and warm starts."""
        if key_id in self._memo:
            round_keys, key_bits = self._memo[key_id]
        else:
            key = self.key_memory.fetch_for_scheduler(key_id)
            round_keys = expand_key(key)
            key_bits = 8 * len(key)
            self._memo[key_id] = (round_keys, key_bits)
            self.expansions += 1
        cache.install(round_keys, key_bits, key_id)
        return key_bits
