"""Adaptive flush/backend controller (ROADMAP item 3, now shipped).

The batched dataplane's knobs — ``coalesce_limit``, ``flush_deadline``,
``backend``, ``pipeline_depth`` — used to be static per channel, but
the best settings depend on the traffic: bursty control packets want
near-immediate flushes (latency), sustained bulk wants wide coalescing
on a pooled backend (throughput).  This module closes the feedback loop
the workload reports already expose:

- :class:`FlushController` is the per-channel online controller behind
  ``FlushPolicy(mode="auto")``.  It observes windowed statistics in
  *simulated* cycles (arrival counts, mean packet size, queue
  occupancy, realized batch width, flush-cause mix, arrival
  clustering) and retunes the channel's ``coalesce_limit`` /
  ``flush_deadline`` at window boundaries.  Every decision is recorded
  in a trace (window stats in, knobs out, cause) so "why did it widen
  here" is answerable offline from any sweep artifact.
- :func:`advise_backend` is the optional workload-level advisor: a
  scored policy table keyed on a :class:`TrafficProfile` that picks
  the execution ``backend`` and ``pipeline_depth`` for a whole run
  (``WorkloadSpec(autotune=AutotuneConfig(advise_backend=True))``).

Determinism contract
--------------------
Decisions are pure functions of ``(seed, window stats)`` —
:func:`decide_knobs` holds no state and draws no randomness — and the
observation points are simulated-time events (enqueues and flushes),
which are identical across execution backends and across the batched /
pipelined dataplanes.  Repeating a seeded workload therefore reproduces
the decision trace exactly, on any backend.  The controller only moves
*batching geometry*: payload bytes are untouched, so an auto run is
byte-identical to every static setting (the ``autotune_sweep`` scenario
pins this with a hard digest-equality gate).

The knob rules are deliberately conservative so auto can never lose to
the defaults on throughput:

- **widen** under saturation (size-triggered flushes with the queue at
  ≥ 2x the current width): doubling the width halves the per-dispatch
  control overhead on a backlog — a pure throughput win;
- **retarget the deadline** when traffic is idle-dominated (deadline
  flushes only): aim just above the observed arrival-cluster span, so
  a burst still coalesces into one batch but stops waiting out a
  deadline sized for bulk — a pure latency win that leaves the
  dispatch geometry (and therefore total cycles) intact;
- otherwise **hold**.  Narrowing the width is never attempted: on
  idle-dominated traffic the width cap is inert, and shrinking it
  could only split batches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AutotuneConfig",
    "BackendAdvice",
    "BackendPolicy",
    "Decision",
    "FlushController",
    "POLICY_TABLE",
    "TrafficProfile",
    "WindowStats",
    "advise_backend",
    "decide_knobs",
]


@dataclass(frozen=True)
class AutotuneConfig:
    """Tuning envelope for the adaptive controller (all sim cycles).

    Also the value carried by ``WorkloadSpec(autotune=...)``: the
    platform installs it on the communication controller for the run
    and (when :attr:`advise_backend` is set) consults the policy table
    for the run's execution backend before any traffic flows.
    """

    #: Observation-window length.  Windows close lazily at the first
    #: enqueue/flush event past the boundary, so no timer events are
    #: added to the simulation.
    window_cycles: int = 8192
    #: Widening ceiling for ``coalesce_limit``.
    max_coalesce: int = 128
    #: Deadline retarget floor (0 = same-cycle flushes for truly
    #: sparse traffic) and ceiling.
    deadline_floor: int = 0
    deadline_ceiling: int = 32768
    #: Enqueues further apart than this start a new arrival cluster;
    #: the max cluster span feeds the deadline retarget.
    cluster_gap: int = 256
    #: Consult :func:`advise_backend` for the run's backend and
    #: pipeline depth (only when the spec pins neither).
    advise_backend: bool = False
    #: CPU count the advisor assumes (None = ``os.cpu_count()``).
    #: Tests and deterministic sweeps pass it explicitly.
    cpu_count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window_cycles < 1:
            raise ValueError(
                f"window_cycles must be >= 1, got {self.window_cycles}"
            )
        if self.max_coalesce < 1:
            raise ValueError(
                f"max_coalesce must be >= 1, got {self.max_coalesce}"
            )
        if self.deadline_floor < 0 or self.deadline_ceiling < self.deadline_floor:
            raise ValueError(
                "deadline bounds must satisfy 0 <= floor <= ceiling, got "
                f"[{self.deadline_floor}, {self.deadline_ceiling}]"
            )


@dataclass(frozen=True)
class WindowStats:
    """One closed observation window, as the decision function sees it."""

    window_index: int
    start_cycle: int
    end_cycle: int
    #: Jobs enqueued / payload bytes they carried.
    jobs: int = 0
    bytes: int = 0
    #: Deepest the coalescing queue got inside the window.
    queue_peak: int = 0
    #: Batch-engine dispatches and the jobs they moved.
    dispatches: int = 0
    dispatched_jobs: int = 0
    #: Flush-cause mix.
    size_flushes: int = 0
    deadline_flushes: int = 0
    forced_flushes: int = 0
    #: Widest span (cycles) of any arrival cluster — consecutive
    #: enqueues closer than ``AutotuneConfig.cluster_gap``.
    max_cluster_span: int = 0
    #: Priority class -> enqueued jobs (0 = control, 1 = interactive,
    #: 2 = bulk), sorted for stable serialization.
    class_mix: Tuple[Tuple[int, int], ...] = ()

    @property
    def realized_width(self) -> float:
        """Mean jobs per dispatch inside the window (0 if none ran)."""
        if self.dispatches == 0:
            return 0.0
        return self.dispatched_jobs / self.dispatches

    @property
    def mean_packet_bytes(self) -> float:
        """Mean payload size of the window's enqueued jobs."""
        if self.jobs == 0:
            return 0.0
        return self.bytes / self.jobs

    @property
    def arrival_rate(self) -> float:
        """Jobs per simulated cycle across the window."""
        span = self.end_cycle - self.start_cycle
        if span <= 0:
            return 0.0
        return self.jobs / span

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form for decision traces and sweep artifacts."""
        return {
            "window": self.window_index,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "jobs": self.jobs,
            "bytes": self.bytes,
            "queue_peak": self.queue_peak,
            "dispatches": self.dispatches,
            "dispatched_jobs": self.dispatched_jobs,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "forced_flushes": self.forced_flushes,
            "max_cluster_span": self.max_cluster_span,
            "class_mix": {str(k): v for k, v in self.class_mix},
        }


@dataclass(frozen=True)
class Decision:
    """One controller decision: window stats in, knobs out, cause."""

    stats: WindowStats
    coalesce_before: int
    deadline_before: Optional[int]
    coalesce_after: int
    deadline_after: Optional[int]
    cause: str

    @property
    def changed(self) -> bool:
        return (
            self.coalesce_before != self.coalesce_after
            or self.deadline_before != self.deadline_after
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe trace entry (what sweep artifacts carry)."""
        return {
            **self.stats.as_dict(),
            "coalesce_before": self.coalesce_before,
            "deadline_before": self.deadline_before,
            "coalesce_after": self.coalesce_after,
            "deadline_after": self.deadline_after,
            "cause": self.cause,
        }


def decide_knobs(
    seed: int,
    stats: WindowStats,
    coalesce_limit: int,
    flush_deadline: Optional[int],
    config: AutotuneConfig,
) -> Tuple[int, Optional[int], str]:
    """The controller's decision step — a pure function.

    Returns ``(coalesce_limit, flush_deadline, cause)`` for the next
    window.  Holds no state and draws no randomness: identical
    ``(seed, stats)`` always yield identical knobs, which is what makes
    decision traces reproducible across repeats and backends.  *seed*
    is threaded through (and recorded in the trace) so future policies
    may dither deterministically; the shipped rules do not use it.
    """
    del seed  # reserved for deterministic dithering
    if stats.jobs == 0 and stats.dispatches == 0:
        return coalesce_limit, flush_deadline, "hold:idle"
    # Saturation: size-triggered (or explicitly forced) flushes with
    # the queue far outrunning the width.  Widening amortises the
    # per-dispatch control overhead across more packets — strictly
    # fewer dispatches for the same backlog, so throughput can only
    # improve.  An end-of-stream forced flush of a short tail cannot
    # trip this: its window's queue peak sits under the 2x bar.
    if (
        stats.size_flushes + stats.forced_flushes > 0
        and stats.queue_peak >= 2 * coalesce_limit
        and coalesce_limit < config.max_coalesce
    ):
        return (
            min(config.max_coalesce, coalesce_limit * 2),
            flush_deadline,
            "widen:saturated",
        )
    # Idle-dominated: every flush was the deadline forcing out an
    # under-filled batch.  Retarget the deadline just above the widest
    # arrival cluster: bursts still coalesce into one batch (geometry,
    # and so total cycles, unchanged) but stop waiting out a deadline
    # sized for bulk.  The 2x band is the hysteresis that keeps steady
    # traffic from oscillating.
    if (
        stats.size_flushes == 0
        and stats.deadline_flushes > 0
        and flush_deadline is not None
    ):
        target = max(config.deadline_floor, 2 * stats.max_cluster_span)
        target = min(target, config.deadline_ceiling)
        if target < flush_deadline // 2 or target > flush_deadline * 2:
            return coalesce_limit, target, "deadline:retarget"
    return coalesce_limit, flush_deadline, "hold:steady"


class _WindowAccumulator:
    """Mutable counters for the window currently being observed."""

    __slots__ = (
        "start_cycle", "jobs", "bytes", "queue_peak", "dispatches",
        "dispatched_jobs", "causes", "max_cluster_span", "class_mix",
    )

    def __init__(self, start_cycle: int):
        self.start_cycle = start_cycle
        self.jobs = 0
        self.bytes = 0
        self.queue_peak = 0
        self.dispatches = 0
        self.dispatched_jobs = 0
        self.causes: Dict[str, int] = {}
        self.max_cluster_span = 0
        self.class_mix: Dict[int, int] = {}

    def freeze(self, window_index: int, end_cycle: int) -> WindowStats:
        return WindowStats(
            window_index=window_index,
            start_cycle=self.start_cycle,
            end_cycle=end_cycle,
            jobs=self.jobs,
            bytes=self.bytes,
            queue_peak=self.queue_peak,
            dispatches=self.dispatches,
            dispatched_jobs=self.dispatched_jobs,
            size_flushes=self.causes.get("size", 0),
            deadline_flushes=self.causes.get("deadline", 0),
            forced_flushes=self.causes.get("forced", 0),
            max_cluster_span=self.max_cluster_span,
            class_mix=tuple(sorted(self.class_mix.items())),
        )


class FlushController:
    """Online per-channel controller behind ``FlushPolicy(mode="auto")``.

    Attached to a channel (``Channel.autotune``) by the communication
    controller the first time a job is submitted under an auto policy.
    The two observation hooks — :meth:`observe_enqueue` and
    :meth:`observe_flush` — are called from the dataplane's existing
    event points; window boundaries are checked there, so the
    controller adds no events to the simulation and costs nothing on
    channels running a fixed policy.
    """

    def __init__(
        self,
        channel_id: int,
        seed: int = 0,
        config: Optional[AutotuneConfig] = None,
    ):
        self.channel_id = channel_id
        self.seed = seed
        self.config = config or AutotuneConfig()
        #: Every closed window's decision, including holds.
        self.trace: List[Decision] = []
        #: Decisions that actually changed a knob.
        self.adjustments = 0
        self._window_index = 0
        self._window: Optional[_WindowAccumulator] = None
        self._last_enqueue: Optional[int] = None
        self._cluster_start: Optional[int] = None

    # -- observation hooks ------------------------------------------------------

    def observe_enqueue(self, channel, job, now: int) -> None:
        """Record one enqueued job; may close a window and retune."""
        self._maybe_close(channel, now)
        window = self._window
        if window is None:
            window = self._window = _WindowAccumulator(now)
        window.jobs += 1
        window.bytes += len(job.data)
        depth = channel.pending_count
        if depth > window.queue_peak:
            window.queue_peak = depth
        window.class_mix[job.priority] = (
            window.class_mix.get(job.priority, 0) + 1
        )
        last = self._last_enqueue
        if last is None or now - last > self.config.cluster_gap:
            self._cluster_start = now
        else:
            span = now - (self._cluster_start if self._cluster_start is not None else now)
            if span > window.max_cluster_span:
                window.max_cluster_span = span
        self._last_enqueue = now

    def observe_flush(self, channel, cause: str, width: int, now: int) -> None:
        """Record one dispatched batch; may close a window and retune."""
        self._maybe_close(channel, now)
        window = self._window
        if window is None:
            window = self._window = _WindowAccumulator(now)
        window.dispatches += 1
        window.dispatched_jobs += width
        window.causes[cause] = window.causes.get(cause, 0) + 1
        # Sample the backlog here too: on saturating traffic the whole
        # burst may enqueue in one window while every dispatch lands in
        # later ones — the widen rule needs those windows to see the
        # queue the dispatches are working off.
        backlog = channel.pending_count
        if backlog > window.queue_peak:
            window.queue_peak = backlog

    # -- window lifecycle -------------------------------------------------------

    def _maybe_close(self, channel, now: int) -> None:
        window = self._window
        if window is None:
            return
        if now - window.start_cycle < self.config.window_cycles:
            return
        stats = window.freeze(self._window_index, now)
        policy = channel.flush_policy
        new_limit, new_deadline, cause = decide_knobs(
            self.seed, stats, policy.coalesce_limit, policy.flush_deadline,
            self.config,
        )
        decision = Decision(
            stats=stats,
            coalesce_before=policy.coalesce_limit,
            deadline_before=policy.flush_deadline,
            coalesce_after=new_limit,
            deadline_after=new_deadline,
            cause=cause,
        )
        self.trace.append(decision)
        if decision.changed:
            self.adjustments += 1
            # In-place knob update: validity is guaranteed by
            # decide_knobs' clamps, and the policy object identity is
            # preserved for anything holding a reference.
            policy.coalesce_limit = new_limit
            policy.flush_deadline = new_deadline
        self._window_index += 1
        self._window = _WindowAccumulator(now)

    # -- reporting --------------------------------------------------------------

    def trace_dicts(self) -> List[Dict[str, object]]:
        """The decision trace as JSON-safe dicts (artifact form)."""
        return [decision.as_dict() for decision in self.trace]

    def settled(self, within_windows: int) -> bool:
        """Whether every knob change happened in the first N windows.

        The convergence property the test suite pins for steady
        profiles: after at most *within_windows* decisions, the trace
        is all holds (no oscillation).
        """
        return all(
            not decision.changed
            for decision in self.trace[within_windows:]
        )


# -- workload-level backend advisor ------------------------------------------------


@dataclass(frozen=True)
class TrafficProfile:
    """Workload-shape summary the backend advisor scores against."""

    channels: int
    total_packets: int
    mean_packet_bytes: float
    #: Share of packets on saturating (back-to-back) channels.
    sustained_fraction: float
    #: Share of packets in the control class (priority 0).
    control_fraction: float

    @property
    def total_bytes(self) -> float:
        return self.total_packets * self.mean_packet_bytes


@dataclass(frozen=True)
class BackendPolicy:
    """One scored row of the advisor's policy table."""

    name: str
    #: Execution-backend spec (:mod:`repro.crypto.fast.exec` string).
    backend: str
    pipeline_depth: int
    #: Minimum host CPUs for the row to be eligible at all.
    min_cpus: int
    #: Score weights: ``bias + work_weight * log10(total_bytes + 1)
    #: + sustained_weight * sustained_fraction + bulk_weight *
    #: [mean packet >= 1 KB]``.
    bias: float
    work_weight: float
    sustained_weight: float
    bulk_weight: float

    def score(self, profile: TrafficProfile) -> float:
        bulky = 1.0 if profile.mean_packet_bytes >= 1024 else 0.0
        return (
            self.bias
            + self.work_weight * math.log10(profile.total_bytes + 1)
            + self.sustained_weight * profile.sustained_fraction
            + self.bulk_weight * bulky
        )


#: The advisor's policy table, in preference order for ties.  Inline
#: wins small workloads (pool dispatch overhead dominates); the thread
#: pool takes over once there is real work to overlap; the zero-copy
#: arena process pool wins sustained bulk on hosts with enough cores to
#: outnumber GIL-sharing threads.
POLICY_TABLE: Tuple[BackendPolicy, ...] = (
    BackendPolicy(
        name="inline-small",
        backend="inline",
        pipeline_depth=1,
        min_cpus=1,
        bias=6.0,
        work_weight=0.0,
        sustained_weight=0.0,
        bulk_weight=0.0,
    ),
    BackendPolicy(
        name="thread-medium",
        backend="thread",
        pipeline_depth=2,
        min_cpus=2,
        bias=0.0,
        work_weight=1.2,
        sustained_weight=0.4,
        bulk_weight=0.3,
    ),
    BackendPolicy(
        name="process-arena-bulk",
        backend="process-arena",
        pipeline_depth=4,
        min_cpus=4,
        bias=-2.5,
        work_weight=1.3,
        sustained_weight=1.5,
        bulk_weight=1.0,
    ),
)


@dataclass(frozen=True)
class BackendAdvice:
    """The advisor's pick plus the full score table (for the report)."""

    policy: str
    backend: str
    pipeline_depth: int
    scores: Tuple[Tuple[str, float], ...]


def advise_backend(
    profile: TrafficProfile, cpu_count: Optional[int] = None
) -> BackendAdvice:
    """Pick ``(backend, pipeline_depth)`` for *profile* from the table.

    Deterministic given ``(profile, cpu_count)``; pass *cpu_count*
    explicitly for reproducible sweeps and tests (None reads the
    host's).  Backend choice never changes bytes — every backend is
    byte-identical by construction — so the advisor only moves
    wall-clock performance.
    """
    if cpu_count is None:
        import os

        cpu_count = os.cpu_count() or 1
    eligible = [row for row in POLICY_TABLE if cpu_count >= row.min_cpus]
    scores = tuple((row.name, round(row.score(profile), 3)) for row in eligible)
    best = max(eligible, key=lambda row: row.score(profile))
    return BackendAdvice(
        policy=best.name,
        backend=best.backend,
        pipeline_depth=best.pipeline_depth,
        scores=scores,
    )
