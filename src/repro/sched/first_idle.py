"""The paper's policy: first idle core, arrival order (section III.C).

"When the Task Scheduler receives either an ENCRYPT or a DECRYPT
instruction, an incoming packet is forwarded to the first idle core
found.  If no core is available, it returns an error flag."
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sched.policy import MappingPolicy


class FirstIdlePolicy(MappingPolicy):
    """Lowest-index idle cores, no reservations, no queueing."""

    name = "first_idle"

    def select_cores(
        self, scheduler, needed: int, priority: int = 1
    ) -> Optional[Sequence[int]]:
        idle = self._idle(scheduler)
        if len(idle) < needed:
            return None
        return idle[:needed]
