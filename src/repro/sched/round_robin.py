"""Round-robin mapping: rotate the starting core between requests.

Evens out per-core wear/utilisation compared to first-idle (which
always favours core 0) without changing aggregate throughput — a useful
baseline for the section-VIII scheduling study.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sched.policy import MappingPolicy


class RoundRobinPolicy(MappingPolicy):
    """Start the idle-core search at a rotating index."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def select_cores(
        self, scheduler, needed: int, priority: int = 1
    ) -> Optional[Sequence[int]]:
        idle = set(self._idle(scheduler))
        if len(idle) < needed:
            return None
        n = len(scheduler.cores)
        order = [(self._next + i) % n for i in range(n)]
        chosen = [i for i in order if i in idle][:needed]
        if len(chosen) < needed:
            return None
        self._next = (chosen[-1] + 1) % n
        return chosen
