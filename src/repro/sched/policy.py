"""Base class for core-mapping policies."""

from __future__ import annotations

from typing import List, Optional, Sequence


class MappingPolicy:
    """Selects which idle cores serve a request.

    ``select_cores`` returns the chosen core indices (length == needed)
    or None when the request must be rejected — the error-flag path of
    the ENCRYPT/DECRYPT instructions.
    """

    name = "base"

    def select_cores(
        self, scheduler, needed: int, priority: int = 1
    ) -> Optional[Sequence[int]]:
        """Pick *needed* cores from the scheduler's idle set."""
        raise NotImplementedError

    # Shared helper.
    @staticmethod
    def _idle(scheduler) -> List[int]:
        return scheduler.idle_core_indices()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
