"""Priority mapping with core reservation (section VIII's QoS ask).

"It must also be possible to priorize certain streams over others to
allow some sort of quality-of-service."  This policy reserves a number
of cores that only high-priority (low numeric value) requests may use,
so latency-critical traffic (voice) never waits behind bulk transfers
for the whole pool.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SchedulerError
from repro.sched.policy import MappingPolicy


class PriorityReservePolicy(MappingPolicy):
    """Reserve the highest-index cores for priority <= threshold."""

    name = "priority_reserve"

    def __init__(self, reserved_cores: int = 1, priority_threshold: int = 0):
        if reserved_cores < 0:
            raise SchedulerError("reserved_cores must be non-negative")
        self.reserved_cores = reserved_cores
        self.priority_threshold = priority_threshold

    def select_cores(
        self, scheduler, needed: int, priority: int = 1
    ) -> Optional[Sequence[int]]:
        idle = self._idle(scheduler)
        n = len(scheduler.cores)
        reserved = set(range(n - self.reserved_cores, n))
        if priority <= self.priority_threshold:
            pool = idle  # privileged traffic may use everything
        else:
            pool = [i for i in idle if i not in reserved]
        if len(pool) < needed:
            return None
        return pool[:needed]
