"""Task-mapping policies (paper sections III.C and VIII).

The paper's current release maps each packet to the *first idle core*
with no queueing ("incoming packets are processed in their order of
arrival as fast as possible"), and flags smarter scheduling — priorities
and quality-of-service — as the open problem of section VIII.  This
package implements the paper's policy plus the extensions the
discussion calls for, so the scheduling benchmarks (E7/E9) can compare
them.
"""

from repro.sched.policy import MappingPolicy
from repro.sched.first_idle import FirstIdlePolicy
from repro.sched.round_robin import RoundRobinPolicy
from repro.sched.priority import PriorityReservePolicy
from repro.sched.latency_aware import LatencyAwarePolicy

__all__ = [
    "MappingPolicy",
    "FirstIdlePolicy",
    "RoundRobinPolicy",
    "PriorityReservePolicy",
    "LatencyAwarePolicy",
]
