"""Latency-aware CCM splitting (the Table II trade-off, automated).

The paper observes (section VII.A) that CCM on one core maximises
aggregate throughput while CCM split over two cores roughly halves the
per-packet latency; "designers should make scheduling choices according
to system needs".  This policy makes that choice per request: when
enough cores are idle and the request is latency-sensitive, it grants a
two-core split; under load it falls back to single-core mapping.

The communication controller consults :meth:`prefer_two_core` *before*
formatting, since the split changes the FIFO layouts.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sched.policy import MappingPolicy


class LatencyAwarePolicy(MappingPolicy):
    """Split CCM across two cores when the pool is underloaded."""

    name = "latency_aware"

    def __init__(self, split_when_idle_at_least: int = 2, priority_threshold: int = 1):
        self.split_when_idle_at_least = split_when_idle_at_least
        self.priority_threshold = priority_threshold

    def prefer_two_core(self, scheduler, priority: int = 1) -> bool:
        """Should a CCM request be formatted for a two-core split now?"""
        return (
            priority <= self.priority_threshold
            and len(self._idle(scheduler)) >= self.split_when_idle_at_least
        )

    def select_cores(
        self, scheduler, needed: int, priority: int = 1
    ) -> Optional[Sequence[int]]:
        idle = self._idle(scheduler)
        if len(idle) < needed:
            return None
        if needed == 2:
            # Prefer neighbouring cores: the inter-core ring sends each
            # core's mailbox to its right neighbour, and the MAC core
            # must be the *left* neighbour of the CTR core.
            n = len(scheduler.cores)
            idle_set = set(idle)
            for i in idle:
                if (i + 1) % n in idle_set:
                    return [i, (i + 1) % n]
            return None
        return idle[:needed]
