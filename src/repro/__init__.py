"""repro — behavioural reproduction of the MCCP reconfigurable
multi-core cryptoprocessor (Grand et al., IPDPS 2011).

Layers (bottom-up):

- :mod:`repro.crypto` — bit-exact reference crypto (AES, GHASH,
  CTR/CBC-MAC/CCM/GCM/GMAC, Whirlpool), verified against NIST/ISO
  vectors.
- :mod:`repro.sim` — the discrete-event, cycle-level kernel.
- :mod:`repro.isa` — the PicoBlaze-like 8-bit controller with a real
  assembler and interpreter.
- :mod:`repro.unit` / :mod:`repro.core` — the Cryptographic Unit and
  Cryptographic Core device models, plus the mode firmware.
- :mod:`repro.mccp` — the full device: task scheduler, key scheduler,
  crossbar, control protocol.
- :mod:`repro.radio` — the SDR substrate (formatting, traffic,
  communication controller, platform).
- :mod:`repro.sched` — task-mapping policies (first-idle + the
  section-VIII extensions).
- :mod:`repro.reconfig` — the partial-reconfiguration model (Table IV).
- :mod:`repro.baselines` / :mod:`repro.analysis` — comparators and the
  table/figure reproduction helpers.
"""

from repro.crypto import (
    AES,
    aes_encrypt_block,
    ccm_decrypt,
    ccm_encrypt,
    ctr_xcrypt,
    gcm_decrypt,
    gcm_encrypt,
    whirlpool,
)
from repro.core.crypto_core import CoreResult, CryptoCore
from repro.core.params import Algorithm, CcmRole, Direction, TaskParams
from repro.mccp.mccp import Mccp
from repro.radio.comm_controller import CommController
from repro.radio.packet import Packet, SecuredPacket
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform
from repro.sim.kernel import Delay, Event, Simulator
from repro.unit.timing import DEFAULT_TIMING, TimingModel

__version__ = "1.0.0"

__all__ = [
    "AES",
    "aes_encrypt_block",
    "ccm_decrypt",
    "ccm_encrypt",
    "ctr_xcrypt",
    "gcm_decrypt",
    "gcm_encrypt",
    "whirlpool",
    "CoreResult",
    "CryptoCore",
    "Algorithm",
    "CcmRole",
    "Direction",
    "TaskParams",
    "Mccp",
    "CommController",
    "Packet",
    "SecuredPacket",
    "ChannelConfig",
    "SdrPlatform",
    "Delay",
    "Event",
    "Simulator",
    "DEFAULT_TIMING",
    "TimingModel",
    "__version__",
]
