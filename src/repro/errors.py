"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one type at the red/black boundary.  The hierarchy
mirrors the layering of the MCCP device: crypto-level errors, ISA/firmware
errors, device-protocol errors and reconfiguration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class CryptoError(ReproError):
    """Base class for errors in the reference cryptography layer."""


class KeySizeError(CryptoError):
    """Raised when a key has an unsupported length."""


class BlockSizeError(CryptoError):
    """Raised when input violates a block-size constraint."""


class NonceError(CryptoError):
    """Raised when a nonce/IV has an invalid length for the mode."""


class TagError(CryptoError):
    """Raised when an authentication tag parameter is invalid."""


class AuthenticationFailure(CryptoError):
    """Raised (or signalled) when an authentication tag does not verify.

    At the device level the MCCP does not raise: it re-initialises the
    output FIFO and returns ``AUTH_FAIL`` through ``RETRIEVE_DATA``
    (paper section IV.C).  The reference mode implementations raise this
    exception instead; the device model converts it to the flag.
    """


class IsaError(ReproError):
    """Base class for 8-bit controller ISA errors."""


class AssemblerError(IsaError):
    """Raised by the two-pass assembler on malformed source."""


class ExecutionError(IsaError):
    """Raised by the controller interpreter on illegal execution."""


class UnitError(ReproError):
    """Base class for Cryptographic Unit errors."""


class DecodeError(UnitError):
    """Raised when a CU instruction byte cannot be decoded."""


class BankAddressError(UnitError):
    """Raised on an out-of-range bank-register address."""


class CoreError(ReproError):
    """Base class for Cryptographic Core errors."""


class FifoError(CoreError):
    """Raised on FIFO misuse (overflow on push, underflow on pop)."""


class FirmwareError(CoreError):
    """Raised when a firmware program is malformed or unsupported."""


class DeviceError(ReproError):
    """Base class for MCCP top-level errors."""


class ProtocolError(DeviceError):
    """Raised on a malformed control-protocol instruction."""


class NoResourceError(DeviceError):
    """Raised when no cryptographic core (or channel slot) is available.

    The hardware returns an error flag through the return register; the
    Python convenience wrappers raise this exception.
    """


class ChannelError(DeviceError):
    """Raised when a channel id is unknown or in the wrong state."""


class BackpressureError(DeviceError):
    """Raised when an enqueue would push a bounded channel queue past
    its high watermark.

    The typed backpressure signal of the overload-protection layer:
    instead of growing a coalescing queue without bound, a channel with
    a configured :attr:`repro.mccp.channel.Channel.capacity` refuses
    the job and the producer decides — wait and retry (radio-side
    queueing), or hand the packet to the admission controller to defer
    or shed.  Carries enough context for that decision.
    """

    def __init__(self, channel_id: int, depth: int, capacity: int):
        super().__init__(
            f"channel {channel_id} queue is at its high watermark "
            f"({depth}/{capacity} jobs); back off or shed"
        )
        self.channel_id = channel_id
        self.depth = depth
        self.capacity = capacity


class KeyStoreError(DeviceError):
    """Raised on key-memory violations (unknown id, write attempts)."""


class ReconfigError(ReproError):
    """Base class for partial-reconfiguration errors."""


class RegionCapacityError(ReconfigError):
    """Raised when a module does not fit the reconfigurable region."""


class BitstreamError(ReconfigError):
    """Raised when a bitstream is unknown or corrupted."""


class SimulationError(ReproError):
    """Raised by the discrete-event kernel on scheduling misuse."""


class ExperimentError(ReproError):
    """Raised by the experiment-sweep subsystem (unknown scenario,
    malformed grid/metrics, baseline-comparison misuse)."""


class ResilienceError(ReproError):
    """Base class for fault-injection and recovery-path errors.

    The red/black boundary still catches one root type: everything the
    self-healing machinery raises — or deliberately injects — derives
    from here (and therefore from :class:`ReproError`).
    """


class BackendError(ResilienceError):
    """Execution-backend *infrastructure* failure, as opposed to a
    crypto error raised by the work itself.  These are the only errors
    the retry/degradation machinery in ``ExecutionBackend.run`` treats
    as retryable; a crypto error always propagates untouched."""


class WorkerCrashError(BackendError):
    """A pool worker died mid-span (broken process pool, or an injected
    crash simulating one)."""


class BatchTimeoutError(BackendError):
    """A backend span exceeded its wall-clock watchdog budget."""


class QuarantinedPacketError(ResilienceError):
    """A packet poisoned its batch and was bisect-isolated; the batch
    layer returns this in the packet's result slot so batchmates are
    undisturbed and the dataplane can dead-letter just the one job."""


class InjectedFault(ResilienceError):
    """Raised at a fault site on behalf of an active ``FaultPlan``.

    Only ever raised while fault injection is enabled (``REPRO_FAULTS``
    or a programmatic plan); production paths never construct one.
    """


class SchedulerError(ReproError):
    """Raised by task-mapping policies on invalid configuration."""
