"""Bit- and word-level conversions for the 32-bit MCCP datapath.

All multi-byte values in the MCCP follow the network (big-endian)
convention used by AES, GHASH and the NIST mode specifications.
"""

from __future__ import annotations

from typing import List, Sequence

WORD32_MASK = 0xFFFF_FFFF
WORD128_MASK = (1 << 128) - 1


def bytes_to_int(data: bytes) -> int:
    """Interpret *data* as a big-endian unsigned integer."""
    return int.from_bytes(data, "big")


def int_to_bytes(value: int, length: int) -> bytes:
    """Encode *value* as *length* big-endian bytes.

    Raises
    ------
    OverflowError
        If *value* does not fit in *length* bytes.
    ValueError
        If *value* is negative.
    """
    if value < 0:
        raise ValueError(f"cannot encode negative value {value}")
    return value.to_bytes(length, "big")


def bytes_to_words32(data: bytes) -> List[int]:
    """Split *data* (a multiple of 4 bytes) into big-endian 32-bit words.

    This mirrors how the 32-bit I/O core walks a 128-bit bank-register
    word: most-significant 32-bit sub-word first.
    """
    if len(data) % 4 != 0:
        raise ValueError(f"length {len(data)} is not a multiple of 4")
    return [int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)]


def words32_to_bytes(words: Sequence[int]) -> bytes:
    """Inverse of :func:`bytes_to_words32`."""
    out = bytearray()
    for w in words:
        if not 0 <= w <= WORD32_MASK:
            raise ValueError(f"word {w:#x} does not fit in 32 bits")
        out += w.to_bytes(4, "big")
    return bytes(out)


def rotl8(value: int, amount: int) -> int:
    """Rotate an 8-bit value left by *amount* bits."""
    amount %= 8
    value &= 0xFF
    return ((value << amount) | (value >> (8 - amount))) & 0xFF if amount else value


def rotr8(value: int, amount: int) -> int:
    """Rotate an 8-bit value right by *amount* bits."""
    return rotl8(value, (8 - amount) % 8)


def rotl32(value: int, amount: int) -> int:
    """Rotate a 32-bit value left by *amount* bits."""
    amount %= 32
    value &= WORD32_MASK
    if amount == 0:
        return value
    return ((value << amount) | (value >> (32 - amount))) & WORD32_MASK
