"""Small argument-validation helpers.

Centralising these keeps error messages uniform across the library and
keeps the hot paths free of ad-hoc ``isinstance`` pyramids.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Type, Union


def check_type(name: str, value: object, types: Union[Type, Tuple[Type, ...]]) -> None:
    """Raise ``TypeError`` unless *value* is an instance of *types*."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expect = " or ".join(t.__name__ for t in types)
        else:
            expect = types.__name__
        raise TypeError(f"{name} must be {expect}, got {type(value).__name__}")


def check_length(
    name: str,
    value: bytes,
    allowed: Optional[Iterable[int]] = None,
    multiple_of: Optional[int] = None,
    exc: Type[Exception] = ValueError,
) -> None:
    """Validate the length of a byte string.

    Parameters
    ----------
    allowed:
        If given, the exact lengths that are acceptable.
    multiple_of:
        If given, the length must be a multiple of this value.
    exc:
        Exception class to raise (defaults to ``ValueError``).
    """
    n = len(value)
    if allowed is not None:
        allowed = tuple(allowed)
        if n not in allowed:
            raise exc(f"{name} must be one of {allowed} bytes long, got {n}")
    if multiple_of is not None and n % multiple_of != 0:
        raise exc(f"{name} length {n} is not a multiple of {multiple_of}")


def check_range(
    name: str,
    value: int,
    low: int,
    high: int,
    exc: Type[Exception] = ValueError,
) -> None:
    """Raise *exc* unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise exc(f"{name} must be in [{low}, {high}], got {value}")
