"""Byte-string operations used by the block-cipher modes.

The MCCP communication controller formats packets *outside* the
cryptographic cores (paper section VI.B): padding to 128-bit blocks,
building the GCM length block and the CCM ``B0``/counter blocks all
happen at this layer, so these helpers are the software home of that
formatting logic.
"""

from __future__ import annotations

from typing import Iterator, List

BLOCK_BYTES = 16  # 128-bit block size shared by AES, GHASH and the bank registers


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings.

    One big-int XOR instead of a per-byte generator: CPython does the
    word-wide XOR in C, which matters because every mode and the whole
    device model funnel through this helper.
    """
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} != {len(b)}")
    if not a:
        return b""
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
        len(a), "big"
    )


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division (``ceil(a / b)``) for non-negative *a*."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


def pad_zeros(data: bytes, multiple: int = BLOCK_BYTES) -> bytes:
    """Right-pad *data* with zero bytes up to a multiple of *multiple*.

    Empty input stays empty (GCM/CCM treat a zero-length field as zero
    blocks, not one zero block).
    """
    rem = len(data) % multiple
    if rem == 0:
        return data
    return data + b"\x00" * (multiple - rem)


def split_blocks(data: bytes, size: int = BLOCK_BYTES) -> List[bytes]:
    """Split *data* into *size*-byte blocks; the final block may be short."""
    return [data[i : i + size] for i in range(0, len(data), size)]


def blocks_of(data: bytes, size: int = BLOCK_BYTES) -> Iterator[bytes]:
    """Iterate over *size*-byte blocks of *data* (final block may be short)."""
    for i in range(0, len(data), size):
        yield data[i : i + size]
