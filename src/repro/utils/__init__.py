"""Low-level helpers shared by every layer of the MCCP model.

The hardware moves data as 128-bit words carved into four 32-bit
sub-words (the Cryptographic Unit datapath is 32 bits wide, see paper
section V.A).  These helpers provide the conversions between Python
``bytes``/``int`` values and those word shapes, plus byte-level
operations used by the block-cipher modes.
"""

from repro.utils.bits import (
    WORD32_MASK,
    WORD128_MASK,
    bytes_to_int,
    bytes_to_words32,
    int_to_bytes,
    rotl8,
    rotl32,
    rotr8,
    words32_to_bytes,
)
from repro.utils.bytesops import (
    BLOCK_BYTES,
    blocks_of,
    ceil_div,
    pad_zeros,
    split_blocks,
    xor_bytes,
)
from repro.utils.validation import (
    check_length,
    check_range,
    check_type,
)

__all__ = [
    "WORD32_MASK",
    "WORD128_MASK",
    "bytes_to_int",
    "bytes_to_words32",
    "int_to_bytes",
    "rotl8",
    "rotl32",
    "rotr8",
    "words32_to_bytes",
    "BLOCK_BYTES",
    "blocks_of",
    "ceil_div",
    "pad_zeros",
    "split_blocks",
    "xor_bytes",
    "check_length",
    "check_range",
    "check_type",
]
