"""Instruction encodings for the 8-bit controller.

Each instruction is one 18-bit word.  The layout follows the PicoBlaze
approach of folding the condition into the opcode (KCPSM3 does the
same), which keeps the decoder a flat table:

- bits [17:12]: 6-bit opcode
- ALU/IO forms: bits [11:8] = sX, bits [7:0] = immediate ``kk``
  (or sY in bits [7:4] for register forms)
- flow control: bits [9:0] = 10-bit target address (full 1024-word
  instruction memory)

Every ALU op has an immediate form and a register form as two distinct
opcodes (the ``_R`` suffix); every conditional flow op is its own
opcode (``JUMP_Z`` etc.).
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.errors import DecodeError

WORD_BITS = 18
WORD_MASK = (1 << WORD_BITS) - 1
ADDR_MASK = 0x3FF
IMEM_WORDS = 1024


class Op(enum.IntEnum):
    """Opcodes (6-bit)."""

    NOP = 0x00
    LOAD = 0x01      # LOAD sX, kk
    LOAD_R = 0x02    # LOAD sX, sY
    AND = 0x03
    AND_R = 0x04
    OR = 0x05
    OR_R = 0x06
    XOR = 0x07
    XOR_R = 0x08
    ADD = 0x09
    ADD_R = 0x0A
    ADDCY = 0x0B
    ADDCY_R = 0x0C
    SUB = 0x0D
    SUB_R = 0x0E
    SUBCY = 0x0F
    SUBCY_R = 0x10
    COMPARE = 0x11
    COMPARE_R = 0x12
    SR0 = 0x13       # shift right, zero fill
    SL0 = 0x14       # shift left, zero fill
    RR = 0x15        # rotate right
    RL = 0x16        # rotate left
    INPUT = 0x17     # INPUT sX, pp
    INPUT_R = 0x18   # INPUT sX, (sY)
    OUTPUT = 0x19    # OUTPUT sX, pp
    OUTPUT_R = 0x1A  # OUTPUT sX, (sY)
    STORE = 0x1B     # STORE sX, ss   (64-byte scratchpad)
    STORE_R = 0x1C   # STORE sX, (sY)
    FETCH = 0x1D     # FETCH sX, ss
    FETCH_R = 0x1E   # FETCH sX, (sY)
    JUMP = 0x1F
    JUMP_Z = 0x20
    JUMP_NZ = 0x21
    JUMP_C = 0x22
    JUMP_NC = 0x23
    CALL = 0x24
    CALL_Z = 0x25
    CALL_NZ = 0x26
    CALL_C = 0x27
    CALL_NC = 0x28
    RETURN = 0x29
    RETURN_Z = 0x2A
    RETURN_NZ = 0x2B
    RETURN_C = 0x2C
    RETURN_NC = 0x2D
    RETURNI_E = 0x2E  # return from interrupt, re-enable interrupts
    RETURNI_D = 0x2F  # return from interrupt, leave disabled
    EINT = 0x30       # ENABLE INTERRUPT
    DINT = 0x31       # DISABLE INTERRUPT
    HALT = 0x32       # custom sleep-until-done (paper section IV.B)


class Cond(enum.IntEnum):
    """Assembler-level condition names (mapped to opcode variants)."""

    ALWAYS = 0
    Z = 1
    NZ = 2
    C = 3
    NC = 4


#: Flow-control base opcodes and their conditional variants.
FLOW_VARIANTS = {
    "JUMP": {
        Cond.ALWAYS: Op.JUMP,
        Cond.Z: Op.JUMP_Z,
        Cond.NZ: Op.JUMP_NZ,
        Cond.C: Op.JUMP_C,
        Cond.NC: Op.JUMP_NC,
    },
    "CALL": {
        Cond.ALWAYS: Op.CALL,
        Cond.Z: Op.CALL_Z,
        Cond.NZ: Op.CALL_NZ,
        Cond.C: Op.CALL_C,
        Cond.NC: Op.CALL_NC,
    },
    "RETURN": {
        Cond.ALWAYS: Op.RETURN,
        Cond.Z: Op.RETURN_Z,
        Cond.NZ: Op.RETURN_NZ,
        Cond.C: Op.RETURN_C,
        Cond.NC: Op.RETURN_NC,
    },
}

#: All opcodes that take a 10-bit address operand.
ADDRESS_OPS = frozenset(
    op for variants in FLOW_VARIANTS.values() for op in variants.values()
) - {Op.RETURN, Op.RETURN_Z, Op.RETURN_NZ, Op.RETURN_C, Op.RETURN_NC}

#: Opcodes taking no operand at all.
NULLARY_OPS = frozenset(
    {
        Op.NOP,
        Op.RETURN,
        Op.RETURN_Z,
        Op.RETURN_NZ,
        Op.RETURN_C,
        Op.RETURN_NC,
        Op.RETURNI_E,
        Op.RETURNI_D,
        Op.EINT,
        Op.DINT,
        Op.HALT,
    }
)

#: Register-register ALU/IO forms (operand holds sY in bits [7:4]).
REGISTER_FORMS = frozenset(
    {
        Op.LOAD_R,
        Op.AND_R,
        Op.OR_R,
        Op.XOR_R,
        Op.ADD_R,
        Op.ADDCY_R,
        Op.SUB_R,
        Op.SUBCY_R,
        Op.COMPARE_R,
        Op.INPUT_R,
        Op.OUTPUT_R,
        Op.STORE_R,
        Op.FETCH_R,
    }
)

#: Single-register shift/rotate ops.
SHIFT_OPS = frozenset({Op.SR0, Op.SL0, Op.RR, Op.RL})


class Decoded(NamedTuple):
    """A decoded instruction word."""

    op: Op
    sx: int       # register index (ALU/IO) — 0 for flow control
    operand: int  # kk / port / scratchpad addr; sY lives in bits [7:4]
    addr: int     # flow-control target


def encode(op: Op, sx: int = 0, operand: int = 0, addr: int = 0) -> int:
    """Pack an instruction into an 18-bit word."""
    if op in ADDRESS_OPS:
        if not 0 <= addr <= ADDR_MASK:
            raise DecodeError(f"address {addr:#x} out of range")
        return (int(op) << 12) | addr
    if not 0 <= sx <= 0xF:
        raise DecodeError(f"register index {sx} out of range")
    if not 0 <= operand <= 0xFF:
        raise DecodeError(f"operand {operand:#x} out of range")
    return (int(op) << 12) | (sx << 8) | operand


def decode(word: int) -> Decoded:
    """Unpack an 18-bit instruction word."""
    if not 0 <= word <= WORD_MASK:
        raise DecodeError(f"word {word:#x} exceeds 18 bits")
    op_bits = (word >> 12) & 0x3F
    try:
        op = Op(op_bits)
    except ValueError as exc:
        raise DecodeError(f"unknown opcode {op_bits:#x}") from exc
    if op in ADDRESS_OPS:
        return Decoded(op, 0, 0, word & ADDR_MASK)
    return Decoded(op, (word >> 8) & 0xF, word & 0xFF, 0)
