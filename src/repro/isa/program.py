"""Assembled program images.

A :class:`Program` is what the assembler produces and the controller
executes: up to 1024 18-bit words, pre-decoded for interpreter speed,
with the symbol table and per-word source lines kept for diagnostics.

The paper notes each instruction memory is *shared between two
neighbouring cores* (dual-port BRAM, section IV.A); the device model
reflects that by letting two Controller8 instances reference one
Program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ExecutionError
from repro.isa.opcodes import Decoded, IMEM_WORDS, decode


@dataclass
class Program:
    """An assembled instruction-memory image."""

    words: List[int]
    symbols: Dict[str, int] = field(default_factory=dict)
    constants: Dict[str, int] = field(default_factory=dict)
    source_lines: List[str] = field(default_factory=list)
    name: str = "program"

    def __post_init__(self) -> None:
        if len(self.words) > IMEM_WORDS:
            raise ExecutionError(
                f"program {self.name!r} has {len(self.words)} words; "
                f"instruction memory holds {IMEM_WORDS}"
            )
        self._decoded: List[Decoded] = [decode(w) for w in self.words]

    def __len__(self) -> int:
        return len(self.words)

    def fetch(self, pc: int) -> Decoded:
        """Decoded instruction at *pc* (raises past the end)."""
        if not 0 <= pc < len(self._decoded):
            raise ExecutionError(
                f"PC {pc:#x} outside program {self.name!r} "
                f"({len(self._decoded)} words)"
            )
        return self._decoded[pc]

    def label(self, name: str) -> int:
        """Address of a label."""
        try:
            return self.symbols[name]
        except KeyError as exc:
            raise ExecutionError(f"unknown label {name!r}") from exc

    def disassemble(self, start: int = 0, count: Optional[int] = None) -> str:
        """Human-readable listing (address, word, source)."""
        end = len(self.words) if count is None else min(len(self.words), start + count)
        rows = []
        for pc in range(start, end):
            src = self.source_lines[pc] if pc < len(self.source_lines) else ""
            rows.append(f"{pc:04x}: {self.words[pc]:05x}  {src}")
        return "\n".join(rows)
