"""Two-pass assembler for the 8-bit controller.

Syntax (PicoBlaze assembler style)::

    ; GCM main loop (paper Listing 1)
    CONSTANT cu_port, 0x00
    gcm_loop:
        OUTPUT s4, cu_port      ; FAES
        HALT
        OUTPUT s5, cu_port      ; SAES
        SUB    s0, 1
        JUMP   NZ, gcm_loop

- Comments start with ``;`` (or ``#``).
- Labels end with ``:`` and may share a line with an instruction.
- ``CONSTANT name, value`` defines a symbolic byte/port value.
- Registers are ``s0``..``sF`` (case-insensitive).
- Immediates: decimal, ``0x..`` hex, ``0b..`` binary, or a CONSTANT.
- Indirect port/scratchpad forms use parentheses: ``INPUT s1, (s2)``.

Pass 1 collects labels and constants; pass 2 emits 18-bit words.
Errors carry the source line number.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.isa.opcodes import (
    ADDR_MASK,
    FLOW_VARIANTS,
    Cond,
    Op,
    encode,
)
from repro.isa.program import Program

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):(.*)$")
_REGISTER_RE = re.compile(r"^s([0-9A-Fa-f])$")
_INDIRECT_RE = re.compile(r"^\(\s*(s[0-9A-Fa-f])\s*\)$", re.IGNORECASE)

#: Mnemonic -> (immediate-form op, register-form op) for two-operand ALU/IO.
_TWO_OPERAND = {
    "LOAD": (Op.LOAD, Op.LOAD_R),
    "AND": (Op.AND, Op.AND_R),
    "OR": (Op.OR, Op.OR_R),
    "XOR": (Op.XOR, Op.XOR_R),
    "ADD": (Op.ADD, Op.ADD_R),
    "ADDCY": (Op.ADDCY, Op.ADDCY_R),
    "SUB": (Op.SUB, Op.SUB_R),
    "SUBCY": (Op.SUBCY, Op.SUBCY_R),
    "COMPARE": (Op.COMPARE, Op.COMPARE_R),
    "INPUT": (Op.INPUT, Op.INPUT_R),
    "OUTPUT": (Op.OUTPUT, Op.OUTPUT_R),
    "STORE": (Op.STORE, Op.STORE_R),
    "FETCH": (Op.FETCH, Op.FETCH_R),
}

_SHIFT = {"SR0": Op.SR0, "SL0": Op.SL0, "RR": Op.RR, "RL": Op.RL}

_COND_NAMES = {"Z": Cond.Z, "NZ": Cond.NZ, "C": Cond.C, "NC": Cond.NC}


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def _parse_register(token: str, lineno: int) -> Optional[int]:
    m = _REGISTER_RE.match(token)
    return int(m.group(1), 16) if m else None


def _parse_value(
    token: str, constants: Dict[str, int], lineno: int
) -> int:
    token = token.strip()
    try:
        if token.lower().startswith("0x"):
            return int(token, 16)
        if token.lower().startswith("0b"):
            return int(token, 2)
        return int(token, 10)
    except ValueError:
        pass
    if token in constants:
        return constants[token]
    raise AssemblerError(f"line {lineno}: cannot parse value {token!r}")


def _split_operands(rest: str) -> List[str]:
    return [p.strip() for p in rest.split(",")] if rest.strip() else []


class _Statement(Tuple):
    pass


def _tokenize(
    source: str,
) -> Tuple[List[Tuple[int, str, List[str], str]], Dict[str, int], Dict[str, int]]:
    """Pass 1: returns (statements, labels, constants).

    Each statement is (lineno, mnemonic, operands, original_line).
    """
    statements: List[Tuple[int, str, List[str], str]] = []
    labels: Dict[str, int] = {}
    constants: Dict[str, int] = {}

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        while True:
            m = _LABEL_RE.match(line)
            if not m:
                break
            label = m.group(1)
            if label in labels:
                raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(statements)
            line = m.group(2).strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].upper()
        rest = parts[1] if len(parts) > 1 else ""
        if mnemonic == "CONSTANT":
            ops = _split_operands(rest)
            if len(ops) != 2:
                raise AssemblerError(
                    f"line {lineno}: CONSTANT takes name, value"
                )
            name, value_tok = ops
            if name in constants:
                raise AssemblerError(
                    f"line {lineno}: duplicate constant {name!r}"
                )
            constants[name] = _parse_value(value_tok, constants, lineno)
            continue
        # ENABLE/DISABLE INTERRUPT and RETURNI ENABLE/DISABLE read better
        # as two words; normalise them to single mnemonics here.
        if mnemonic in ("ENABLE", "DISABLE") and rest.strip().upper() == "INTERRUPT":
            mnemonic = "EINT" if mnemonic == "ENABLE" else "DINT"
            rest = ""
        if mnemonic == "RETURNI":
            flag = rest.strip().upper() or "DISABLE"
            if flag not in ("ENABLE", "DISABLE"):
                raise AssemblerError(
                    f"line {lineno}: RETURNI takes ENABLE or DISABLE"
                )
            mnemonic = "RETURNI_E" if flag == "ENABLE" else "RETURNI_D"
            rest = ""
        statements.append((lineno, mnemonic, _split_operands(rest), raw.strip()))

    return statements, labels, constants


def assemble(source: str, name: str = "program") -> Program:
    """Assemble *source* text into a :class:`Program`."""
    statements, labels, constants = _tokenize(source)
    words: List[int] = []
    lines: List[str] = []

    def resolve_addr(token: str, lineno: int) -> int:
        if token in labels:
            return labels[token]
        value = _parse_value(token, constants, lineno)
        if not 0 <= value <= ADDR_MASK:
            raise AssemblerError(f"line {lineno}: address {value:#x} out of range")
        return value

    for lineno, mnemonic, operands, raw in statements:
        if mnemonic in _TWO_OPERAND:
            if len(operands) != 2:
                raise AssemblerError(
                    f"line {lineno}: {mnemonic} takes two operands"
                )
            sx = _parse_register(operands[0], lineno)
            if sx is None:
                raise AssemblerError(
                    f"line {lineno}: first operand of {mnemonic} must be a register"
                )
            imm_op, reg_op = _TWO_OPERAND[mnemonic]
            ind = _INDIRECT_RE.match(operands[1])
            if ind:
                sy = _parse_register(ind.group(1).lower(), lineno)
                words.append(encode(reg_op, sx, sy << 4))
            else:
                sy = _parse_register(operands[1], lineno)
                if sy is not None:
                    if mnemonic in ("INPUT", "OUTPUT", "STORE", "FETCH"):
                        raise AssemblerError(
                            f"line {lineno}: {mnemonic} indirect form needs "
                            f"parentheses: ({operands[1]})"
                        )
                    words.append(encode(reg_op, sx, sy << 4))
                else:
                    value = _parse_value(operands[1], constants, lineno)
                    if not 0 <= value <= 0xFF:
                        raise AssemblerError(
                            f"line {lineno}: immediate {value:#x} out of byte range"
                        )
                    words.append(encode(imm_op, sx, value))
        elif mnemonic in _SHIFT:
            if len(operands) != 1:
                raise AssemblerError(f"line {lineno}: {mnemonic} takes one register")
            sx = _parse_register(operands[0], lineno)
            if sx is None:
                raise AssemblerError(
                    f"line {lineno}: {mnemonic} operand must be a register"
                )
            words.append(encode(_SHIFT[mnemonic], sx, 0))
        elif mnemonic in ("JUMP", "CALL"):
            if len(operands) == 1:
                cond, target = Cond.ALWAYS, operands[0]
            elif len(operands) == 2:
                cond_name = operands[0].upper()
                if cond_name not in _COND_NAMES:
                    raise AssemblerError(
                        f"line {lineno}: unknown condition {operands[0]!r}"
                    )
                cond, target = _COND_NAMES[cond_name], operands[1]
            else:
                raise AssemblerError(f"line {lineno}: malformed {mnemonic}")
            op = FLOW_VARIANTS[mnemonic][cond]
            words.append(encode(op, addr=resolve_addr(target, lineno)))
        elif mnemonic == "RETURN":
            if not operands:
                cond = Cond.ALWAYS
            elif len(operands) == 1 and operands[0].upper() in _COND_NAMES:
                cond = _COND_NAMES[operands[0].upper()]
            else:
                raise AssemblerError(f"line {lineno}: malformed RETURN")
            words.append(encode(FLOW_VARIANTS["RETURN"][cond]))
        elif mnemonic == "NOP":
            words.append(encode(Op.NOP))
        elif mnemonic == "HALT":
            words.append(encode(Op.HALT))
        elif mnemonic == "EINT":
            words.append(encode(Op.EINT))
        elif mnemonic == "DINT":
            words.append(encode(Op.DINT))
        elif mnemonic == "RETURNI_E":
            words.append(encode(Op.RETURNI_E))
        elif mnemonic == "RETURNI_D":
            words.append(encode(Op.RETURNI_D))
        else:
            raise AssemblerError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
        lines.append(raw)

    return Program(
        words=words,
        symbols=dict(labels),
        constants=dict(constants),
        source_lines=lines,
        name=name,
    )
