"""The 8-bit controller ISA (PicoBlaze-like).

The MCCP uses the same small soft controller in two places: the Task
Scheduler and one per Cryptographic Core (paper sections III.A and
IV.B).  The prototype used a modified Xilinx PicoBlaze: 16 8-bit
registers, 1024 x 18-bit instruction memory, two clock cycles per
instruction, interrupt support and a custom ``HALT`` that sleeps the
controller until the Cryptographic Unit pulses ``done``.

This subpackage provides:

- :mod:`repro.isa.opcodes` — the instruction encodings (18-bit words);
- :mod:`repro.isa.assembler` — a two-pass text assembler with labels
  and ``CONSTANT`` directives, in PicoBlaze assembler style;
- :mod:`repro.isa.program` — an assembled, decoded program image;
- :mod:`repro.isa.controller` — the interpreter, which runs as a
  process on the :mod:`repro.sim` kernel (2 cycles/instruction).
"""

from repro.isa.opcodes import Cond, Op, decode, encode
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.isa.controller import Controller8, PortDevice

__all__ = [
    "Cond",
    "Op",
    "decode",
    "encode",
    "assemble",
    "Program",
    "Controller8",
    "PortDevice",
]
