"""The 8-bit controller interpreter (a simulation process).

Semantics follow the PicoBlaze model the paper's prototype modified:

- 16 8-bit registers ``s0``..``sF``; Z and C flags; 64-byte scratchpad;
  a 30-deep call stack; 10-bit PC.
- Every instruction takes **2 clock cycles** (paper section IV.B).
- ``INPUT``/``OUTPUT`` delegate to a :class:`PortDevice`.  Output port
  writes are presented to the device at the *start* of the instruction
  (the hardware write strobe), which is what lets firmware start a
  Cryptographic Unit operation and keep executing — the overlap the
  paper's Listing 1 exploits with its NOP padding.
- ``HALT`` (the paper's custom instruction) sleeps until the wake wire
  pulses; a latched pulse that arrived early is consumed immediately.
- Interrupts: when enabled and the interrupt wire has a pending pulse,
  the controller pushes the PC and vectors to the last instruction
  -memory word (PicoBlaze convention) before the next fetch.

Flag semantics (PicoBlaze): logical ops clear C and set Z; arithmetic
sets C on carry/borrow and Z on zero result; shifts/rotates move the
shifted-out bit into C; LOAD/INPUT/FETCH/STORE/OUTPUT leave flags
untouched; COMPARE sets flags like SUB without writing the register.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Protocol

from repro.errors import ExecutionError
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.sim.kernel import Delay, Simulator
from repro.sim.signals import PulseWire

CYCLES_PER_INSTRUCTION = 2
STACK_DEPTH = 30
SCRATCHPAD_BYTES = 64


class PortDevice(Protocol):
    """What the controller is wired to (the Cryptographic Core binds this)."""

    def read_port(self, port: int) -> int:
        """Handle ``INPUT``: return the byte at *port*."""
        ...  # pragma: no cover - protocol

    def write_port(self, port: int, value: int) -> None:
        """Handle ``OUTPUT``: accept *value* written to *port*."""
        ...  # pragma: no cover - protocol


class _NullDevice:
    def read_port(self, port: int) -> int:
        return 0

    def write_port(self, port: int, value: int) -> None:
        return None


class Controller8:
    """One 8-bit controller instance.

    Parameters
    ----------
    sim:
        The simulation kernel.
    program:
        Assembled instruction memory (possibly shared with a neighbour
        core, as in the paper).
    device:
        Port handler; defaults to a null device.
    name:
        Trace/diagnostic name.
    """

    def __init__(
        self,
        sim: Simulator,
        program: Program,
        device: Optional[PortDevice] = None,
        name: str = "ctrl",
    ):
        self.sim = sim
        self.program = program
        self.device: PortDevice = device if device is not None else _NullDevice()
        self.name = name

        self.regs: List[int] = [0] * 16
        self.zero = False
        self.carry = False
        self.pc = 0
        self.stack: List[int] = []
        self.scratchpad: List[int] = [0] * SCRATCHPAD_BYTES
        self.interrupts_enabled = False
        self._preserved_flags: Optional[tuple] = None

        #: Wake line for HALT (the CU done strobe in a Cryptographic Core).
        self.wake = PulseWire(sim, f"{name}.wake")
        self._irq_pending = False
        self.irq_vector = max(len(program) - 1, 0)

        #: Executed-instruction counter (for CPI checks in tests).
        self.instructions_retired = 0
        self.halted_cycles = 0
        self._stopped = False

    # -- helpers ------------------------------------------------------------

    def stop(self) -> None:
        """Request the run loop to finish after the current instruction."""
        self._stopped = True

    def load_program(self, program: Program, start_pc: int = 0) -> None:
        """Swap instruction memory (firmware reload by the Task Scheduler)."""
        self.program = program
        self.pc = start_pc
        self.irq_vector = max(len(program) - 1, 0)

    def _set_zc_logical(self, value: int) -> None:
        self.zero = value == 0
        self.carry = False

    def _alu_source(self, decoded) -> int:
        if decoded.op.name.endswith("_R"):
            return self.regs[(decoded.operand >> 4) & 0xF]
        return decoded.operand

    # -- the process ----------------------------------------------------------

    def run(self, entry: Optional[str] = None) -> Generator:
        """Generator to hand to ``sim.add_process``.

        Runs until the program falls off the end, ``stop()`` is called,
        or a RETURN executes with an empty stack (treated as firmware
        completion, returning from the top-level routine).
        """
        if entry is not None:
            self.pc = self.program.label(entry)
        while not self._stopped:
            if self.interrupts_enabled and self._irq_pending:
                self._irq_pending = False
                if len(self.stack) >= STACK_DEPTH:
                    raise ExecutionError(f"{self.name}: stack overflow on IRQ")
                self.stack.append(self.pc)
                self._preserved_flags = (self.zero, self.carry)
                self.interrupts_enabled = False
                self.pc = self.irq_vector

            if self.pc >= len(self.program):
                return None
            decoded = self.program.fetch(self.pc)
            op = decoded.op
            self.pc += 1
            self.instructions_retired += 1

            if op is Op.HALT:
                # Sleep until the wake wire pulses (done-latch absorbed
                # inside PulseWire).  Cost: the 2 base cycles, plus
                # however long the sleep lasts.
                start = self.sim.now
                yield Delay(CYCLES_PER_INSTRUCTION)
                yield self.wake.wait()
                self.halted_cycles += self.sim.now - start - CYCLES_PER_INSTRUCTION
                continue

            self._execute(decoded)
            yield Delay(CYCLES_PER_INSTRUCTION)
        return None

    def post_irq(self) -> None:
        """Raise the interrupt line (taken before the next fetch)."""
        self._irq_pending = True

    # -- instruction semantics --------------------------------------------

    def _execute(self, decoded) -> None:
        op = decoded.op
        sx = decoded.sx
        if op is Op.NOP:
            return
        if op in (Op.LOAD, Op.LOAD_R):
            self.regs[sx] = self._alu_source(decoded) & 0xFF
        elif op in (Op.AND, Op.AND_R):
            self.regs[sx] &= self._alu_source(decoded)
            self._set_zc_logical(self.regs[sx])
        elif op in (Op.OR, Op.OR_R):
            self.regs[sx] |= self._alu_source(decoded)
            self._set_zc_logical(self.regs[sx])
        elif op in (Op.XOR, Op.XOR_R):
            self.regs[sx] ^= self._alu_source(decoded)
            self._set_zc_logical(self.regs[sx])
        elif op in (Op.ADD, Op.ADD_R):
            total = self.regs[sx] + self._alu_source(decoded)
            self.carry = total > 0xFF
            self.regs[sx] = total & 0xFF
            self.zero = self.regs[sx] == 0
        elif op in (Op.ADDCY, Op.ADDCY_R):
            total = self.regs[sx] + self._alu_source(decoded) + int(self.carry)
            self.carry = total > 0xFF
            self.regs[sx] = total & 0xFF
            self.zero = self.regs[sx] == 0
        elif op in (Op.SUB, Op.SUB_R):
            diff = self.regs[sx] - self._alu_source(decoded)
            self.carry = diff < 0
            self.regs[sx] = diff & 0xFF
            self.zero = self.regs[sx] == 0
        elif op in (Op.SUBCY, Op.SUBCY_R):
            diff = self.regs[sx] - self._alu_source(decoded) - int(self.carry)
            self.carry = diff < 0
            self.regs[sx] = diff & 0xFF
            self.zero = self.regs[sx] == 0
        elif op in (Op.COMPARE, Op.COMPARE_R):
            diff = self.regs[sx] - self._alu_source(decoded)
            self.carry = diff < 0
            self.zero = (diff & 0xFF) == 0
        elif op is Op.SR0:
            self.carry = bool(self.regs[sx] & 1)
            self.regs[sx] >>= 1
            self.zero = self.regs[sx] == 0
        elif op is Op.SL0:
            self.carry = bool(self.regs[sx] & 0x80)
            self.regs[sx] = (self.regs[sx] << 1) & 0xFF
            self.zero = self.regs[sx] == 0
        elif op is Op.RR:
            low = self.regs[sx] & 1
            self.regs[sx] = (self.regs[sx] >> 1) | (low << 7)
            self.carry = bool(low)
            self.zero = self.regs[sx] == 0
        elif op is Op.RL:
            high = (self.regs[sx] >> 7) & 1
            self.regs[sx] = ((self.regs[sx] << 1) & 0xFF) | high
            self.carry = bool(high)
            self.zero = self.regs[sx] == 0
        elif op is Op.INPUT:
            self.regs[sx] = self.device.read_port(decoded.operand) & 0xFF
        elif op is Op.INPUT_R:
            port = self.regs[(decoded.operand >> 4) & 0xF]
            self.regs[sx] = self.device.read_port(port) & 0xFF
        elif op is Op.OUTPUT:
            self.device.write_port(decoded.operand, self.regs[sx])
        elif op is Op.OUTPUT_R:
            port = self.regs[(decoded.operand >> 4) & 0xF]
            self.device.write_port(port, self.regs[sx])
        elif op is Op.STORE:
            self._scratch_write(decoded.operand, self.regs[sx])
        elif op is Op.STORE_R:
            self._scratch_write(self.regs[(decoded.operand >> 4) & 0xF], self.regs[sx])
        elif op is Op.FETCH:
            self.regs[sx] = self._scratch_read(decoded.operand)
        elif op is Op.FETCH_R:
            self.regs[sx] = self._scratch_read(self.regs[(decoded.operand >> 4) & 0xF])
        elif op in (Op.JUMP, Op.JUMP_Z, Op.JUMP_NZ, Op.JUMP_C, Op.JUMP_NC):
            if self._condition(op):
                self.pc = decoded.addr
        elif op in (Op.CALL, Op.CALL_Z, Op.CALL_NZ, Op.CALL_C, Op.CALL_NC):
            if self._condition(op):
                if len(self.stack) >= STACK_DEPTH:
                    raise ExecutionError(f"{self.name}: call stack overflow")
                self.stack.append(self.pc)
                self.pc = decoded.addr
        elif op in (Op.RETURN, Op.RETURN_Z, Op.RETURN_NZ, Op.RETURN_C, Op.RETURN_NC):
            if self._condition(op):
                if not self.stack:
                    # Returning from the top level ends the firmware run.
                    self._stopped = True
                else:
                    self.pc = self.stack.pop()
        elif op in (Op.RETURNI_E, Op.RETURNI_D):
            if not self.stack:
                raise ExecutionError(f"{self.name}: RETURNI with empty stack")
            self.pc = self.stack.pop()
            if self._preserved_flags is not None:
                self.zero, self.carry = self._preserved_flags
                self._preserved_flags = None
            self.interrupts_enabled = op is Op.RETURNI_E
        elif op is Op.EINT:
            self.interrupts_enabled = True
        elif op is Op.DINT:
            self.interrupts_enabled = False
        else:  # pragma: no cover - decode() prevents this
            raise ExecutionError(f"{self.name}: unimplemented op {op!r}")

    def _condition(self, op: Op) -> bool:
        name = op.name
        if name.endswith("_Z"):
            return self.zero
        if name.endswith("_NZ"):
            return not self.zero
        if name.endswith("_NC"):
            return not self.carry
        if name.endswith("_C"):
            return self.carry
        return True

    def _scratch_write(self, addr: int, value: int) -> None:
        if not 0 <= addr < SCRATCHPAD_BYTES:
            raise ExecutionError(f"{self.name}: scratchpad address {addr:#x}")
        self.scratchpad[addr] = value & 0xFF

    def _scratch_read(self, addr: int) -> int:
        if not 0 <= addr < SCRATCHPAD_BYTES:
            raise ExecutionError(f"{self.name}: scratchpad address {addr:#x}")
        return self.scratchpad[addr]
