"""Partial-reconfiguration model (paper section VII.B, Table IV).

The Cryptographic Unit sits in a reconfigurable region (1280 slices /
16 BRAM on the paper's Virtex-4).  Bitstreams live in a store —
CompactFlash or RAM, with bandwidths derived from Table IV — and the
manager swaps a core's CU personality, charging realistic
reconfiguration time and enforcing region capacity.
"""

from repro.reconfig.bitstream import Bitstream, BitstreamStore, StoreKind, MODULE_LIBRARY
from repro.reconfig.region import ReconfigurableRegion
from repro.reconfig.manager import ReconfigManager, ReconfigRecord

__all__ = [
    "Bitstream",
    "BitstreamStore",
    "StoreKind",
    "MODULE_LIBRARY",
    "ReconfigurableRegion",
    "ReconfigManager",
    "ReconfigRecord",
]
