"""Bitstreams and bitstream stores (Table IV).

Table IV gives, for each module, the bitstream size and the measured
reconfiguration times from two stores::

    module      slices  BRAM  size   from CF   from RAM
    AES (+KS)   351     4     89 kB  380 ms    63 ms
    Whirlpool   1153    4     97 kB  416 ms    69 ms

Those measurements imply effective store bandwidths of roughly
89kB/380ms ≈ 234 kB/s (CompactFlash) and 89kB/63ms ≈ 1.41 MB/s (RAM),
with the ratio between modules matching their sizes — so the model is
``time = size / bandwidth``, and it reproduces all four cells of the
table to within a few percent.  The paper's conclusion that "caching of
bitstream is needed to obtain the best performance" is the CF-vs-RAM
gap, which :class:`repro.reconfig.manager.ReconfigManager` exposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.errors import BitstreamError

KB = 1000  # bitstream sizes in the paper are decimal kilobytes


class StoreKind(enum.Enum):
    """Where bitstreams are kept, with effective read bandwidth."""

    COMPACT_FLASH = "compact_flash"
    RAM = "ram"


#: Effective bandwidths (bytes per second) derived from Table IV.
STORE_BANDWIDTH_BPS = {
    StoreKind.COMPACT_FLASH: 89 * KB / 0.380,   # ≈ 234 kB/s
    StoreKind.RAM: 89 * KB / 0.063,             # ≈ 1.41 MB/s
}


@dataclass(frozen=True)
class Bitstream:
    """One partial bitstream for the CU region."""

    name: str
    size_bytes: int
    slices: int
    brams: int
    #: Which CU personality it loads ("aes" / "whirlpool").
    personality: str


#: The two modules of Table IV.
MODULE_LIBRARY: Dict[str, Bitstream] = {
    "aes": Bitstream("aes", 89 * KB, slices=351, brams=4, personality="aes"),
    "whirlpool": Bitstream(
        "whirlpool", 97 * KB, slices=1153, brams=4, personality="whirlpool"
    ),
}


class BitstreamStore:
    """A bitstream repository with a read-bandwidth model."""

    def __init__(self, kind: StoreKind, clock_hz: float = 190e6):
        self.kind = kind
        self.clock_hz = clock_hz
        self._bitstreams: Dict[str, Bitstream] = dict(MODULE_LIBRARY)
        #: Bytes read from the store (wear/egress statistics).
        self.bytes_read = 0

    def add(self, bitstream: Bitstream) -> None:
        """Register an extra module bitstream."""
        self._bitstreams[bitstream.name] = bitstream

    def get(self, name: str) -> Bitstream:
        """Fetch bitstream metadata."""
        try:
            return self._bitstreams[name]
        except KeyError as exc:
            raise BitstreamError(f"no bitstream named {name!r}") from exc

    def load_seconds(self, name: str) -> float:
        """Reconfiguration time in seconds (Table IV reproduction)."""
        bitstream = self.get(name)
        return bitstream.size_bytes / STORE_BANDWIDTH_BPS[self.kind]

    def load_cycles(self, name: str) -> int:
        """Reconfiguration time in MCCP clock cycles."""
        self.bytes_read += self.get(name).size_bytes
        return int(self.load_seconds(name) * self.clock_hz)
