"""The reconfiguration manager: swaps CU personalities at run time.

Drives the whole Table-IV flow: fetch the bitstream from a store
(CompactFlash or RAM bandwidths), stall the target core for the load
time, then flip the core's active CU personality.  A small bitstream
cache models the paper's recommendation that "caching of bitstream is
needed to obtain the best performances": cached loads run at RAM speed
even when the backing store is CompactFlash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.core.crypto_core import CryptoCore
from repro.errors import ReconfigError
from repro.reconfig.bitstream import BitstreamStore, StoreKind
from repro.reconfig.region import ReconfigurableRegion
from repro.sim.kernel import Delay, Event, Simulator


@dataclass(frozen=True)
class ReconfigRecord:
    """One completed reconfiguration (for the Table IV benchmark)."""

    core_index: int
    module: str
    store: StoreKind
    cached: bool
    cycles: int
    seconds: float


class ReconfigManager:
    """Run-time partial reconfiguration of core CU regions."""

    def __init__(
        self,
        sim: Simulator,
        cores: List[CryptoCore],
        store: BitstreamStore,
        cache_capacity: int = 2,
        clock_hz: float = 190e6,
    ):
        self.sim = sim
        self.cores = cores
        self.store = store
        self.clock_hz = clock_hz
        self.regions = [ReconfigurableRegion(core.index) for core in cores]
        self._cache: Set[str] = set()
        self._cache_capacity = cache_capacity
        #: RAM-speed store used for cached bitstreams.
        self._ram_store = BitstreamStore(StoreKind.RAM, clock_hz)
        self.history: List[ReconfigRecord] = []

    def load_cycles(self, module: str, cached: Optional[bool] = None) -> int:
        """Cycle cost of loading *module* (cache-aware)."""
        use_cache = self._is_cached(module) if cached is None else cached
        store = self._ram_store if use_cache else self.store
        return store.load_cycles(module)

    def _is_cached(self, module: str) -> bool:
        return module in self._cache

    def _cache_insert(self, module: str) -> None:
        if len(self._cache) >= self._cache_capacity and module not in self._cache:
            self._cache.pop()
        self._cache.add(module)

    def reconfigure(self, core_index: int, module: str) -> Event:
        """Process-style reconfiguration; returns a completion event."""
        if not 0 <= core_index < len(self.cores):
            raise ReconfigError(f"no core {core_index}")
        core = self.cores[core_index]
        if core.busy:
            raise ReconfigError(
                f"core {core_index} is processing a packet; "
                "reconfiguration refused"
            )
        bitstream = self.store.get(module)
        region = self.regions[core_index]
        region.check_fit(bitstream)

        cached = self._is_cached(module)
        cycles = self.load_cycles(module, cached)
        done = self.sim.event(f"reconfig.core{core_index}.{module}")
        # The region is out of service while the bitstream loads: mark
        # the core busy so task schedulers and the single-core harness
        # refuse to map work onto it mid-reconfiguration.
        core.busy = True

        def proc():
            yield Delay(cycles)
            core.busy = False
            region.load(bitstream)
            core.use_whirlpool_personality(bitstream.personality == "whirlpool")
            self._cache_insert(module)
            record = ReconfigRecord(
                core_index=core_index,
                module=module,
                store=self.store.kind,
                cached=cached,
                cycles=cycles,
                seconds=cycles / self.clock_hz,
            )
            self.history.append(record)
            done.trigger(record)

        self.sim.add_process(proc(), name=f"reconfig.{module}")
        return done

    def reconfigure_sync(self, core_index: int, module: str) -> ReconfigRecord:
        """Blocking wrapper around :meth:`reconfigure`."""
        done = self.reconfigure(core_index, module)
        return self.sim.run_until_event(done)
