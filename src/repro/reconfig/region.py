"""The reconfigurable region hosting the Cryptographic Unit.

Paper section VII.B: "The reconfigurable area embeds 1280 slices and 16
BRAM."  A module only loads if it fits; loading while the hosting core
is busy is refused (the paper notes reconfiguration of one part does
not prevent others from working — but the part being reconfigured is
obviously unusable meanwhile).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RegionCapacityError
from repro.reconfig.bitstream import Bitstream

REGION_SLICES = 1280
REGION_BRAMS = 16


class ReconfigurableRegion:
    """Capacity tracking for one core's CU slot."""

    def __init__(
        self,
        core_index: int,
        slices: int = REGION_SLICES,
        brams: int = REGION_BRAMS,
    ):
        self.core_index = core_index
        self.slices = slices
        self.brams = brams
        self.loaded: Optional[Bitstream] = None
        #: Number of successful reconfigurations.
        self.reconfig_count = 0

    def check_fit(self, bitstream: Bitstream) -> None:
        """Raise unless *bitstream* fits the region."""
        if bitstream.slices > self.slices or bitstream.brams > self.brams:
            raise RegionCapacityError(
                f"module {bitstream.name!r} needs {bitstream.slices} slices / "
                f"{bitstream.brams} BRAM; region {self.core_index} has "
                f"{self.slices} / {self.brams}"
            )

    def load(self, bitstream: Bitstream) -> None:
        """Install *bitstream* (capacity already checked by the manager)."""
        self.check_fit(bitstream)
        self.loaded = bitstream
        self.reconfig_count += 1

    @property
    def utilisation(self) -> float:
        """Slice utilisation of the currently loaded module."""
        return (self.loaded.slices / self.slices) if self.loaded else 0.0
