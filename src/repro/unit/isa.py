"""Cryptographic Unit instruction encoding (paper Table I).

8-bit instructions: a 4-bit operation code and two 2-bit bank-register
addresses::

    bits [7:4] opcode | [3:2] @A | [1:0] @B

For ``INC`` the B field carries the increment amount minus one (the
paper: "increments by I ... where I is a 2-bit natural", i.e. 1..4).

Beyond Table I, two opcodes drive the inter-core shift register of
section IV.A (``ICSEND``/``ICRECV``) and ``STORE`` is the output-FIFO
counterpart of ``LOAD`` used by Listing 1.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.errors import DecodeError


class CuOp(enum.IntEnum):
    """CU opcodes (AES personality)."""

    NOP = 0x0
    LOAD = 0x1    # input FIFO -> bank[A]
    STORE = 0x2   # bank[A] -> output FIFO
    LOADH = 0x3   # GHASH subkey <- bank[A]; accumulator cleared
    SGFM = 0x4    # GHASH absorbs bank[A] (background, 43 cycles)
    FGFM = 0x5    # bank[A] <- GHASH accumulator (finalize)
    SAES = 0x6    # AES starts on bank[A] (background, 44/52/60 cycles)
    FAES = 0x7    # bank[A] <- AES result (finalize)
    INC = 0x8     # bank[A] low 16 bits += (B + 1)
    XOR = 0x9     # bank[B] = (bank[A] ^ bank[B]) & byte-mask
    EQU = 0xA     # equ flag = ((bank[A] ^ bank[B]) & byte-mask) == 0
    ICSEND = 0xB  # bank[A] -> neighbour's inter-core register
    ICRECV = 0xC  # bank[A] <- own inter-core register (stalls if empty)


class CuDecoded(NamedTuple):
    """A decoded CU instruction byte."""

    op: CuOp
    a: int
    b: int


def cu_encode(op: CuOp, a: int = 0, b: int = 0) -> int:
    """Pack a CU instruction byte."""
    if not 0 <= a <= 3 or not 0 <= b <= 3:
        raise DecodeError(f"bank address out of range: a={a} b={b}")
    return (int(op) << 4) | (a << 2) | b


def cu_decode(byte: int) -> CuDecoded:
    """Unpack a CU instruction byte."""
    if not 0 <= byte <= 0xFF:
        raise DecodeError(f"CU instruction {byte:#x} exceeds 8 bits")
    op_bits = (byte >> 4) & 0xF
    try:
        op = CuOp(op_bits)
    except ValueError as exc:
        raise DecodeError(f"unknown CU opcode {op_bits:#x}") from exc
    return CuDecoded(op, (byte >> 2) & 0x3, byte & 0x3)
