"""The Cryptographic Unit (CU) — paper section V.

A CU is the reconfigurable datapath of each Cryptographic Core: a
4 x 128-bit bank register, an instruction decoder, and a set of
processing cores (iterative 32-bit AES, digit-serial GHASH, masked
XOR/comparator, 16-bit INC, 32-bit I/O).  It executes the 8-bit
instructions of Table I of the paper, issued by the core's 8-bit
controller through its output port.

Two personalities exist, mirroring the partial-reconfiguration
experiment (Table IV): the AES personality
(:class:`repro.unit.unit.CryptoUnit`) and the Whirlpool personality
(:class:`repro.unit.whirlpool_unit.WhirlpoolUnit`).
"""

from repro.unit.isa import CuOp, cu_encode, cu_decode, CuDecoded
from repro.unit.timing import TimingModel, DEFAULT_TIMING
from repro.unit.bank import BankRegister
from repro.unit.unit import CryptoUnit
from repro.unit.whirlpool_unit import WhirlpoolUnit, WpOp, wp_encode

__all__ = [
    "CuOp",
    "cu_encode",
    "cu_decode",
    "CuDecoded",
    "TimingModel",
    "DEFAULT_TIMING",
    "BankRegister",
    "CryptoUnit",
    "WhirlpoolUnit",
    "WpOp",
    "wp_encode",
]
