"""The 4 x 128-bit bank register (paper section V.A).

The hardware reaches each 128-bit word through four 32-bit sub-word
accesses sequenced by a 2-bit counter; the model keeps whole 16-byte
values but exposes the sub-word view for tests that exercise the
datapath shape.
"""

from __future__ import annotations

from typing import List

from repro.errors import BankAddressError
from repro.utils.bits import bytes_to_words32, words32_to_bytes

NUM_REGISTERS = 4
REGISTER_BYTES = 16


class BankRegister:
    """Four 128-bit registers addressed by 2-bit fields."""

    def __init__(self) -> None:
        self._regs: List[bytes] = [bytes(REGISTER_BYTES) for _ in range(NUM_REGISTERS)]
        #: Write counter per register (datapath activity statistics).
        self.writes = [0] * NUM_REGISTERS
        self.reads = [0] * NUM_REGISTERS

    def _check(self, index: int) -> None:
        if not 0 <= index < NUM_REGISTERS:
            raise BankAddressError(f"bank register index {index} out of range")

    def read(self, index: int) -> bytes:
        """Full 128-bit read of register *index*."""
        self._check(index)
        self.reads[index] += 1
        return self._regs[index]

    def write(self, index: int, value: bytes) -> None:
        """Full 128-bit write of register *index*."""
        self._check(index)
        if len(value) != REGISTER_BYTES:
            raise BankAddressError(
                f"bank register value must be 16 bytes, got {len(value)}"
            )
        self._regs[index] = bytes(value)
        self.writes[index] += 1

    def read_subword(self, index: int, sub: int) -> int:
        """One 32-bit sub-word (sub 0 = most significant)."""
        self._check(index)
        if not 0 <= sub <= 3:
            raise BankAddressError(f"sub-word index {sub} out of range")
        return bytes_to_words32(self._regs[index])[sub]

    def write_subword(self, index: int, sub: int, word: int) -> None:
        """Replace one 32-bit sub-word."""
        self._check(index)
        if not 0 <= sub <= 3:
            raise BankAddressError(f"sub-word index {sub} out of range")
        words = bytes_to_words32(self._regs[index])
        words[sub] = word
        self._regs[index] = words32_to_bytes(words)
        self.writes[index] += 1

    def clear(self) -> None:
        """Zero all registers (channel teardown hygiene)."""
        for i in range(NUM_REGISTERS):
            self._regs[i] = bytes(REGISTER_BYTES)

    def snapshot(self) -> List[bytes]:
        """Copies of all four registers."""
        return list(self._regs)
