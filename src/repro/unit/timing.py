"""Cycle-cost calibration for the Cryptographic Unit.

The paper gives the anchor numbers (section V.A and VII.A):

- AES: one 128-bit block takes **44 / 52 / 60** cycles for
  128/192/256-bit keys (iterative core after Chodowiec & Gaj);
- GHASH: **43** cycles per block (digit-serial, 3-bit digits);
- every CU instruction nominally runs in **7** cycles from start to
  done, and replacing the controller's HALT with two NOPs "saves one
  clock cycle", i.e. a chained predictable instruction effectively
  occupies **6** cycles;
- the steady-state loop periods are ``T_GCM = T_SAES + T_FAES = 49``,
  ``T_CBC = T_SAES + T_FAES + T_XOR = 55`` and
  ``T_CCM,1core = T_CTR + T_CBC = 104``.

From those equations: with AES busy 44 cycles from SAES issue, the
finalize tail (AES-done to FAES-done) must be **5** cycles
(44 + 5 = 49), and the chained XOR contributes its **6**-cycle
occupancy (49 + 6 = 55).  These constants make the paper's numbers
*emerge* from simulated firmware rather than being hard-coded.

Whirlpool has no published cycle count in the paper (Table IV only
reports area/bitstream); ``whirlpool_cycles`` is our documented model
assumption for a compact 64-bit-datapath core (10 rounds, state and key
rounds overlapped: ~9 cycles per round).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import KeySizeError


@dataclass(frozen=True)
class TimingModel:
    """All cycle constants used by the device model."""

    #: AES busy cycles from SAES issue, per key size in bits.
    aes_cycles: Dict[int, int] = field(
        default_factory=lambda: {128: 44, 192: 52, 256: 60}
    )
    #: GHASH busy cycles from SGFM acceptance.
    ghash_cycles: int = 43
    #: Effective occupancy of a predictable (fixed-time) CU instruction
    #: when chained with NOP padding (7-cycle nominal minus the 1-cycle
    #: handshake overlap the paper describes).
    cu_chain_cycles: int = 6
    #: FAES/FGFM completion tail after the background core finishes.
    finalize_tail: int = 5
    #: Controller cycles per instruction (PicoBlaze: 2).
    controller_cpi: int = 2
    #: Whirlpool compress busy cycles per 512-bit block (model assumption).
    whirlpool_cycles: int = 90
    #: Crossbar transfer: cycles per 32-bit word moved between the
    #: communication controller and a core FIFO.
    crossbar_word_cycles: int = 1
    #: Cycles the Key Scheduler needs per round key generated (one
    #: 128-bit round key = 4 words through a 32-bit datapath).
    key_schedule_word_cycles: int = 4
    #: Task Scheduler software overhead per control instruction
    #: (decode + core selection on the 8-bit scheduler controller).
    scheduler_overhead_cycles: int = 40

    def aes_busy(self, key_bits: int) -> int:
        """AES busy time for *key_bits* (raises on unsupported size)."""
        try:
            return self.aes_cycles[key_bits]
        except KeyError as exc:
            raise KeySizeError(f"no AES timing for {key_bits}-bit keys") from exc

    def saes_faes_pair(self, key_bits: int) -> int:
        """The paper's T_SAES + T_FAES (49 for 128-bit keys)."""
        return self.aes_busy(key_bits) + self.finalize_tail

    def gcm_loop(self, key_bits: int) -> int:
        """Theoretical GCM/CTR steady-state loop period (section VII.A)."""
        return self.saes_faes_pair(key_bits)

    def cbc_loop(self, key_bits: int) -> int:
        """Theoretical CBC-MAC loop period (adds the chained XOR)."""
        return self.saes_faes_pair(key_bits) + self.cu_chain_cycles

    def ccm_one_core_loop(self, key_bits: int) -> int:
        """Theoretical one-core CCM loop period (CTR + CBC serialised)."""
        return self.gcm_loop(key_bits) + self.cbc_loop(key_bits)


#: The calibration used across the library and the benchmarks.
DEFAULT_TIMING = TimingModel()
