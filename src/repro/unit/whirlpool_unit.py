"""The Whirlpool personality of the reconfigurable Cryptographic Unit.

Section VII.B of the paper demonstrates partial reconfiguration by
swapping the CU region between the AES encryption core and a Whirlpool
hashing core (Table IV).  This module is what the region *becomes*
after loading the Whirlpool bitstream: the same bank register, FIFOs
and controller interface, but a hash-oriented instruction set.

A 512-bit Whirlpool block is exactly the whole 4 x 128-bit bank, so
``SWPC`` consumes the full bank as one message block and the chaining
state lives inside the core (Miyaguchi–Preneel).  Message padding is
performed by the communication controller, consistent with the paper's
rule that cores never format data (section VI.B).

Cycle cost per compress is :attr:`TimingModel.whirlpool_cycles` — a
documented model assumption (the paper reports no Whirlpool timing).
"""

from __future__ import annotations

import enum
from typing import Callable, NamedTuple, Optional

from repro.crypto.whirlpool import compress
from repro.errors import DecodeError, UnitError
from repro.sim.kernel import Simulator
from repro.sim.signals import PulseWire
from repro.sim.tracing import TraceRecorder
from repro.unit.bank import BankRegister
from repro.unit.cores.io_core import IoCore
from repro.unit.timing import TimingModel


class WpOp(enum.IntEnum):
    """Whirlpool-personality opcodes."""

    NOP = 0x0
    LOAD = 0x1    # input FIFO -> bank[A]
    STORE = 0x2   # bank[A] -> output FIFO
    WPINIT = 0x3  # chaining state <- 0^512
    SWPC = 0x4    # start compressing the whole bank (background)
    FWPC = 0x5    # wait for the running compress to finish
    WPDIG = 0x6   # bank[A] <- digest bytes [16A : 16A+16]


class WpDecoded(NamedTuple):
    op: WpOp
    a: int
    b: int


def wp_encode(op: WpOp, a: int = 0, b: int = 0) -> int:
    """Pack a Whirlpool-personality instruction byte."""
    if not 0 <= a <= 3 or not 0 <= b <= 3:
        raise DecodeError(f"bank address out of range: a={a} b={b}")
    return (int(op) << 4) | (a << 2) | b


def wp_decode(byte: int) -> WpDecoded:
    """Unpack a Whirlpool-personality instruction byte."""
    if not 0 <= byte <= 0xFF:
        raise DecodeError(f"instruction {byte:#x} exceeds 8 bits")
    op_bits = (byte >> 4) & 0xF
    try:
        op = WpOp(op_bits)
    except ValueError as exc:
        raise DecodeError(f"unknown Whirlpool opcode {op_bits:#x}") from exc
    return WpDecoded(op, (byte >> 2) & 0x3, byte & 0x3)


class WhirlpoolUnit:
    """Drop-in CU replacement after Whirlpool reconfiguration."""

    def __init__(
        self,
        sim: Simulator,
        io: IoCore,
        timing: TimingModel,
        trace: Optional[TraceRecorder] = None,
        name: str = "wpu",
    ):
        self.sim = sim
        self.io = io
        self.timing = timing
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.name = name

        self.bank = BankRegister()
        self._chain = bytes(64)
        self._compress_busy_until = 0
        self.done = PulseWire(sim, f"{name}.done")
        self.busy = False
        self._queue: list = []
        self._idle_callbacks: list = []
        #: Compress invocations (one per 512-bit block).
        self.blocks_processed = 0

    def call_when_idle(self, fn) -> None:
        """Run *fn* once idle with an empty queue (see CryptoUnit)."""
        if not self.busy and not self._queue:
            fn()
        else:
            self._idle_callbacks.append(fn)

    # -- controller-facing API (same shape as CryptoUnit) -------------------

    def set_mask_low(self, byte: int) -> None:
        """Masks are meaningless in this personality; accepted, ignored."""

    def set_mask_high(self, byte: int) -> None:
        """Masks are meaningless in this personality; accepted, ignored."""

    def status_byte(self) -> int:
        """Bit 2 = compress busy, bit 3 = CU busy (equ/AES bits absent)."""
        return (4 if self.sim.now < self._compress_busy_until else 0) | (
            8 if self.busy else 0
        )

    def reset_for_packet(self) -> None:
        """Clear per-message state."""
        if self.busy:
            raise UnitError(f"{self.name}: reset while busy")
        self.bank.clear()
        self._chain = bytes(64)
        self.done.clear_latch()

    def start(self, instr_byte: int) -> None:
        """Issue an instruction (queues while busy; see CryptoUnit.start)."""
        if self.busy or self._queue:
            self._queue.append(instr_byte)
            return
        self._issue(instr_byte)

    # -- execution ----------------------------------------------------------

    def _issue(self, instr_byte: int) -> None:
        op, a, _b = wp_decode(instr_byte)
        now = self.sim.now
        self.busy = True
        self.done.clear_latch()
        self.trace.record(now, self.name, "issue", op=op.name, a=a)
        chain_cycles = self.timing.cu_chain_cycles

        if op is WpOp.NOP:
            self._finish_at(now + chain_cycles, None)
        elif op is WpOp.LOAD:
            self.io.when_input_ready(
                lambda: self._finish_at(
                    self.sim.now + chain_cycles,
                    lambda: self.bank.write(a, self.io.pop_block()),
                )
            )
        elif op is WpOp.STORE:
            block = self.bank.read(a)
            self.io.when_output_ready(
                lambda: self._finish_at(
                    self.sim.now + chain_cycles,
                    lambda: self.io.push_block(block),
                )
            )
        elif op is WpOp.WPINIT:
            self._chain = bytes(64)
            self._finish_at(now + chain_cycles, None)
        elif op is WpOp.SWPC:
            if now < self._compress_busy_until:
                raise UnitError(f"{self.name}: SWPC while compress busy")
            message = b"".join(self.bank.read(i) for i in range(4))
            self._chain = compress(self._chain, message)
            self._compress_busy_until = now + self.timing.whirlpool_cycles
            self.blocks_processed += 1
            self._finish_at(now + chain_cycles, None)
        elif op is WpOp.FWPC:
            ready = (
                max(self._compress_busy_until, now) + self.timing.finalize_tail
            )
            self._finish_at(ready, None)
        elif op is WpOp.WPDIG:
            digest_part = self._chain[16 * a : 16 * a + 16]
            self._finish_at(
                now + chain_cycles, lambda: self.bank.write(a, digest_part)
            )
        else:  # pragma: no cover
            raise UnitError(f"{self.name}: unimplemented op {op!r}")

    def _finish_at(self, time: int, effect: Optional[Callable[[], None]]) -> None:
        self.sim.call_at(time, self._complete, effect)

    def _complete(self, effect: Optional[Callable[[], None]]) -> None:
        if effect is not None:
            effect()
        self.busy = False
        self.trace.record(self.sim.now, self.name, "complete")
        if self._queue:
            self._issue(self._queue.pop(0))
        else:
            self.done.pulse()
            if self._idle_callbacks:
                callbacks, self._idle_callbacks = self._idle_callbacks, []
                for fn in callbacks:
                    fn()
