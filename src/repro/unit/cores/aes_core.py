"""The iterative 32-bit AES encryption core (paper section V.A).

Encryption only — the MCCP's modes (CTR/CCM/GCM) never need the inverse
cipher, so the hardware omits it and so do we.  One block takes
44/52/60 cycles depending on the key size; the core computes in the
background between ``SAES`` (sample input, go busy) and ``FAES``
(deliver the result).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.crypto.fast import encrypt_block_dispatch
from repro.errors import UnitError
from repro.unit.timing import TimingModel


class AesCore:
    """Background AES engine with busy-interval bookkeeping."""

    def __init__(self, timing: TimingModel):
        self.timing = timing
        self.busy_until = 0
        self._result: Optional[bytes] = None
        self._pending = False
        #: Total blocks encrypted (utilisation statistics).
        self.blocks_processed = 0
        self.busy_cycles_total = 0

    def start(self, block: bytes, round_keys: Sequence[Sequence[int]], now: int) -> int:
        """``SAES``: sample *block*, return the completion cycle.

        An unread previous result is discarded (the firmware pattern in
        Listing 1 legitimately launches one extra encryption per packet
        whose result is never finalized).
        """
        if now < self.busy_until:
            raise UnitError(
                f"SAES at cycle {now} while AES busy until {self.busy_until}"
            )
        key_bits = 32 * (len(round_keys) - 1 - 6)  # 10->128, 12->192, 14->256
        busy = self.timing.aes_busy(key_bits)
        # Functional result only — the cycle model above is untouched by
        # whether the fast T-table engine or the reference rounds run.
        self._result = encrypt_block_dispatch(bytes(block), round_keys)
        self._pending = True
        self.busy_until = now + busy
        self.blocks_processed += 1
        self.busy_cycles_total += busy
        return self.busy_until

    def finalize(self, now: int) -> "tuple[bytes, int]":
        """``FAES``: return ``(result, ready_cycle)``.

        ``ready_cycle`` is when the result (and the done pulse) appears:
        ``max(busy_until, now) + finalize_tail``.
        """
        if not self._pending or self._result is None:
            raise UnitError("FAES with no pending AES computation")
        ready = max(self.busy_until, now) + self.timing.finalize_tail
        self._pending = False
        return self._result, ready

    @property
    def has_pending(self) -> bool:
        """Whether a started computation has not been finalized yet."""
        return self._pending
