"""Processing cores embedded in the Cryptographic Unit (paper Fig. 3).

Each core couples a *functional* model (delegating to the bit-exact
gold crypto in :mod:`repro.crypto`) with a *busy-interval* timing model.
The Cryptographic Unit sequences them; the separation mirrors the
hardware, where SAES/SGFM launch a core in the background while the
32-bit datapath keeps executing other instructions.
"""

from repro.unit.cores.aes_core import AesCore
from repro.unit.cores.ghash_core import GhashCore
from repro.unit.cores.xor_core import masked_equal, masked_xor, mask_for_bytes
from repro.unit.cores.inc_core import inc16
from repro.unit.cores.io_core import IoCore

__all__ = [
    "AesCore",
    "GhashCore",
    "masked_equal",
    "masked_xor",
    "mask_for_bytes",
    "inc16",
    "IoCore",
]
