"""The INC core: 16-bit increment of a 128-bit word (section V.A).

Increments the 16 least significant bits by 1..4, wrapping modulo
2^16; the upper 112 bits pass through untouched.  This exactly suits
the counter blocks of the radio's modes: GCM's 96-bit-IV counters and
CCM's q=2 counters both keep their counting field within the low 16
bits for packet-sized data.
"""

from __future__ import annotations

from repro.errors import UnitError


def inc16(block: bytes, amount: int) -> bytes:
    """Return *block* with its low 16 bits incremented by *amount*."""
    if len(block) != 16:
        raise UnitError(f"INC operand must be 16 bytes, got {len(block)}")
    if not 1 <= amount <= 4:
        raise UnitError(f"INC amount must be 1..4, got {amount}")
    low = (int.from_bytes(block[14:], "big") + amount) & 0xFFFF
    return block[:14] + low.to_bytes(2, "big")
