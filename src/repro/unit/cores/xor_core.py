"""The 32-bit XOR/comparator core with 16-bit byte mask (section V.A).

The mask is a 16-bit word: bit *i* (bit 15 = most significant) enables
byte *i* of the 16-byte result, counting from the most significant
byte.  This single primitive covers partial final blocks (enable the
valid prefix) and truncated authentication tags (enable the first
``tag_length`` bytes).
"""

from __future__ import annotations

from repro.errors import UnitError


def mask_for_bytes(nbytes: int) -> int:
    """Mask enabling the first *nbytes* bytes of a 16-byte word."""
    if not 0 <= nbytes <= 16:
        raise UnitError(f"mask byte count {nbytes} out of range")
    if nbytes == 0:
        return 0
    return ((1 << nbytes) - 1) << (16 - nbytes)


def _apply_mask(value: bytes, mask: int) -> bytes:
    return bytes(
        b if (mask >> (15 - i)) & 1 else 0 for i, b in enumerate(value)
    )


def masked_xor(a: bytes, b: bytes, mask: int) -> bytes:
    """``B = (A xor B) and mask`` — the XOR operating mode."""
    if len(a) != 16 or len(b) != 16:
        raise UnitError("XOR core operands must be 16 bytes")
    if not 0 <= mask <= 0xFFFF:
        raise UnitError(f"mask {mask:#x} exceeds 16 bits")
    return _apply_mask(bytes(x ^ y for x, y in zip(a, b)), mask)


def masked_equal(a: bytes, b: bytes, mask: int) -> bool:
    """``equ`` flag: true when the masked XOR is all zero.

    With the mask covering ``tag_length`` bytes this is the truncated
    tag comparison of the RETRIEVE DATA path.
    """
    return all(x == 0 for x in masked_xor(a, b, mask))
