"""The 32-bit I/O core: FIFO <-> bank register transfers (section V.A).

``LOAD`` pops four 32-bit words from the input FIFO into a bank
register; ``STORE`` pushes a bank register into the output FIFO.  Both
stall while the FIFO cannot serve them ("loads data from input FIFO
once there are available", section IV.C); the Cryptographic Unit turns
that stall into a deferred completion.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.fifo import WordFifo, WORDS_PER_BLOCK


class IoCore:
    """Block mover between the core FIFOs and the bank register."""

    def __init__(self, in_fifo: WordFifo, out_fifo: WordFifo):
        self.in_fifo = in_fifo
        self.out_fifo = out_fifo
        #: Blocks moved in each direction.
        self.blocks_in = 0
        self.blocks_out = 0

    def input_ready(self) -> bool:
        """Whether a whole block can be popped."""
        return self.in_fifo.can_pop(WORDS_PER_BLOCK)

    def output_ready(self) -> bool:
        """Whether a whole block can be pushed."""
        return self.out_fifo.can_push(WORDS_PER_BLOCK)

    def pop_block(self) -> bytes:
        """Pop one 16-byte block from the input FIFO."""
        self.blocks_in += 1
        return self.in_fifo.pop_block()

    def push_block(self, block: bytes) -> None:
        """Push one 16-byte block into the output FIFO."""
        self.blocks_out += 1
        self.out_fifo.push_block(block)

    def when_input_ready(self, callback: Callable[[], None]) -> None:
        """Invoke *callback* as soon as a whole input block is available.

        Re-arms on push *edges* (not the non-empty level): with data
        streaming in one 32-bit word per cycle, a level wait would spin
        in the same cycle whenever a partial block is present.
        """
        if self.input_ready():
            callback()
            return

        def retry() -> None:
            if self.input_ready():
                callback()
            else:
                self.in_fifo.add_push_hook(retry)

        self.in_fifo.add_push_hook(retry)

    def when_output_ready(self, callback: Callable[[], None]) -> None:
        """Invoke *callback* as soon as the output FIFO has block space."""
        if self.output_ready():
            callback()
            return

        def retry() -> None:
            if self.output_ready():
                callback()
            else:
                self.out_fifo.add_pop_hook(retry)

        self.out_fifo.add_pop_hook(retry)
