"""The digit-serial GHASH core (paper section V.A, after Lemsitzer).

3-bit digits, 43 cycles per 128-bit multiplication.  ``LOADH`` installs
the hash subkey and clears the accumulator; ``SGFM`` absorbs one block
in the background; ``FGFM`` reads the accumulator out.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.ghash import GHash
from repro.errors import UnitError
from repro.unit.timing import TimingModel


class GhashCore:
    """Background GHASH engine with busy-interval bookkeeping."""

    def __init__(self, timing: TimingModel):
        self.timing = timing
        self.busy_until = 0
        self._ghash: Optional[GHash] = None
        #: Total blocks absorbed.
        self.blocks_processed = 0

    def load_h(self, h: bytes, now: int) -> None:
        """``LOADH``: install subkey *h*, reset the accumulator."""
        if now < self.busy_until:
            raise UnitError(
                f"LOADH at cycle {now} while GHASH busy until {self.busy_until}"
            )
        self._ghash = GHash(h)

    def absorb(self, block: bytes, now: int) -> int:
        """``SGFM``: absorb *block*; returns the completion cycle.

        If the multiplier is still busy the start is held until it
        frees (the hardware handshake does the same), so back-to-back
        SGFM streams run at one block per 43 cycles.
        """
        if self._ghash is None:
            raise UnitError("SGFM before LOADH")
        start = max(now, self.busy_until)
        self._ghash.update(bytes(block))
        self.busy_until = start + self.timing.ghash_cycles
        self.blocks_processed += 1
        return self.busy_until

    def finalize(self, now: int) -> "tuple[bytes, int]":
        """``FGFM``: return ``(accumulator, ready_cycle)``."""
        if self._ghash is None:
            raise UnitError("FGFM before LOADH")
        ready = max(self.busy_until, now) + self.timing.finalize_tail
        return self._ghash.digest(), ready

    @property
    def loaded(self) -> bool:
        """Whether a subkey has been installed."""
        return self._ghash is not None
