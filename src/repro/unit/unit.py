"""The Cryptographic Unit execution model (paper Fig. 3, section V).

The CU is passive: the core's 8-bit controller *issues* an instruction
by writing its byte to the CU port (OUTPUT), which calls
:meth:`CryptoUnit.start` at the controller's write-strobe cycle.  The
CU then owns the datapath until the instruction completes, pulses
``done`` (wired to the controller's HALT wake line), and accepts the
next instruction.

Timing rules (see :mod:`repro.unit.timing` for the calibration):

- predictable instructions (LOAD/STORE/LOADH/SGFM/SAES/INC/XOR/EQU and
  the inter-core moves) occupy the CU for ``cu_chain_cycles`` (6);
- SAES/SGFM additionally launch their background core;
- FAES/FGFM complete ``finalize_tail`` (5) cycles after the background
  core finishes, delivering the result into the bank register;
- LOAD/STORE/ICSEND/ICRECV stall while their FIFO/mailbox cannot serve
  them, then run their 6 cycles.

Functional effects are applied at *completion* time for finalizes and
at *issue* time for samples (SAES/SGFM read the bank when they start,
which is what lets Listing 1 overwrite the data register while GHASH is
still absorbing it).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import UnitError
from repro.sim.kernel import Simulator
from repro.sim.signals import PulseWire
from repro.sim.tracing import TraceRecorder
from repro.unit.bank import BankRegister
from repro.unit.cores.aes_core import AesCore
from repro.unit.cores.ghash_core import GhashCore
from repro.unit.cores.inc_core import inc16
from repro.unit.cores.io_core import IoCore
from repro.unit.cores.xor_core import masked_equal, masked_xor
from repro.unit.isa import CuOp, cu_decode
from repro.unit.timing import TimingModel


class InterCoreRegister:
    """The 4 x 32-bit inter-core shift register (one block mailbox)."""

    def __init__(self, sim: Simulator, name: str = "ic"):
        self.sim = sim
        self.name = name
        self._block: Optional[bytes] = None
        self._space_waiters: list = []
        self._data_waiters: list = []
        #: Blocks ever transferred.
        self.transfers = 0

    @property
    def full(self) -> bool:
        """Whether a block is waiting to be received."""
        return self._block is not None

    def put(self, block: bytes) -> None:
        """Deposit a block (caller must have checked :attr:`full`)."""
        if self._block is not None:
            raise UnitError(f"{self.name}: inter-core register overrun")
        self._block = bytes(block)
        self.transfers += 1
        while self._data_waiters:
            callback = self._data_waiters.pop(0)
            self.sim.call_soon(lambda _arg, cb=callback: cb())

    def take(self) -> bytes:
        """Remove and return the deposited block."""
        if self._block is None:
            raise UnitError(f"{self.name}: inter-core register underrun")
        block, self._block = self._block, None
        while self._space_waiters:
            callback = self._space_waiters.pop(0)
            self.sim.call_soon(lambda _arg, cb=callback: cb())
        return block

    def when_data(self, callback: Callable[[], None]) -> None:
        """Run *callback* once a block is present."""
        if self.full:
            callback()
        else:
            self._data_waiters.append(callback)

    def when_space(self, callback: Callable[[], None]) -> None:
        """Run *callback* once the register is empty."""
        if not self.full:
            callback()
        else:
            self._space_waiters.append(callback)


class CryptoUnit:
    """The AES-personality Cryptographic Unit."""

    def __init__(
        self,
        sim: Simulator,
        io: IoCore,
        key_provider: "Callable[[], list]",
        timing: TimingModel,
        trace: Optional[TraceRecorder] = None,
        name: str = "cu",
    ):
        self.sim = sim
        self.io = io
        self._key_provider = key_provider
        self.timing = timing
        # An empty TraceRecorder is falsy (it has __len__), so compare to None.
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.name = name

        self.bank = BankRegister()
        self.aes = AesCore(timing)
        self.ghash = GhashCore(timing)
        self.mask = 0xFFFF
        self.equ_flag = False

        #: Own inbox; ``ic_out`` is the *neighbour's* inbox (wired by the MCCP).
        self.ic_in = InterCoreRegister(sim, f"{name}.ic_in")
        self.ic_out: Optional[InterCoreRegister] = None

        self.done = PulseWire(sim, f"{name}.done")
        self.busy = False
        self._queue: list = []
        self._idle_callbacks: list = []
        #: Issued-instruction count by opcode name.
        self.op_counts: dict = {}

    def call_when_idle(self, fn: "Callable[[], None]") -> None:
        """Run *fn* once the CU is idle with an empty issue queue.

        Runs immediately if already idle.  Unlike waiting on the
        ``done`` pulse wire, this cannot consume (or be fooled by) a
        latched done pulse, so it is safe for core-level bookkeeping
        that must not race the firmware's HALT protocol.
        """
        if not self.busy and not self._queue:
            fn()
        else:
            self._idle_callbacks.append(fn)

    # -- controller-facing API ---------------------------------------------

    def set_mask(self, mask: int) -> None:
        """Install the 16-bit byte mask used by XOR/EQU."""
        if not 0 <= mask <= 0xFFFF:
            raise UnitError(f"mask {mask:#x} exceeds 16 bits")
        self.mask = mask

    def set_mask_low(self, byte: int) -> None:
        """Write the low mask byte (controller port 0x01)."""
        self.mask = (self.mask & 0xFF00) | (byte & 0xFF)

    def set_mask_high(self, byte: int) -> None:
        """Write the high mask byte (controller port 0x02)."""
        self.mask = ((byte & 0xFF) << 8) | (self.mask & 0x00FF)

    def status_byte(self) -> int:
        """Status for the controller: equ, AES-busy, GHASH-busy, CU-busy."""
        now = self.sim.now
        return (
            (1 if self.equ_flag else 0)
            | (2 if now < self.aes.busy_until else 0)
            | (4 if now < self.ghash.busy_until else 0)
            | (8 if self.busy else 0)
        )

    def start(self, instr_byte: int) -> None:
        """Issue a CU instruction (controller write strobe).

        If the CU is still finishing earlier instructions (including a
        FIFO-stalled LOAD/STORE) the new one queues and issues at the
        predecessor's completion cycle, which is exactly the hardware
        handshake timing.  The ``done`` wire pulses only when the unit
        goes *idle* (completion with an empty queue) — the condition the
        controller's HALT waits for.
        """
        if self.busy or self._queue:
            self._queue.append(instr_byte)
            return
        self._issue(instr_byte)

    def reset_for_packet(self) -> None:
        """Clear per-packet state (bank, flags) before a new task."""
        if self.busy:
            raise UnitError(f"{self.name}: reset while busy")
        self.bank.clear()
        self.equ_flag = False
        self.mask = 0xFFFF
        self.done.clear_latch()

    # -- execution ----------------------------------------------------------

    def _issue(self, instr_byte: int) -> None:
        decoded = cu_decode(instr_byte)
        op, a, b = decoded
        now = self.sim.now
        self.busy = True
        self.done.clear_latch()
        self.op_counts[op.name] = self.op_counts.get(op.name, 0) + 1
        self.trace.record(now, self.name, "issue", op=op.name, a=a, b=b)
        chain = self.timing.cu_chain_cycles

        if op is CuOp.NOP:
            self._finish_at(now + chain, None)
        elif op is CuOp.LOAD:
            self.io.when_input_ready(
                lambda: self._finish_at(
                    self.sim.now + chain,
                    lambda: self.bank.write(a, self.io.pop_block()),
                )
            )
        elif op is CuOp.STORE:
            block = self.bank.read(a)
            self.io.when_output_ready(
                lambda: self._finish_at(
                    self.sim.now + chain, lambda: self.io.push_block(block)
                )
            )
        elif op is CuOp.LOADH:
            self.ghash.load_h(self.bank.read(a), now)
            self._finish_at(now + chain, None)
        elif op is CuOp.SGFM:
            self.ghash.absorb(self.bank.read(a), now)
            self._finish_at(now + chain, None)
        elif op is CuOp.FGFM:
            digest, ready = self.ghash.finalize(now)
            self._finish_at(ready, lambda: self.bank.write(a, digest))
        elif op is CuOp.SAES:
            self.aes.start(self.bank.read(a), self._key_provider(), now)
            self._finish_at(now + chain, None)
        elif op is CuOp.FAES:
            result, ready = self.aes.finalize(now)
            self._finish_at(ready, lambda: self.bank.write(a, result))
        elif op is CuOp.INC:
            self.bank.write(a, inc16(self.bank.read(a), b + 1))
            self._finish_at(now + chain, None)
        elif op is CuOp.XOR:
            value = masked_xor(self.bank.read(a), self.bank.read(b), self.mask)
            self.bank.write(b, value)
            self._finish_at(now + chain, None)
        elif op is CuOp.EQU:
            self.equ_flag = masked_equal(
                self.bank.read(a), self.bank.read(b), self.mask
            )
            self._finish_at(now + chain, None)
        elif op is CuOp.ICSEND:
            if self.ic_out is None:
                raise UnitError(f"{self.name}: ICSEND with no neighbour wired")
            block = self.bank.read(a)
            self.ic_out.when_space(
                lambda: self._finish_at(
                    self.sim.now + chain, lambda: self.ic_out.put(block)
                )
            )
        elif op is CuOp.ICRECV:
            self.ic_in.when_data(
                lambda: self._finish_at(
                    self.sim.now + chain,
                    lambda: self.bank.write(a, self.ic_in.take()),
                )
            )
        else:  # pragma: no cover - cu_decode prevents this
            raise UnitError(f"{self.name}: unimplemented op {op!r}")

    def _finish_at(self, time: int, effect: Optional[Callable[[], None]]) -> None:
        self.sim.call_at(time, self._complete, effect)

    def _complete(self, effect: Optional[Callable[[], None]]) -> None:
        if effect is not None:
            effect()
        self.busy = False
        self.trace.record(self.sim.now, self.name, "complete")
        if self._queue:
            self._issue(self._queue.pop(0))
        else:
            self.done.pulse()
            if self._idle_callbacks:
                callbacks, self._idle_callbacks = self._idle_callbacks, []
                for fn in callbacks:
                    fn()
