"""The per-core round-key cache (paper sections III.A and IV.A).

Round keys are pre-computed by the MCCP's Key Scheduler from session
keys held in the write-protected Key Memory and deposited here; the
Cryptographic Unit's AES core only ever reads expanded schedules.  The
cache never exposes the session key itself — mirroring the paper's
security property that "there is no way to get the secret session key
directly from the MCCP data port".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import KeyStoreError


class KeyCache:
    """Holds one expanded AES key schedule for a core."""

    def __init__(self, name: str = "keycache"):
        self.name = name
        self._round_keys: Optional[List[List[int]]] = None
        self._key_bits: Optional[int] = None
        self._key_id: Optional[int] = None
        #: How many times a schedule was installed (reload statistics).
        self.loads = 0

    @property
    def loaded(self) -> bool:
        """Whether a schedule is present."""
        return self._round_keys is not None

    @property
    def key_bits(self) -> int:
        """Key size of the cached schedule."""
        if self._key_bits is None:
            raise KeyStoreError(f"{self.name}: no key schedule loaded")
        return self._key_bits

    @property
    def key_id(self) -> Optional[int]:
        """Session-key id the schedule was derived from (None if unset)."""
        return self._key_id

    def install(
        self,
        round_keys: Sequence[Sequence[int]],
        key_bits: int,
        key_id: Optional[int] = None,
    ) -> None:
        """Deposit an expanded schedule (Key Scheduler's job)."""
        rounds = {128: 10, 192: 12, 256: 14}.get(key_bits)
        if rounds is None:
            raise KeyStoreError(f"{self.name}: unsupported key size {key_bits}")
        if len(round_keys) != rounds + 1:
            raise KeyStoreError(
                f"{self.name}: schedule has {len(round_keys)} round keys, "
                f"expected {rounds + 1} for {key_bits}-bit keys"
            )
        self._round_keys = [list(rk) for rk in round_keys]
        self._key_bits = key_bits
        self._key_id = key_id
        self.loads += 1

    def round_keys(self) -> List[List[int]]:
        """The cached schedule (the CU's key provider hook)."""
        if self._round_keys is None:
            raise KeyStoreError(f"{self.name}: no key schedule loaded")
        return self._round_keys

    def invalidate(self) -> None:
        """Drop the schedule (channel close / key rollover hygiene)."""
        self._round_keys = None
        self._key_bits = None
        self._key_id = None
