"""Single-core driving harness (feeder/drainer processes).

Used by tests and benchmarks to run one formatted task on one core
without standing up the whole MCCP: a feeder process streams input
words into the core FIFO under flow control (one 32-bit word per
crossbar cycle, as the communication controller would) and a drainer
empties the output FIFO the same way.

The full-device path lives in :mod:`repro.radio.comm_controller`; this
harness mirrors its per-word timing so single-core numbers match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.crypto_core import CoreResult, CryptoCore
from repro.radio.formatting import FormattedTask
from repro.sim.kernel import Delay, Simulator
from repro.utils.bits import bytes_to_words32, words32_to_bytes


@dataclass
class TaskRun:
    """Outcome of a harness run."""

    result: CoreResult
    output_blocks: List[bytes]
    feed_done_cycle: int


def feeder_process(core: CryptoCore, blocks: List[bytes], word_cycles: int = 1):
    """Stream *blocks* into the core's input FIFO under flow control."""
    for block in blocks:
        for word in bytes_to_words32(block):
            while not core.in_fifo.can_push():
                yield core.in_fifo.wait_not_full()
            core.in_fifo.push_word(word)
            yield Delay(word_cycles)
    return core.sim.now


def drainer_process(
    core: CryptoCore,
    sink: List[int],
    word_cycles: int = 1,
    stop: Optional[List[bool]] = None,
):
    """Continuously drain the core's output FIFO into *sink* (words).

    *stop* is a one-element mutable flag: once the caller sets
    ``stop[0] = True`` the process exits at its next wake-up instead of
    draining forever.  Without it, a drainer left over from an earlier
    :func:`run_task` on the same core would steal output words from the
    next task — the per-run isolation bug the experiments runner hit
    when scenarios reuse a core across sequential packets.
    """
    while stop is None or not stop[0]:
        while not core.out_fifo.can_pop():
            yield core.out_fifo.wait_not_empty()
            if stop is not None and stop[0]:
                return
        sink.append(core.out_fifo.pop_word())
        yield Delay(word_cycles)


def run_task(
    sim: Simulator,
    core: CryptoCore,
    task: FormattedTask,
    drain: Optional[bool] = None,
    limit: int = 100_000_000,
) -> TaskRun:
    """Run one formatted task to completion on *core*.

    The caller must have installed the key schedule already.  Returns
    the core result plus the drained output blocks.

    By default decrypt tasks are *not* drained while running: the real
    communication controller only reads after RETRIEVE DATA returns OK,
    which is what lets the FIFO purge on authentication failure protect
    the plaintext (paper section IV.C).  Decrypt output (<= 128 blocks)
    always fits the FIFO, so deferred draining cannot deadlock.
    """
    from repro.core.params import Direction

    if drain is None:
        drain = task.params.direction is not Direction.DECRYPT
    feeder = sim.add_process(
        feeder_process(core, task.input_blocks), name=f"{core.name}.feed"
    )
    sink: List[int] = []
    stop = [False]
    if drain:
        sim.add_process(
            drainer_process(core, sink, stop=stop), name=f"{core.name}.drain"
        )
    done = core.assign_task(task.params)
    result: CoreResult = sim.run_until_event(done, limit=limit)
    # Let the drainer catch up with any words still in flight, then
    # retire it so a later run_task on this core starts clean.
    sim.run(until=sim.now + 8 * (len(sink) + 64))
    stop[0] = True
    while core.out_fifo.can_pop():
        sink.append(core.out_fifo.pop_word())
    blocks = [
        words32_to_bytes(sink[i : i + 4]) for i in range(0, len(sink) - 3, 4)
    ]
    feed_cycle = feeder.done.value if feeder.done.triggered else sim.now
    return TaskRun(result=result, output_blocks=blocks, feed_done_cycle=feed_cycle)


def steady_state_periods(
    trace, component: str, op: str = "SAES"
) -> Tuple[Optional[int], List[int]]:
    """Extract the dominant issue period of *op* from a trace.

    Returns (modal period, all periods) — the modal period is the
    steady-state loop time the paper's section VII.A equations predict.
    """
    cycles = [
        e.cycle
        for e in trace.filter(component, "issue")
        if e.details.get("op") == op
    ]
    periods = [b - a for a, b in zip(cycles, cycles[1:])]
    if not periods:
        return None, []
    modal = max(set(periods), key=periods.count)
    return modal, periods
