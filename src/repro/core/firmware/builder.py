"""Assembly-emission helpers shared by all mode firmware.

Controller register conventions (every program):

===========  ==========================================================
``s0``       data-block countdown
``s1``       header/AAD-block countdown
``s2``       CU instruction scratch (prefetch register)
``s3``       status / result scratch
``s4, s5``   final-data-block mask (low, high)
``s6, s7``   tag mask (low, high)
===========  ==========================================================

Port map (bound by :class:`repro.core.crypto_core.CryptoCore`):

===========  ==========================================================
``0x00`` W   CU instruction (write strobe = issue)
``0x01`` W   XOR/EQU mask low byte
``0x02`` W   XOR/EQU mask high byte
``0x03`` R   CU status (bit0 equ, bit1 AES busy, bit2 GHASH busy)
``0x10+`` R  task parameters (see :mod:`repro.core.params`)
``0x20`` W   result code (0x01 OK, 0x02 AUTH_FAIL) — ends the task
===========  ==========================================================

Timing idioms (calibrated against the paper's loop equations; see
:mod:`repro.unit.timing`):

- ``pred(op)`` emits ``LOAD s2 / OUTPUT / NOP`` — consecutive ``pred``
  issues land exactly 6 cycles apart, the effective occupancy of a
  predictable CU instruction;
- ``fin_pre(fin, nxt)`` emits ``LOAD/OUTPUT(fin)/LOAD(nxt)/HALT/
  OUTPUT(nxt)/NOP`` — the *next* instruction issues on the finalize's
  done edge, the pre-fetch trick of paper section VI.A;
- ``fin(op)`` emits ``LOAD/OUTPUT/HALT`` for non-loop finalizes where a
  few cycles of slack do not matter.
"""

from __future__ import annotations

from typing import List

from repro.unit.isa import CuOp, cu_encode

# Port numbers (kept in sync with CryptoCore's dispatch).
P_CU = 0x00
P_MASK_LO = 0x01
P_MASK_HI = 0x02
P_STATUS = 0x03
P_RESULT = 0x20

RESULT_OK = 0x01
RESULT_AUTH_FAIL = 0x02

STATUS_EQU_BIT = 0x01
STATUS_CU_BUSY_BIT = 0x08


class FW:
    """Incremental assembly-source builder."""

    def __init__(self, title: str):
        self._lines: List[str] = [f"; {title}"]
        self._drain_labels = 0

    # -- raw emission -----------------------------------------------------

    def raw(self, line: str) -> "FW":
        """Append one raw assembly line."""
        self._lines.append(line)
        return self

    def label(self, name: str) -> "FW":
        """Append a label."""
        self._lines.append(f"{name}:")
        return self

    def source(self) -> str:
        """The complete assembly text."""
        return "\n".join(self._lines) + "\n"

    # -- CU instruction idioms ---------------------------------------------

    def cu_byte(self, op: CuOp, a: int = 0, b: int = 0) -> int:
        """Encode a CU instruction byte (overridable for other personalities)."""
        return cu_encode(op, a, b)

    def pred(self, op, a: int = 0, b: int = 0, note: str = "") -> "FW":
        """Issue a predictable CU instruction with exact 6-cycle spacing."""
        byte = self._encode(op, a, b)
        tag = note or getattr(op, "name", str(op))
        self.raw(f"    LOAD   s2, {byte}")
        self.raw(f"    OUTPUT s2, {P_CU}        ; {tag} @{a},@{b}")
        self.raw("    NOP")
        return self

    def fin(self, op, a: int = 0, note: str = "") -> "FW":
        """Issue a finalize and HALT until its done edge (slack allowed)."""
        byte = self._encode(op, a, 0)
        tag = note or getattr(op, "name", str(op))
        self.raw(f"    LOAD   s2, {byte}")
        self.raw(f"    OUTPUT s2, {P_CU}        ; {tag} @{a} (wait)")
        self.raw("    HALT")
        return self

    def fin_pre(
        self,
        fin_op,
        fin_a: int,
        next_op,
        next_a: int = 0,
        next_b: int = 0,
        note: str = "",
    ) -> "FW":
        """Finalize, pre-fetch the next instruction, issue it on the done edge."""
        fin_byte = self._encode(fin_op, fin_a, 0)
        next_byte = self._encode(next_op, next_a, next_b)
        fin_tag = getattr(fin_op, "name", str(fin_op))
        next_tag = getattr(next_op, "name", str(next_op))
        self.raw(f"    LOAD   s2, {fin_byte}")
        self.raw(f"    OUTPUT s2, {P_CU}        ; {fin_tag} @{fin_a} {note}")
        self.raw(f"    LOAD   s2, {next_byte}   ; prefetch {next_tag}")
        self.raw("    HALT")
        self.raw(f"    OUTPUT s2, {P_CU}        ; {next_tag} @{next_a},@{next_b} on done edge")
        self.raw("    NOP")
        return self

    def _encode(self, op, a: int, b: int) -> int:
        # CuOp/WpOp are IntEnums, so check for a *plain* int (raw byte).
        if type(op) is int:
            return op
        return self.cu_byte(op, a, b)

    # -- mask and result idioms ---------------------------------------------

    def set_final_mask(self) -> "FW":
        """Install the final-data-block mask from s4/s5."""
        self.raw(f"    OUTPUT s4, {P_MASK_LO}   ; final-block mask")
        self.raw(f"    OUTPUT s5, {P_MASK_HI}")
        return self

    def set_tag_mask(self) -> "FW":
        """Install the tag mask from s6/s7."""
        self.raw(f"    OUTPUT s6, {P_MASK_LO}   ; tag mask")
        self.raw(f"    OUTPUT s7, {P_MASK_HI}")
        return self

    def set_full_mask(self) -> "FW":
        """Restore the all-bytes mask (0xFFFF)."""
        self.raw("    LOAD   s3, 0xFF")
        self.raw(f"    OUTPUT s3, {P_MASK_LO}   ; full mask")
        self.raw(f"    OUTPUT s3, {P_MASK_HI}")
        return self

    def read_params(self, masks: bool = True) -> "FW":
        """Read the standard parameter registers into s0/s1 (+ masks)."""
        self.raw("    INPUT  s0, 0x13          ; data blocks")
        self.raw("    INPUT  s1, 0x12          ; header blocks")
        if masks:
            self.raw("    INPUT  s4, 0x16          ; final mask lo")
            self.raw("    INPUT  s5, 0x17          ; final mask hi")
            self.raw("    INPUT  s6, 0x18          ; tag mask lo")
            self.raw("    INPUT  s7, 0x19          ; tag mask hi")
        return self

    def drain_cu(self) -> "FW":
        """Emit the CU-drain fence: NOP, HALT, then poll until idle.

        The controller runs ahead of the CU's issue queue, so a result
        written without this fence could be published while STOREs are
        still in flight.  A bare HALT is not enough: the done wire
        latches one pulse, and under FIFO-stall backpressure a pulse
        from an earlier queue-drain can survive to here and wake the
        HALT while tail instructions are still queued (the controller
        then runs one done-edge ahead for the rest of the program).
        The NOP fence guarantees a fresh pulse so the HALT can never
        sleep forever, and the status poll closes the early-wake
        window by spinning until the CU-busy bit clears.
        """
        label = f"cu_drain_{self._drain_labels}"
        self._drain_labels += 1
        nop = self._encode(0, 0, 0)  # raw byte 0 = NOP in every personality
        self.raw(f"    LOAD   s2, {nop}")
        self.raw(f"    OUTPUT s2, {P_CU}        ; fence NOP (fresh done pulse)")
        self.raw("    HALT                      ; wait CU idle")
        self.label(label)
        self.raw(f"    INPUT  s3, {P_STATUS}")
        self.raw(f"    AND    s3, {STATUS_CU_BUSY_BIT}")
        self.raw(f"    JUMP   NZ, {label}       ; stale-latch guard")
        return self

    def result_ok(self) -> "FW":
        """Drain the CU, then report success and finish."""
        self.drain_cu()
        self.raw(f"    LOAD   s3, {RESULT_OK}")
        self.raw(f"    OUTPUT s3, {P_RESULT}    ; done: OK")
        self.raw("    RETURN")
        return self

    def check_equ_and_finish(self, fail_label: str) -> "FW":
        """Drain the CU, read the equ flag, report OK/AUTH_FAIL.

        The drain must complete before the status read: the equ flag
        is only meaningful once the EQU instruction has executed.
        """
        self.drain_cu()
        self.raw(f"    INPUT  s3, {P_STATUS}")
        self.raw(f"    AND    s3, {STATUS_EQU_BIT}")
        self.raw(f"    JUMP   Z, {fail_label}")
        self.raw(f"    LOAD   s3, {RESULT_OK}")
        self.raw(f"    OUTPUT s3, {P_RESULT}    ; done: OK")
        self.raw("    RETURN")
        self.label(fail_label)
        self.raw(f"    LOAD   s3, {RESULT_AUTH_FAIL}")
        self.raw(f"    OUTPUT s3, {P_RESULT}    ; done: AUTH FAIL")
        self.raw("    RETURN")
        return self
