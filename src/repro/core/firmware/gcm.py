"""GCM firmware (paper Listing 1 generalised to full packets).

Input-FIFO layout (prepared by the communication controller):

    zero block | J0 | AAD blocks (padded) | data blocks (padded)
    | length block | [decrypt: tag block]

Output FIFO after completion: data blocks (ciphertext on encrypt,
plaintext on decrypt) followed by the masked tag block (encrypt only).

Steady-state loop period: T = T_SAES + T_FAES = 49 cycles for 128-bit
keys (paper section VII.A), emerging from the fin_pre/pred idioms.
"""

from __future__ import annotations

from repro.core.firmware.builder import FW
from repro.core.params import Direction
from repro.unit.isa import CuOp


def build_gcm(direction: Direction) -> str:
    """Generate GCM encrypt/decrypt firmware source."""
    dec = direction is Direction.DECRYPT
    fw = FW(f"GCM {'decrypt' if dec else 'encrypt'} firmware")
    fw.read_params()

    # --- pre-loop: H, E(J0), first counter ---------------------------------
    fw.pred(CuOp.LOAD, 1, note="zero block")
    fw.pred(CuOp.SAES, 1, note="H = E(0)")
    fw.fin(CuOp.FAES, 1)
    fw.pred(CuOp.LOADH, 1, note="install H")
    fw.pred(CuOp.LOAD, 0, note="J0")
    fw.pred(CuOp.SAES, 0, note="E(J0)")
    fw.fin(CuOp.FAES, 3, note="E(J0) -> @3")
    fw.pred(CuOp.INC, 0, 0, note="J0+1")

    # --- AAD loop ------------------------------------------------------------
    fw.raw("    COMPARE s1, 0")
    fw.raw("    JUMP   Z, aad_done")
    fw.label("aad_loop")
    fw.pred(CuOp.LOAD, 1, note="AAD block")
    fw.pred(CuOp.SGFM, 1, note="GHASH(AAD)")
    fw.raw("    SUB    s1, 1")
    fw.raw("    JUMP   NZ, aad_loop")
    fw.label("aad_done")

    # --- data loop -------------------------------------------------------------
    fw.raw("    COMPARE s0, 0")
    fw.raw("    JUMP   Z, tail")
    fw.pred(CuOp.SAES, 0, note="ctr_1")
    fw.pred(CuOp.INC, 0, 0)
    fw.pred(CuOp.LOAD, 1, note="data_1")
    fw.raw("    COMPARE s0, 1")
    fw.raw("    JUMP   Z, last_prep")
    fw.raw("    SUB    s0, 1")

    fw.label("main_loop")
    fw.fin_pre(CuOp.FAES, 2, CuOp.SAES, 0, note="(Listing 1 head)")
    if dec:
        # GHASH absorbs the ciphertext *before* it is turned into plaintext.
        fw.pred(CuOp.SGFM, 1, note="GHASH(ct)")
        fw.pred(CuOp.XOR, 2, 1, note="pt = ks ^ ct")
    else:
        fw.pred(CuOp.XOR, 2, 1, note="ct = ks ^ pt")
        fw.pred(CuOp.SGFM, 1, note="GHASH(ct)")
    fw.pred(CuOp.STORE, 1)
    fw.pred(CuOp.INC, 0, 0)
    fw.pred(CuOp.LOAD, 1, note="next data block")
    fw.raw("    SUB    s0, 1")
    fw.raw("    JUMP   NZ, main_loop")

    # --- final data block (masked) ---------------------------------------------
    fw.label("last_prep")
    if dec:
        fw.fin(CuOp.FAES, 2, note="final keystream")
        fw.pred(CuOp.SGFM, 1, note="GHASH(padded ct)")
        fw.set_final_mask()
        fw.pred(CuOp.XOR, 2, 1, note="masked pt")
    else:
        fw.set_final_mask()
        fw.fin(CuOp.FAES, 2, note="final keystream")
        fw.pred(CuOp.XOR, 2, 1, note="masked ct")
        fw.pred(CuOp.SGFM, 1, note="GHASH(masked ct)")
    fw.pred(CuOp.STORE, 1)
    fw.set_full_mask()

    # --- tail: length block, tag ----------------------------------------------
    fw.label("tail")
    fw.pred(CuOp.LOAD, 1, note="length block")
    fw.pred(CuOp.SGFM, 1)
    fw.set_tag_mask()
    fw.fin(CuOp.FGFM, 2, note="S -> @2")
    fw.pred(CuOp.XOR, 3, 2, note="tag = (E(J0) ^ S) & mask")
    if dec:
        fw.pred(CuOp.LOAD, 1, note="received tag")
        fw.pred(CuOp.EQU, 1, 2, note="verify")
        fw.check_equ_and_finish("auth_fail")
    else:
        fw.pred(CuOp.STORE, 2, note="emit tag")
        fw.result_ok()
    return fw.source()
