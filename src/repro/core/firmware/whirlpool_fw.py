"""Whirlpool hashing firmware for the reconfigured Cryptographic Unit.

After partial reconfiguration (paper section VII.B / Table IV) the CU
speaks the :class:`repro.unit.whirlpool_unit.WpOp` instruction set.  A
512-bit message block fills the whole 4 x 128-bit bank; the chaining
state (Miyaguchi–Preneel) stays inside the core.

``P_DATA_BLOCKS`` counts 512-bit blocks; the communication controller
performs the ISO length padding, so the core only ever sees whole
blocks (at most 32 per FIFO fill).
"""

from __future__ import annotations

from repro.core.firmware.builder import FW
from repro.unit.whirlpool_unit import WpOp, wp_encode


class WpFW(FW):
    """FW variant emitting Whirlpool-personality instruction bytes."""

    def cu_byte(self, op, a: int = 0, b: int = 0) -> int:
        return wp_encode(op, a, b)


def build_whirlpool() -> str:
    """Generate the Whirlpool hashing firmware source."""
    fw = WpFW("Whirlpool hash firmware (reconfigured CU)")
    fw.raw("    INPUT  s0, 0x13          ; 512-bit block count")
    fw.pred(WpOp.WPINIT, note="chain <- 0")

    fw.label("block_loop")
    for quarter in range(4):
        fw.pred(WpOp.LOAD, quarter, note=f"message quarter {quarter}")
    fw.pred(WpOp.SWPC, note="start compress")
    fw.fin(WpOp.FWPC, note="wait compress")
    fw.raw("    SUB    s0, 1")
    fw.raw("    JUMP   NZ, block_loop")

    for quarter in range(4):
        fw.pred(WpOp.WPDIG, quarter, note=f"digest quarter {quarter}")
        fw.pred(WpOp.STORE, quarter)
    fw.result_ok()
    return fw.source()
