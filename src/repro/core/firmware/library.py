"""The assembled firmware library.

Maps (algorithm, direction, role) to a ready-to-run
:class:`repro.isa.program.Program`.  Programs are assembled once at
import; the Task Scheduler "loads" them into a core's (shared)
instruction memory when it assigns a task — the reload is modeled by
:meth:`repro.isa.controller.Controller8.load_program`.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

from repro.core.firmware.builder import FW  # noqa: F401  (re-export for tests)
from repro.core.firmware.cbc_mac import build_cbc_mac
from repro.core.firmware.ccm_one_core import build_ccm_one_core
from repro.core.firmware.ccm_two_core import build_ccm_ctr_core, build_ccm_mac_core
from repro.core.firmware.ctr import build_ctr
from repro.core.firmware.gcm import build_gcm
from repro.core.firmware.whirlpool_fw import build_whirlpool
from repro.core.params import Algorithm, CcmRole, Direction
from repro.errors import FirmwareError
from repro.isa.assembler import assemble
from repro.isa.program import Program


class FirmwareKey(NamedTuple):
    """Lookup key into the firmware library."""

    algorithm: Algorithm
    direction: Direction
    role: CcmRole


def _build_all() -> Dict[FirmwareKey, Program]:
    lib: Dict[FirmwareKey, Program] = {}

    def put(alg: Algorithm, direction: Direction, role: CcmRole, source: str, name: str):
        lib[FirmwareKey(alg, direction, role)] = assemble(source, name)

    ctr_src = build_ctr()
    for d in Direction:
        put(Algorithm.CTR, d, CcmRole.SINGLE, ctr_src, "fw_ctr")
        put(Algorithm.GCM, d, CcmRole.SINGLE, build_gcm(d), f"fw_gcm_{d.name.lower()}")
        put(
            Algorithm.CBC_MAC,
            d,
            CcmRole.SINGLE,
            build_cbc_mac(d),
            f"fw_cbcmac_{d.name.lower()}",
        )
        put(
            Algorithm.CCM,
            d,
            CcmRole.SINGLE,
            build_ccm_one_core(d),
            f"fw_ccm1_{d.name.lower()}",
        )
        put(
            Algorithm.CCM,
            d,
            CcmRole.MAC,
            build_ccm_mac_core(d),
            f"fw_ccm2_mac_{d.name.lower()}",
        )
        put(
            Algorithm.CCM,
            d,
            CcmRole.CTR,
            build_ccm_ctr_core(d),
            f"fw_ccm2_ctr_{d.name.lower()}",
        )
        put(Algorithm.WHIRLPOOL, d, CcmRole.SINGLE, build_whirlpool(), "fw_whirlpool")
    return lib


FIRMWARE_LIBRARY: Dict[FirmwareKey, Program] = _build_all()


def firmware_for(
    algorithm: Algorithm,
    direction: Direction,
    role: CcmRole = CcmRole.SINGLE,
) -> Program:
    """Look up the program for a task configuration."""
    try:
        return FIRMWARE_LIBRARY[FirmwareKey(algorithm, direction, role)]
    except KeyError as exc:
        raise FirmwareError(
            f"no firmware for {algorithm!r} {direction!r} role={role!r}"
        ) from exc
