"""CBC-MAC firmware (standalone MAC generation and verification).

Input-FIFO layout: message blocks (already padded/formatted; the first
block plays the role CCM's B0 plays).  ``P_DATA_BLOCKS`` counts *all*
blocks.  On generation the masked MAC is stored to the output FIFO; on
verification the expected tag follows the message in the input FIFO.

Steady-state loop period: T_CBC = T_SAES + T_FAES + T_XOR = 55 cycles
for 128-bit keys (paper section VII.A) — the XOR that chains the
previous cipher output into the next block sits on the critical path.
"""

from __future__ import annotations

from repro.core.firmware.builder import FW
from repro.core.params import Direction
from repro.unit.isa import CuOp


def build_cbc_mac(direction: Direction) -> str:
    """Generate CBC-MAC firmware (ENCRYPT = generate, DECRYPT = verify)."""
    verify = direction is Direction.DECRYPT
    fw = FW(f"CBC-MAC {'verify' if verify else 'generate'} firmware")
    fw.read_params()

    fw.pred(CuOp.LOAD, 3, note="first message block")
    fw.pred(CuOp.SAES, 3, note="chain = E(B_1)")
    fw.raw("    SUB    s0, 1")
    fw.raw("    JUMP   Z, tail")
    fw.pred(CuOp.LOAD, 1, note="next block (overlaps AES)")

    fw.label("chain_loop")
    fw.raw("    SUB    s0, 1")
    fw.raw("    JUMP   Z, chain_last")
    fw.fin_pre(CuOp.FAES, 3, CuOp.XOR, 1, 3, note="chain")
    fw.pred(CuOp.SAES, 3)
    fw.pred(CuOp.LOAD, 1, note="lookahead block")
    fw.raw("    JUMP   chain_loop")

    fw.label("chain_last")
    fw.fin_pre(CuOp.FAES, 3, CuOp.XOR, 1, 3, note="chain (last)")
    fw.pred(CuOp.SAES, 3)

    fw.label("tail")
    fw.fin(CuOp.FAES, 3, note="final MAC")
    fw.set_tag_mask()
    fw.pred(CuOp.XOR, 3, 2, note="@2 = MAC & tagmask (via zeroed @2)")
    if verify:
        fw.pred(CuOp.LOAD, 1, note="expected tag")
        fw.pred(CuOp.EQU, 1, 2)
        fw.check_equ_and_finish("auth_fail")
    else:
        fw.pred(CuOp.STORE, 2, note="emit MAC")
        fw.result_ok()
    return fw.source()
