"""CTR firmware (encryption and decryption are the same program).

Input-FIFO layout: initial counter block | data blocks (padded).
Output FIFO: data blocks (final block masked to its valid bytes).

Steady-state loop period: 49 cycles for 128-bit keys, identical to
GCM's (T_CTR = T_SAES + T_FAES, paper section VII.A).
"""

from __future__ import annotations

from repro.core.firmware.builder import FW
from repro.unit.isa import CuOp


def build_ctr() -> str:
    """Generate the CTR firmware source."""
    fw = FW("CTR firmware (direction-agnostic)")
    fw.read_params()

    fw.pred(CuOp.LOAD, 0, note="initial counter")
    fw.raw("    COMPARE s0, 0")
    fw.raw("    JUMP   Z, done")
    fw.pred(CuOp.SAES, 0, note="ctr_1")
    fw.pred(CuOp.INC, 0, 0)
    fw.pred(CuOp.LOAD, 1, note="data_1")
    fw.raw("    COMPARE s0, 1")
    fw.raw("    JUMP   Z, last_prep")
    fw.raw("    SUB    s0, 1")

    fw.label("main_loop")
    fw.fin_pre(CuOp.FAES, 2, CuOp.SAES, 0)
    fw.pred(CuOp.XOR, 2, 1, note="out = ks ^ in")
    fw.pred(CuOp.STORE, 1)
    fw.pred(CuOp.INC, 0, 0)
    fw.pred(CuOp.LOAD, 1, note="next block")
    fw.raw("    SUB    s0, 1")
    fw.raw("    JUMP   NZ, main_loop")

    fw.label("last_prep")
    fw.set_final_mask()
    fw.fin(CuOp.FAES, 2, note="final keystream")
    fw.pred(CuOp.XOR, 2, 1, note="masked final block")
    fw.pred(CuOp.STORE, 1)

    fw.label("done")
    fw.result_ok()
    return fw.source()
