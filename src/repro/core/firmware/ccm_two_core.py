"""Two-core CCM firmware (paper sections IV.A/IV.D, Table II "2 cores").

CCM splits across a CBC-MAC core and a CTR core; the MAC crosses the
inter-core shift register to be encrypted by the CTR core (the use case
the paper gives for the inter-core ports).  Steady state is limited by
the CBC-MAC core: T = 55 cycles/block for 128-bit keys.

FIFO layouts (communication controller):

- MAC core:  ``B0 | AAD blocks | [encrypt: data blocks]``
  (on decrypt the plaintext arrives over the inter-core port from the
  CTR core instead).
- CTR core:  ``A1 | data blocks | A0 | [decrypt: tag block]``.

``s1`` = AAD block count (excluding B0), ``s0`` = data block count.
"""

from __future__ import annotations

from repro.core.firmware.builder import FW
from repro.core.params import Direction
from repro.unit.isa import CuOp


def _chain_fifo_blocks(fw: FW, counter: str, prefix: str) -> None:
    """CBC-chain `counter` blocks read from the input FIFO (lookahead)."""
    fw.raw(f"    COMPARE {counter}, 0")
    fw.raw(f"    JUMP   Z, {prefix}_done")
    fw.pred(CuOp.LOAD, 1, note="chain block (overlaps AES)")
    fw.label(f"{prefix}_loop")
    fw.raw(f"    SUB    {counter}, 1")
    fw.raw(f"    JUMP   Z, {prefix}_last")
    fw.fin_pre(CuOp.FAES, 3, CuOp.XOR, 1, 3, note="chain")
    fw.pred(CuOp.SAES, 3)
    fw.pred(CuOp.LOAD, 1, note="lookahead")
    fw.raw(f"    JUMP   {prefix}_loop")
    fw.label(f"{prefix}_last")
    fw.fin_pre(CuOp.FAES, 3, CuOp.XOR, 1, 3, note="chain (last)")
    fw.pred(CuOp.SAES, 3)
    fw.label(f"{prefix}_done")


def build_ccm_mac_core(direction: Direction) -> str:
    """Firmware for the CBC-MAC half of a two-core CCM task."""
    dec = direction is Direction.DECRYPT
    fw = FW(f"CCM two-core MAC role ({'decrypt' if dec else 'encrypt'})")
    fw.read_params()

    fw.pred(CuOp.LOAD, 3, note="B0")
    fw.pred(CuOp.SAES, 3, note="chain = E(B0)")
    _chain_fifo_blocks(fw, "s1", "hdr")

    if dec:
        # Plaintext arrives from the CTR core over the inter-core port.
        fw.raw("    COMPARE s0, 0")
        fw.raw("    JUMP   Z, data_done")
        fw.label("data_loop")
        fw.fin_pre(CuOp.FAES, 3, CuOp.ICRECV, 1, note="pt from CTR core")
        fw.pred(CuOp.XOR, 1, 3, note="mac ^= pt")
        fw.pred(CuOp.SAES, 3)
        fw.raw("    SUB    s0, 1")
        fw.raw("    JUMP   NZ, data_loop")
        fw.label("data_done")
    else:
        _chain_fifo_blocks(fw, "s0", "data")

    fw.fin(CuOp.FAES, 3, note="final MAC")
    fw.pred(CuOp.ICSEND, 3, note="MAC -> CTR core")
    fw.result_ok()
    return fw.source()


def build_ccm_ctr_core(direction: Direction) -> str:
    """Firmware for the CTR half of a two-core CCM task."""
    dec = direction is Direction.DECRYPT
    fw = FW(f"CCM two-core CTR role ({'decrypt' if dec else 'encrypt'})")
    fw.read_params()

    fw.pred(CuOp.LOAD, 0, note="A1")
    fw.raw("    COMPARE s0, 0")
    fw.raw("    JUMP   Z, tag_phase")
    fw.pred(CuOp.SAES, 0, note="ctr_1")
    fw.pred(CuOp.INC, 0, 0)
    fw.pred(CuOp.LOAD, 1, note="data_1")
    fw.raw("    COMPARE s0, 1")
    fw.raw("    JUMP   Z, last_prep")
    fw.raw("    SUB    s0, 1")

    fw.label("main_loop")
    fw.fin_pre(CuOp.FAES, 2, CuOp.SAES, 0)
    fw.pred(CuOp.XOR, 2, 1, note="out = ks ^ in")
    fw.pred(CuOp.STORE, 1)
    if dec:
        fw.pred(CuOp.ICSEND, 1, note="pt -> MAC core")
    fw.pred(CuOp.INC, 0, 0)
    fw.pred(CuOp.LOAD, 1, note="next block")
    fw.raw("    SUB    s0, 1")
    fw.raw("    JUMP   NZ, main_loop")

    fw.label("last_prep")
    fw.set_final_mask()
    fw.fin(CuOp.FAES, 2, note="final keystream")
    fw.pred(CuOp.XOR, 2, 1, note="masked final block")
    fw.pred(CuOp.STORE, 1)
    if dec:
        fw.pred(CuOp.ICSEND, 1, note="final pt -> MAC core")
    fw.set_full_mask()

    fw.label("tag_phase")
    fw.pred(CuOp.LOAD, 1, note="A0")
    fw.pred(CuOp.SAES, 1, note="S0 = E(A0)")
    fw.fin(CuOp.FAES, 2, note="S0 -> @2")
    fw.pred(CuOp.ICRECV, 3, note="MAC from MAC core")
    fw.set_tag_mask()
    fw.pred(CuOp.XOR, 3, 2, note="tag = (MAC ^ S0) & mask")
    if dec:
        fw.pred(CuOp.LOAD, 1, note="received tag")
        fw.pred(CuOp.EQU, 1, 2)
        fw.check_equ_and_finish("auth_fail")
    else:
        fw.pred(CuOp.STORE, 2, note="emit tag")
        fw.result_ok()
    return fw.source()
