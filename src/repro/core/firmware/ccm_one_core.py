"""CCM on a single core (paper section IV.D, Table II "1 core").

Input-FIFO layout (communication controller formatting):

    B0 | formatted AAD blocks | A1 (first counter) | data blocks (padded)
    | A0 (tag counter) | [decrypt: tag block]

The single AES core serialises the CTR and CBC-MAC halves, so the
steady-state encrypt loop period is T_CTR + T_CBC = 104 cycles for
128-bit keys.  Decryption chains two XORs (ct->pt, then pt into the MAC)
and emerges at 110 cycles — the paper only reports encryption numbers.

Header count register ``s1`` holds the number of formatted AAD blocks
(excluding B0); ``s0`` holds the data block count.
"""

from __future__ import annotations

from repro.core.firmware.builder import FW
from repro.core.params import Direction
from repro.unit.isa import CuOp


def build_ccm_one_core(direction: Direction) -> str:
    """Generate single-core CCM encrypt/decrypt firmware."""
    dec = direction is Direction.DECRYPT
    fw = FW(f"CCM single-core {'decrypt' if dec else 'encrypt'} firmware")
    fw.read_params()

    # --- CBC-MAC over B0 and the AAD ---------------------------------------
    fw.pred(CuOp.LOAD, 3, note="B0")
    fw.pred(CuOp.SAES, 3, note="chain = E(B0)")
    fw.raw("    COMPARE s1, 0")
    fw.raw("    JUMP   Z, aad_done")
    fw.pred(CuOp.LOAD, 1, note="AAD block (overlaps AES)")
    fw.label("aad_loop")
    fw.raw("    SUB    s1, 1")
    fw.raw("    JUMP   Z, aad_last")
    fw.fin_pre(CuOp.FAES, 3, CuOp.XOR, 1, 3, note="AAD chain")
    fw.pred(CuOp.SAES, 3)
    fw.pred(CuOp.LOAD, 1, note="lookahead AAD")
    fw.raw("    JUMP   aad_loop")
    fw.label("aad_last")
    fw.fin_pre(CuOp.FAES, 3, CuOp.XOR, 1, 3, note="AAD chain (last)")
    fw.pred(CuOp.SAES, 3)
    fw.label("aad_done")
    fw.fin(CuOp.FAES, 3, note="MAC(B0 + AAD)")

    # --- data loop --------------------------------------------------------
    fw.pred(CuOp.LOAD, 0, note="A1 (first data counter)")
    fw.raw("    COMPARE s0, 0")
    fw.raw("    JUMP   Z, tag_phase")
    fw.pred(CuOp.SAES, 0, note="ctr_1")
    fw.pred(CuOp.LOAD, 1, note="data_1")
    fw.raw("    COMPARE s0, 1")
    fw.raw("    JUMP   Z, last_block")
    fw.raw("    SUB    s0, 1")

    fw.label("main_loop")
    if dec:
        fw.fin_pre(CuOp.FAES, 2, CuOp.XOR, 2, 1, note="pt = ks ^ ct")
        fw.pred(CuOp.XOR, 1, 3, note="mac ^= pt")
        fw.pred(CuOp.SAES, 3, note="E(mac)")
        fw.pred(CuOp.STORE, 1, note="emit pt")
    else:
        fw.fin_pre(CuOp.FAES, 2, CuOp.XOR, 1, 3, note="mac ^= pt")
        fw.pred(CuOp.SAES, 3, note="E(mac)")
        fw.pred(CuOp.XOR, 1, 2, note="ct = pt ^ ks")
        fw.pred(CuOp.STORE, 2, note="emit ct")
    fw.pred(CuOp.INC, 0, 0)
    fw.pred(CuOp.LOAD, 1, note="next data block")
    fw.fin_pre(CuOp.FAES, 3, CuOp.SAES, 0, note="mac done; next ctr")
    fw.raw("    SUB    s0, 1")
    fw.raw("    JUMP   NZ, main_loop")

    # --- final (masked) data block -----------------------------------------
    fw.label("last_block")
    if dec:
        fw.set_final_mask()
        fw.fin_pre(CuOp.FAES, 2, CuOp.XOR, 2, 1, note="masked final pt")
        fw.set_full_mask()
        fw.pred(CuOp.XOR, 1, 3, note="mac ^= pt (full)")
        fw.pred(CuOp.SAES, 3)
        fw.pred(CuOp.STORE, 1)
    else:
        fw.fin_pre(CuOp.FAES, 2, CuOp.XOR, 1, 3, note="mac ^= pt (full)")
        fw.pred(CuOp.SAES, 3)
        fw.set_final_mask()
        fw.pred(CuOp.XOR, 1, 2, note="masked final ct")
        fw.pred(CuOp.STORE, 2)
        fw.set_full_mask()
    fw.fin(CuOp.FAES, 3, note="final MAC")

    # --- tag phase -----------------------------------------------------------
    fw.label("tag_phase")
    fw.pred(CuOp.LOAD, 1, note="A0")
    fw.pred(CuOp.SAES, 1, note="S0 = E(A0)")
    fw.fin(CuOp.FAES, 2, note="S0 -> @2")
    fw.set_tag_mask()
    fw.pred(CuOp.XOR, 3, 2, note="tag = (MAC ^ S0) & mask")
    if dec:
        fw.pred(CuOp.LOAD, 1, note="received tag")
        fw.pred(CuOp.EQU, 1, 2)
        fw.check_equ_and_finish("auth_fail")
    else:
        fw.pred(CuOp.STORE, 2, note="emit tag")
        fw.result_ok()
    return fw.source()
