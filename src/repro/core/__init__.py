"""The Cryptographic Core (paper section IV, Fig. 2).

A core bundles: input/output FIFOs (512 x 32 bits each), the
reconfigurable Cryptographic Unit, a round-key cache, the inter-core
shift register ports, and an 8-bit controller running the mode
firmware.  Cores are instantiated and orchestrated by
:mod:`repro.mccp`.
"""

from repro.core.key_cache import KeyCache
from repro.core.params import Algorithm, CcmRole, Direction, TaskParams
from repro.core.crypto_core import CryptoCore, CoreResult
from repro.core.firmware import FIRMWARE_LIBRARY, firmware_for

__all__ = [
    "KeyCache",
    "Algorithm",
    "CcmRole",
    "Direction",
    "TaskParams",
    "CryptoCore",
    "CoreResult",
    "FIRMWARE_LIBRARY",
    "firmware_for",
]
