"""Task parameters a core receives from the Task Scheduler.

Section VI.B: "the Task Scheduler ... sends channel and packet
parameters to the core (including the algorithm ID, the authenticated
only field size, the plaintext field size and the tag length for
authenticated channel)".  :class:`TaskParams` is that parameter block;
it is exposed to firmware through the controller's input ports.

All sizes are in 128-bit blocks because the cores only ever see
formatted, padded data (the communication controller does the byte-level
formatting); the two 16-bit masks carry the partial-block information
the firmware needs for the final data block and the truncated tag.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import FirmwareError
from repro.unit.cores.xor_core import mask_for_bytes


class Algorithm(enum.IntEnum):
    """Algorithm IDs carried by OPEN (paper section III.B)."""

    CTR = 0x01
    CBC_MAC = 0x02
    CCM = 0x03
    GCM = 0x04
    WHIRLPOOL = 0x05


class Direction(enum.IntEnum):
    """Packet direction: ENCRYPT or DECRYPT instruction."""

    ENCRYPT = 0
    DECRYPT = 1


class CcmRole(enum.IntEnum):
    """Role of a core in a CCM task (section IV.D)."""

    SINGLE = 0     # whole CCM on one core
    MAC = 1        # CBC-MAC half of a two-core CCM
    CTR = 2        # CTR half of a two-core CCM


#: Port numbers of the parameter registers (controller INPUT space).
PORT_ALGORITHM = 0x10
PORT_KEY_SIZE = 0x11
PORT_AAD_BLOCKS = 0x12
PORT_DATA_BLOCKS = 0x13
PORT_TAG_LENGTH = 0x14
PORT_FLAGS = 0x15
PORT_FINAL_MASK_LO = 0x16
PORT_FINAL_MASK_HI = 0x17
PORT_TAG_MASK_LO = 0x18
PORT_TAG_MASK_HI = 0x19

FLAG_DECRYPT = 0x01
FLAG_ROLE_MAC = 0x02
FLAG_ROLE_CTR = 0x04


@dataclass(frozen=True)
class TaskParams:
    """One packet-processing task, as the firmware sees it."""

    algorithm: Algorithm
    key_bits: int = 128
    aad_blocks: int = 0
    data_blocks: int = 0
    tag_length: int = 16
    direction: Direction = Direction.ENCRYPT
    role: CcmRole = CcmRole.SINGLE
    #: Bytes valid in the final data block (1..16; 16 = full block).
    final_block_bytes: int = 16

    def __post_init__(self) -> None:
        if self.key_bits not in (128, 192, 256):
            raise FirmwareError(f"unsupported key size {self.key_bits}")
        if not 0 <= self.aad_blocks <= 255:
            raise FirmwareError(f"aad_blocks {self.aad_blocks} out of range")
        if not 0 <= self.data_blocks <= 255:
            raise FirmwareError(f"data_blocks {self.data_blocks} out of range")
        if not 0 <= self.tag_length <= 16:
            raise FirmwareError(f"tag_length {self.tag_length} out of range")
        if not 1 <= self.final_block_bytes <= 16:
            raise FirmwareError(
                f"final_block_bytes {self.final_block_bytes} out of range"
            )

    @property
    def final_mask(self) -> int:
        """XOR mask for the final data block."""
        return mask_for_bytes(self.final_block_bytes)

    @property
    def tag_mask(self) -> int:
        """XOR/EQU mask for the (possibly truncated) tag."""
        return mask_for_bytes(self.tag_length)

    @property
    def flags_byte(self) -> int:
        """The FLAGS parameter register value."""
        flags = 0
        if self.direction is Direction.DECRYPT:
            flags |= FLAG_DECRYPT
        if self.role is CcmRole.MAC:
            flags |= FLAG_ROLE_MAC
        elif self.role is CcmRole.CTR:
            flags |= FLAG_ROLE_CTR
        return flags

    @property
    def key_size_code(self) -> int:
        """0/1/2 for 128/192/256-bit keys (KEY_SIZE register)."""
        return {128: 0, 192: 1, 256: 2}[self.key_bits]

    def port_value(self, port: int) -> int:
        """Parameter-register read dispatch for the controller."""
        table = {
            PORT_ALGORITHM: int(self.algorithm),
            PORT_KEY_SIZE: self.key_size_code,
            PORT_AAD_BLOCKS: self.aad_blocks,
            PORT_DATA_BLOCKS: self.data_blocks,
            PORT_TAG_LENGTH: self.tag_length,
            PORT_FLAGS: self.flags_byte,
            PORT_FINAL_MASK_LO: self.final_mask & 0xFF,
            PORT_FINAL_MASK_HI: (self.final_mask >> 8) & 0xFF,
            PORT_TAG_MASK_LO: self.tag_mask & 0xFF,
            PORT_TAG_MASK_HI: (self.tag_mask >> 8) & 0xFF,
        }
        try:
            return table[port]
        except KeyError as exc:
            raise FirmwareError(f"unknown parameter port {port:#04x}") from exc
