"""The Cryptographic Core (paper Fig. 2): FIFOs + controller + CU.

A core is a passive resource the Task Scheduler drives:

1. ``assign_task(params)`` — loads the right firmware into the (shared)
   instruction memory, installs the parameter block, resets the CU and
   spawns the controller process (the paper's start signal).
2. The firmware streams blocks between the FIFOs and the CU.
3. The firmware's write to the result port completes the task: the
   :class:`CoreResult` is published on the ``task_done`` event and, on
   authentication failure, the output FIFO is re-initialised before the
   master can read it (section IV.C's anti-spoofing measure).

The core also owns the key cache and the inter-core mailbox endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.firmware import firmware_for
from repro.core.firmware.builder import (
    P_CU,
    P_MASK_HI,
    P_MASK_LO,
    P_RESULT,
    P_STATUS,
    RESULT_AUTH_FAIL,
    RESULT_OK,
)
from repro.core.key_cache import KeyCache
from repro.core.params import TaskParams
from repro.errors import CoreError
from repro.isa.controller import Controller8
from repro.isa.program import Program
from repro.sim.fifo import WordFifo
from repro.sim.kernel import Event, Simulator
from repro.sim.tracing import TraceRecorder
from repro.unit.cores.io_core import IoCore
from repro.unit.timing import TimingModel
from repro.unit.unit import CryptoUnit
from repro.unit.whirlpool_unit import WhirlpoolUnit

#: Debug/loopback port used by tests.
P_DEBUG = 0x21


@dataclass(frozen=True)
class CoreResult:
    """Outcome of one packet task."""

    ok: bool
    auth_failed: bool
    start_cycle: int
    end_cycle: int

    @property
    def cycles(self) -> int:
        """Total task latency in cycles."""
        return self.end_cycle - self.start_cycle


class CryptoCore:
    """One of the MCCP's cryptographic cores."""

    def __init__(
        self,
        sim: Simulator,
        timing: TimingModel,
        index: int = 0,
        trace: Optional[TraceRecorder] = None,
        fifo_depth_words: int = 512,
    ):
        self.sim = sim
        self.timing = timing
        self.index = index
        self.name = f"core{index}"
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)

        self.in_fifo = WordFifo(sim, fifo_depth_words, f"{self.name}.in")
        self.out_fifo = WordFifo(sim, fifo_depth_words, f"{self.name}.out")
        self.io = IoCore(self.in_fifo, self.out_fifo)
        self.key_cache = KeyCache(f"{self.name}.keys")

        self.unit = CryptoUnit(
            sim,
            self.io,
            self.key_cache.round_keys,
            timing,
            trace=self.trace,
            name=f"{self.name}.cu",
        )
        #: The Whirlpool personality, swapped in by the reconfiguration
        #: manager; ``active_unit`` is whichever personality is loaded.
        self.whirlpool_unit = WhirlpoolUnit(
            sim, self.io, timing, trace=self.trace, name=f"{self.name}.wpu"
        )
        self.active_unit = self.unit

        # A placeholder program; real firmware is loaded per task.
        from repro.isa.assembler import assemble

        self.controller = Controller8(
            sim, assemble("RETURN", name="idle"), device=self, name=f"{self.name}.ctrl"
        )
        self._wire_unit(self.active_unit)

        self.params: Optional[TaskParams] = None
        self.busy = False
        self.task_done: Optional[Event] = None
        self.last_result: Optional[CoreResult] = None
        self._task_start_cycle = 0
        #: Completed-task counter.
        self.tasks_completed = 0
        self.auth_failures = 0

    # -- wiring ---------------------------------------------------------------

    def _wire_unit(self, unit) -> None:
        # The CU's done wire *is* the controller's HALT wake line.
        unit.done = self.controller.wake

    def use_whirlpool_personality(self, enabled: bool = True) -> None:
        """Swap the CU region's personality (partial reconfiguration)."""
        if self.busy:
            raise CoreError(f"{self.name}: cannot reconfigure while busy")
        self.active_unit = self.whirlpool_unit if enabled else self.unit
        self._wire_unit(self.active_unit)

    # -- PortDevice interface --------------------------------------------------

    def read_port(self, port: int) -> int:
        """Controller INPUT dispatch."""
        if port == P_STATUS:
            return self.active_unit.status_byte()
        if 0x10 <= port <= 0x1F:
            if self.params is None:
                raise CoreError(f"{self.name}: parameter read with no task")
            return self.params.port_value(port)
        return 0

    def write_port(self, port: int, value: int) -> None:
        """Controller OUTPUT dispatch."""
        if port == P_CU:
            self.active_unit.start(value)
        elif port == P_MASK_LO:
            self.active_unit.set_mask_low(value)
        elif port == P_MASK_HI:
            self.active_unit.set_mask_high(value)
        elif port == P_RESULT:
            self._finish_task(value)
        elif port == P_DEBUG:
            self.trace.record(self.sim.now, self.name, "debug", value=value)
        else:
            raise CoreError(f"{self.name}: write to unmapped port {port:#04x}")

    # -- task lifecycle ----------------------------------------------------------

    def assign_task(self, params: TaskParams, program: Optional[Program] = None) -> Event:
        """Start processing one packet; returns the completion event.

        The caller (Task Scheduler) must have installed the round keys
        in the key cache first (for AES algorithms).
        """
        if self.busy:
            raise CoreError(f"{self.name}: task assigned while busy")
        self.params = params
        self.busy = True
        self._task_start_cycle = self.sim.now
        self.task_done = self.sim.event(f"{self.name}.task_done")
        self.active_unit.reset_for_packet()

        if program is None:
            program = firmware_for(params.algorithm, params.direction, params.role)
        self.controller.load_program(program)
        self.controller._stopped = False
        self.controller.stack.clear()
        self.controller.wake.clear_latch()
        self.trace.record(
            self.sim.now,
            self.name,
            "task_start",
            algorithm=params.algorithm.name,
            direction=params.direction.name,
            blocks=params.data_blocks,
        )
        self.sim.add_process(self.controller.run(), name=f"{self.name}.fw")
        return self.task_done

    def _finish_task(self, result_code: int) -> None:
        if not self.busy or self.task_done is None:
            raise CoreError(f"{self.name}: result written with no task")
        unit = self.active_unit
        if unit.busy or unit._queue:
            # Firmware published its result while the CU still has tail
            # work (possible with custom programs that skip the drain
            # fence).  The task is not done — and the core must not be
            # reassignable — until the last STORE lands in the FIFO.
            unit.call_when_idle(lambda: self._finish_task(result_code))
            return
        auth_failed = result_code == RESULT_AUTH_FAIL
        if auth_failed:
            # Security: never expose unauthenticated plaintext.
            self.out_fifo.purge()
            self.auth_failures += 1
        elif result_code != RESULT_OK:
            raise CoreError(
                f"{self.name}: unknown result code {result_code:#04x}"
            )
        result = CoreResult(
            ok=not auth_failed,
            auth_failed=auth_failed,
            start_cycle=self._task_start_cycle,
            end_cycle=self.sim.now,
        )
        self.last_result = result
        self.busy = False
        self.tasks_completed += 1
        self.controller.stop()
        self.trace.record(
            self.sim.now, self.name, "task_done", ok=result.ok, cycles=result.cycles
        )
        self.task_done.trigger(result)
