"""Deterministic fault injection and the recovery machinery it proves.

The MCCP device never lets one bad packet take down a channel — auth
failures come back as an ``AUTH_FAIL`` flag through ``RETRIEVE_DATA``,
not a crash.  This package extends that stance to the software stack
above the device model:

- :mod:`repro.resilience.faults` — a seeded :class:`FaultPlan` injects
  faults at named sites (worker crash/hang, poisoned batch call, slow
  sweep, core stall, key-memory read error).  Decisions are pure
  functions of ``(seed, site, key, attempt)`` so a chaos run replays
  identically on every backend and host.
- :mod:`repro.resilience.policy` — :class:`ResiliencePolicy` bounds
  what recovery may cost: retries, backoff, watchdog budget, whether
  degradation (``process`` → ``thread`` → ``inline``) is allowed.
- :mod:`repro.resilience.breaker` — a per-backend
  :class:`CircuitBreaker` (CLOSED / OPEN / HALF_OPEN): repeated span
  failures trip it and new spans route straight to the fallback,
  with span-counted cooldown and half-open probes so a transient
  sickness recovers — unlike sticky chain degradation.
- :mod:`repro.resilience.stats` — process-wide counters (retries,
  watchdog fires, degradations, quarantines, dead letters) that
  ``run_workload`` snapshots into :class:`WorkloadReport` and the
  bench/sweep artifacts record alongside backend metadata.

The invariant everything hangs on: under any injected fault plan,
surviving packets are byte-identical to the fault-free run and
per-channel completion order is preserved.  ``chaos_sweep`` asserts it
over a site × rate × backend grid.
"""

from repro.resilience.faults import (
    SITES,
    FaultDirective,
    FaultPlan,
    FaultPoint,
    ScriptedFault,
    active_plan,
    injected_faults,
    plan_from_spec,
    set_fault_plan,
)
from repro.resilience.breaker import BreakerPolicy, BreakerState, CircuitBreaker
from repro.resilience.policy import DEFAULT_POLICY, ResiliencePolicy
from repro.resilience import stats

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "SITES",
    "FaultDirective",
    "FaultPlan",
    "FaultPoint",
    "ScriptedFault",
    "active_plan",
    "injected_faults",
    "plan_from_spec",
    "set_fault_plan",
    "DEFAULT_POLICY",
    "ResiliencePolicy",
    "stats",
]
