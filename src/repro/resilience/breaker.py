"""Circuit breaker for sick execution backends.

PR 6's recovery chain is *reactive*: every dispatch on a failing
backend still pays retries and watchdog budgets before degrading, and
the sticky ``process -> thread -> inline`` degradation never comes
back.  The breaker is the *proactive* complement: repeated
infrastructure failures (worker crashes, watchdog fires — anything the
retry loop sees as a :class:`repro.errors.BackendError`) trip it, and
while it is OPEN new spans are routed straight to the backend's
fallback without paying the failure tax.  After a cooldown the breaker
goes HALF_OPEN and lets probe spans through to the sick backend; enough
consecutive probe successes close it again — so a transient sickness
(a briefly overloaded pool) heals, unlike chain degradation.

The two mechanisms compose: the breaker decides *where a span starts*,
the retry/degradation machinery still owns what happens when a span
fails wherever it runs.

Determinism: cooldown is counted in *spans routed around*, not
wall-clock seconds, so a workload replay trips, bypasses and recovers
at exactly the same dispatch indices every run.  State transitions are
lock-guarded (thread backends collect spans concurrently).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass

from repro.resilience import stats as resilience_stats

__all__ = ["BreakerState", "BreakerPolicy", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """The classic three-state breaker lifecycle."""

    #: Healthy: spans run on the owning backend.
    CLOSED = "closed"
    #: Tripped: spans are routed to the fallback without trying.
    OPEN = "open"
    #: Probing: spans run on the owning backend again; one failure
    #: re-opens, enough successes close.
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Budget knobs for one :class:`CircuitBreaker`."""

    #: Consecutive span-level infrastructure failures that trip the
    #: breaker from CLOSED to OPEN.
    fail_threshold: int = 3
    #: Spans routed around the sick backend before the breaker turns
    #: HALF_OPEN and probes it again (span-counted, deterministic).
    cooldown_spans: int = 8
    #: Consecutive successful probe spans needed to close again.
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.fail_threshold < 1:
            raise ValueError(
                f"fail_threshold must be >= 1, got {self.fail_threshold}"
            )
        if self.cooldown_spans < 1:
            raise ValueError(
                f"cooldown_spans must be >= 1, got {self.cooldown_spans}"
            )
        if self.probe_successes < 1:
            raise ValueError(
                f"probe_successes must be >= 1, got {self.probe_successes}"
            )


class CircuitBreaker:
    """Mutable breaker state for one backend instance."""

    def __init__(self, policy: BreakerPolicy):
        self.policy = policy
        self.state = BreakerState.CLOSED
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._bypassed_spans = 0
        self._probe_successes = 0
        #: Lifetime statistics (also mirrored into the process-wide
        #: resilience counters for ``WorkloadReport`` deltas).
        self.trips = 0
        self.bypasses = 0
        self.recoveries = 0

    def should_bypass(self) -> bool:
        """Whether the next span must start on the fallback instead.

        Called once per submitted span.  While OPEN it counts the span
        against the cooldown and answers True; the span that exhausts
        the cooldown flips to HALF_OPEN and runs as a probe (False).
        """
        with self._lock:
            if self.state is BreakerState.OPEN:
                if self._bypassed_spans >= self.policy.cooldown_spans:
                    self.state = BreakerState.HALF_OPEN
                    self._probe_successes = 0
                    return False
                self._bypassed_spans += 1
                self.bypasses += 1
                resilience_stats.record_breaker_bypass()
                return True
            return False

    def record_success(self) -> None:
        """A span completed on the owning backend without infra failure."""
        with self._lock:
            self._consecutive_failures = 0
            if self.state is BreakerState.HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.policy.probe_successes:
                    self.state = BreakerState.CLOSED
                    self.recoveries += 1
                    resilience_stats.record_breaker_recovery()

    def record_failure(self) -> None:
        """A span on the owning backend hit an infrastructure failure."""
        with self._lock:
            if self.state is BreakerState.HALF_OPEN:
                # The probe failed: straight back to OPEN for another
                # full cooldown.
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self.state is BreakerState.CLOSED
                and self._consecutive_failures >= self.policy.fail_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self.state = BreakerState.OPEN
        self._bypassed_spans = 0
        self._consecutive_failures = 0
        self._probe_successes = 0
        self.trips += 1
        resilience_stats.record_breaker_trip()

    def reset(self) -> None:
        """Back to pristine CLOSED (test/bench isolation)."""
        with self._lock:
            self.state = BreakerState.CLOSED
            self._consecutive_failures = 0
            self._bypassed_spans = 0
            self._probe_successes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CircuitBreaker {self.state.value} trips={self.trips} "
            f"bypasses={self.bypasses} recoveries={self.recoveries}>"
        )
