"""Seeded, deterministic fault plans and their injection sites.

A :class:`FaultPlan` decides — purely from ``(seed, site, key,
attempt)`` — whether a named fault fires at a given site, the same way
the PR 5 rx generator derives loss/corruption from ``(seed, channel,
sequence)``.  Rate-based decisions hash the tuple through SHA-256 and
compare against the configured rate; scripted faults pin an exact
``(site, channel, sequence)`` and fire for their first ``times``
attempts at each execution level.  Either way the decision is
independent of wall clock, host, and backend, so a chaos run replays
identically everywhere.

Sites
-----
``worker_crash``
    A backend pool worker dies mid-span.  In a real process-pool child
    the worker hard-exits (producing a genuine ``BrokenProcessPool``);
    on a thread/narrow path it raises :class:`WorkerCrashError`.  The
    inline backend has no worker to crash, so the site is inert there —
    inline is the safe harbour the degradation chain ends in.
``worker_hang``
    The span sleeps :attr:`FaultPlan.hang_seconds`, long enough to trip
    a configured watchdog.
``batch_error``
    A packet is poisoned: the batch engine raises
    :class:`InjectedFault` whenever the packet's nonce appears in a
    sweep, which the isolate path bisects down to the single packet.
``slow_sweep``
    The span sleeps :attr:`FaultPlan.slow_seconds` — slow, not broken;
    recovery must not fire.
``core_stall``
    The cycle-accurate core path stalls :attr:`FaultPlan.stall_cycles`
    simulated cycles before executing a job.
``key_error``
    ``Mccp.dispatch_jobs``'s key-memory read raises; the scheduler
    retries and, on exhaustion, dead-letters the whole batch.

Worker-side delivery: the batch layer attaches a :class:`FaultPoint`
to each shard call; the executing backend stamps the current attempt
number and its own name into a :class:`FaultDirective`, which ships
the (picklable) plan into the worker and applies the worker-level
sites there.  Keying decisions by attempt is what makes retry
meaningful — a transient fault re-rolls on the next attempt instead of
re-firing forever.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.errors import InjectedFault, WorkerCrashError
from repro.resilience import stats

#: Every named injection site, in stack order (backend -> batch ->
#: scheduler -> core).
SITES = (
    "worker_crash",
    "worker_hang",
    "batch_error",
    "slow_sweep",
    "core_stall",
    "key_error",
)

#: Exit code an injected crash kills a pool worker with (arbitrary,
#: but recognisable in a post-mortem).
CRASH_EXIT_CODE = 113

#: True only inside a repro-exec process-pool worker (set by the pool
#: initializer).  An injected crash hard-exits there — producing a
#: genuine BrokenProcessPool for the parent to recover from — and
#: raises WorkerCrashError anywhere else, so it can never kill the
#: test runner or an outer sweep worker.
_IS_EXEC_WORKER = False


def mark_exec_worker() -> None:
    """Flag this process as a repro-exec pool worker (initializer hook)."""
    global _IS_EXEC_WORKER
    _IS_EXEC_WORKER = True


def _key_text(key: object) -> str:
    """Stable text form of a decision key (ints, bytes, strings)."""
    parts = key if isinstance(key, tuple) else (key,)
    return ":".join(
        part.hex() if isinstance(part, (bytes, bytearray)) else str(part)
        for part in parts
    )


@dataclass(frozen=True)
class ScriptedFault:
    """Pin a fault to an exact site and, optionally, packet identity.

    ``channel``/``sequence`` of ``None`` are wildcards; ``times``
    bounds how many *attempts* fire at each execution level (a
    persistent fault uses a large ``times`` and is only survivable
    because the degradation chain ends on inline, where worker faults
    are inert).
    """

    site: str
    channel: Optional[int] = None
    sequence: Optional[int] = None
    times: int = 1

    def matches(self, key: object) -> bool:
        if self.channel is None and self.sequence is None:
            return True
        if (
            isinstance(key, tuple)
            and len(key) == 2
            and all(isinstance(part, int) for part in key)
        ):
            channel, sequence = key
            return (self.channel is None or self.channel == channel) and (
                self.sequence is None or self.sequence == sequence
            )
        return False


@dataclass
class FaultPlan:
    """A deterministic schedule of injected faults.

    ``rates`` maps site name to a probability in ``[0, 1]``; decisions
    hash ``(seed, site, key, attempt)`` so they are stable across
    backends, processes and replays.  ``scripted`` entries take
    precedence over rates for their site.  The plan is picklable —
    backends ship it into process-pool workers inside each
    :class:`FaultDirective`.
    """

    seed: int = 0
    rates: Dict[str, float] = field(default_factory=dict)
    scripted: Tuple[ScriptedFault, ...] = ()
    #: How long an injected hang sleeps (must exceed the watchdog
    #: budget for the hang to be observable as a timeout).
    hang_seconds: float = 0.4
    #: How long a slow sweep sleeps (small: slow, not broken).
    slow_seconds: float = 0.002
    #: Simulated cycles an injected core stall costs.
    stall_cycles: int = 4096
    #: Nonces marked poisoned by the scheduler; membership is what the
    #: batch engine actually checks, so the decision crosses process
    #: boundaries with the plan.
    poisoned: Set[bytes] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.scripted = tuple(self.scripted)
        for entry in self.scripted:
            if entry.site not in SITES:
                raise ValueError(
                    f"unknown fault site {entry.site!r}; valid: {', '.join(SITES)}"
                )
        for site, rate in self.rates.items():
            if site not in SITES:
                raise ValueError(
                    f"unknown fault site {site!r}; valid: {', '.join(SITES)}"
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate for {site!r} must be within [0, 1]")
        if self.hang_seconds < 0 or self.slow_seconds < 0 or self.stall_cycles < 0:
            raise ValueError("fault durations must be >= 0")

    def decide(self, site: str, key: object, attempt: int = 0) -> bool:
        """Does *site* fire for *key* on this *attempt*?  Pure function."""
        for entry in self.scripted:
            if entry.site == site and entry.matches(key):
                return attempt < entry.times
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        text = f"{self.seed}|{site}|{_key_text(key)}|{attempt}"
        digest = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < rate

    def poison(self, nonce: bytes) -> None:
        """Mark a packet (by nonce) as a batch-call error."""
        self.poisoned.add(bytes(nonce))

    def is_poisoned(self, nonce: bytes) -> bool:
        return bytes(nonce) in self.poisoned


@dataclass(frozen=True)
class FaultPoint:
    """Parent-side marker attached to one backend call.

    The backend cannot know the attempt number (or which link of the
    degradation chain is executing) until run time, so the batch layer
    attaches the plan and span key here and the backend stamps the
    rest into a :class:`FaultDirective` at submission.
    """

    plan: FaultPlan
    key: tuple

    def directive(self, attempt: int, backend_name: str) -> "FaultDirective":
        return FaultDirective(self.plan, self.key, attempt, backend_name)


@dataclass(frozen=True)
class FaultDirective:
    """Everything a worker needs to apply worker-level faults locally."""

    plan: FaultPlan
    key: tuple
    attempt: int
    backend_name: str

    def apply(self) -> None:
        """Fire whichever worker-level sites the plan selects (if any)."""
        plan, key, attempt = self.plan, self.key, self.attempt
        if self.backend_name != "inline" and plan.decide(
            "worker_crash", key, attempt
        ):
            stats.record_fault()
            if _IS_EXEC_WORKER:
                os._exit(CRASH_EXIT_CODE)
            raise WorkerCrashError(
                f"injected worker crash (span {_key_text(key)}, "
                f"attempt {attempt} on {self.backend_name})"
            )
        if plan.decide("worker_hang", key, attempt):
            stats.record_fault()
            time.sleep(plan.hang_seconds)
        elif plan.decide("slow_sweep", key, attempt):
            stats.record_fault()
            time.sleep(plan.slow_seconds)


@contextmanager
def executing(directive: Optional[FaultDirective]) -> Iterator[None]:
    """Worker-side guard around one sharded span.

    Installs the directive's plan thread-locally (so nonce-poison
    checks fire identically in shared-nothing process workers) and
    applies the worker-level sites before the span body runs.
    """
    if directive is None:
        yield
        return
    previous = getattr(_SCOPED, "plan", None)
    _SCOPED.plan = directive.plan
    try:
        directive.apply()
        yield
    finally:
        _SCOPED.plan = previous


# -- active-plan management ---------------------------------------------------

#: Sentinel: the global plan has not been initialised from REPRO_FAULTS.
_UNSET = object()

_ACTIVE: object = _UNSET
_SCOPED = threading.local()


def plan_from_spec(text: str) -> Optional[FaultPlan]:
    """Parse a ``REPRO_FAULTS`` spec into a plan (empty text = None).

    Comma-separated ``key=value`` pairs: each site name maps to a rate
    (``worker_crash=0.2,batch_error=0.1``) and ``seed=N``, ``hang=S``,
    ``slow=S``, ``stall=C`` tune the plan's knobs.
    """
    text = (text or "").strip()
    if not text:
        return None
    seed, rates = 0, {}
    knobs = {"hang": 0.4, "slow": 0.002, "stall": 4096}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        name = name.strip().lower()
        if name not in ("seed", "stall", "hang", "slow") and name not in SITES:
            raise ValueError(
                f"unknown REPRO_FAULTS key {name!r} (in token {part!r}); "
                f"valid sites: {', '.join(SITES)}; "
                "valid knobs: seed, hang, slow, stall"
            )
        try:
            if name in ("seed", "stall"):
                knobs[name] = int(value)
            elif name in ("hang", "slow"):
                knobs[name] = float(value)
            else:
                rates[name] = float(value)
        except ValueError:
            raise ValueError(
                f"bad REPRO_FAULTS value {value!r} in token {part!r}; "
                f"sites ({', '.join(SITES)}) and hang/slow take a float, "
                "seed/stall take an int — e.g. "
                "'worker_crash=0.2,batch_error=0.1,seed=7'"
            ) from None
        seed = knobs.get("seed", 0)
    return FaultPlan(
        seed=seed,
        rates=rates,
        hang_seconds=knobs["hang"],
        slow_seconds=knobs["slow"],
        stall_cycles=knobs["stall"],
    )


def active_plan() -> Optional[FaultPlan]:
    """The plan in effect on this thread (None = no fault injection).

    A worker-scoped plan (installed by :func:`executing`) wins over the
    process-wide plan; the process-wide plan is lazily seeded from
    ``REPRO_FAULTS`` the first time anything asks.
    """
    scoped = getattr(_SCOPED, "plan", None)
    if scoped is not None:
        return scoped
    global _ACTIVE
    if _ACTIVE is _UNSET:
        _ACTIVE = plan_from_spec(os.environ.get("REPRO_FAULTS", ""))
    return _ACTIVE  # type: ignore[return-value]


def set_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install the process-wide plan; returns the previous one.

    ``None`` uninstalls it, so the next :func:`active_plan` call
    re-reads ``REPRO_FAULTS`` (mirrors ``set_default_backend``).
    """
    global _ACTIVE
    previous = None if _ACTIVE is _UNSET else _ACTIVE
    _ACTIVE = _UNSET if plan is None else plan
    return previous  # type: ignore[return-value]


@contextmanager
def injected_faults(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Scope a plan to a ``with`` block, restoring the prior state."""
    global _ACTIVE
    saved = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = saved


__all__ = [
    "SITES",
    "CRASH_EXIT_CODE",
    "ScriptedFault",
    "FaultPlan",
    "FaultPoint",
    "FaultDirective",
    "executing",
    "mark_exec_worker",
    "plan_from_spec",
    "active_plan",
    "set_fault_plan",
    "injected_faults",
]
