"""Recovery budgets for :meth:`ExecutionBackend.run`.

A policy bounds what self-healing may cost: how many times a failed
span is retried, how backoff grows, how long a span may run before the
watchdog expires it, and whether the backend may degrade down the
``process`` → ``thread`` → ``inline`` chain.  The default policy keeps
today's behaviour for healthy runs — no watchdog, backoff only ever
sleeps after a genuine infrastructure failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.resilience.breaker import BreakerPolicy


@dataclass(frozen=True)
class ResiliencePolicy:
    """Bounds on the recovery machinery for one backend run."""

    #: Retries per execution level after the first attempt fails with
    #: a :class:`BackendError` (crypto errors never retry).
    max_retries: int = 2
    #: First backoff sleep in seconds; doubles per attempt.  Zero
    #: disables sleeping entirely (tests, chaos sweeps).
    backoff_base: float = 0.005
    #: Backoff ceiling in seconds.
    backoff_cap: float = 0.1
    #: Wall-clock budget for one span on a pooled backend (None = no
    #: watchdog).  Inline execution cannot be preempted, so the
    #: watchdog only applies where there is a pool to abandon.
    watchdog_seconds: Optional[float] = None
    #: Whether retry exhaustion may fall through to the backend's
    #: fallback (process → thread → inline) instead of raising.
    degrade: bool = True
    #: Circuit-breaker budget (None = no breaker): repeated span
    #: failures trip it and new spans start on the fallback until
    #: half-open probes succeed — the proactive, *recoverable*
    #: complement to sticky chain degradation
    #: (:mod:`repro.resilience.breaker`).
    breaker: Optional[BreakerPolicy] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be >= 0")
        if self.watchdog_seconds is not None and self.watchdog_seconds <= 0:
            raise ValueError("watchdog_seconds must be positive (or None)")

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt + 1`` (exponential)."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2**attempt))


#: Module default: retries allowed, no watchdog, degradation on.
DEFAULT_POLICY = ResiliencePolicy()

__all__ = ["ResiliencePolicy", "DEFAULT_POLICY"]
