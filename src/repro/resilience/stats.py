"""Process-wide resilience counters.

Recovery happens deep inside the backend/batch/scheduler layers, far
from the :class:`WorkloadReport` the caller sees, so the machinery
records events here and ``run_workload`` turns a before/after snapshot
into per-run counters.  Counters are cumulative for the process (like
the channel statistics the platform already snapshots) and guarded by
a lock because thread backends retry concurrently.

Process-pool caveat: events inside a shared-nothing worker mutate the
*worker's* counters and are lost with it.  The parent-side machinery
still observes every recovery (the retry, watchdog fire, degradation
and quarantine all happen in the parent), so only the best-effort
``faults_injected`` tally undercounts worker-side faults.
"""

from __future__ import annotations

import threading
from typing import Dict, List

_LOCK = threading.Lock()

_COUNTERS = {
    "retries": 0,
    "watchdog_fires": 0,
    "degradations": 0,
    "quarantined": 0,
    "dead_lettered": 0,
    "faults_injected": 0,
    "breaker_trips": 0,
    "breaker_bypasses": 0,
    "breaker_recoveries": 0,
}

#: Degradation reasons in the order they were recorded (process-wide).
_DEGRADATION_REASONS: List[str] = []


def _bump(name: str, count: int = 1) -> None:
    with _LOCK:
        _COUNTERS[name] += count


def record_retry(count: int = 1) -> None:
    """A failed span (or key fetch) was retried."""
    _bump("retries", count)


def record_watchdog() -> None:
    """A wall-clock watchdog expired a backend span."""
    _bump("watchdog_fires")


def record_degradation(reason: str) -> None:
    """A backend degraded to its fallback; *reason* says why."""
    with _LOCK:
        _COUNTERS["degradations"] += 1
        _DEGRADATION_REASONS.append(reason)


def record_quarantine(count: int = 1) -> None:
    """A poisoned packet was bisect-isolated from its batch."""
    _bump("quarantined", count)


def record_dead_letter(count: int = 1) -> None:
    """A job was routed to a dead-letter queue."""
    _bump("dead_lettered", count)


def record_fault(count: int = 1) -> None:
    """An injected fault fired (best-effort across process workers)."""
    _bump("faults_injected", count)


def record_breaker_trip() -> None:
    """A backend circuit breaker tripped OPEN."""
    _bump("breaker_trips")


def record_breaker_bypass() -> None:
    """An OPEN breaker routed one span around its sick backend."""
    _bump("breaker_bypasses")


def record_breaker_recovery() -> None:
    """A HALF_OPEN breaker closed after successful probes."""
    _bump("breaker_recoveries")


def snapshot() -> Dict[str, object]:
    """JSON-safe copy of the counters (plus degradation reasons)."""
    with _LOCK:
        data: Dict[str, object] = dict(_COUNTERS)
        data["degradation_reasons"] = list(_DEGRADATION_REASONS)
        return data


def delta(base: Dict[str, object]) -> Dict[str, object]:
    """Counters accrued since *base* (an earlier :func:`snapshot`)."""
    now = snapshot()
    out: Dict[str, object] = {
        name: now[name] - base.get(name, 0) for name in _COUNTERS
    }
    seen = len(base.get("degradation_reasons", ()))
    out["degradation_reasons"] = list(now["degradation_reasons"])[seen:]
    return out


def reset() -> None:
    """Zero every counter (test isolation hook)."""
    with _LOCK:
        for name in _COUNTERS:
            _COUNTERS[name] = 0
        _DEGRADATION_REASONS.clear()


__all__ = [
    "record_retry",
    "record_watchdog",
    "record_degradation",
    "record_quarantine",
    "record_dead_letter",
    "record_fault",
    "record_breaker_trip",
    "record_breaker_bypass",
    "record_breaker_recovery",
    "snapshot",
    "delta",
    "reset",
]
