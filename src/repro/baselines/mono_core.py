"""A mono-core iterative accelerator baseline (paper section I).

"A classical mono-core approach either provides limited throughput or
does not allow simple management of multi-channel streams."  This
baseline is exactly one MCCP cryptographic core behind a single-entry
scheduler: same loop periods, no parallelism, channels strictly
serialised.  The multi-channel benchmarks use it to show the 4x gap
(and the latency head-of-line blocking) that motivates the MCCP.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.params import Algorithm
from repro.unit.timing import DEFAULT_TIMING, TimingModel


class MonoCoreAccelerator:
    """Analytic single-core device with MCCP-identical per-block costs."""

    def __init__(self, timing: TimingModel = DEFAULT_TIMING, clock_hz: float = 190e6):
        self.timing = timing
        self.clock_hz = clock_hz
        self._busy_until = 0
        self.packets_processed = 0

    def packet_cycles(
        self, algorithm: Algorithm, key_bits: int, data_blocks: int, aad_blocks: int = 0
    ) -> int:
        """Cycle cost of one packet (loop model + fixed overhead)."""
        overhead = 12 * self.timing.cu_chain_cycles + 2 * self.timing.saes_faes_pair(
            key_bits
        )
        if algorithm is Algorithm.GCM:
            loop = self.timing.gcm_loop(key_bits)
            aad_cost = aad_blocks * self.timing.gcm_loop(key_bits)
        elif algorithm is Algorithm.CCM:
            loop = self.timing.ccm_one_core_loop(key_bits)
            aad_cost = aad_blocks * self.timing.cbc_loop(key_bits)
        elif algorithm is Algorithm.CTR:
            loop = self.timing.gcm_loop(key_bits)
            aad_cost = 0
        elif algorithm is Algorithm.CBC_MAC:
            loop = self.timing.cbc_loop(key_bits)
            aad_cost = 0
        else:
            raise ValueError(f"unsupported algorithm {algorithm!r}")
        return overhead + aad_cost + data_blocks * loop

    def process_schedule(
        self, arrivals: List[Tuple[int, Algorithm, int, int]]
    ) -> List[Tuple[int, int]]:
        """Serve (arrival_cycle, algorithm, key_bits, data_blocks) FIFO.

        Returns (completion_cycle, latency) per packet — head-of-line
        blocking included, which is the latency story of section I.
        """
        self._busy_until = 0
        out = []
        for arrival, algorithm, key_bits, blocks in arrivals:
            start = max(arrival, self._busy_until)
            cycles = self.packet_cycles(algorithm, key_bits, blocks)
            finish = start + cycles
            self._busy_until = finish
            self.packets_processed += 1
            out.append((finish, finish - arrival))
        return out

    def throughput_mbps(
        self, algorithm: Algorithm, key_bits: int, data_blocks: int = 128
    ) -> float:
        """Steady-state single-stream throughput."""
        cycles = self.packet_cycles(algorithm, key_bits, data_blocks)
        return 128 * data_blocks * self.clock_hz / cycles / 1e6
