"""A pipelined GCM engine baseline (Lemsitzer et al. [1] style).

Section II.B: fully unrolled pipelined cores reach tens of Gbps on one
stream, but (a) cost far more area, (b) cannot run feedback modes like
CBC-MAC/CCM at full rate (the pipeline drains to one block per pass),
and (c) juggle multi-standard channels poorly.  This analytic +
functional model captures all three effects so the Table III benchmark
can show the trade-off rather than assert it.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.crypto.modes.gcm import gcm_encrypt
from repro.errors import ProtocolError


class PipelinedGcmEngine:
    """An unrolled, pipelined AES-GCM engine model."""

    #: Pipeline depth: one stage per AES round plus I/O stages.
    PIPELINE_STAGES = 12
    #: Area model after [1] (v4-FX100: 6000 slices / 30 BRAM).
    SLICES = 6000
    BRAMS = 30

    def __init__(self, clock_hz: float = 140e6):
        self.clock_hz = clock_hz

    # -- timing model -----------------------------------------------------------

    def gcm_packet_cycles(self, data_blocks: int) -> int:
        """Pipelined GCM: one block per cycle after the fill latency."""
        if data_blocks < 0:
            raise ProtocolError("negative block count")
        return self.PIPELINE_STAGES + data_blocks

    def cbc_packet_cycles(self, data_blocks: int) -> int:
        """Feedback mode on a pipelined core: the pipeline is wasted.

        Each block must traverse the whole pipeline before the next can
        enter (data dependency), so the unrolled datapath degrades to
        one block per PIPELINE_STAGES cycles — the section II.B
        argument for why CCM "makes unrolled implementations useless".
        """
        return self.PIPELINE_STAGES * max(data_blocks, 1)

    def reconfigure_stream_penalty_cycles(self) -> int:
        """Pipeline flush/refill when switching channel/standard."""
        return self.PIPELINE_STAGES

    def gcm_throughput_mbps(self, data_blocks: int = 128) -> float:
        """Single-stream GCM throughput."""
        cycles = self.gcm_packet_cycles(data_blocks)
        return 128 * data_blocks * self.clock_hz / cycles / 1e6

    def ccm_throughput_mbps(self, data_blocks: int = 128) -> float:
        """CCM-style feedback throughput (the collapse)."""
        cycles = self.cbc_packet_cycles(data_blocks) + self.gcm_packet_cycles(
            data_blocks
        )
        return 128 * data_blocks * self.clock_hz / cycles / 1e6

    def mbps_per_mhz(self, data_blocks: int = 128) -> float:
        """Normalised GCM throughput (Table III's metric)."""
        return self.gcm_throughput_mbps(data_blocks) / (self.clock_hz / 1e6)

    # -- functional model ----------------------------------------------------------

    @staticmethod
    def encrypt(key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b""):
        """Functionally identical to any correct GCM (gold model)."""
        return gcm_encrypt(key, iv, plaintext, aad)

    @staticmethod
    def cipher(key: bytes) -> AES:
        """Expose the underlying block cipher for tests."""
        return AES(key)
