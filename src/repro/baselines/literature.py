"""Table III's literature comparison data.

The table normalises throughput by clock (Mbps/MHz) to compare across
platforms.  The MCCP row is *recomputed* from our simulated device
(4 cores, AES-GCM/CCM 128-bit, paper-identical loop periods) rather
than copied, so the benchmark actually exercises the model:

    GCM 4x1: 4 * 128 bits / 49 cycles  = 10.45 bits/cycle ≈ paper's 9.91
    CCM 4x1: 4 * 128 bits / 104 cycles = 4.92 bits/cycle ≈ paper's 4.43

(the paper's figures embed 2 KB-packet overhead; both are reported).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.unit.timing import DEFAULT_TIMING, TimingModel


@dataclass(frozen=True)
class LiteratureEntry:
    """One Table III row."""

    name: str
    platform: str
    programmable: bool
    algorithm: str
    throughput_mbps_per_mhz: float
    frequency_mhz: float
    slices: Optional[int] = None
    brams: Optional[int] = None

    @property
    def throughput_mbps(self) -> float:
        """Absolute throughput at the design's own clock."""
        return self.throughput_mbps_per_mhz * self.frequency_mhz


#: Rows quoted from the paper's Table III (non-MCCP designs).
LITERATURE_ENTRIES: List[LiteratureEntry] = [
    LiteratureEntry("Cryptonite [4]", "ASIC", True, "ECB", 5.62, 400.0),
    LiteratureEntry("Celator [15]", "ASIC", True, "CBC", 0.24, 190.0),
    LiteratureEntry("Cryptomaniac [16]", "ASIC", True, "ECB", 1.42, 360.0),
    LiteratureEntry(
        "A. Aziz et al. [3]", "x3s200-5", False, "CCM", 2.78, 247.0, 487, 4
    ),
    LiteratureEntry(
        "S. Lemsitzer et al. [1]", "v4-FX100", False, "GCM", 32.00, 140.0, 6000, 30
    ),
]

#: The paper's own MCCP row, for paper-vs-measured reporting.
PAPER_MCCP_GCM_MBPS_PER_MHZ = 9.91
PAPER_MCCP_CCM_MBPS_PER_MHZ = 4.43


def mccp_entry(
    cores: int = 4,
    key_bits: int = 128,
    timing: TimingModel = DEFAULT_TIMING,
    algorithm: str = "GCM",
    frequency_mhz: float = 190.0,
    slices: int = 4084,
    brams: int = 26,
) -> LiteratureEntry:
    """Build the MCCP Table III row from the timing model."""
    if algorithm == "GCM":
        loop = timing.gcm_loop(key_bits)
    elif algorithm == "CCM":
        loop = timing.ccm_one_core_loop(key_bits)
    else:
        raise ValueError(f"Table III compares GCM/CCM, not {algorithm!r}")
    bits_per_cycle = cores * 128 / loop
    return LiteratureEntry(
        name="MCCP (this reproduction)",
        platform="v4-SX35-11 (simulated)",
        programmable=True,
        algorithm=algorithm,
        throughput_mbps_per_mhz=round(bits_per_cycle, 2),
        frequency_mhz=frequency_mhz,
        slices=slices,
        brams=brams,
    )
