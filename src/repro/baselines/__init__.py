"""Comparator architectures for Table III.

Two kinds of baseline:

- :mod:`repro.baselines.literature` — the published figures the paper's
  Table III quotes (Cryptonite, Celator, Cryptomaniac, Aziz, Lemsitzer),
  with the Mbps/MHz normalisation reproduced;
- runnable models: a mono-core iterative accelerator
  (:mod:`repro.baselines.mono_core`) and a pipelined GCM engine
  (:mod:`repro.baselines.pipelined_gcm`), which let the benchmarks show
  *why* the paper's architecture wins on multi-channel flexibility even
  though a pipelined engine wins raw single-stream throughput.
"""

from repro.baselines.literature import LITERATURE_ENTRIES, LiteratureEntry, mccp_entry
from repro.baselines.mono_core import MonoCoreAccelerator
from repro.baselines.pipelined_gcm import PipelinedGcmEngine

__all__ = [
    "LITERATURE_ENTRIES",
    "LiteratureEntry",
    "mccp_entry",
    "MonoCoreAccelerator",
    "PipelinedGcmEngine",
]
