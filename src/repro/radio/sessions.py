"""Session layer: deterministic session churn above the channel layer.

The paper's SDR carries *sessions* — a voice call, a data transfer, a
control exchange — each living on a crypto channel for a while, being
rekeyed periodically, sometimes handed off to a fresh channel
mid-life, and finally torn down.  This module models that traffic at
scale on top of :class:`repro.radio.sdr_platform.SdrPlatform`:

- :class:`SessionWorkload` describes a storm of sessions — how many,
  how they arrive (Poisson / bursty / diurnal profiles), and the mix
  of :class:`SessionProfile` classes (control > interactive > bulk);
- :func:`build_session_plans` turns (workload, seed) into a fully
  deterministic plan — arrival cycles, per-session packet counts,
  rekey epochs and handoff splits are all pure functions of the seed,
  so a replay through another dataplane or execution backend runs the
  byte-identical storm;
- :class:`SessionManager` pre-provisions every planned channel *before
  simulated time starts* (deterministic channel/key ids regardless of
  how admission control later reshapes the run), then drives one sim
  process per session: setup (key-schedule expansion charged in
  cycles), gated packet submission through the shared
  :class:`~repro.radio.admission.AdmissionController`, rekeys through
  the key scheduler (flush barrier, key-memory rewrite, memo
  invalidation, expansion delay), mid-life handoffs, and teardown.

Session key material is derived per ``(seed, session, segment,
epoch)`` — rekeying changes the bytes on the air deterministically,
and the key scheduler's memo is explicitly invalidated so stale round
keys can never serve the new epoch.
"""

from __future__ import annotations

import enum
import hashlib
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.throughput import WorkloadReport
from repro.core.params import Direction
from repro.crypto.fast.exec import BackendSpec
from repro.mccp.channel import Channel, FlushPolicy
from repro.mccp.mccp import BATCHABLE_ALGORITHMS
from repro.radio.admission import AdmissionController, AdmissionPolicy
from repro.radio.packet import Packet
from repro.radio.sdr_platform import SdrPlatform, _RunAccounting
from repro.radio.standards import STANDARD_PROFILES, RadioStandard
from repro.sim.kernel import Delay

__all__ = [
    "PriorityClass",
    "SessionProfile",
    "SessionWorkload",
    "SessionPlan",
    "SegmentPlan",
    "ARRIVAL_PROFILES",
    "DEFAULT_MIX",
    "build_session_plans",
    "session_key_material",
    "SessionManager",
    "run_sessions",
]

#: The arrival processes :func:`build_session_plans` can generate.
ARRIVAL_PROFILES = ("poisson", "bursty", "diurnal")

#: Dataplanes sessions can ride (both share the PacketJob pipeline).
SESSION_DATAPLANES = ("batched", "pipelined")


class PriorityClass(enum.IntEnum):
    """The three session priority classes (lower = more important)."""

    CONTROL = 0
    INTERACTIVE = 1
    BULK = 2


@dataclass(frozen=True)
class SessionProfile:
    """One class of session in the workload mix."""

    #: Display name ("control", "voice", "bulk-transfer", ...).
    name: str
    #: Radio standard the session's channel speaks (must be an AEAD
    #: standard — the session layer rides the batched dataplane).
    standard: RadioStandard
    #: Priority class (:class:`PriorityClass`; control > interactive >
    #: bulk, matching :attr:`repro.radio.packet.Packet.priority`).
    priority: int
    #: Relative share of sessions drawn from this profile.
    weight: float = 1.0
    #: Mean packets per session (drawn per session from the seed).
    packets_mean: int = 16
    #: Mean simulated-cycle gap between a session's packets.
    packet_gap_cycles: int = 4_000
    #: Packets per key epoch (a rekey runs at each epoch boundary;
    #: None = the session keeps its setup key for life).
    rekey_interval: Optional[int] = None
    #: Share of this profile's sessions that hand off to a fresh
    #: channel mid-life (flush + close + continue on the next segment).
    handoff_fraction: float = 0.0
    #: Payload bytes per packet (None = the standard's nominal MPDU).
    payload_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if self.packets_mean < 1:
            raise ValueError(
                f"packets_mean must be >= 1, got {self.packets_mean}"
            )
        if self.packet_gap_cycles < 1:
            raise ValueError(
                f"packet_gap_cycles must be >= 1, got "
                f"{self.packet_gap_cycles}"
            )
        if self.rekey_interval is not None and self.rekey_interval < 1:
            raise ValueError(
                f"rekey_interval must be >= 1 or None, got "
                f"{self.rekey_interval}"
            )
        if not 0.0 <= self.handoff_fraction <= 1.0:
            raise ValueError(
                f"handoff_fraction must be within [0.0, 1.0], got "
                f"{self.handoff_fraction}"
            )
        profile = STANDARD_PROFILES[self.standard]
        if profile.algorithm not in BATCHABLE_ALGORITHMS:
            raise ValueError(
                f"session profile {self.name!r} uses "
                f"{profile.algorithm.name}, but sessions ride the "
                "batched dataplane (AEAD standards only)"
            )


#: A representative three-class mix: latency-critical control frames,
#: interactive Wi-Fi style traffic, and bulk SATCOM transfers that
#: absorb the shedding when the platform overloads.
DEFAULT_MIX: Tuple[SessionProfile, ...] = (
    SessionProfile(
        name="control",
        standard=RadioStandard.TACTICAL_VOICE,
        priority=PriorityClass.CONTROL,
        weight=1.0,
        packets_mean=8,
        packet_gap_cycles=3_000,
        rekey_interval=16,
    ),
    SessionProfile(
        name="interactive",
        standard=RadioStandard.WIFI,
        priority=PriorityClass.INTERACTIVE,
        weight=2.0,
        packets_mean=12,
        packet_gap_cycles=5_000,
        handoff_fraction=0.25,
    ),
    SessionProfile(
        name="bulk",
        standard=RadioStandard.SATCOM,
        priority=PriorityClass.BULK,
        weight=3.0,
        packets_mean=20,
        packet_gap_cycles=2_000,
        handoff_fraction=0.1,
    ),
)


@dataclass(frozen=True)
class SessionWorkload:
    """A storm of sessions to run through one platform."""

    #: Number of sessions to arrive over the horizon.
    sessions: int = 32
    #: Arrival window in simulated cycles.
    horizon_cycles: int = 200_000
    #: Arrival process: "poisson", "bursty" or "diurnal".
    arrival: str = "poisson"
    #: The profile mix sessions are drawn from (by weight).
    mix: Tuple[SessionProfile, ...] = DEFAULT_MIX
    #: "batched" or "pipelined" (sessions ride the PacketJob pipeline).
    dataplane: str = "batched"
    #: Execution backend for the dispatches (None = platform default).
    backend: BackendSpec = None
    #: Flush policy installed on every session channel (None = default).
    flush_policy: Optional[FlushPolicy] = None
    #: Bounded-queue high watermark per session channel (None =
    #: unbounded).
    queue_capacity: Optional[int] = None
    #: Admission-control policy shared by every session (None = admit
    #: everything).
    admission: Optional[AdmissionPolicy] = None
    #: Pipelined-dataplane overlap bound.
    pipeline_depth: int = 2
    #: Simulated-cycle budget per awaited completion.
    limit: int = 2_000_000_000
    #: Session key size in bytes (16/24/32).
    key_bytes: int = 16

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if self.horizon_cycles < 1:
            raise ValueError(
                f"horizon_cycles must be >= 1, got {self.horizon_cycles}"
            )
        if self.arrival not in ARRIVAL_PROFILES:
            raise ValueError(
                f"unknown arrival profile {self.arrival!r}; valid: "
                + ", ".join(ARRIVAL_PROFILES)
            )
        if not self.mix:
            raise ValueError("the session mix cannot be empty")
        if self.dataplane not in SESSION_DATAPLANES:
            raise ValueError(
                f"sessions run on {' or '.join(SESSION_DATAPLANES)}, "
                f"not {self.dataplane!r}"
            )
        if self.pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1 or None, got "
                f"{self.queue_capacity}"
            )
        if self.key_bytes not in (16, 24, 32):
            raise ValueError(
                f"key_bytes must be 16, 24 or 32, got {self.key_bytes}"
            )


@dataclass(frozen=True)
class SegmentPlan:
    """One channel-lifetime segment of a session."""

    #: Segment index within the session (0, then 1 after a handoff).
    segment: int
    #: Packets this segment carries.
    packets: int


@dataclass(frozen=True)
class SessionPlan:
    """Everything one session will do, fixed before sim time starts."""

    sid: int
    profile: SessionProfile
    arrival_cycle: int
    segments: Tuple[SegmentPlan, ...]

    @property
    def total_packets(self) -> int:
        return sum(s.packets for s in self.segments)


def session_key_material(
    seed: int, sid: int, segment: int, epoch: int, key_bytes: int = 16
) -> bytes:
    """Deterministic session key for one (session, segment, epoch).

    A hash over the coordinates, so every rekey installs fresh,
    reproducible material — the storm's bytes on the air are a pure
    function of the seed.
    """
    digest = hashlib.sha256(
        f"session-key|{seed}|{sid}|{segment}|{epoch}".encode()
    ).digest()
    return digest[:key_bytes]


def _arrival_cycles(workload: SessionWorkload, seed: int) -> List[int]:
    """Deterministic session arrival cycles for the chosen profile."""
    rng = random.Random((seed << 8) ^ 0x5E5510)
    n = workload.sessions
    horizon = workload.horizon_cycles
    mean = max(1.0, horizon / n)
    cycles: List[int] = []
    t = 0
    for i in range(n):
        if workload.arrival == "poisson":
            gap = rng.expovariate(1.0 / mean)
        elif workload.arrival == "bursty":
            # Clusters: most arrivals pile on quickly, every few
            # sessions a long quiet gap separates the bursts.
            if i % 4 == 0:
                gap = rng.expovariate(1.0 / (3.0 * mean))
            else:
                gap = rng.expovariate(1.0 / (mean / 3.0))
        else:  # diurnal
            phase = i / max(1, n)
            load = 0.2 + 0.8 * (0.5 - 0.5 * math.cos(2 * math.pi * phase))
            gap = rng.expovariate(load / mean)
        t += max(1, int(gap))
        cycles.append(min(t, horizon))
    return cycles


def build_session_plans(
    workload: SessionWorkload, seed: int = 0
) -> List[SessionPlan]:
    """The full deterministic plan: a pure function of (workload, seed).

    Profile draws, packet counts, handoff decisions and arrival cycles
    all come from seeded generators, so the same (workload, seed) pair
    always yields the identical storm — the reproducibility the
    overload suite leans on.
    """
    rng = random.Random((seed << 8) ^ 0x5E5520)
    arrivals = _arrival_cycles(workload, seed)
    weights = [p.weight for p in workload.mix]
    plans: List[SessionPlan] = []
    for sid, arrival in enumerate(arrivals):
        profile = rng.choices(workload.mix, weights=weights)[0]
        packets = 1 + int(rng.expovariate(1.0 / profile.packets_mean))
        handoff = rng.random() < profile.handoff_fraction and packets >= 2
        if handoff:
            first = packets // 2
            segments = (
                SegmentPlan(0, first),
                SegmentPlan(1, packets - first),
            )
        else:
            segments = (SegmentPlan(0, packets),)
        plans.append(SessionPlan(sid, profile, arrival, segments))
    return plans


class SessionManager:
    """Drives one :class:`SessionWorkload` through a platform.

    Construction pre-provisions every planned (session, segment)
    channel — key material loaded, channel opened, flush policy and
    queue capacity installed — in deterministic plan order *before*
    simulated time starts, so channel and key ids never depend on how
    admission control or backpressure later reshape the run.
    :meth:`run` then spawns one simulator process per session and
    returns the same :class:`~repro.analysis.throughput.WorkloadReport`
    a workload replay produces, with the session counters filled in.
    """

    def __init__(
        self,
        platform: SdrPlatform,
        workload: SessionWorkload,
        seed: Optional[int] = None,
    ):
        self.platform = platform
        self.workload = workload
        self.seed = platform.seed if seed is None else seed
        self.plans = build_session_plans(workload, self.seed)
        self.controller = (
            AdmissionController(workload.admission)
            if workload.admission is not None
            else None
        )
        #: (sid, segment) -> pre-opened Channel.
        self.channels: Dict[Tuple[int, int], Channel] = {}
        self.sessions_started = 0
        self.sessions_completed = 0
        self.handoffs = 0
        self.rekeys = 0
        self._provision()

    @classmethod
    def provisioned(
        cls,
        workload: SessionWorkload,
        seed: int = 0,
        core_count: int = 4,
    ) -> "SessionManager":
        """A manager on a fresh platform sized for the whole plan."""
        plans = build_session_plans(workload, seed)
        slots = sum(len(p.segments) for p in plans)
        platform = SdrPlatform(
            core_count=core_count,
            seed=seed,
            key_slots=max(32, slots),
            max_channels=max(16, slots),
        )
        return cls(platform, workload, seed)

    # -- provisioning ------------------------------------------------------

    def _provision(self) -> None:
        """Open every planned segment channel with its epoch-0 key."""
        mccp = self.platform.mccp
        for plan in self.plans:
            std = STANDARD_PROFILES[plan.profile.standard]
            for seg in plan.segments:
                key_id = self.platform._next_key_id
                self.platform._next_key_id += 1
                mccp.load_session_key(
                    key_id,
                    session_key_material(
                        self.seed, plan.sid, seg.segment, 0,
                        self.workload.key_bytes,
                    ),
                )
                channel = mccp.open_channel(
                    std.algorithm, key_id, tag_length=std.tag_length or 16
                )
                if self.workload.flush_policy is not None:
                    channel.flush_policy = self.workload.flush_policy
                if self.workload.queue_capacity is not None:
                    channel.capacity = self.workload.queue_capacity
                self.channels[(plan.sid, seg.segment)] = channel

    # -- execution ---------------------------------------------------------

    def run(self) -> WorkloadReport:
        """Run every session to teardown; returns the filled report."""
        workload = self.workload
        platform = self.platform
        comm = platform.comm
        report = WorkloadReport(total_cycles=0, packets_done=0, payload_bytes=0)
        report.dataplane = workload.dataplane
        accounting = _RunAccounting(platform)
        previous_backend = comm.backend
        previous_pipeline = (comm.pipelined, comm.pipeline_depth)
        if workload.backend is not None:
            comm.backend = workload.backend
        comm.pipelined = workload.dataplane == "pipelined"
        comm.pipeline_depth = workload.pipeline_depth
        comm.pipeline_in_flight_peak = 0
        done_events = []
        channels = list(self.channels.values())
        try:
            for plan in self.plans:
                finished = platform.sim.event(f"session{plan.sid}.done")
                done_events.append(finished)
                platform.sim.add_process(
                    self._session_process(plan, report, finished),
                    name=f"session{plan.sid}",
                )
            for event in done_events:
                platform.sim.run_until_event(event, limit=workload.limit)
        finally:
            comm.backend = previous_backend
            comm.pipelined, comm.pipeline_depth = previous_pipeline
        accounting.fill(report, channels, self.controller)
        report.sessions_started = self.sessions_started
        report.sessions_completed = self.sessions_completed
        report.handoffs = self.handoffs
        report.rekeys = self.rekeys
        return report

    def _payload_for(self, plan: SessionPlan, index: int) -> bytes:
        """Deterministic packet payload (profile-sized, seed-derived)."""
        std = STANDARD_PROFILES[plan.profile.standard]
        size = (
            plan.profile.payload_bytes
            if plan.profile.payload_bytes is not None
            else std.payload_bytes
        )
        block = hashlib.sha256(
            f"session-payload|{self.seed}|{plan.sid}|{index}".encode()
        ).digest()
        reps = size // len(block) + 1
        return (block * reps)[:size]

    def _expansion_delay(self, channel: Channel) -> Delay:
        """The key scheduler's charged cycles for this channel's key."""
        scheduler = self.platform.mccp.key_scheduler
        return Delay(scheduler.schedule_cycles(channel.key_bits))

    def _rekey(
        self, plan: SessionPlan, channel: Channel, segment: int, epoch: int
    ):
        """Process: epoch boundary — barrier, rewrite, invalidate, expand.

        The flush barrier drains (and, pipelined, reaps) everything
        still secured under the old epoch's key *before* the key memory
        is rewritten; the key scheduler's memo is invalidated so the
        next dispatch expands the new material rather than serving
        stale round keys.
        """
        mccp = self.platform.mccp
        yield from self.platform.comm.flush_now(channel)
        mccp.load_session_key(
            channel.key_id,
            session_key_material(
                self.seed, plan.sid, segment, epoch, self.workload.key_bytes
            ),
        )
        mccp.key_scheduler.invalidate(channel.key_id)
        self.rekeys += 1
        yield self._expansion_delay(channel)

    def _session_process(self, plan, report, finished):
        """One session's life: setup, packets, rekeys, handoff, teardown."""
        sim = self.platform.sim
        comm = self.platform.comm
        profile = plan.profile
        rng = random.Random((self.seed << 16) ^ (plan.sid << 2) ^ 0x5E5530)
        if sim.now < plan.arrival_cycle:
            yield Delay(plan.arrival_cycle - sim.now)
        self.sessions_started += 1
        packet_index = 0
        for seg_index, seg_plan in enumerate(plan.segments):
            channel = self.channels[(plan.sid, seg_plan.segment)]
            # Setup (or handoff target): round keys expand into the
            # core cache off the per-packet critical path.
            yield self._expansion_delay(channel)
            jobs = []
            sequence = 0
            for _ in range(seg_plan.packets):
                if (
                    profile.rekey_interval is not None
                    and packet_index > 0
                    and packet_index % profile.rekey_interval == 0
                ):
                    # Epoch boundary: the rekey's flush barrier runs
                    # every already-submitted packet under the old key
                    # before the new material lands.
                    yield from self._rekey(
                        plan, channel, seg_plan.segment,
                        packet_index // profile.rekey_interval,
                    )
                payload = self._payload_for(plan, packet_index)
                packet = Packet(
                    channel_id=channel.channel_id,
                    header=plan.sid.to_bytes(4, "big"),
                    payload=payload,
                    sequence=sequence,
                    created_cycle=sim.now,
                    priority=int(profile.priority),
                )
                job = yield from self.platform._submit_gated(
                    channel, packet, self.controller,
                    direction=Direction.ENCRYPT,
                )
                if job is not None:
                    jobs.append(job)
                sequence += 1
                packet_index += 1
                gap = max(
                    1, int(rng.expovariate(1.0 / profile.packet_gap_cycles))
                )
                yield Delay(gap)
            # Segment teardown: drain, await completions, close.
            yield from comm.flush_now(channel)
            for job in jobs:
                if job.transfer is None:
                    yield job.completion
                self.platform._account(report, channel, len(job.data))
            self.platform.mccp.close_channel(channel.channel_id)
            if seg_index + 1 < len(plan.segments):
                self.handoffs += 1
        self.sessions_completed += 1
        finished.trigger()


def run_sessions(
    workload: SessionWorkload, seed: int = 0, core_count: int = 4
) -> WorkloadReport:
    """Convenience: provision a fresh platform and run the storm."""
    return SessionManager.provisioned(
        workload, seed=seed, core_count=core_count
    ).run()
