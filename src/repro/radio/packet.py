"""Packet abstractions crossing the red/black boundary.

A :class:`Packet` is what the radio's waveform hands to the crypto
subsystem: a header that is authenticated but not encrypted (the
ENCRYPT instruction's "Header Size") and a payload that is both.  A
:class:`SecuredPacket` is the black-side result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ProtocolError

#: Maximum packet payload a core FIFO can hold (paper: 2048 bytes).
MAX_PAYLOAD_BYTES = 2048


@dataclass(frozen=True)
class Packet:
    """A red-side (plaintext) packet."""

    channel_id: int
    header: bytes = b""
    payload: bytes = b""
    sequence: int = 0
    #: Creation time in cycles (for latency accounting).
    created_cycle: int = 0
    #: QoS class: lower = more latency-sensitive (voice=0, bulk=2).
    priority: int = 1

    def __post_init__(self) -> None:
        if len(self.payload) > MAX_PAYLOAD_BYTES:
            raise ProtocolError(
                f"payload of {len(self.payload)} bytes exceeds the "
                f"{MAX_PAYLOAD_BYTES}-byte core FIFO"
            )

    @property
    def total_bytes(self) -> int:
        """Header plus payload size."""
        return len(self.header) + len(self.payload)


@dataclass(frozen=True)
class SecuredPacket:
    """A black-side (protected) packet."""

    channel_id: int
    header: bytes
    ciphertext: bytes
    tag: Optional[bytes]
    nonce: bytes
    sequence: int = 0
    #: Completion time in cycles.
    completed_cycle: int = 0
    extra: dict = field(default_factory=dict, compare=False)

    @property
    def total_bytes(self) -> int:
        """Bytes on air (header + ciphertext + tag)."""
        return len(self.header) + len(self.ciphertext) + len(self.tag or b"")
