"""Deterministic multi-channel traffic generation.

Workload generators for the benchmarks: constant-bit-rate, bursty and
saturating patterns per channel, seeded for reproducibility.  Arrival
times are expressed in MCCP clock cycles so they can be fed straight
into the discrete-event simulation.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Iterator, List

from repro.radio.packet import MAX_PAYLOAD_BYTES, Packet
from repro.radio.standards import StandardProfile


class TrafficPattern(enum.Enum):
    """Arrival-process families."""

    SATURATING = "saturating"   # next packet as soon as possible
    CBR = "cbr"                 # constant bit rate at the nominal rate
    BURSTY = "bursty"           # geometric bursts with idle gaps
    POISSON = "poisson"         # exponential interarrivals at the rate
    DIURNAL = "diurnal"         # Poisson with a day-shaped rate curve


@dataclass(frozen=True)
class GeneratedPacket:
    """A packet plus its arrival cycle."""

    arrival_cycle: int
    packet: Packet


class TrafficGenerator:
    """Produces a deterministic packet schedule for one channel."""

    def __init__(
        self,
        channel_id: int,
        profile: StandardProfile,
        pattern: TrafficPattern = TrafficPattern.SATURATING,
        clock_hz: float = 190e6,
        seed: int = 0,
        priority: int = 1,
    ):
        self.channel_id = channel_id
        self.profile = profile
        self.pattern = pattern
        self.clock_hz = clock_hz
        self.priority = priority
        self._rng = random.Random((seed << 8) ^ channel_id)

    def _payload(self, size: int) -> bytes:
        return bytes(self._rng.getrandbits(8) for _ in range(size))

    def _interarrival_cycles(self) -> int:
        bits = 8 * self.profile.payload_bytes
        rate = self.profile.nominal_rate_mbps * 1e6
        return max(1, int(bits / rate * self.clock_hz))

    def generate(self, count: int) -> List[GeneratedPacket]:
        """Generate *count* packets with arrival cycles."""
        out: List[GeneratedPacket] = []
        cycle = 0
        burst_left = 0
        for seq in range(count):
            size = min(self.profile.payload_bytes, MAX_PAYLOAD_BYTES)
            pkt = Packet(
                channel_id=self.channel_id,
                header=self._payload(self.profile.header_bytes),
                payload=self._payload(size),
                sequence=seq,
                created_cycle=cycle,
                priority=self.priority,
            )
            out.append(GeneratedPacket(cycle, pkt))
            if self.pattern is TrafficPattern.SATURATING:
                cycle += 1
            elif self.pattern is TrafficPattern.CBR:
                cycle += self._interarrival_cycles()
            elif self.pattern is TrafficPattern.POISSON:
                # Memoryless arrivals at the nominal rate: exponential
                # interarrival around the CBR gap (seeded, so the
                # schedule is a pure function of (seed, channel)).
                mean = self._interarrival_cycles()
                cycle += max(1, int(self._rng.expovariate(1.0 / mean)))
            elif self.pattern is TrafficPattern.DIURNAL:
                # A "day" compressed into the schedule: the arrival
                # rate follows one raised-cosine period across the
                # packet count, peaking mid-schedule at the nominal
                # rate and troughing at a fifth of it — Poisson jitter
                # on top.  Deterministic like every other pattern.
                mean = self._interarrival_cycles()
                phase = seq / max(1, count)
                load = 0.2 + 0.8 * (0.5 - 0.5 * math.cos(2 * math.pi * phase))
                cycle += max(
                    1, int(self._rng.expovariate(load / mean))
                )
            else:  # BURSTY
                if burst_left > 0:
                    burst_left -= 1
                    cycle += 1
                else:
                    burst_left = self._rng.randint(2, 8)
                    cycle += self._interarrival_cycles() * self._rng.randint(2, 6)
        return out

    def stream(self, count: int) -> Iterator[GeneratedPacket]:
        """Iterator form of :meth:`generate`."""
        return iter(self.generate(count))
