"""Multi-standard channel profiles (paper section I).

The paper motivates the MCCP with multi-standard SDRs (UMTS, WiFi,
WiMax).  These profiles capture what matters to the crypto subsystem:
packet sizes, mode of operation, key size, tag length and nominal
offered rate.  Values are representative of the protocols' secured
MPDUs, not bit-exact MAC formats — the MCCP never parses them anyway
(the communication controller strips/reassembles).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.params import Algorithm


class RadioStandard(enum.Enum):
    """Named waveform families used by the examples and benchmarks."""

    WIFI = "wifi"          # IEEE 802.11i style: AES-CCM
    WIMAX = "wimax"        # IEEE 802.16e style: AES-CCM, larger MPDUs
    UMTS_LIKE = "umts"     # 3G-style stream confidentiality: AES-CTR
    SATCOM = "satcom"      # high-rate link: AES-GCM
    TACTICAL_VOICE = "voice"  # small, latency-critical frames: AES-GCM


@dataclass(frozen=True)
class StandardProfile:
    """Crypto-relevant parameters of one standard."""

    standard: RadioStandard
    algorithm: Algorithm
    key_bits: int
    tag_length: int
    header_bytes: int
    payload_bytes: int
    #: Nominal offered rate in Mbps used by the traffic generators.
    nominal_rate_mbps: float
    #: Latency budget in microseconds (QoS experiments).
    latency_budget_us: float


STANDARD_PROFILES = {
    RadioStandard.WIFI: StandardProfile(
        RadioStandard.WIFI,
        Algorithm.CCM,
        key_bits=128,
        tag_length=8,
        header_bytes=24,
        payload_bytes=1536,
        nominal_rate_mbps=54.0,
        latency_budget_us=2000.0,
    ),
    RadioStandard.WIMAX: StandardProfile(
        RadioStandard.WIMAX,
        Algorithm.CCM,
        key_bits=128,
        tag_length=8,
        header_bytes=16,
        payload_bytes=2000,
        nominal_rate_mbps=70.0,
        latency_budget_us=5000.0,
    ),
    RadioStandard.UMTS_LIKE: StandardProfile(
        RadioStandard.UMTS_LIKE,
        Algorithm.CTR,
        key_bits=128,
        tag_length=0,
        header_bytes=8,
        payload_bytes=640,
        nominal_rate_mbps=14.0,
        latency_budget_us=10000.0,
    ),
    RadioStandard.SATCOM: StandardProfile(
        RadioStandard.SATCOM,
        Algorithm.GCM,
        key_bits=256,
        tag_length=16,
        header_bytes=16,
        payload_bytes=2048,
        nominal_rate_mbps=150.0,
        latency_budget_us=20000.0,
    ),
    RadioStandard.TACTICAL_VOICE: StandardProfile(
        RadioStandard.TACTICAL_VOICE,
        Algorithm.GCM,
        key_bits=128,
        tag_length=8,
        header_bytes=8,
        payload_bytes=160,
        nominal_rate_mbps=0.064,
        latency_budget_us=400.0,
    ),
}
