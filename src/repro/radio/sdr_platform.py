"""The secure SDR platform model (paper sections I and III.A).

Assembles the full system: main controller (session-key provisioning
into the key memory), the MCCP red/black boundary, the communication
controller, and per-channel traffic.  The platform's
:meth:`run_workload` is the workhorse of the multi-channel benchmarks.
It replays generated traffic through one of two dataplanes, both built
on the same :class:`repro.mccp.channel.PacketJob` pipeline:

- ``dataplane="cores"`` (default) — every packet runs the
  cycle-accurate simulated-core path at batch width 1, blocking
  per-channel and retrying on core exhaustion (the radio-side
  queueing the paper leaves to the communication controller);
- ``dataplane="batched"`` — packets are formatted into jobs and
  enqueued per channel; the channel's :class:`repro.mccp.channel
  .FlushPolicy` coalesces same-key jobs and dispatches them through
  the multi-packet batch engine, with per-packet completions fanning
  back out for latency accounting.  Channels the batch engine cannot
  serve (CTR streams, two-core CCM) transparently fall back to the
  cores path.

Both dataplanes secure every packet under the same deterministic
per-(channel, sequence) nonce, so they produce byte-identical secured
packets — the equivalence the dataplane test suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.analysis.throughput import WorkloadReport
from repro.core.params import Algorithm, Direction
from repro.errors import NoResourceError
from repro.mccp.channel import Channel, FlushPolicy
from repro.mccp.mccp import BATCHABLE_ALGORITHMS, Mccp
from repro.radio.comm_controller import CommController
from repro.radio.packet import Packet
from repro.radio.standards import STANDARD_PROFILES, RadioStandard
from repro.radio.traffic import GeneratedPacket, TrafficGenerator, TrafficPattern
from repro.sim.kernel import Delay, Simulator

__all__ = ["ChannelConfig", "SdrPlatform", "WorkloadReport"]


@dataclass
class ChannelConfig:
    """One channel of the workload."""

    standard: RadioStandard
    key: bytes
    pattern: TrafficPattern = TrafficPattern.SATURATING
    packets: int = 8
    priority: int = 1
    two_core_ccm: bool = False
    #: Per-channel flush-policy override for the batched dataplane
    #: (None = the run_workload-level policy, or the channel default).
    flush_policy: Optional[FlushPolicy] = None


def _arrived_packet(item: GeneratedPacket, now: int) -> Packet:
    """Re-stamp creation at actual arrival for latency accounting.

    The single place a packet's ``created_cycle`` is set on its way
    into the dataplane — ``dataclasses.replace`` keeps every other
    field, so adding a field to :class:`Packet` can't silently drop it
    here.
    """
    return replace(item.packet, created_cycle=now)


class SdrPlatform:
    """Main controller + MCCP + communication controller."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        core_count: int = 4,
        policy=None,
        seed: int = 0,
    ):
        self.sim = sim if sim is not None else Simulator()
        self.mccp = Mccp(self.sim, core_count=core_count, policy=policy)
        self.comm = CommController(self.sim, self.mccp, seed=seed)
        self._next_key_id = 0
        self.seed = seed

    # -- provisioning ------------------------------------------------------------

    def provision_channel(self, config: ChannelConfig):
        """Load the session key and OPEN a channel for *config*."""
        profile = STANDARD_PROFILES[config.standard]
        key_id = self._next_key_id
        self._next_key_id += 1
        self.mccp.load_session_key(key_id, config.key)
        channel = self.mccp.open_channel(
            profile.algorithm, key_id, tag_length=profile.tag_length or 16
        )
        return channel, profile

    # -- workload execution ---------------------------------------------------------

    def run_workload(
        self,
        configs: Sequence[ChannelConfig],
        limit: int = 2_000_000_000,
        dataplane: str = "cores",
        flush_policy: Optional[FlushPolicy] = None,
    ) -> WorkloadReport:
        """Replay every channel's traffic to completion; returns the report.

        *dataplane* selects the execution engine (see module
        docstring); *flush_policy* overrides every provisioned
        channel's coalescing knobs for this run (per-config policies
        win).  Both engines report into the same
        :class:`WorkloadReport`, which additionally carries the queue
        depth / backpressure statistics of the batched pipeline.
        """
        if dataplane not in ("cores", "batched"):
            raise ValueError(f"unknown dataplane {dataplane!r}")
        report = WorkloadReport(total_cycles=0, packets_done=0, payload_bytes=0)
        done_events = []
        channels: List[Channel] = []
        # The scheduler/comm counters are platform-cumulative; snapshot
        # them so a reused platform reports only this run's activity.
        base_submits = self.mccp.scheduler.requests_submitted
        base_retries = self.comm.backpressure_retries
        base_latencies = len(self.comm.latencies)

        for config in configs:
            channel, profile = self.provision_channel(config)
            channels.append(channel)
            policy = config.flush_policy or flush_policy
            if policy is not None:
                channel.flush_policy = replace(policy)
            generator = TrafficGenerator(
                channel_id=channel.channel_id,
                profile=profile,
                pattern=config.pattern,
                seed=self.seed,
                priority=config.priority,
            )
            schedule = generator.generate(config.packets)
            finished = self.sim.event(f"chan{channel.channel_id}.drained")
            done_events.append(finished)
            batched = (
                dataplane == "batched"
                and channel.algorithm in BATCHABLE_ALGORITHMS
                and not (
                    config.two_core_ccm and channel.algorithm is Algorithm.CCM
                )
            )
            process = (
                self._batched_channel_process
                if batched
                else self._core_channel_process
            )
            self.sim.add_process(
                process(channel, config, schedule, report, finished),
                name=f"chan{channel.channel_id}",
            )

        for event in done_events:
            self.sim.run_until_event(event, limit=limit)
        report.total_cycles = self.sim.now
        report.latencies = list(self.comm.latencies[base_latencies:])
        report.core_submits = (
            self.mccp.scheduler.requests_submitted - base_submits
        )
        report.backpressure_retries = (
            self.comm.backpressure_retries - base_retries
        )
        for channel in channels:
            stats = channel.stats
            report.per_channel_queue_peak[channel.channel_id] = stats.get(
                "queue_peak", 0
            )
            report.per_channel_batches[channel.channel_id] = stats.get(
                "batches", 0
            )
            for cause in ("size", "deadline", "forced"):
                count = stats.get(f"flush_{cause}", 0)
                if count:
                    report.flush_causes[cause] = (
                        report.flush_causes.get(cause, 0) + count
                    )
        return report

    # -- channel processes ----------------------------------------------------------

    def _account(self, report: WorkloadReport, channel: Channel, nbytes: int):
        report.packets_done += 1
        report.payload_bytes += nbytes
        report.per_channel_bytes[channel.channel_id] = (
            report.per_channel_bytes.get(channel.channel_id, 0) + nbytes
        )

    def _core_channel_process(self, channel, config, schedule, report, finished):
        """Width-1 pipeline on the simulated cores (cycle model)."""
        for item in schedule:
            if self.sim.now < item.arrival_cycle:
                yield Delay(item.arrival_cycle - self.sim.now)
            packet = _arrived_packet(item, self.sim.now)
            nonce = self.comm.nonce_for(channel, packet.sequence)
            while True:
                try:
                    yield from self.comm.process_packet(
                        channel,
                        packet,
                        Direction.ENCRYPT,
                        nonce=nonce,
                        two_core=config.two_core_ccm
                        and channel.algorithm is Algorithm.CCM,
                    )
                    break
                except NoResourceError:
                    # All cores busy: radio-side queueing, retry shortly.
                    self.comm.backpressure_retries += 1
                    yield Delay(50)
            self._account(report, channel, len(packet.payload))
        finished.trigger()

    def _batched_channel_process(self, channel, config, schedule, report, finished):
        """Coalescing pipeline through the batch engine.

        Packets become jobs as they arrive — no per-packet blocking —
        and the flush policy (size threshold + idle deadline) decides
        when each batch dispatches.  The tail is force-flushed so the
        last under-filled batch never waits out its deadline.
        """
        jobs = []
        for item in schedule:
            if self.sim.now < item.arrival_cycle:
                yield Delay(item.arrival_cycle - self.sim.now)
            packet = _arrived_packet(item, self.sim.now)
            jobs.append(
                self.comm.submit_job(channel, packet, Direction.ENCRYPT)
            )
        yield from self.comm.flush_now(channel)
        for job in jobs:
            if job.transfer is None:
                yield job.completion
            self._account(report, channel, len(job.data))
        finished.trigger()
