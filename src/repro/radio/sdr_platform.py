"""The secure SDR platform model (paper sections I and III.A).

Assembles the full system: main controller (session-key provisioning
into the key memory), the MCCP red/black boundary, the communication
controller, and per-channel traffic.  The platform's
:meth:`run_workload` is the workhorse of the multi-channel benchmarks:
it replays generated traffic through the device, queueing packets when
all cores are busy (the radio-side behaviour the paper leaves to the
communication controller), and collects throughput/latency statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.params import Algorithm, Direction
from repro.errors import NoResourceError
from repro.mccp.mccp import Mccp
from repro.radio.comm_controller import CommController
from repro.radio.standards import STANDARD_PROFILES, RadioStandard
from repro.radio.traffic import TrafficGenerator, TrafficPattern
from repro.sim.kernel import Delay, Simulator


@dataclass
class ChannelConfig:
    """One channel of the workload."""

    standard: RadioStandard
    key: bytes
    pattern: TrafficPattern = TrafficPattern.SATURATING
    packets: int = 8
    priority: int = 1
    two_core_ccm: bool = False


@dataclass
class WorkloadReport:
    """Aggregate results of a workload run."""

    total_cycles: int
    packets_done: int
    payload_bytes: int
    latencies: List[int] = field(default_factory=list)
    per_channel_bytes: Dict[int, int] = field(default_factory=dict)

    def throughput_mbps(self, clock_hz: float = 190e6) -> float:
        """Aggregate payload throughput at *clock_hz*."""
        if self.total_cycles == 0:
            return 0.0
        seconds = self.total_cycles / clock_hz
        return 8 * self.payload_bytes / seconds / 1e6

    def mean_latency_us(self, clock_hz: float = 190e6) -> float:
        """Mean packet latency in microseconds."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies) / clock_hz * 1e6

    def max_latency_us(self, clock_hz: float = 190e6) -> float:
        """Worst-case packet latency in microseconds."""
        if not self.latencies:
            return 0.0
        return max(self.latencies) / clock_hz * 1e6


class SdrPlatform:
    """Main controller + MCCP + communication controller."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        core_count: int = 4,
        policy=None,
        seed: int = 0,
    ):
        self.sim = sim if sim is not None else Simulator()
        self.mccp = Mccp(self.sim, core_count=core_count, policy=policy)
        self.comm = CommController(self.sim, self.mccp, seed=seed)
        self._next_key_id = 0
        self.seed = seed

    # -- provisioning ------------------------------------------------------------

    def provision_channel(self, config: ChannelConfig):
        """Load the session key and OPEN a channel for *config*."""
        profile = STANDARD_PROFILES[config.standard]
        key_id = self._next_key_id
        self._next_key_id += 1
        self.mccp.load_session_key(key_id, config.key)
        channel = self.mccp.open_channel(
            profile.algorithm, key_id, tag_length=profile.tag_length or 16
        )
        return channel, profile

    # -- workload execution ---------------------------------------------------------

    def run_workload(
        self,
        configs: Sequence[ChannelConfig],
        limit: int = 2_000_000_000,
    ) -> WorkloadReport:
        """Replay every channel's traffic to completion; returns the report."""
        report = WorkloadReport(total_cycles=0, packets_done=0, payload_bytes=0)
        done_events = []

        for config in configs:
            channel, profile = self.provision_channel(config)
            generator = TrafficGenerator(
                channel_id=channel.channel_id,
                profile=profile,
                pattern=config.pattern,
                seed=self.seed,
                priority=config.priority,
            )
            schedule = generator.generate(config.packets)
            finished = self.sim.event(f"chan{channel.channel_id}.drained")
            done_events.append(finished)
            self.sim.add_process(
                self._channel_process(channel, config, schedule, report, finished),
                name=f"chan{channel.channel_id}",
            )

        for event in done_events:
            self.sim.run_until_event(event, limit=limit)
        report.total_cycles = self.sim.now
        report.latencies = list(self.comm.latencies)
        return report

    def _channel_process(self, channel, config, schedule, report, finished):
        for item in schedule:
            if self.sim.now < item.arrival_cycle:
                yield Delay(item.arrival_cycle - self.sim.now)
            packet = item.packet
            # Re-stamp creation at actual arrival for latency accounting.
            packet = type(packet)(
                channel_id=packet.channel_id,
                header=packet.header,
                payload=packet.payload,
                sequence=packet.sequence,
                created_cycle=self.sim.now,
                priority=packet.priority,
            )
            while True:
                try:
                    transfer = yield from self.comm.process_packet(
                        channel,
                        packet,
                        Direction.ENCRYPT,
                        two_core=config.two_core_ccm
                        and channel.algorithm is Algorithm.CCM,
                    )
                    break
                except NoResourceError:
                    # All cores busy: radio-side queueing, retry shortly.
                    yield Delay(50)
            report.packets_done += 1
            report.payload_bytes += len(packet.payload)
            report.per_channel_bytes[channel.channel_id] = (
                report.per_channel_bytes.get(channel.channel_id, 0)
                + len(packet.payload)
            )
        finished.trigger()
