"""The secure SDR platform model (paper sections I and III.A).

Assembles the full system: main controller (session-key provisioning
into the key memory), the MCCP red/black boundary, the communication
controller, and per-channel traffic.  The platform's
:meth:`run_workload` is the workhorse of the multi-channel benchmarks.
It replays generated traffic through one of two dataplanes, both built
on the same :class:`repro.mccp.channel.PacketJob` pipeline:

- ``dataplane="cores"`` (default) — every packet runs the
  cycle-accurate simulated-core path at batch width 1, blocking
  per-channel and retrying on core exhaustion (the radio-side
  queueing the paper leaves to the communication controller);
- ``dataplane="batched"`` — packets are formatted into jobs and
  enqueued per channel; the channel's :class:`repro.mccp.channel
  .FlushPolicy` coalesces same-key jobs and dispatches them through
  the multi-packet batch engine, with per-packet completions fanning
  back out for latency accounting.  Channels the batch engine cannot
  serve (CTR streams, two-core CCM) transparently fall back to the
  cores path;
- ``dataplane="pipelined"`` — the batched pipeline with asynchronous
  dispatch: each batch is *submitted* to the execution backend and
  the simulator keeps coalescing the next one while thread/process
  workers run the current one (``WorkloadSpec.pipeline_depth`` bounds
  the overlap).  Same bytes, same per-channel completion order, same
  cycle stamps as ``"batched"`` — only wall-clock overlaps.

The preferred calling convention is a :class:`WorkloadSpec` —
``platform.run_workload(WorkloadSpec(configs, dataplane="pipelined"))``
— which consolidates what used to be a sprawl of keyword arguments;
the old kwargs still work as a thin deprecated shim.

Both dataplanes secure every packet under the same deterministic
per-(channel, sequence) nonce, so they produce byte-identical secured
packets — the equivalence the dataplane test suite pins.

Receive-side traffic: a channel (or the whole run) may declare an
``rx_fraction`` — that share of its packets arrive as *secured*
packets off the air and flow through the dataplane as DECRYPT jobs.
The platform plays the peer radio: it pre-seals the payload under the
channel key and the deterministic per-(channel, sequence) nonce, then
degrades the transmission per the channel model — ``loss_rate``
packets never arrive (counted, never submitted) and ``corrupt_rate``
of the arrivals carry a flipped tag byte, exercising the batch
engine's early-reject/verify paths under realistic traffic.  Failed
authentications are per-packet isolated and tallied in
:attr:`WorkloadReport.auth_failures`.  The rx decisions derive only
from ``(seed, channel, sequence)``, so both dataplanes and every
execution backend replay the identical mixed workload.

``run_workload(backend=...)`` selects where the batched dispatches'
seal/open sweeps execute (:mod:`repro.crypto.fast.exec`): inline,
a thread pool, or a process pool — outputs and completion order are
identical across all three.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Union

from repro.analysis.throughput import WorkloadReport
from repro.core.params import Algorithm, Direction
from repro.crypto.fast.exec import BackendSpec, resolve_backend
from repro.errors import BackpressureError, NoResourceError
from repro.mccp.autotune import AutotuneConfig, TrafficProfile, advise_backend
from repro.mccp.channel import Channel, FlushPolicy
from repro.mccp.key_memory import KeyMemory
from repro.mccp.mccp import BATCHABLE_ALGORITHMS, Mccp
from repro.radio.admission import AdmissionController, AdmissionPolicy
from repro.radio.comm_controller import CommController
from repro.radio.packet import Packet
from repro.radio.standards import STANDARD_PROFILES, RadioStandard
from repro.radio.traffic import GeneratedPacket, TrafficGenerator, TrafficPattern
from repro.resilience import stats as resilience_stats
from repro.sim.kernel import Delay, Simulator

__all__ = ["ChannelConfig", "SdrPlatform", "WorkloadReport", "WorkloadSpec"]

#: The dataplanes :meth:`SdrPlatform.run_workload` can replay through.
DATAPLANES = ("cores", "batched", "pipelined")


@dataclass
class ChannelConfig:
    """One channel of the workload."""

    standard: RadioStandard
    key: bytes
    pattern: TrafficPattern = TrafficPattern.SATURATING
    packets: int = 8
    priority: int = 1
    two_core_ccm: bool = False
    #: Per-channel flush-policy override for the batched dataplane
    #: (None = the run_workload-level policy, or the channel default).
    flush_policy: Optional[FlushPolicy] = None
    #: Fraction of this channel's packets that are receive-side
    #: (DECRYPT) traffic; 0.0 defers to the run_workload-level knob.
    #: Only AEAD channels generate rx traffic (CTR streams have no tag
    #: to verify and keep transmitting).
    rx_fraction: float = 0.0
    #: Channel model for the rx share: fraction of secured packets
    #: lost before arrival (never submitted, counted in the report).
    loss_rate: float = 0.0
    #: Fraction of *arriving* rx packets whose tag is corrupted in
    #: flight (fails authentication; the dataplane must reject it
    #: without disturbing batch-mates).
    corrupt_rate: float = 0.0
    #: High watermark of this channel's coalescing queue (None = the
    #: run-level :attr:`WorkloadSpec.queue_capacity`, or unbounded).
    #: A bounded queue raises :class:`repro.errors.BackpressureError`
    #: at the mark and feeds the admission controller's shed logic.
    queue_capacity: Optional[int] = None


@dataclass
class WorkloadSpec:
    """Everything one :meth:`SdrPlatform.run_workload` replay needs.

    Consolidates the run-level knobs that used to travel as separate
    keyword arguments; a spec is a value object, so the same workload
    can be replayed across dataplanes/backends with
    ``dataclasses.replace(spec, dataplane=...)``.
    """

    #: The channels to provision and their traffic.
    configs: Sequence[ChannelConfig] = field(default_factory=tuple)
    #: Simulated-cycle budget per channel-drained wait.
    limit: int = 2_000_000_000
    #: ``"cores"``, ``"batched"`` or ``"pipelined"`` (module docstring).
    dataplane: str = "cores"
    #: Run-level flush-policy override (per-config policies win).
    flush_policy: Optional[FlushPolicy] = None
    #: Where batched dispatches' crypto sweeps execute for this run
    #: (:mod:`repro.crypto.fast.exec`; None keeps the platform's own).
    backend: BackendSpec = None
    #: Run-level receive-side traffic mix (per-config non-zero wins).
    rx_fraction: float = 0.0
    loss_rate: float = 0.0
    corrupt_rate: float = 0.0
    #: Dispatches a channel may keep in flight under the pipelined
    #: dataplane before its drain blocks to reap the oldest.
    pipeline_depth: int = 2
    #: Run-level bounded-queue high watermark (per-config capacities
    #: win; None = unbounded queues, the historical behaviour).
    queue_capacity: Optional[int] = None
    #: Admission-control policy for the run (None = admit everything;
    #: bounded queues then surface as BackpressureError retries).
    admission: Optional[AdmissionPolicy] = None
    #: Adaptive dataplane tuning (:mod:`repro.mccp.autotune`).  ``True``
    #: or an :class:`AutotuneConfig` installs the config on the
    #: communication controller and defaults the run-level flush policy
    #: to ``FlushPolicy(mode="auto")`` when none is given; with
    #: ``advise_backend`` set and no pinned :attr:`backend`, the scored
    #: policy table also picks the run's backend and pipeline depth.
    autotune: Union[bool, AutotuneConfig, None] = None

    def __post_init__(self) -> None:
        if self.autotune is True:
            self.autotune = AutotuneConfig()
        elif self.autotune is False:
            self.autotune = None
        elif self.autotune is not None and not isinstance(
            self.autotune, AutotuneConfig
        ):
            raise TypeError(
                "autotune must be True, False, None or an AutotuneConfig, "
                f"got {self.autotune!r}"
            )
        if self.dataplane not in DATAPLANES:
            raise ValueError(
                f"unknown dataplane {self.dataplane!r}; valid: "
                + ", ".join(DATAPLANES)
            )
        if self.pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1 or None, got "
                f"{self.queue_capacity}"
            )


#: Marks a legacy run_workload kwarg the caller did not pass.
_UNSET = object()


@dataclass(frozen=True)
class _RxPlan:
    """One receive-side packet as the channel delivered it."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes
    lost: bool
    corrupted: bool


def _check_rate(name: str, value: float) -> float:
    """Validate a probability knob (rx_fraction/loss_rate/corrupt_rate)."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0.0, 1.0], got {value}")
    return value


def _arrived_packet(item: GeneratedPacket, now: int) -> Packet:
    """Re-stamp creation at actual arrival for latency accounting.

    The single place a packet's ``created_cycle`` is set on its way
    into the dataplane — ``dataclasses.replace`` keeps every other
    field, so adding a field to :class:`Packet` can't silently drop it
    here.
    """
    return replace(item.packet, created_cycle=now)


def _traffic_profile(configs: Sequence[ChannelConfig]) -> TrafficProfile:
    """Summarise a workload's shape for the backend advisor.

    Built from the channel configs alone (standard payload sizes,
    packet counts, patterns, priorities) — nothing measured — so the
    advisor's pick is known before any traffic flows and is identical
    on every repeat.
    """
    total_packets = 0
    total_bytes = 0
    sustained = 0
    control = 0
    for config in configs:
        profile = STANDARD_PROFILES[config.standard]
        total_packets += config.packets
        total_bytes += config.packets * profile.payload_bytes
        if config.pattern is TrafficPattern.SATURATING:
            sustained += config.packets
        if config.priority == 0:
            control += config.packets
    packets = max(1, total_packets)
    return TrafficProfile(
        channels=len(configs),
        total_packets=total_packets,
        mean_packet_bytes=total_bytes / packets,
        sustained_fraction=sustained / packets,
        control_fraction=control / packets,
    )


def _worker_expansions(comm) -> int:
    """Cumulative arena-worker key-schedule expansions for *comm*'s backend.

    Arena dispatch shards report the ``expand_key_cached`` misses each
    one observed; the process backend accumulates them in
    ``worker_expansions``.  Backends without the counter (inline,
    thread — their expansions land in the shared parent LRU and are
    not per-worker events) read as zero.
    """
    backend = resolve_backend(comm.backend)
    return getattr(backend, "worker_expansions", 0)


class _RunAccounting:
    """Snapshot of the platform-cumulative counters one run starts from.

    The scheduler/comm/resilience counters accumulate across runs on a
    reused platform; constructing one of these before the run and
    calling :meth:`fill` after yields a report scoped to just that
    run's activity.  Shared by :meth:`SdrPlatform._run_spec` and the
    session layer (:mod:`repro.radio.sessions`), so workload replays
    and session storms account identically.
    """

    def __init__(self, platform: "SdrPlatform"):
        self._platform = platform
        comm = platform.comm
        self.base_submits = platform.mccp.scheduler.requests_submitted
        self.base_retries = comm.backpressure_retries
        self.base_latencies = len(comm.latencies)
        self.base_class_latencies = {
            priority: len(samples)
            for priority, samples in comm.class_latencies.items()
        }
        self.base_auth_failures = comm.auth_failures
        # Resilience counters are process-wide (recovery fires deep in
        # the backend layer); the before/after delta is this run's.
        self.base_resilience = resilience_stats.snapshot()
        self.base_worker_expansions = _worker_expansions(comm)

    def fill(
        self,
        report: WorkloadReport,
        channels: Sequence[Channel],
        controller: Optional[AdmissionController] = None,
    ) -> WorkloadReport:
        """Scope the cumulative counters into *report* (and return it)."""
        platform = self._platform
        comm = platform.comm
        report.total_cycles = platform.sim.now
        report.pipeline_in_flight_peak = comm.pipeline_in_flight_peak
        report.latencies = list(comm.latencies[self.base_latencies:])
        for priority, samples in comm.class_latencies.items():
            start = self.base_class_latencies.get(priority, 0)
            if len(samples) > start:
                report.per_class_latencies[priority] = list(samples[start:])
        report.core_submits = (
            platform.mccp.scheduler.requests_submitted - self.base_submits
        )
        report.backpressure_retries = (
            comm.backpressure_retries - self.base_retries
        )
        report.auth_failures = comm.auth_failures - self.base_auth_failures
        accrued = resilience_stats.delta(self.base_resilience)
        report.retries = accrued["retries"]
        report.watchdog_fires = accrued["watchdog_fires"]
        report.degradations = accrued["degradations"]
        report.degradation_reasons = accrued["degradation_reasons"]
        report.quarantined = accrued["quarantined"]
        report.dead_lettered = accrued["dead_lettered"]
        report.faults_injected = accrued["faults_injected"]
        report.key_schedule_expansions = (
            _worker_expansions(comm) - self.base_worker_expansions
        )
        report.breaker_trips = accrued["breaker_trips"]
        report.breaker_bypasses = accrued["breaker_bypasses"]
        report.breaker_recoveries = accrued["breaker_recoveries"]
        for channel in channels:
            stats = channel.stats
            report.per_channel_queue_peak[channel.channel_id] = stats.get(
                "queue_peak", 0
            )
            report.per_channel_batches[channel.channel_id] = stats.get(
                "batches", 0
            )
            report.backpressure_signals += stats.get(
                "backpressure_signals", 0
            )
            for cause in ("size", "deadline", "forced"):
                count = stats.get(f"flush_{cause}", 0)
                if count:
                    report.flush_causes[cause] = (
                        report.flush_causes.get(cause, 0) + count
                    )
            if channel.autotune is not None:
                report.autotune_adjustments += channel.autotune.adjustments
                report.autotune_traces[channel.channel_id] = (
                    channel.autotune.trace_dicts()
                )
        if controller is not None:
            report.admitted_by_class = dict(controller.admitted)
            report.shed_by_class = controller.shed_by_class()
            report.shed_causes = controller.shed_causes()
            report.shed_packets = sorted(controller.shed_set())
            report.deferrals = controller.deferrals
        return report


class SdrPlatform:
    """Main controller + MCCP + communication controller."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        core_count: int = 4,
        policy=None,
        seed: int = 0,
        backend: BackendSpec = None,
        key_slots: Optional[int] = None,
        max_channels: Optional[int] = None,
    ):
        self.sim = sim if sim is not None else Simulator()
        # Session-scale runs outgrow the hardware's 32-slot key memory
        # and 16-entry channel table; both stay the defaults unless a
        # caller (e.g. the session layer) asks for more.
        key_memory = KeyMemory(slots=key_slots) if key_slots is not None else None
        self.mccp = Mccp(
            self.sim,
            core_count=core_count,
            policy=policy,
            key_memory=key_memory,
            max_channels=max_channels,
        )
        self.comm = CommController(self.sim, self.mccp, seed=seed, backend=backend)
        self._next_key_id = 0
        self.seed = seed

    # -- provisioning ------------------------------------------------------------

    def provision_channel(self, config: ChannelConfig):
        """Load the session key and OPEN a channel for *config*."""
        profile = STANDARD_PROFILES[config.standard]
        key_id = self._next_key_id
        self._next_key_id += 1
        self.mccp.load_session_key(key_id, config.key)
        channel = self.mccp.open_channel(
            profile.algorithm, key_id, tag_length=profile.tag_length or 16
        )
        return channel, profile

    # -- workload execution ---------------------------------------------------------

    def run_workload(
        self,
        configs=None,
        limit=_UNSET,
        dataplane=_UNSET,
        flush_policy=_UNSET,
        backend=_UNSET,
        rx_fraction=_UNSET,
        loss_rate=_UNSET,
        corrupt_rate=_UNSET,
        *,
        spec: Optional[WorkloadSpec] = None,
    ) -> WorkloadReport:
        """Replay every channel's traffic to completion; returns the report.

        Preferred form: one :class:`WorkloadSpec`, passed positionally
        or as ``spec=`` — it carries the dataplane, flush policy,
        backend, rx mix and pipeline depth.  The legacy keyword
        arguments (``dataplane=``, ``backend=``, ...) still work as a
        thin deprecated shim that builds the spec for you and emits a
        :class:`DeprecationWarning`; they cannot be combined with an
        explicit spec.  Every engine reports into the same
        :class:`WorkloadReport`, which additionally carries the queue
        depth / backpressure statistics of the batched pipeline, the
        rx loss/auth-failure tallies, and the pipelined dataplane's
        in-flight overlap peak.
        """
        legacy = {
            name: value
            for name, value in (
                ("limit", limit),
                ("dataplane", dataplane),
                ("flush_policy", flush_policy),
                ("backend", backend),
                ("rx_fraction", rx_fraction),
                ("loss_rate", loss_rate),
                ("corrupt_rate", corrupt_rate),
            )
            if value is not _UNSET
        }
        if isinstance(configs, WorkloadSpec):
            if spec is not None:
                raise TypeError(
                    "pass the WorkloadSpec positionally or as spec=, not both"
                )
            spec, configs = configs, None
        if spec is not None:
            if configs is not None or legacy:
                raise TypeError(
                    "combine every run parameter into the WorkloadSpec; "
                    "mixing spec= with legacy arguments is not supported"
                )
        else:
            if configs is None:
                raise TypeError(
                    "run_workload needs a WorkloadSpec or a ChannelConfig "
                    "sequence"
                )
            if legacy:
                warnings.warn(
                    "run_workload's per-knob keyword arguments are "
                    "deprecated; pass a WorkloadSpec instead, e.g. "
                    "run_workload(WorkloadSpec(configs, dataplane=...))",
                    DeprecationWarning,
                    stacklevel=2,
                )
            spec = WorkloadSpec(configs=configs, **legacy)
        return self._run_spec(spec)

    def _run_spec(self, spec: WorkloadSpec) -> WorkloadReport:
        """Execute one validated :class:`WorkloadSpec`."""
        configs = spec.configs
        dataplane = spec.dataplane
        flush_policy = spec.flush_policy
        backend = spec.backend
        rx_fraction = spec.rx_fraction
        loss_rate = spec.loss_rate
        corrupt_rate = spec.corrupt_rate
        limit = spec.limit
        report = WorkloadReport(total_cycles=0, packets_done=0, payload_bytes=0)
        report.dataplane = dataplane
        done_events = []
        channels: List[Channel] = []
        controller = (
            AdmissionController(spec.admission)
            if spec.admission is not None
            else None
        )
        autotune = spec.autotune  # AutotuneConfig or None (normalized)
        pipeline_depth = spec.pipeline_depth
        previous_backend = self.comm.backend
        previous_pipeline = (self.comm.pipelined, self.comm.pipeline_depth)
        previous_autotune = self.comm.autotune_config
        if autotune is not None:
            self.comm.autotune_config = autotune
            if flush_policy is None:
                # Adaptive runs default every channel onto the
                # controller; per-config policies still win.
                flush_policy = FlushPolicy(mode="auto")
            if autotune.advise_backend and backend is None:
                advice = advise_backend(
                    _traffic_profile(configs), cpu_count=autotune.cpu_count
                )
                backend = advice.backend
                pipeline_depth = advice.pipeline_depth
                report.autotune_backend = advice.backend
                report.autotune_policy = advice.policy
                report.autotune_pipeline_depth = advice.pipeline_depth
        if backend is not None:
            self.comm.backend = backend
        self.comm.pipelined = dataplane == "pipelined"
        self.comm.pipeline_depth = pipeline_depth
        self.comm.pipeline_in_flight_peak = 0
        # Snapshot *after* the spec's backend override is installed and
        # fill *before* the finally restores it: the worker-expansion
        # counter lives on the backend the run actually dispatched to.
        accounting = _RunAccounting(self)
        try:
            self._launch_channels(
                configs, dataplane, flush_policy, report, done_events,
                channels, rx_fraction, loss_rate, corrupt_rate,
                spec.queue_capacity, controller,
            )
            for event in done_events:
                self.sim.run_until_event(event, limit=limit)
            return accounting.fill(report, channels, controller)
        finally:
            self.comm.backend = previous_backend
            self.comm.pipelined, self.comm.pipeline_depth = previous_pipeline
            self.comm.autotune_config = previous_autotune

    def _launch_channels(
        self,
        configs: Sequence[ChannelConfig],
        dataplane: str,
        flush_policy: Optional[FlushPolicy],
        report: WorkloadReport,
        done_events: list,
        channels: List[Channel],
        rx_fraction: float,
        loss_rate: float,
        corrupt_rate: float,
        queue_capacity: Optional[int] = None,
        controller: Optional[AdmissionController] = None,
    ) -> None:
        """Provision every channel and spawn its traffic process."""
        for config in configs:
            channel, profile = self.provision_channel(config)
            channels.append(channel)
            policy = config.flush_policy or flush_policy
            if policy is not None:
                channel.flush_policy = replace(policy)
            capacity = config.queue_capacity or queue_capacity
            if capacity is not None:
                channel.capacity = capacity
            generator = TrafficGenerator(
                channel_id=channel.channel_id,
                profile=profile,
                pattern=config.pattern,
                seed=self.seed,
                priority=config.priority,
            )
            schedule = generator.generate(config.packets)
            plans = self._rx_plans(
                channel,
                schedule,
                _check_rate(
                    "rx_fraction", config.rx_fraction or rx_fraction
                ),
                _check_rate("loss_rate", config.loss_rate or loss_rate),
                _check_rate(
                    "corrupt_rate", config.corrupt_rate or corrupt_rate
                ),
            )
            finished = self.sim.event(f"chan{channel.channel_id}.drained")
            done_events.append(finished)
            batched = (
                dataplane in ("batched", "pipelined")
                and channel.algorithm in BATCHABLE_ALGORITHMS
                and not (
                    config.two_core_ccm and channel.algorithm is Algorithm.CCM
                )
            )
            process = (
                self._batched_channel_process
                if batched
                else self._core_channel_process
            )
            self.sim.add_process(
                process(
                    channel, config, schedule, plans, report, finished,
                    controller,
                ),
                name=f"chan{channel.channel_id}",
            )

    # -- receive-side traffic --------------------------------------------------------

    def _rx_plans(
        self,
        channel: Channel,
        schedule: Sequence[GeneratedPacket],
        rx_fraction: float,
        loss_rate: float,
        corrupt_rate: float,
    ) -> List[Optional[_RxPlan]]:
        """Per-packet rx decisions and pre-sealed arrivals (None = tx).

        The platform plays the peer radio here, outside simulated time:
        each rx packet is sealed under the channel key and the
        deterministic per-(channel, sequence) nonce, then the channel
        model decides loss and tag corruption.  All randomness derives
        from ``(seed, channel_id)`` and is drawn in sequence order, so
        the same mixed workload replays identically through either
        dataplane and any execution backend.
        """
        if rx_fraction <= 0.0 or channel.algorithm not in BATCHABLE_ALGORITHMS:
            return [None] * len(schedule)
        from repro.crypto.fast.bulk import ccm_seal, gcm_seal

        seal = gcm_seal if channel.algorithm is Algorithm.GCM else ccm_seal
        key = self.mccp.key_memory.fetch_for_scheduler(channel.key_id)
        rng = random.Random(
            (self.seed << 20) ^ (channel.channel_id << 4) ^ 0x52585F
        )
        plans: List[Optional[_RxPlan]] = []
        for item in schedule:
            if rng.random() >= rx_fraction:
                plans.append(None)
                continue
            packet = item.packet
            nonce = self.comm.nonce_for(channel, packet.sequence)
            ciphertext, tag = seal(
                key, nonce, packet.payload, packet.header, channel.tag_length
            )
            lost = rng.random() < loss_rate
            corrupted = not lost and rng.random() < corrupt_rate
            if corrupted:
                tag = tag[:-1] + bytes([tag[-1] ^ 0xFF])
            plans.append(_RxPlan(nonce, ciphertext, tag, lost, corrupted))
        return plans

    def _rx_arrival(
        self, report: WorkloadReport, packet: Packet, plan: _RxPlan
    ) -> Optional[Packet]:
        """Count one rx packet; returns its arrived form (None = lost)."""
        report.rx_packets += 1
        if plan.lost:
            report.rx_lost += 1
            return None
        return replace(packet, payload=plan.ciphertext)

    # -- channel processes ----------------------------------------------------------

    def _account(self, report: WorkloadReport, channel: Channel, nbytes: int):
        report.packets_done += 1
        report.payload_bytes += nbytes
        report.per_channel_bytes[channel.channel_id] = (
            report.per_channel_bytes.get(channel.channel_id, 0) + nbytes
        )

    def _core_channel_process(
        self, channel, config, schedule, plans, report, finished,
        controller=None,
    ):
        """Width-1 pipeline on the simulated cores (cycle model)."""
        for item, plan in zip(schedule, plans):
            if self.sim.now < item.arrival_cycle:
                yield Delay(item.arrival_cycle - self.sim.now)
            packet = _arrived_packet(item, self.sim.now)
            direction = Direction.ENCRYPT
            nonce = self.comm.nonce_for(channel, packet.sequence)
            tag = None
            if plan is not None:
                arrived = self._rx_arrival(report, packet, plan)
                if arrived is None:
                    continue
                packet, direction, nonce, tag = (
                    arrived, Direction.DECRYPT, plan.nonce, plan.tag,
                )
            if controller is not None:
                admitted = yield from controller.gate(
                    self.sim, channel, packet.priority, packet.sequence
                )
                if not admitted:
                    continue
                controller.note_admitted(packet.priority)
            while True:
                try:
                    yield from self.comm.process_packet(
                        channel,
                        packet,
                        direction,
                        nonce=nonce,
                        tag=tag,
                        two_core=config.two_core_ccm
                        and channel.algorithm is Algorithm.CCM,
                    )
                    break
                except NoResourceError:
                    # All cores busy: radio-side queueing, retry shortly.
                    self.comm.backpressure_retries += 1
                    yield Delay(50)
            self._account(report, channel, len(packet.payload))
        finished.trigger()

    def _submit_gated(self, channel, packet, controller, **kwargs):
        """Process: admission-gate + enqueue one packet (None = shed).

        The single producer-side funnel into a bounded channel.  With a
        controller, its :meth:`~repro.radio.admission
        .AdmissionController.gate` decides admit/defer/shed before the
        enqueue ever happens; without one, a full queue surfaces as
        :class:`~repro.errors.BackpressureError` and the producer backs
        off in simulated time until the drain makes room — bounded
        queues never grow past their watermark either way.
        """
        if controller is not None:
            admitted = yield from controller.gate(
                self.sim, channel, packet.priority, packet.sequence
            )
            if not admitted:
                return None
            job = self.comm.submit_job(channel, packet, **kwargs)
            controller.note_admitted(packet.priority)
            return job
        while True:
            try:
                return self.comm.submit_job(channel, packet, **kwargs)
            except BackpressureError:
                # Queue at its high watermark: radio-side back-off,
                # retried once the flush machinery has drained room.
                self.comm.backpressure_retries += 1
                yield Delay(50)

    def _batched_channel_process(
        self, channel, config, schedule, plans, report, finished,
        controller=None,
    ):
        """Coalescing pipeline through the batch engine.

        Packets become jobs as they arrive — no per-packet blocking —
        and the flush policy (size threshold + idle deadline) decides
        when each batch dispatches.  The tail is force-flushed so the
        last under-filled batch never waits out its deadline.
        """
        jobs = []
        for item, plan in zip(schedule, plans):
            if self.sim.now < item.arrival_cycle:
                yield Delay(item.arrival_cycle - self.sim.now)
            packet = _arrived_packet(item, self.sim.now)
            if plan is None:
                job = yield from self._submit_gated(
                    channel, packet, controller,
                    direction=Direction.ENCRYPT,
                )
            else:
                arrived = self._rx_arrival(report, packet, plan)
                if arrived is None:
                    continue
                job = yield from self._submit_gated(
                    channel, arrived, controller,
                    direction=Direction.DECRYPT,
                    nonce=plan.nonce,
                    tag=plan.tag,
                )
            if job is not None:
                jobs.append(job)
        yield from self.comm.flush_now(channel)
        for job in jobs:
            if job.transfer is None:
                yield job.completion
            self._account(report, channel, len(job.data))
        finished.trigger()
