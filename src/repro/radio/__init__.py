"""The SDR substrate: packets, standards, traffic and the communication
controller that drives the MCCP (paper sections I–III).

The MCCP sits behind a communication controller inside a larger radio
platform; the controller owns all byte-level formatting (section VI.B)
and the control-port protocol (section III.B).  This subpackage models
that surrounding system so the device can be exercised with realistic
multi-channel, multi-standard workloads.
"""

from repro.radio.formatting import (
    FormattedTask,
    build_job,
    expected_output_words,
    format_cbc_mac,
    format_ccm_single,
    format_ccm_two_core,
    format_ctr,
    format_gcm,
    format_task,
    format_whirlpool,
    job_transfer_words,
    parse_output,
)
from repro.radio.packet import Packet, SecuredPacket
from repro.radio.standards import RadioStandard, STANDARD_PROFILES
from repro.radio.traffic import TrafficGenerator, TrafficPattern

__all__ = [
    "FormattedTask",
    "build_job",
    "expected_output_words",
    "job_transfer_words",
    "format_cbc_mac",
    "format_ccm_single",
    "format_ccm_two_core",
    "format_ctr",
    "format_gcm",
    "format_task",
    "format_whirlpool",
    "parse_output",
    "Packet",
    "SecuredPacket",
    "RadioStandard",
    "STANDARD_PROFILES",
    "TrafficGenerator",
    "TrafficPattern",
]
