"""The communication controller (paper sections III.A, VI.B).

Sits between the radio's waveforms and the MCCP: formats every packet
(the cores never format data), issues the control-protocol calls,
uploads/downloads FIFO data through the crossbar, reacts to the
``Data Available`` interrupt, and reassembles secured packets.

Implemented as simulation processes so upload, core processing and
download genuinely overlap, which is what the multi-core throughput
numbers depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.params import Algorithm, Direction
from repro.errors import ProtocolError
from repro.mccp.mccp import Mccp
from repro.mccp.task_scheduler import PendingRequest
from repro.radio.formatting import (
    FormattedTask,
    format_task,
    parse_output,
)
from repro.radio.packet import Packet, SecuredPacket
from repro.sim.kernel import Event, Simulator
from repro.utils.bits import words32_to_bytes


@dataclass
class CompletedTransfer:
    """One finished request with parsed outputs."""

    request: PendingRequest
    payload: bytes = b""
    tag: Optional[bytes] = None
    ok: bool = True
    download_done_cycle: int = 0
    extra: dict = field(default_factory=dict)


class CommController:
    """Drives the MCCP on behalf of the radio."""

    def __init__(self, sim: Simulator, mccp: Mccp, seed: int = 0):
        self.sim = sim
        self.mccp = mccp
        self._nonce_counter = seed << 32
        #: Finished transfers by request id.
        self.completed: Dict[int, CompletedTransfer] = {}
        #: Per-request latency records (submit -> download done).
        self.latencies: List[int] = []
        self.auth_failures = 0

    # -- nonce management -------------------------------------------------------

    def next_nonce(self, algorithm: Algorithm) -> bytes:
        """Fresh, never-repeating nonce of the mode's radio length."""
        self._nonce_counter += 1
        if algorithm is Algorithm.GCM:
            return self._nonce_counter.to_bytes(12, "big")
        if algorithm is Algorithm.CCM:
            return self._nonce_counter.to_bytes(13, "big")
        if algorithm is Algorithm.CTR:
            return (self._nonce_counter << 16).to_bytes(16, "big")
        raise ProtocolError(f"{algorithm!r} takes no nonce")

    # -- formatting ---------------------------------------------------------------

    def format_packet(
        self,
        channel,
        packet: Packet,
        direction: Direction,
        nonce: Optional[bytes] = None,
        tag: Optional[bytes] = None,
        two_core: bool = False,
    ) -> Tuple[Tuple[FormattedTask, ...], bytes]:
        """Format *packet* for the channel's algorithm; returns (tasks, nonce)."""
        nonce = nonce if nonce is not None else self.next_nonce(channel.algorithm)
        result = format_task(
            channel.algorithm,
            channel.key_bits,
            direction,
            nonce=nonce,
            aad=packet.header,
            data=packet.payload,
            tag_length=channel.tag_length,
            tag=tag,
            two_core=two_core,
        )
        tasks = result if isinstance(result, tuple) else (result,)
        return tasks, nonce

    # -- end-to-end packet processing ----------------------------------------------

    def process_packet(
        self,
        channel,
        packet: Packet,
        direction: Direction = Direction.ENCRYPT,
        nonce: Optional[bytes] = None,
        tag: Optional[bytes] = None,
        two_core: bool = False,
        completion: Optional[Event] = None,
    ):
        """Generator process: format, submit, upload, await, download.

        Triggers *completion* (if given) with a
        :class:`CompletedTransfer`; also records it in
        :attr:`completed`.  Raises :class:`NoResourceError` out of the
        submit step if no core is idle — callers that want queueing
        catch it and retry (see :class:`repro.radio.sdr_platform`).
        """
        tasks, nonce = self.format_packet(
            channel, packet, direction, nonce, tag, two_core
        )
        # ENCRYPT/DECRYPT control instruction (scheduler software cost).
        yield self.mccp.scheduler.overhead_delay()
        request = self.mccp.submit(channel.channel_id, tasks, packet.priority)

        # Upload every task's input stream (one word per crossbar-port
        # cycle).  Encrypt output is drained *while* the core runs: a
        # 2 KB packet plus its tag is 129 blocks, one more than the
        # output FIFO holds, so the hardware communication controller
        # must also read as data becomes available.  Decrypt output is
        # only read after RETRIEVE DATA returns OK (section IV.C).
        out_task = tasks[-1]
        nwords = self._expected_output_words(out_task)
        sink: List[int] = []
        is_decrypt = direction is Direction.DECRYPT
        download = None
        if not is_decrypt and nwords:
            download = self.mccp.crossbar.download_words(
                self.mccp.cores[request.output_core_index], sink, nwords
            )
        for core_index, task in zip(request.core_indices, tasks):
            core = self.mccp.cores[core_index]
            upload = self.mccp.crossbar.upload_blocks(core, task.input_blocks)
            yield upload.done

        # Wait for the core(s) — the Data Available interrupt edge.
        yield request.ready_event

        # RETRIEVE DATA.
        yield self.mccp.scheduler.overhead_delay()
        ok, _rid = self.mccp.scheduler.retrieve(request)
        transfer = CompletedTransfer(request=request, ok=ok)
        if ok:
            if is_decrypt and nwords:
                download = self.mccp.crossbar.download_words(
                    self.mccp.cores[request.output_core_index], sink, nwords
                )
            if download is not None:
                yield download.done
            blocks = [
                words32_to_bytes(sink[i : i + 4]) for i in range(0, len(sink), 4)
            ]
            transfer.payload, transfer.tag = parse_output(out_task, blocks)
        else:
            self.auth_failures += 1
        yield self.mccp.scheduler.overhead_delay()
        self.mccp.scheduler.transfer_done(request)
        transfer.download_done_cycle = self.sim.now
        self.completed[request.request_id] = transfer
        self.latencies.append(self.sim.now - packet.created_cycle)
        if completion is not None:
            completion.trigger(transfer)
        return transfer

    @staticmethod
    def _expected_output_words(task: FormattedTask) -> int:
        params = task.params
        if params.algorithm is Algorithm.WHIRLPOOL:
            return 16  # 64-byte digest
        blocks = 0
        if params.algorithm is Algorithm.CBC_MAC:
            blocks = 1 if params.direction is Direction.ENCRYPT else 0
        else:
            blocks = params.data_blocks
            if params.direction is Direction.ENCRYPT and params.tag_length:
                blocks += 1
        return 4 * blocks

    # -- convenience wrappers ------------------------------------------------------

    def secure_packet_sync(
        self, channel, packet: Packet, two_core: bool = False,
        limit: int = 200_000_000,
    ) -> SecuredPacket:
        """Blocking helper: run the whole encrypt path for one packet."""
        done = self.sim.event("secure_packet")
        tasks_nonce = {}

        def proc():
            transfer = yield from self.process_packet(
                channel, packet, Direction.ENCRYPT, two_core=two_core,
                completion=None,
            )
            done.trigger(transfer)

        self.sim.add_process(proc(), name="secure_packet")
        transfer: CompletedTransfer = self.sim.run_until_event(done, limit=limit)
        del tasks_nonce
        return SecuredPacket(
            channel_id=packet.channel_id,
            header=packet.header,
            ciphertext=transfer.payload,
            tag=transfer.tag,
            nonce=b"",
            sequence=packet.sequence,
            completed_cycle=self.sim.now,
        )
