"""The communication controller (paper sections III.A, VI.B).

Sits between the radio's waveforms and the MCCP: formats every packet
(the cores never format data), issues the control-protocol calls,
uploads/downloads FIFO data through the crossbar, reacts to the
``Data Available`` interrupt, and reassembles secured packets.

Since the dataplane refactor everything flows through one submission
pipeline built around :class:`repro.mccp.channel.PacketJob`:

- :meth:`submit_job` formats a packet into a job and enqueues it on
  its channel (no blocking);
- the channel's :class:`repro.mccp.channel.FlushPolicy` decides when
  queued jobs dispatch — a size threshold (``coalesce_limit``) and a
  sim-time idle deadline (``flush_deadline``) so low-traffic channels
  never stall a packet waiting for batch-mates;
- each dispatch pops one batch, charges the modelled control +
  crossbar transfer time, runs the batch engine
  (:meth:`repro.mccp.mccp.Mccp.dispatch_jobs`), and fans completions
  back out to per-packet :class:`CompletedTransfer` records with
  correct per-packet latency accounting;
- with :attr:`CommController.pipelined` set, each dispatch is instead
  *submitted* (:meth:`repro.mccp.mccp.Mccp.dispatch_jobs_async`) and
  the drain keeps coalescing the next batch while thread/process
  workers run the current one — out-of-order wall-clock completion,
  strictly in-order per-channel fan-out, identical bytes and cycle
  stamps (the paper's pipelining lifted to the system level);
- :meth:`process_packet` / :meth:`secure_packet_sync` are thin
  wrappers over the same job abstraction at batch width 1, running on
  the cycle-accurate simulated cores (``via_cores``) — the engine the
  paper's timing numbers come from.

Implemented as simulation processes so upload, core processing and
download genuinely overlap, which is what the multi-core throughput
numbers depend on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

from dataclasses import dataclass, field

from repro.core.params import Algorithm, Direction
from repro.errors import ProtocolError
from repro.mccp.autotune import AutotuneConfig, FlushController
from repro.mccp.channel import Channel, PacketJob
from repro.mccp.mccp import BATCHABLE_ALGORITHMS, Mccp
from repro.mccp.task_scheduler import PendingRequest
from repro.radio.formatting import (
    build_job,
    expected_output_words,
    format_task,
    job_transfer_words,
    parse_output,
)
from repro.radio.packet import Packet, SecuredPacket
from repro.resilience import faults as _faults
from repro.resilience import stats as _resilience_stats
from repro.sim.kernel import Delay, Event, Simulator
from repro.utils.bits import words32_to_bytes


@dataclass
class CompletedTransfer:
    """One finished packet job with parsed outputs.

    ``request`` is set for jobs that ran on the simulated cores;
    batch-engine jobs carry ``request=None`` and reference their
    :class:`PacketJob` instead.  ``channel_id``/``sequence`` identify
    the packet either way.
    """

    request: Optional[PendingRequest] = None
    job: Optional[PacketJob] = None
    channel_id: int = -1
    sequence: int = 0
    payload: bytes = b""
    tag: Optional[bytes] = None
    ok: bool = True
    download_done_cycle: int = 0
    extra: dict = field(default_factory=dict)


class _InflightDispatch:
    """One submitted-but-uncollected batch of the pipelined dataplane.

    ``dispatched_cycle`` is the sim cycle the dispatch *would have
    completed at* on the synchronous dataplane (the cycle after its
    control + crossbar delays, when ``dispatch_jobs`` would have
    returned): completions are stamped with it at reap time, so the
    pipelined dataplane's latency accounting is identical to the
    synchronous one — only wall-clock execution overlaps.
    """

    __slots__ = ("handle", "batch", "dispatched_cycle")

    def __init__(self, handle, batch: List[PacketJob], dispatched_cycle: int):
        self.handle = handle
        self.batch = batch
        self.dispatched_cycle = dispatched_cycle


class CommController:
    """Drives the MCCP on behalf of the radio."""

    def __init__(
        self, sim: Simulator, mccp: Mccp, seed: int = 0, backend=None
    ):
        self.sim = sim
        self.mccp = mccp
        self._seed = seed
        #: Execution backend for batched dispatches (:mod:`repro.crypto
        #: .fast.exec` spec/instance; None defers to the MCCP's own
        #: default and ultimately ``REPRO_BACKEND``).
        self.backend = backend
        self._nonce_counter = seed << 32
        #: Finished transfers: core-path requests key by request id,
        #: batch-path jobs by a negative job counter (-1, -2, ...).
        self.completed: Dict[int, CompletedTransfer] = {}
        #: Per-packet latency records (creation -> download done).
        self.latencies: List[int] = []
        #: The same records keyed by the job's priority class — the
        #: feed for the per-class SLA percentiles (0 = control,
        #: 1 = interactive, 2 = bulk).
        self.class_latencies: Dict[int, List[int]] = {}
        self.auth_failures = 0
        #: NoResourceError retries observed by job-pipeline callers
        #: (radio-side backpressure; see SdrPlatform.run_workload).
        self.backpressure_retries = 0
        #: Per-channel dead-letter queue: failed CompletedTransfers for
        #: jobs that ended unrecoverably (quarantined packet, key-read
        #: exhaustion) — never auth failures, which stay in the normal
        #: completion accounting.  ``transfer.extra['dead_letter']``
        #: carries the reason.
        self.dead_letter: Dict[int, List[CompletedTransfer]] = {}
        # -- flush-policy machinery (batched dispatch) -----------------
        self._jobs_completed = 0
        self._flush_scheduled: Set[int] = set()
        self._draining: Set[int] = set()
        self._drain_done: Dict[int, Event] = {}
        self._deadlines: Dict[int, object] = {}
        # -- pipelined dataplane ---------------------------------------
        #: When True, drains *submit* each dispatch through
        #: :meth:`Mccp.dispatch_jobs_async` and keep going — the
        #: simulator coalesces and flushes the next batch while
        #: thread/process workers run the current one.  Completions fan
        #: out strictly in per-channel submission order whatever
        #: wall-clock order batches finish in, stamped with the cycles
        #: the synchronous dataplane would have stamped.
        self.pipelined = False
        #: Dispatches one channel may keep in flight before its drain
        #: blocks to reap the oldest (bounds handle memory and keeps
        #: backpressure honest).  Under the arena dataplane each
        #: in-flight dispatch also pins one arena generation (its slab
        #: region stays reserved until the handle is reaped), so this
        #: bound doubles as the arena's high-water mark: slab footprint
        #: is at most ``pipeline_depth`` generations per channel.
        self.pipeline_depth = 2
        #: Per-channel FIFO of submitted-but-uncollected dispatches;
        #: the FIFO *is* the in-order fan-out guarantee.
        self._inflight: Dict[int, Deque[_InflightDispatch]] = {}
        #: Peak number of concurrently in-flight dispatches across all
        #: channels (reported by ``run_workload`` as pipeline overlap).
        self.pipeline_in_flight_peak = 0
        # -- adaptive flush controller ---------------------------------
        #: Tuning envelope handed to every lazily-attached
        #: :class:`repro.mccp.autotune.FlushController` (channels whose
        #: policy is ``mode="auto"``).  Replace before traffic flows to
        #: retune windows/bounds for a run.
        self.autotune_config = AutotuneConfig()

    # -- adaptive flush controller -------------------------------------------------

    def _autotuner(self, channel: Channel) -> Optional[FlushController]:
        """The channel's controller, attached lazily on auto policies."""
        if channel.flush_policy.mode != "auto":
            return None
        controller = channel.autotune
        if controller is None:
            controller = FlushController(
                channel.channel_id,
                seed=self._seed,
                config=self.autotune_config,
            )
            channel.autotune = controller
        return controller

    def _observe_flush(self, channel: Channel, cause: str, width: int) -> None:
        """Feed one dispatched batch to the channel's controller."""
        controller = self._autotuner(channel)
        if controller is not None:
            controller.observe_flush(channel, cause, width, self.sim.now)

    # -- nonce management -------------------------------------------------------

    def next_nonce(self, algorithm: Algorithm) -> bytes:
        """Fresh, never-repeating nonce of the mode's radio length."""
        self._nonce_counter += 1
        return self._encode_nonce(algorithm, self._nonce_counter)

    def nonce_for(self, channel: Channel, sequence: int) -> bytes:
        """Deterministic per-(channel, sequence) nonce.

        Unlike the shared :meth:`next_nonce` counter, the value does
        not depend on the interleaving of submissions across channels,
        so a workload replayed through a different dataplane (per-packet
        cores vs batched engine) secures every packet under the same
        nonce — the property the byte-equivalence suite pins.  Unique
        per (seed, channel, sequence), and kept disjoint from the
        :meth:`next_nonce` counter space by the top marker bit (a
        counter value would need seed >= 2^63 to set it), so the two
        issuers can safely share a session key.
        """
        value = (
            (1 << 95)  # marker: deterministic-nonce space
            | ((self._seed & 0x7FFF) << 80)
            | ((channel.channel_id & 0xFFFF) << 64)
            | (sequence & 0xFFFFFFFFFFFFFFFF)
        )
        return self._encode_nonce(channel.algorithm, value)

    @staticmethod
    def _encode_nonce(algorithm: Algorithm, value: int) -> bytes:
        if algorithm is Algorithm.GCM:
            return value.to_bytes(12, "big")
        if algorithm is Algorithm.CCM:
            return value.to_bytes(13, "big")
        if algorithm is Algorithm.CTR:
            return (value << 16).to_bytes(16, "big")
        raise ProtocolError(f"{algorithm!r} takes no nonce")

    # -- unified job submission ----------------------------------------------------

    def submit_job(
        self,
        channel: Channel,
        packet: Packet,
        direction: Direction = Direction.ENCRYPT,
        nonce: Optional[bytes] = None,
        tag: Optional[bytes] = None,
        completion: Optional[Event] = None,
    ) -> PacketJob:
        """Format *packet* into a job and enqueue it (non-blocking).

        The batched half of the pipeline: the job joins its channel's
        coalescing queue and the flush policy decides when it
        dispatches.  Returns the job; its ``completion`` event triggers
        with the :class:`CompletedTransfer` once the dispatch that
        carries it drains.  Channels whose algorithm the batch engine
        cannot run (CTR streams, two-core CCM splits) must go through
        :meth:`process_packet` instead — the same job abstraction on
        the cores engine.
        """
        if channel.algorithm not in BATCHABLE_ALGORITHMS:
            raise ProtocolError(
                f"channel {channel.channel_id} ({channel.algorithm.name}) "
                "cannot use the batched dataplane; submit via process_packet"
            )
        if nonce is None:
            nonce = self.nonce_for(channel, packet.sequence)
        job = build_job(channel, packet, direction, nonce=nonce, tag=tag)
        job.enqueued_cycle = self.sim.now
        job.completion = (
            completion
            if completion is not None
            else self.sim.event(f"job.ch{channel.channel_id}.s{packet.sequence}")
        )
        self.mccp.enqueue_job(channel.channel_id, job)
        controller = self._autotuner(channel)
        if controller is not None:
            # Observed before the policy applies, so a window that
            # closes here retunes the knobs the policy reads next.
            controller.observe_enqueue(channel, job, self.sim.now)
        self._note_enqueue(channel)
        return job

    # -- flush-policy machinery ----------------------------------------------------

    def _note_enqueue(self, channel: Channel) -> None:
        """Apply the channel's flush policy after one enqueue."""
        policy = channel.flush_policy
        if channel.pending_count >= policy.coalesce_limit:
            self._schedule_drain(channel, force=False, cause="size")
        elif policy.flush_deadline is None:
            pass  # size-only: caller drains explicitly at end of stream
        elif policy.flush_deadline == 0:
            self._schedule_drain(channel, force=True, cause="deadline")
        else:
            self._arm_deadline(channel)

    def _arm_deadline(self, channel: Channel) -> None:
        """Ensure a deadline wake-up exists for the oldest queued job."""
        cid = channel.channel_id
        if cid in self._deadlines:
            return
        anchor = channel.oldest_pending_cycle
        if anchor is None:
            return
        due = max(self.sim.now, anchor + channel.flush_policy.flush_deadline)
        self._deadlines[cid] = self.sim.call_at(due, self._deadline_fired, channel)

    def _deadline_fired(self, channel: Channel) -> None:
        self._deadlines.pop(channel.channel_id, None)
        if channel.pending:
            self._schedule_drain(channel, force=True, cause="deadline")

    def _schedule_drain(self, channel: Channel, force: bool, cause: str) -> None:
        """Spawn (at most one) drain process for *channel*."""
        cid = channel.channel_id
        if cid in self._flush_scheduled:
            return
        self._flush_scheduled.add(cid)

        def proc():
            try:
                yield from self._drain_channel(channel, force=force, cause=cause)
            finally:
                self._flush_scheduled.discard(cid)
                self._after_drain(channel)

        self.sim.add_process(proc(), name=f"dataplane.flush.ch{cid}")

    def _after_drain(self, channel: Channel) -> None:
        """Re-apply the policy to whatever is still (or newly) queued."""
        if channel.pending:
            self._note_enqueue(channel)

    def _drain_channel(self, channel: Channel, force: bool, cause: str):
        """Process: pop and dispatch batches per the flush policy.

        The *dispatch* step of the canonical flush lifecycle documented
        on :class:`repro.mccp.channel.FlushPolicy`.  Each dispatch
        charges one scheduler control overhead (the coalesced
        ENCRYPT/DECRYPT instruction — amortised across the batch, which
        is the point of coalescing) plus the crossbar word time of
        everything the batch moves, then runs the batch engine and
        stamps per-packet completions.  ``force`` drains under-filled
        batches (deadline/end-of-stream); otherwise only full batches
        leave.

        With :attr:`pipelined` set, dispatches are *submitted* instead
        of computed in place: the drain keeps popping and submitting
        while workers chew, reaping the oldest handle whenever a
        channel exceeds :attr:`pipeline_depth` — and reaping every
        outstanding handle before a forced drain returns, so
        end-of-stream semantics (and ``close_channel``'s in-flight
        guard) are unchanged.  Reaping is strictly FIFO per channel,
        which is what turns out-of-order wall-clock completion into
        in-order per-channel fan-out.
        """
        cid = channel.channel_id
        while cid in self._draining:
            # Another process is flushing this channel; sleep until its
            # drain-done event instead of polling the sim clock.
            yield self._drain_done[cid]
        transfers: List[CompletedTransfer] = []
        self._draining.add(cid)
        self._drain_done[cid] = self.sim.event(f"dataplane.drained.ch{cid}")
        try:
            # The limit is re-read each iteration: the adaptive
            # controller may widen it at a window boundary mid-drain.
            while channel.pending and (
                force
                or channel.pending_count >= channel.flush_policy.coalesce_limit
            ):
                batch = channel.take_batch()
                # Popped jobs leave `pending` but must stay visible to
                # close_channel until their completions fire — the
                # dispatch is about to yield simulated time.
                channel.in_flight += len(batch)
                handed_off = False
                try:
                    yield self.mccp.scheduler.overhead_delay()
                    words = sum(job_transfer_words(job) for job in batch)
                    yield Delay(words * self.mccp.timing.crossbar_word_cycles)
                    stats = channel.stats
                    if self.pipelined:
                        handle = self.mccp.dispatch_jobs_async(
                            cid, batch, backend=self.backend
                        )
                        queue = self._inflight.setdefault(cid, deque())
                        queue.append(
                            _InflightDispatch(handle, batch, self.sim.now)
                        )
                        handed_off = True
                        stats[f"flush_{cause}"] = (
                            stats.get(f"flush_{cause}", 0) + 1
                        )
                        self._observe_flush(channel, cause, len(batch))
                        depth = sum(
                            len(q) for q in self._inflight.values()
                        )
                        if depth > self.pipeline_in_flight_peak:
                            self.pipeline_in_flight_peak = depth
                        while len(queue) > self.pipeline_depth:
                            transfers.extend(self._reap_oldest(channel))
                    else:
                        results = self.mccp.dispatch_jobs(
                            cid, batch, backend=self.backend
                        )
                        stats[f"flush_{cause}"] = (
                            stats.get(f"flush_{cause}", 0) + 1
                        )
                        self._observe_flush(channel, cause, len(batch))
                        for job, result in zip(batch, results):
                            transfers.append(
                                self._complete_batch_job(job, result)
                            )
                finally:
                    if not handed_off:
                        channel.in_flight -= len(batch)
            if force:
                # A forced drain is a pipeline barrier: everything this
                # channel still has in flight (including batches earlier
                # size-triggered drains left cooking) fans out before we
                # return, so flush_now callers see a fully quiesced
                # channel exactly as they do synchronously.
                while self._inflight.get(cid):
                    transfers.extend(self._reap_oldest(channel))
        finally:
            self._draining.discard(cid)
            self._drain_done.pop(cid).trigger()
        if not channel.pending and cid in self._deadlines:
            self.sim.cancel(self._deadlines.pop(cid))
        return transfers

    def _reap_oldest(self, channel: Channel) -> List[CompletedTransfer]:
        """Collect the channel's oldest in-flight dispatch; fan out.

        Blocks (wall-clock, zero sim time) until the handle resolves —
        the same retries/degradation/quarantine machinery the blocking
        dispatch applies runs here.  Completion records are stamped
        with the dispatch's recorded cycle, not the reap cycle, keeping
        latency accounting byte-identical to the synchronous dataplane.
        """
        queue = self._inflight.get(channel.channel_id)
        if not queue:
            return []
        entry = queue.popleft()
        try:
            results = entry.handle.result()
        finally:
            channel.in_flight -= len(entry.batch)
        return [
            self._complete_batch_job(
                job, result, at_cycle=entry.dispatched_cycle
            )
            for job, result in zip(entry.batch, results)
        ]

    def flush_now(self, channel: Channel):
        """Process: force-drain everything queued on *channel*.

        The *explicit force* trigger of the canonical flush lifecycle
        documented on :class:`repro.mccp.channel.FlushPolicy` — the
        end-of-stream hook for size-only policies and workload tails,
        where waiting out an idle deadline after the last packet would
        charge phantom latency.  Under the pipelined dataplane this is
        also the pipeline barrier: the returned transfers include any
        still-in-flight batches from earlier drains, reaped in
        submission order, so the channel is fully quiesced on return.
        """
        transfers = yield from self._drain_channel(
            channel, force=True, cause="forced"
        )
        return transfers

    def _complete_batch_job(
        self, job: PacketJob, result, at_cycle: Optional[int] = None
    ) -> CompletedTransfer:
        """Fan one batch-engine outcome back out to a per-packet record.

        *at_cycle* backdates the completion stamps to the cycle the
        synchronous dataplane would have completed the job at (the
        pipelined reap path); None stamps the current cycle.
        """
        stamp = self.sim.now if at_cycle is None else at_cycle
        transfer = CompletedTransfer(
            request=None,
            job=job,
            channel_id=job.channel_id,
            sequence=job.sequence,
            payload=result.payload,
            tag=result.tag,
            ok=result.ok,
            download_done_cycle=stamp,
        )
        job.completed_cycle = stamp
        job.transfer = transfer
        self._jobs_completed += 1
        self.completed[-self._jobs_completed] = transfer
        self.latencies.append(stamp - job.created_cycle)
        self.class_latencies.setdefault(job.priority, []).append(
            stamp - job.created_cycle
        )
        if not result.ok:
            if result.error is not None:
                # Unrecoverable failure, not a forged tag: route to the
                # channel's dead-letter queue for SLA drop accounting.
                transfer.extra["dead_letter"] = result.error
                self.dead_letter.setdefault(job.channel_id, []).append(
                    transfer
                )
            else:
                self.auth_failures += 1
        if job.completion is not None and not job.completion.triggered:
            job.completion.trigger(transfer)
        return transfer

    # -- cores engine (cycle-accurate width-1 path) --------------------------------

    def process_packet(
        self,
        channel,
        packet: Packet,
        direction: Direction = Direction.ENCRYPT,
        nonce: Optional[bytes] = None,
        tag: Optional[bytes] = None,
        two_core: bool = False,
        completion: Optional[Event] = None,
    ):
        """Generator process: one packet through the pipeline, width 1.

        Builds the same :class:`PacketJob` the batched path uses and
        runs it on the simulated cores (format, submit, upload, await,
        download) — the cycle-accurate engine.  Triggers *completion*
        (if given) with a :class:`CompletedTransfer`; also records it
        in :attr:`completed`.  Raises :class:`NoResourceError` out of
        the submit step if no core is idle — callers that want queueing
        catch it and retry (see :class:`repro.radio.sdr_platform`).
        """
        if nonce is None:
            nonce = self.next_nonce(channel.algorithm)
        job = build_job(
            channel,
            packet,
            direction,
            nonce=nonce,
            tag=tag,
            two_core=two_core,
            via_cores=True,
        )
        job.completion = completion
        transfer = yield from self._run_core_job(channel, job)
        return transfer

    def _run_core_job(self, channel, job: PacketJob):
        """Generator: carry one job out on the simulated cores."""
        result = format_task(
            channel.algorithm,
            channel.key_bits,
            job.direction,
            nonce=job.nonce,
            aad=job.aad,
            data=job.data,
            tag_length=channel.tag_length,
            tag=job.tag,
            two_core=job.two_core,
        )
        tasks = result if isinstance(result, tuple) else (result,)
        job.enqueued_cycle = self.sim.now
        plan = _faults.active_plan()
        if plan is not None and plan.decide(
            "core_stall", (job.channel_id, job.sequence)
        ):
            # An injected core stall costs simulated cycles only; the
            # job's bytes are untouched and order is preserved because
            # the stall happens before the core is even requested.
            _resilience_stats.record_fault()
            yield Delay(plan.stall_cycles)
        # ENCRYPT/DECRYPT control instruction (scheduler software cost).
        yield self.mccp.scheduler.overhead_delay()
        request = self.mccp.submit(
            channel.channel_id, tasks, job.priority, job=job
        )

        # Upload every task's input stream (one word per crossbar-port
        # cycle).  Encrypt output is drained *while* the core runs: a
        # 2 KB packet plus its tag is 129 blocks, one more than the
        # output FIFO holds, so the hardware communication controller
        # must also read as data becomes available.  Decrypt output is
        # only read after RETRIEVE DATA returns OK (section IV.C).
        out_task = tasks[-1]
        nwords = expected_output_words(out_task)
        sink: List[int] = []
        is_decrypt = job.direction is Direction.DECRYPT
        download = None
        if not is_decrypt and nwords:
            download = self.mccp.crossbar.download_words(
                self.mccp.cores[request.output_core_index], sink, nwords
            )
        for core_index, task in zip(request.core_indices, tasks):
            core = self.mccp.cores[core_index]
            upload = self.mccp.crossbar.upload_blocks(core, task.input_blocks)
            yield upload.done

        # Wait for the core(s) — the Data Available interrupt edge.
        yield request.ready_event

        # RETRIEVE DATA.
        yield self.mccp.scheduler.overhead_delay()
        ok, _rid = self.mccp.scheduler.retrieve(request)
        transfer = CompletedTransfer(
            request=request,
            job=job,
            channel_id=job.channel_id,
            sequence=job.sequence,
            ok=ok,
        )
        if ok:
            if is_decrypt and nwords:
                download = self.mccp.crossbar.download_words(
                    self.mccp.cores[request.output_core_index], sink, nwords
                )
            if download is not None:
                yield download.done
            blocks = [
                words32_to_bytes(sink[i : i + 4]) for i in range(0, len(sink), 4)
            ]
            transfer.payload, transfer.tag = parse_output(out_task, blocks)
        else:
            self.auth_failures += 1
        yield self.mccp.scheduler.overhead_delay()
        self.mccp.scheduler.transfer_done(request)
        transfer.download_done_cycle = self.sim.now
        job.completed_cycle = self.sim.now
        job.transfer = transfer
        self.completed[request.request_id] = transfer
        self.latencies.append(self.sim.now - job.created_cycle)
        self.class_latencies.setdefault(job.priority, []).append(
            self.sim.now - job.created_cycle
        )
        if job.completion is not None and not job.completion.triggered:
            job.completion.trigger(transfer)
        return transfer

    # -- convenience wrappers ------------------------------------------------------

    def secure_packet_sync(
        self, channel, packet: Packet, two_core: bool = False,
        limit: int = 200_000_000,
    ) -> SecuredPacket:
        """Blocking helper: run the whole encrypt path for one packet."""
        done = self.sim.event("secure_packet")

        def proc():
            transfer = yield from self.process_packet(
                channel, packet, Direction.ENCRYPT, two_core=two_core,
            )
            done.trigger(transfer)

        self.sim.add_process(proc(), name="secure_packet")
        transfer: CompletedTransfer = self.sim.run_until_event(done, limit=limit)
        return SecuredPacket(
            channel_id=packet.channel_id,
            header=packet.header,
            ciphertext=transfer.payload,
            tag=transfer.tag,
            nonce=b"",
            sequence=packet.sequence,
            completed_cycle=self.sim.now,
        )
