"""Packet formatting for the cryptographic cores (paper section VI.B).

"The communication controller must format data prior to send them to
the cryptographic cores": the cores only ever see whole 128-bit words
in mode-specific order.  This module produces those input streams and
the matching :class:`repro.core.params.TaskParams`, and parses the
output streams back into bytes.

Input-FIFO layouts (must match the firmware in
:mod:`repro.core.firmware`):

=========================  ==============================================
CTR                        ICB | data…
CBC-MAC                    message blocks…  [+ tag (verify)]
GCM                        0^128 | J0 | AAD… | data… | length | [tag]
CCM (single core)          B0 | AAD… | A1 | data… | A0 | [tag]
CCM two-core, MAC role     B0 | AAD…  [+ data… (encrypt only)]
CCM two-core, CTR role     A1 | data… | A0 | [tag]
Whirlpool                  ISO-padded 512-bit blocks
=========================  ==============================================

The radio uses 12-byte GCM IVs and 13-byte CCM nonces, so GCM's J0
needs no AES and CCM's counter field is exactly the 16 bits the
hardware INC core updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.params import Algorithm, CcmRole, Direction, TaskParams
from repro.crypto.modes.ccm import (
    format_associated_data,
    format_b0,
    format_counter_block,
)
from repro.errors import NonceError, ProtocolError
from repro.utils.bytesops import BLOCK_BYTES, ceil_div, pad_zeros, split_blocks

GCM_IV_BYTES = 12
CCM_NONCE_BYTES = 13


@dataclass(frozen=True)
class FormattedTask:
    """A core-ready task: FIFO input blocks plus the parameter block."""

    params: TaskParams
    input_blocks: List[bytes] = field(default_factory=list)
    #: Bytes of real payload (for output parsing / throughput math).
    payload_bytes: int = 0

    @property
    def input_words(self) -> int:
        """Total 32-bit words pushed to the core's input FIFO."""
        return 4 * len(self.input_blocks)


def _final_block_bytes(length: int) -> int:
    return ((length - 1) % BLOCK_BYTES) + 1 if length else BLOCK_BYTES


def _blocks(data: bytes) -> List[bytes]:
    return split_blocks(pad_zeros(data, BLOCK_BYTES)) if data else []


def format_ctr(key_bits: int, icb: bytes, data: bytes) -> FormattedTask:
    """Format a CTR task (encryption and decryption are identical)."""
    if len(icb) != BLOCK_BYTES:
        raise NonceError(f"CTR initial counter must be 16 bytes, got {len(icb)}")
    blocks = [icb] + _blocks(data)
    params = TaskParams(
        algorithm=Algorithm.CTR,
        key_bits=key_bits,
        data_blocks=ceil_div(len(data), BLOCK_BYTES),
        final_block_bytes=_final_block_bytes(len(data)),
        tag_length=0,
    )
    return FormattedTask(params, blocks, payload_bytes=len(data))


def format_cbc_mac(
    key_bits: int,
    message: bytes,
    direction: Direction,
    tag_length: int = 16,
    expected_tag: Optional[bytes] = None,
) -> FormattedTask:
    """Format a CBC-MAC generate/verify task (whole blocks required)."""
    if not message or len(message) % BLOCK_BYTES:
        raise ProtocolError("CBC-MAC message must be a positive multiple of 16 bytes")
    blocks = split_blocks(message)
    if direction is Direction.DECRYPT:
        if expected_tag is None:
            raise ProtocolError("CBC-MAC verification needs the expected tag")
        blocks.append(pad_zeros(expected_tag, BLOCK_BYTES))
    params = TaskParams(
        algorithm=Algorithm.CBC_MAC,
        key_bits=key_bits,
        data_blocks=len(split_blocks(message)),
        tag_length=tag_length,
        direction=direction,
    )
    return FormattedTask(params, blocks, payload_bytes=len(message))


def format_gcm(
    key_bits: int,
    iv: bytes,
    aad: bytes,
    data: bytes,
    direction: Direction,
    tag_length: int = 16,
    tag: Optional[bytes] = None,
) -> FormattedTask:
    """Format a GCM task (*data* is plaintext or ciphertext per direction)."""
    if len(iv) != GCM_IV_BYTES:
        raise NonceError(f"radio GCM IVs are {GCM_IV_BYTES} bytes, got {len(iv)}")
    j0 = iv + b"\x00\x00\x00\x01"
    length_block = (8 * len(aad)).to_bytes(8, "big") + (8 * len(data)).to_bytes(
        8, "big"
    )
    blocks = [bytes(BLOCK_BYTES), j0] + _blocks(aad) + _blocks(data) + [length_block]
    if direction is Direction.DECRYPT:
        if tag is None:
            raise ProtocolError("GCM decryption needs the received tag")
        blocks.append(pad_zeros(tag, BLOCK_BYTES))
    params = TaskParams(
        algorithm=Algorithm.GCM,
        key_bits=key_bits,
        aad_blocks=ceil_div(len(aad), BLOCK_BYTES),
        data_blocks=ceil_div(len(data), BLOCK_BYTES),
        tag_length=tag_length,
        direction=direction,
        final_block_bytes=_final_block_bytes(len(data)),
    )
    return FormattedTask(params, blocks, payload_bytes=len(data))


def _ccm_pieces(
    nonce: bytes, aad: bytes, data_len: int, tag_length: int
) -> Tuple[bytes, List[bytes], bytes, bytes]:
    if len(nonce) != CCM_NONCE_BYTES:
        raise NonceError(
            f"radio CCM nonces are {CCM_NONCE_BYTES} bytes, got {len(nonce)}"
        )
    b0 = format_b0(nonce, len(aad), data_len, tag_length)
    aad_blocks = split_blocks(format_associated_data(aad)) if aad else []
    a0 = format_counter_block(nonce, 0)
    a1 = format_counter_block(nonce, 1)
    return b0, aad_blocks, a0, a1


def format_ccm_single(
    key_bits: int,
    nonce: bytes,
    aad: bytes,
    data: bytes,
    direction: Direction,
    tag_length: int = 16,
    tag: Optional[bytes] = None,
) -> FormattedTask:
    """Format a single-core CCM task."""
    b0, aad_blocks, a0, a1 = _ccm_pieces(nonce, aad, len(data), tag_length)
    blocks = [b0] + aad_blocks + [a1] + _blocks(data) + [a0]
    if direction is Direction.DECRYPT:
        if tag is None:
            raise ProtocolError("CCM decryption needs the received tag")
        blocks.append(pad_zeros(tag, BLOCK_BYTES))
    params = TaskParams(
        algorithm=Algorithm.CCM,
        key_bits=key_bits,
        aad_blocks=len(aad_blocks),
        data_blocks=ceil_div(len(data), BLOCK_BYTES),
        tag_length=tag_length,
        direction=direction,
        final_block_bytes=_final_block_bytes(len(data)),
    )
    return FormattedTask(params, blocks, payload_bytes=len(data))


def format_ccm_two_core(
    key_bits: int,
    nonce: bytes,
    aad: bytes,
    data: bytes,
    direction: Direction,
    tag_length: int = 16,
    tag: Optional[bytes] = None,
) -> Tuple[FormattedTask, FormattedTask]:
    """Format both halves of a two-core CCM task: (MAC task, CTR task)."""
    b0, aad_blocks, a0, a1 = _ccm_pieces(nonce, aad, len(data), tag_length)
    data_blocks = ceil_div(len(data), BLOCK_BYTES)
    common = dict(
        key_bits=key_bits,
        aad_blocks=len(aad_blocks),
        data_blocks=data_blocks,
        tag_length=tag_length,
        direction=direction,
        final_block_bytes=_final_block_bytes(len(data)),
    )
    mac_blocks = [b0] + aad_blocks
    if direction is Direction.ENCRYPT:
        mac_blocks += _blocks(data)
    mac_task = FormattedTask(
        TaskParams(algorithm=Algorithm.CCM, role=CcmRole.MAC, **common),
        mac_blocks,
        payload_bytes=0,
    )
    ctr_blocks = [a1] + _blocks(data) + [a0]
    if direction is Direction.DECRYPT:
        if tag is None:
            raise ProtocolError("CCM decryption needs the received tag")
        ctr_blocks.append(pad_zeros(tag, BLOCK_BYTES))
    ctr_task = FormattedTask(
        TaskParams(algorithm=Algorithm.CCM, role=CcmRole.CTR, **common),
        ctr_blocks,
        payload_bytes=len(data),
    )
    return mac_task, ctr_task


def format_whirlpool(message: bytes) -> FormattedTask:
    """Format a Whirlpool hashing task (ISO padding done here)."""
    padded = message + b"\x80"
    # Pad so that 32 bytes remain for the 256-bit length field.
    rem = len(padded) % 64
    if rem <= 32:
        padded += b"\x00" * (32 - rem)
    else:
        padded += b"\x00" * (96 - rem)
    padded += (8 * len(message)).to_bytes(32, "big")
    blocks = split_blocks(padded, BLOCK_BYTES)
    params = TaskParams(
        algorithm=Algorithm.WHIRLPOOL,
        data_blocks=len(padded) // 64,
        tag_length=0,
    )
    return FormattedTask(params, blocks, payload_bytes=len(message))


def format_task(
    algorithm: Algorithm,
    key_bits: int,
    direction: Direction,
    *,
    nonce: bytes = b"",
    aad: bytes = b"",
    data: bytes = b"",
    tag_length: int = 16,
    tag: Optional[bytes] = None,
    two_core: bool = False,
):
    """Dispatch to the right formatter; returns one task or a pair."""
    if algorithm is Algorithm.GCM:
        return format_gcm(key_bits, nonce, aad, data, direction, tag_length, tag)
    if algorithm is Algorithm.CCM:
        if two_core:
            return format_ccm_two_core(
                key_bits, nonce, aad, data, direction, tag_length, tag
            )
        return format_ccm_single(
            key_bits, nonce, aad, data, direction, tag_length, tag
        )
    if algorithm is Algorithm.CTR:
        return format_ctr(key_bits, nonce, data)
    if algorithm is Algorithm.CBC_MAC:
        return format_cbc_mac(key_bits, data, direction, tag_length, tag)
    if algorithm is Algorithm.WHIRLPOOL:
        return format_whirlpool(data)
    raise ProtocolError(f"unknown algorithm {algorithm!r}")


def build_job(
    channel,
    packet,
    direction: Direction,
    *,
    nonce: bytes,
    tag: Optional[bytes] = None,
    two_core: bool = False,
    via_cores: bool = False,
):
    """Format a radio packet into a dataplane :class:`PacketJob`.

    The first step of the unified submission pipeline: the
    communication controller turns the red-side packet into the one
    job record both execution engines understand (header = AAD,
    payload = data, per-packet nonce and QoS/latency bookkeeping).
    The caller stamps ``created_cycle``/``enqueued_cycle``; formatting
    knows nothing about simulated time.
    """
    from repro.mccp.channel import PacketJob

    return PacketJob(
        direction=direction,
        nonce=bytes(nonce),
        data=bytes(packet.payload),
        aad=bytes(packet.header),
        tag=None if tag is None else bytes(tag),
        channel_id=channel.channel_id,
        sequence=packet.sequence,
        priority=packet.priority,
        created_cycle=packet.created_cycle,
        via_cores=via_cores,
        two_core=two_core,
    )


def expected_output_words(task: FormattedTask) -> int:
    """32-bit words a core emits for *task* (drain sizing).

    Formatting knowledge, not protocol knowledge: the communication
    controller sizes its FIFO drains with this, mirroring how the
    hardware controller derives transfer lengths from the parameter
    block it wrote.
    """
    params = task.params
    if params.algorithm is Algorithm.WHIRLPOOL:
        return 16  # 64-byte digest
    if params.algorithm is Algorithm.CBC_MAC:
        blocks = 1 if params.direction is Direction.ENCRYPT else 0
    else:
        blocks = params.data_blocks
        if params.direction is Direction.ENCRYPT and params.tag_length:
            blocks += 1
    return 4 * blocks


def job_transfer_words(job) -> int:
    """32-bit words one batched job moves through the external port.

    The coalesced-dispatch timing model: nonce/parameter material plus
    AAD and data blocks in, payload blocks (and the tag on encrypt)
    out.  Deliberately the same block arithmetic the per-packet
    formatters use, so a width-1 batch charges transfer time comparable
    to the core path's upload/download phases.
    """
    aad_blocks = ceil_div(len(job.aad), BLOCK_BYTES)
    data_blocks = ceil_div(len(job.data), BLOCK_BYTES)
    words_in = 4 * (1 + aad_blocks + data_blocks)  # nonce/param block + streams
    words_out = 4 * data_blocks
    if job.direction is Direction.ENCRYPT:
        words_out += 4  # masked tag block
    return words_in + words_out


def parse_output(
    task: FormattedTask, output_blocks: List[bytes]
) -> Tuple[bytes, Optional[bytes]]:
    """Split a core's output stream into (payload, tag).

    Encrypt tasks emit ``data_blocks`` payload blocks then a masked tag
    block; decrypt tasks emit payload only (the tag was verified
    in-core); MAC-only tasks emit just the tag block.
    """
    params = task.params
    n = params.data_blocks if params.algorithm is not Algorithm.CBC_MAC else 0
    if params.algorithm is Algorithm.WHIRLPOOL:
        return b"".join(output_blocks), None
    payload = b"".join(output_blocks[:n])[: task.payload_bytes]
    rest = output_blocks[n:]
    tag = rest[0][: params.tag_length] if rest and params.tag_length else None
    return payload, tag
