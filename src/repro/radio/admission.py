"""Admission control and prioritized load shedding.

The overload-protection decision point of the dataplane: before a
packet is formatted into a job, the :class:`AdmissionController`
answers **admit / defer / shed** from three deterministic inputs —

- the target channel's bounded-queue state (depth against its high
  watermark, and the sticky :attr:`~repro.mccp.channel.Channel
  .under_pressure` hysteresis flag between the low and high marks),
- a token bucket refilled in *simulated* cycles (the sustained-rate
  limit; burst capacity absorbs spikes), and
- the packet's priority class (``0`` = control, ``1`` = interactive,
  ``2`` = bulk — lower is more important, matching
  :attr:`repro.radio.packet.Packet.priority`).

Shedding is *lowest priority first*: while a channel is under pressure
only bulk-class traffic sheds; at the high watermark everything above
the protected class sheds and control defers instead.  Every decision
is a pure function of simulation state, so the shed set is identical
across repeated runs, execution backends and dataplanes — the
reproducibility invariant the overload suite pins.  Shed packets are
accounted here (never as auth failures or dead letters) and the exact
``(channel, sequence)`` set is exposed for byte-identity checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mccp.channel import Channel
from repro.sim.kernel import Delay

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmissionController",
    "TokenBucket",
    "PRIORITY_CLASS_NAMES",
    "priority_class_name",
]

#: Canonical names of the three priority classes (control > interactive
#: > bulk; lower integer = more important).
PRIORITY_CLASS_NAMES: Dict[int, str] = {
    0: "control",
    1: "interactive",
    2: "bulk",
}


def priority_class_name(priority: int) -> str:
    """Human name for a priority class (``"p<N>"`` beyond the three)."""
    return PRIORITY_CLASS_NAMES.get(priority, f"p{priority}")


class AdmissionDecision(enum.Enum):
    """Outcome of one per-packet admission check."""

    #: Enqueue now.
    ADMIT = "admit"
    #: Wait :attr:`AdmissionPolicy.defer_cycles` and re-decide.
    DEFER = "defer"
    #: Drop the packet (accounted, reproducible; never an error).
    SHED = "shed"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for one :class:`AdmissionController`."""

    #: Sustained admission rate in packets per 1000 simulated cycles
    #: (None = no rate limit; watermark shedding still applies).
    rate_per_kcycle: Optional[float] = None
    #: Token-bucket burst capacity in packets.
    burst: int = 32
    #: Cycles a deferred packet waits before it is re-decided.
    defer_cycles: int = 200
    #: Defers one packet may accumulate before it sheds anyway
    #: ("defer_budget" cause) — bounds head-of-line blocking.
    max_defers: int = 8
    #: Classes <= this value are never shed by watermark pressure;
    #: they defer instead (0 protects control only).
    protect_priority: int = 0
    #: Classes >= this value shed while a channel is under pressure
    #: (between the low and high watermarks, hysteresis); at the high
    #: watermark every unprotected class sheds.
    shed_first_priority: int = 2

    def __post_init__(self) -> None:
        if self.rate_per_kcycle is not None and self.rate_per_kcycle <= 0:
            raise ValueError(
                f"rate_per_kcycle must be > 0 or None, got "
                f"{self.rate_per_kcycle}"
            )
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.defer_cycles < 1:
            raise ValueError(
                f"defer_cycles must be >= 1, got {self.defer_cycles}"
            )
        if self.max_defers < 0:
            raise ValueError(
                f"max_defers must be >= 0, got {self.max_defers}"
            )
        if self.shed_first_priority <= self.protect_priority:
            raise ValueError(
                "shed_first_priority must exceed protect_priority "
                f"(got {self.shed_first_priority} <= "
                f"{self.protect_priority})"
            )


class TokenBucket:
    """Deterministic token bucket refilled by simulated cycles.

    Starts full.  ``take(now)`` refills ``rate * elapsed`` tokens
    (fractional accumulation, capped at ``burst``) and consumes one if
    available.  Everything derives from the sim clock, so replays are
    exact whatever wall-clock the backends take.
    """

    def __init__(self, rate_per_cycle: float, burst: int):
        self.rate = rate_per_cycle
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_cycle = 0

    def take(self, now: int) -> bool:
        """Consume one token at sim-cycle *now* (False = empty)."""
        if now > self._last_cycle:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last_cycle) * self.rate
            )
            self._last_cycle = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class _ShedRecord:
    """One shed packet (the reproducible accounting unit)."""

    channel_id: int
    sequence: int
    priority: int
    cause: str  # "watermark", "pressure", or "defer_budget"


class AdmissionController:
    """Per-run admit/defer/shed decisions plus their accounting."""

    def __init__(self, policy: AdmissionPolicy):
        self.policy = policy
        self._bucket: Optional[TokenBucket] = None
        if policy.rate_per_kcycle is not None:
            self._bucket = TokenBucket(
                policy.rate_per_kcycle / 1000.0, policy.burst
            )
        #: Admitted packets per priority class.
        self.admitted: Dict[int, int] = {}
        #: Total defer waits taken (a packet may defer several times).
        self.deferrals = 0
        #: Shed packets, in decision order.
        self.shed_log: List[_ShedRecord] = []

    # -- decision ----------------------------------------------------------

    def decide(
        self, channel: Channel, priority: int, now: int
    ) -> AdmissionDecision:
        """One admission check (consumes a token only on ADMIT)."""
        policy = self.policy
        if channel.capacity is not None:
            depth = channel.pending_count
            if depth >= channel.capacity:
                # High watermark: shed everything unprotected, defer
                # the protected (control) classes.
                if priority > policy.protect_priority:
                    return AdmissionDecision.SHED
                return AdmissionDecision.DEFER
            if (
                channel.under_pressure
                and priority >= policy.shed_first_priority
            ):
                # Hysteresis band: lowest classes shed first so the
                # queue drains for the traffic that matters.
                return AdmissionDecision.SHED
        if self._bucket is not None and not self._bucket.take(now):
            return AdmissionDecision.DEFER
        return AdmissionDecision.ADMIT

    # -- accounting --------------------------------------------------------

    def note_admitted(self, priority: int) -> None:
        self.admitted[priority] = self.admitted.get(priority, 0) + 1

    def note_shed(
        self, channel_id: int, sequence: int, priority: int, cause: str
    ) -> None:
        self.shed_log.append(
            _ShedRecord(channel_id, sequence, priority, cause)
        )

    def shed_set(self) -> frozenset:
        """The exact shed set as ``(channel_id, sequence)`` pairs."""
        return frozenset((r.channel_id, r.sequence) for r in self.shed_log)

    def shed_by_class(self) -> Dict[int, int]:
        """Shed counts per priority class."""
        out: Dict[int, int] = {}
        for record in self.shed_log:
            out[record.priority] = out.get(record.priority, 0) + 1
        return out

    def shed_causes(self) -> Dict[str, int]:
        """Shed counts per cause (watermark/pressure/defer_budget)."""
        out: Dict[str, int] = {}
        for record in self.shed_log:
            out[record.cause] = out.get(record.cause, 0) + 1
        return out

    # -- the producer-side gate -------------------------------------------

    def gate(self, sim, channel: Channel, priority: int, sequence: int):
        """Generator: defer in sim time until ADMIT (True) or SHED (False).

        The one admission loop every producer (workload channel
        processes, session processes) runs: deciding, sleeping out
        defers, and accounting the shed — so the defer budget and shed
        causes cannot drift between the dataplanes.  The caller
        enqueues only on a True return (and must call
        :meth:`note_admitted` once the enqueue succeeds).
        """
        defers = 0
        while True:
            decision = self.decide(channel, priority, sim.now)
            if decision is AdmissionDecision.ADMIT:
                return True
            if decision is AdmissionDecision.SHED:
                cause = (
                    "watermark"
                    if channel.capacity is not None
                    and channel.pending_count >= channel.capacity
                    else "pressure"
                )
                self.note_shed(channel.channel_id, sequence, priority, cause)
                return False
            if defers >= self.policy.max_defers:
                self.note_shed(
                    channel.channel_id, sequence, priority, "defer_budget"
                )
                return False
            defers += 1
            self.deferrals += 1
            yield Delay(self.policy.defer_cycles)
