"""Parallel scenario-sweep subsystem (ISSUE 2's tentpole).

Turns the repo's one-off benchmarks into declarative, reproducible
experiment campaigns:

- :mod:`repro.experiments.scenario` — the :class:`Scenario` dataclass,
  the ``@register`` decorator and the global registry;
- :mod:`repro.experiments.scenarios` — the built-in library (paper
  tables, scheduling, scaling, ablation, mixed radio traffic, mode
  mixes, key churn, reconfiguration storms, timing kernels);
- :mod:`repro.experiments.runner` — the multiprocessing sweep runner
  with per-case derived seeds (serial == parallel, guaranteed);
- :mod:`repro.experiments.artifacts` — JSON/CSV artifacts and the
  baseline ``compare`` gate CI runs on every PR.

CLI::

    python -m repro.experiments list
    python -m repro.experiments run all --quick --parallel 4
    python -m repro.experiments compare RUN.json benchmarks/BENCH_x.json
"""

from repro.experiments.artifacts import (
    ComparisonReport,
    compare,
    load_artifact,
    write_artifact,
)
from repro.experiments.runner import run_sweep
from repro.experiments.scenario import (
    REGISTRY,
    Scenario,
    case_seed,
    get,
    names,
    register,
    resolve,
)

__all__ = [
    "REGISTRY",
    "Scenario",
    "ComparisonReport",
    "case_seed",
    "compare",
    "get",
    "load_artifact",
    "names",
    "register",
    "resolve",
    "run_sweep",
    "write_artifact",
]
