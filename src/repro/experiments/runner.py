"""The sweep runner: fan scenario cases out across worker processes.

The unit of work is one *case* — ``(scenario, case_index, params,
seed)`` — so a sweep over many scenarios parallelises across the whole
campaign, not per scenario.  Cases are generated in deterministic order,
seeds are derived per case with :func:`repro.experiments.scenario.
case_seed`, and results are reassembled by ``(scenario, case_index)``,
which is why a parallel run is byte-identical to a serial run of the
same seeded sweep (the property ``tests/experiments/test_runner.py``
locks in).

Worker isolation: every scenario builds its own :class:`Simulator`, so
simulation state never leaks between cases; the process-global crypto
memo caches (AES key-schedule LRU, GHASH Shoup tables) are cleared via
:func:`repro.crypto.fast.clear_caches` before each *timing*-tagged case
so ops/s numbers never depend on which cases shared the worker.
"""

from __future__ import annotations

import datetime
import multiprocessing
import os
import platform
from typing import Dict, List, Sequence, Tuple

from repro.crypto.fast import clear_caches, fast_enabled
from repro.crypto.fast.aes_vector import HAVE_NUMPY
from repro.crypto.fast.exec import default_backend
from repro.errors import ExperimentError
from repro.experiments.scenario import Metrics, Scenario, case_seed, get, resolve
from repro.resilience import stats as resilience_stats

#: One unit of work: (scenario name, case index, params, seed, quick).
RunUnit = Tuple[str, int, Dict[str, object], int, bool]

#: JSON-safe scalar types a scenario may return as metric values.
_SCALARS = (bool, int, float, str)


def build_units(
    scenarios: Sequence[Scenario], quick: bool, base_seed: int
) -> List[RunUnit]:
    """Expand scenarios into the sweep's ordered work list."""
    units: List[RunUnit] = []
    for scenario in scenarios:
        for index, params in enumerate(scenario.cases(quick)):
            units.append(
                (
                    scenario.name,
                    index,
                    params,
                    case_seed(base_seed, scenario.name, index),
                    quick,
                )
            )
    return units


def execute_unit(unit: RunUnit) -> Tuple[str, int, Metrics]:
    """Run one case (in this process); validates the metrics contract.

    Top-level (not a closure) so it pickles by reference into
    multiprocessing workers under both fork and spawn start methods.
    """
    name, index, params, seed, quick = unit
    scenario = get(name)
    if "timing" in scenario.tags:
        clear_caches()
    metrics = scenario.fn(dict(params), seed, quick)
    if not isinstance(metrics, dict) or not metrics:
        raise ExperimentError(
            f"scenario {name!r} returned {type(metrics).__name__}, "
            "expected a non-empty metrics dict"
        )
    for key, value in metrics.items():
        if not isinstance(value, _SCALARS):
            raise ExperimentError(
                f"scenario {name!r} metric {key!r} is "
                f"{type(value).__name__}; metrics must be JSON-safe scalars"
            )
    return name, index, metrics


def run_sweep(
    spec,
    quick: bool = False,
    parallel: int = 1,
    base_seed: int = 0,
) -> Dict[str, object]:
    """Run the sweep *spec* and return the artifact dict.

    ``parallel <= 1`` runs in-process; otherwise a worker pool of that
    size executes the case list.  Either way the result is assembled in
    case order, so the artifact is independent of scheduling.
    """
    scenarios = resolve(spec)
    units = build_units(scenarios, quick, base_seed)
    if parallel > 1 and len(units) > 1:
        with multiprocessing.get_context().Pool(min(parallel, len(units))) as pool:
            outcomes = pool.map(execute_unit, units)
    else:
        outcomes = [execute_unit(unit) for unit in units]

    by_case = {(name, index): metrics for name, index, metrics in outcomes}
    scenario_block: Dict[str, object] = {}
    for scenario in scenarios:
        cases = []
        for unit_name, case_index, params, seed, _ in units:
            if unit_name != scenario.name:
                continue
            cases.append(
                {
                    "params": params,
                    "seed": seed,
                    "metrics": by_case[(scenario.name, case_index)],
                }
            )
        scenario_block[scenario.name] = {
            "title": scenario.title,
            "tags": list(scenario.tags),
            "timing_metrics": list(scenario.timing_metrics),
            "cases": cases,
        }

    return {
        "schema": "repro.experiments/1",
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fast_enabled": fast_enabled(),
        "have_numpy": HAVE_NUMPY,
        # Execution-backend context (cross-machine honesty for the
        # backend-parametrized kernels and the backend_sweep scenario).
        "backend": default_backend().name,
        "cpu_count": os.cpu_count(),
        # Recovery counters accrued in this (parent) process during the
        # sweep — chaos legs and any incidental degradations leave their
        # fingerprint in the artifact next to the backend metadata.
        "resilience": resilience_stats.snapshot(),
        "quick": quick,
        "base_seed": base_seed,
        "parallel": parallel,
        "scenarios": scenario_block,
    }
