"""Artifact emission and baseline comparison for experiment sweeps.

Two artifact schemas are understood:

- ``repro.experiments/1`` — the sweep artifact :func:`repro.
  experiments.runner.run_sweep` produces (JSON, plus a flat CSV twin
  for spreadsheet/pandas consumption).
- the legacy ``BENCH_<date>.json`` snapshots ``benchmarks/run_bench.py``
  has emitted since PR 1 — these are the committed perf baselines, and
  :func:`compare` accepts them directly so CI can gate a fresh sweep
  against them without a migration step.

Comparison semantics (the CI contract)
--------------------------------------
Deterministic metrics — simulated cycles, throughput derived from
cycles, correctness booleans, output digests — must match the baseline
within ``tolerance`` (exact for bools/strings); a mismatch is a
**failure** and :func:`ComparisonReport.exit_code` returns 1.  Metrics a
scenario declares as ``timing_metrics`` (wall-clock ops/s) only ever
**warn** on drift: shared CI runners make timing noisy, and a perf
regression should page a human, not flake the merge queue.  Crypto
correctness, by contrast, fails hard — that is the point of the gate.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ExperimentError

#: Relative drift allowed on deterministic numeric metrics.
DEFAULT_TOLERANCE = 0.02
#: Relative drift on wall-clock metrics before a warning is emitted.
DEFAULT_PERF_TOLERANCE = 0.5


def write_artifact(
    artifact: Dict[str, object], out_dir, stem: Optional[str] = None
) -> Tuple[Path, Path]:
    """Write the sweep artifact as ``<stem>.json`` + ``<stem>.csv``.

    Returns ``(json_path, csv_path)``.  The default stem embeds the run
    date (``SWEEP_<date>``), mirroring the ``BENCH_<date>`` convention.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = stem or f"SWEEP_{artifact['date']}"
    json_path = out_dir / f"{stem}.json"
    csv_path = out_dir / f"{stem}.csv"
    json_path.write_text(json.dumps(artifact, indent=2) + "\n")
    with csv_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["scenario", "case", "params", "seed", "metric", "value"])
        for name, block in artifact["scenarios"].items():
            for index, case in enumerate(block["cases"]):
                params = json.dumps(case["params"], sort_keys=True)
                for metric, value in case["metrics"].items():
                    writer.writerow(
                        [name, index, params, case["seed"], metric, value]
                    )
    return json_path, csv_path


def load_artifact(path) -> Dict[str, object]:
    """Load a JSON artifact (sweep or legacy bench schema)."""
    path = Path(path)
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot load artifact {path}: {exc}") from exc


@dataclass
class ComparisonReport:
    """Outcome of a run-vs-baseline comparison."""

    run_path: str
    baseline_path: str
    checked: int = 0
    failures: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the run passed the gate (warnings allowed)."""
        return not self.failures

    def exit_code(self) -> int:
        """CLI exit status: 0 on pass (warnings allowed), 1 on failure."""
        return 0 if self.ok else 1

    def render(self) -> str:
        """Human-readable summary for the CLI / CI log."""
        lines = [
            f"compare: {self.run_path} vs baseline {self.baseline_path}",
            f"  {self.checked} metric(s) checked, "
            f"{len(self.failures)} failure(s), {len(self.warnings)} warning(s)",
        ]
        lines.extend(f"  FAIL  {msg}" for msg in self.failures)
        lines.extend(f"  warn  {msg}" for msg in self.warnings)
        lines.append("RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _relative_drift(value: float, base: float) -> float:
    if base == 0:
        return 0.0 if value == 0 else float("inf")
    return abs(value - base) / abs(base)


def compare(
    run: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
    perf_tolerance: float = DEFAULT_PERF_TOLERANCE,
    strict_perf: bool = False,
    run_path: str = "<run>",
    baseline_path: str = "<baseline>",
) -> ComparisonReport:
    """Compare a sweep *run* against a *baseline* artifact.

    The baseline may be another sweep artifact or a legacy
    ``BENCH_*.json`` snapshot.  ``strict_perf`` promotes timing-drift
    warnings to failures (for dedicated perf runners where the clock can
    be trusted).
    """
    report = ComparisonReport(run_path=run_path, baseline_path=baseline_path)
    if "scenarios" not in run:
        raise ExperimentError(
            "run artifact is not a sweep artifact (missing 'scenarios'); "
            "the left-hand side of compare must come from "
            "'repro.experiments run'"
        )
    if "scenarios" in baseline:
        _compare_sweep(run, baseline, tolerance, perf_tolerance, strict_perf, report)
    elif "benchmarks" in baseline:
        _compare_legacy_bench(run, baseline, perf_tolerance, strict_perf, report)
    else:
        raise ExperimentError(
            "baseline artifact has neither 'scenarios' nor 'benchmarks'"
        )
    return report


def _compare_metric(
    where: str,
    metric: str,
    value,
    base,
    is_timing: bool,
    tolerance: float,
    perf_tolerance: float,
    strict_perf: bool,
    report: ComparisonReport,
) -> None:
    report.checked += 1
    if is_timing:
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            return
        drift = _relative_drift(float(value), float(base))
        if drift > perf_tolerance:
            message = (
                f"{where} {metric}: {value} vs baseline {base} "
                f"({drift:.0%} drift > {perf_tolerance:.0%})"
            )
            if strict_perf:
                report.failures.append(message)
            else:
                report.warnings.append(message)
        return
    if isinstance(base, bool) or isinstance(base, str):
        if value != base:
            report.failures.append(f"{where} {metric}: {value!r} != {base!r}")
    elif isinstance(base, (int, float)):
        drift = _relative_drift(float(value), float(base))
        if drift > tolerance:
            report.failures.append(
                f"{where} {metric}: {value} vs baseline {base} "
                f"({drift:.1%} drift > {tolerance:.1%})"
            )


def _compare_sweep(run, baseline, tolerance, perf_tolerance, strict_perf, report):
    run_scenarios = run["scenarios"]
    for name, base_block in baseline["scenarios"].items():
        run_block = run_scenarios.get(name)
        if run_block is None:
            report.failures.append(f"scenario {name!r} missing from run")
            continue
        timing = tuple(base_block.get("timing_metrics", ()))
        base_cases = {
            json.dumps(case["params"], sort_keys=True): case
            for case in base_block["cases"]
        }
        run_cases = {
            json.dumps(case["params"], sort_keys=True): case
            for case in run_block["cases"]
        }
        for key, base_case in base_cases.items():
            run_case = run_cases.get(key)
            if run_case is None:
                # Quick runs legitimately cover a sub-grid of a full
                # baseline; a missing case is only a coverage warning.
                report.warnings.append(f"{name} case {key} not in run")
                continue
            where = f"{name}{base_case['params']}"
            for metric, base_value in base_case["metrics"].items():
                if metric not in run_case["metrics"]:
                    report.failures.append(f"{where} metric {metric!r} missing")
                    continue
                is_timing = any(
                    metric == t or metric.endswith(t) for t in timing
                )
                _compare_metric(
                    where,
                    metric,
                    run_case["metrics"][metric],
                    base_value,
                    is_timing,
                    tolerance,
                    perf_tolerance,
                    strict_perf,
                    report,
                )


def _compare_legacy_bench(run, baseline, perf_tolerance, strict_perf, report):
    """Gate a sweep against a committed ``BENCH_*.json`` snapshot.

    The sweep's ``bench_kernels`` scenario measures the same kernels
    (same names) and adds a cross-path ``correct`` bool per kernel;
    correctness failures gate hard, ops/s drift warns.
    """
    block = run["scenarios"].get("bench_kernels")
    if block is None:
        raise ExperimentError(
            "legacy bench baseline given but the run has no 'bench_kernels' "
            "scenario; run it (or 'all') first"
        )
    by_kernel = {case["params"]["kernel"]: case for case in block["cases"]}
    for kernel, entry in baseline["benchmarks"].items():
        case = by_kernel.get(kernel)
        if case is None:
            report.failures.append(f"kernel {kernel!r} missing from run")
            continue
        metrics = case["metrics"]
        report.checked += 1
        if metrics.get("correct") is not True:
            report.failures.append(
                f"bench_kernels[{kernel}] correctness check failed"
            )
        _compare_metric(
            f"bench_kernels[{kernel}]",
            "ops_per_s",
            metrics.get("ops_per_s", 0.0),
            entry["ops_per_s"],
            True,
            0.0,
            perf_tolerance,
            strict_perf,
            report,
        )
