"""CLI for the experiment-sweep subsystem.

Commands::

    python -m repro.experiments list
    python -m repro.experiments run <name|all>[,name...] \
        [--parallel N] [--quick] [--seed S] [--out DIR]
    python -m repro.experiments compare RUN.json BASELINE.json \
        [--tolerance F] [--perf-tolerance F] [--strict-perf]

``run`` writes ``SWEEP_<date>.json`` + ``.csv`` under ``--out``
(default ``benchmarks/experiments/``) and prints one table per
scenario.  ``compare`` accepts either another sweep artifact or a
committed legacy ``BENCH_*.json`` snapshot as the baseline and exits
non-zero only on deterministic-metric or correctness regressions.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.tables import render_table
from repro.errors import ExperimentError
from repro.experiments.artifacts import (
    DEFAULT_PERF_TOLERANCE,
    DEFAULT_TOLERANCE,
    compare,
    load_artifact,
    write_artifact,
)
from repro.experiments.runner import run_sweep
from repro.experiments.scenario import get, names

DEFAULT_OUT = Path("benchmarks") / "experiments"


def _print_summary(artifact) -> None:
    for name, block in artifact["scenarios"].items():
        cases = block["cases"]
        param_names = sorted({p for case in cases for p in case["params"]})
        metric_names = sorted({m for case in cases for m in case["metrics"]})
        rows = []
        for case in cases:
            rows.append(
                [str(case["params"].get(p, "")) for p in param_names]
                + [str(case["metrics"].get(m, "")) for m in metric_names]
            )
        print()
        print(
            render_table(
                param_names + metric_names,
                rows,
                title=f"{name}: {block['title']}",
            )
        )


def _cmd_list(args) -> int:
    rows = []
    for name in names():
        scenario = get(name)
        rows.append(
            (
                name,
                scenario.case_count(quick=False),
                scenario.case_count(quick=True),
                ",".join(scenario.tags) or "-",
                scenario.title,
            )
        )
    print(
        render_table(
            ["scenario", "cases", "quick", "tags", "title"],
            rows,
            title="registered scenarios",
        )
    )
    return 0


def _cmd_run(args) -> int:
    artifact = run_sweep(
        args.scenarios,
        quick=args.quick,
        parallel=args.parallel,
        base_seed=args.seed,
    )
    _print_summary(artifact)
    json_path, csv_path = write_artifact(artifact, args.out, stem=args.stem)
    print(f"\nwrote {json_path}\nwrote {csv_path}")
    return 0


def _cmd_compare(args) -> int:
    report = compare(
        load_artifact(args.run),
        load_artifact(args.baseline),
        tolerance=args.tolerance,
        perf_tolerance=args.perf_tolerance,
        strict_perf=args.strict_perf,
        run_path=str(args.run),
        baseline_path=str(args.baseline),
    )
    print(report.render())
    return report.exit_code()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios")

    run_parser = sub.add_parser("run", help="run a sweep")
    run_parser.add_argument(
        "scenarios",
        nargs="+",
        help="'all', scenario names, or comma-separated lists of names",
    )
    run_parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (1 = serial, same results either way)",
    )
    run_parser.add_argument(
        "--quick", action="store_true", help="reduced grids / short windows"
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="base seed for per-case seeds"
    )
    run_parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="artifact directory (default benchmarks/experiments/)",
    )
    run_parser.add_argument(
        "--stem", default=None, help="artifact file stem (default SWEEP_<date>)"
    )

    cmp_parser = sub.add_parser("compare", help="diff a run against a baseline")
    cmp_parser.add_argument("run", type=Path, help="sweep artifact JSON")
    cmp_parser.add_argument(
        "baseline", type=Path, help="sweep artifact or legacy BENCH_*.json"
    )
    cmp_parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative drift allowed on deterministic metrics",
    )
    cmp_parser.add_argument(
        "--perf-tolerance",
        type=float,
        default=DEFAULT_PERF_TOLERANCE,
        help="relative drift on timing metrics before warning",
    )
    cmp_parser.add_argument(
        "--strict-perf",
        action="store_true",
        help="promote timing-drift warnings to failures",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        return _cmd_compare(args)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
