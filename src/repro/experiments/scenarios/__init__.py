"""Built-in scenario library.

Importing this package populates the registry (each module registers
its scenarios at import time).  Worker processes import it lazily via
``repro.experiments.scenario._ensure_builtin_scenarios``, so the
registry is identical under fork and spawn start methods.
"""

from repro.experiments.scenarios import (  # noqa: F401  (registration imports)
    autotune,
    backends,
    batch,
    bench,
    chaos,
    overload,
    pipelined,
    platform,
    radio,
    stress,
    tables,
)
