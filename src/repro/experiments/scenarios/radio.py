"""The batched radio dataplane as a sweepable scenario.

Drives realistic multi-channel radio traffic end to end through the
coalescing pipeline — ``SdrPlatform.run_workload(dataplane="batched")``
→ per-channel job queues → :class:`repro.mccp.channel.FlushPolicy` →
:mod:`repro.crypto.fast.batch` — sweeping the three knobs that shape
it: coalesce width, channel count and the sim-time idle deadline.
Every secured packet is cross-checked against the sequential one-call
fast APIs, and the metrics are simulated-cycle deterministic, so a
baseline comparison fails hard on any divergence: this is the
sweep-level twin of ``tests/radio/test_dataplane.py``.
"""

from __future__ import annotations

import hashlib

from repro.core.params import Algorithm
from repro.crypto.fast.bulk import ccm_seal, gcm_seal
from repro.experiments.scenario import register
from repro.experiments.scenarios._util import deterministic_bytes
from repro.mccp.channel import FlushPolicy
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern

#: CCM-heavy channel rotation (the paper's WiFi/WiMax traffic is CCM;
#: SATCOM/voice add the GCM lanes and the small-packet tail).
_ROTATION = (
    (RadioStandard.WIFI, TrafficPattern.SATURATING),
    (RadioStandard.WIMAX, TrafficPattern.SATURATING),
    (RadioStandard.SATCOM, TrafficPattern.BURSTY),
    (RadioStandard.TACTICAL_VOICE, TrafficPattern.CBR),
)


@register(
    name="radio_batch",
    title="Batched radio dataplane: coalesce width x channels x deadline",
    description="Multi-channel CCM/GCM radio traffic through the "
    "job-coalescing pipeline, swept over flush-policy knobs and "
    "verified packet-by-packet against the sequential fast path.",
    grid={
        "coalesce": [1, 8, 32],
        "channels": [4, 8],
        "deadline": [0, 4096, 32768],
    },
    quick_grid={"coalesce": [1, 32], "channels": [8], "deadline": [4096]},
    tags=("radio", "batch", "dataplane"),
)
def radio_batch(params, seed, quick):
    """One flush-policy point: run, verify, report coalescing stats."""
    packets = 8 if quick else 24
    configs = []
    for index in range(params["channels"]):
        standard, pattern = _ROTATION[index % len(_ROTATION)]
        key_bytes = 32 if standard is RadioStandard.SATCOM else 16
        configs.append(
            ChannelConfig(
                standard,
                deterministic_bytes(key_bytes, seed + index),
                pattern,
                packets=packets,
            )
        )
    platform = SdrPlatform(core_count=4, seed=seed)
    report = platform.run_workload(
        configs,
        dataplane="batched",
        flush_policy=FlushPolicy(
            coalesce_limit=params["coalesce"],
            flush_deadline=params["deadline"],
        ),
    )

    channels = platform.mccp.scheduler.channels
    digest = hashlib.sha256()
    matches = 0
    transfers = sorted(
        (t for t in platform.comm.completed.values() if t.job is not None),
        key=lambda t: (t.channel_id, t.sequence),
    )
    for transfer in transfers:
        job = transfer.job
        channel = channels[transfer.channel_id]
        key = platform.mccp.key_memory.fetch_for_scheduler(channel.key_id)
        seal = gcm_seal if channel.algorithm is Algorithm.GCM else ccm_seal
        expected = seal(key, job.nonce, job.data, job.aad, channel.tag_length)
        matches += transfer.ok and (transfer.payload, transfer.tag) == expected
        digest.update(transfer.payload)
        digest.update(transfer.tag or b"")

    return {
        "packets_done": report.packets_done,
        "payload_bytes": report.payload_bytes,
        "total_cycles": report.total_cycles,
        "latency_mean_us": round(report.mean_latency_us(), 2),
        "latency_max_us": round(report.max_latency_us(), 2),
        "core_submits": report.core_submits,
        "batches": report.batches,
        "mean_batch_width": round(report.mean_batch_width(), 2),
        "queue_peak": report.queue_peak(),
        "flush_size": report.flush_causes.get("size", 0),
        "flush_deadline": report.flush_causes.get("deadline", 0),
        "flush_forced": report.flush_causes.get("forced", 0),
        "matches_sequential": matches == report.packets_done,
        "output_digest": digest.hexdigest()[:32],
    }
