"""The batched AEAD path as a sweepable scenario.

Drives the multi-packet fast path end to end through the MCCP channel
layer — ``enqueue_packet`` -> coalescing queue -> ``flush_channel`` ->
:mod:`repro.crypto.fast.batch` — and cross-checks every output against
the reference (``use_fast=False``) one-call implementations.  All
metrics are deterministic, so a baseline comparison fails hard on any
batch/sequential/reference divergence: this is the sweep-level twin of
``tests/crypto/test_batch_aead.py``.
"""

from __future__ import annotations

import hashlib
import random

from repro.core.params import Algorithm, Direction
from repro.crypto import ccm_encrypt, gcm_encrypt
from repro.experiments.scenario import register
from repro.mccp.mccp import Mccp
from repro.sim.kernel import Simulator

#: Ragged packet sizes the batches mix (bytes).
_BATCH_SIZES = (0, 48, 256, 1024, 2048)


@register(
    name="batch_aead",
    title="Batched AEAD through the MCCP channel layer",
    description="Coalesced multi-packet GCM/CCM/GMAC dispatch with "
    "ragged length mixes, verified packet-by-packet against the "
    "reference path, plus a tamper-detection round trip.",
    grid={"mode": ["gcm", "ccm", "gmac"], "packets": [8, 32]},
    quick_grid={"mode": ["gcm", "ccm", "gmac"], "packets": [8]},
    tags=("crypto", "batch", "mccp"),
)
def batch_aead(params, seed, quick):
    """One coalesced batch per mode: seal, verify, reopen, tamper."""
    mode = params["mode"]
    count = params["packets"]
    rng = random.Random(seed)
    key = bytes(rng.getrandbits(8) for _ in range(rng.choice([16, 24, 32])))

    sim = Simulator()
    mccp = Mccp(sim)
    mccp.load_session_key(0, key)
    algorithm = Algorithm.CCM if mode == "ccm" else Algorithm.GCM
    channel = mccp.open_channel(algorithm, 0, tag_length=8 if mode == "ccm" else 16)
    channel.coalesce_limit = max(1, count // 2)  # force >1 dispatch per flush

    nonce_bytes = 13 if mode == "ccm" else 12
    packets = []
    for index in range(count):
        size = rng.choice(_BATCH_SIZES)
        if mode == "gmac":
            payload = b""
        else:
            payload = bytes(rng.getrandbits(8) for _ in range(size))
        aad = bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 48)))
        nonce = (index + 1).to_bytes(nonce_bytes, "big")
        packets.append((nonce, payload, aad))
        mccp.enqueue_packet(channel.channel_id, payload, aad, nonce=nonce)

    results = mccp.flush_channel(channel.channel_id)
    reference_fn = ccm_encrypt if mode == "ccm" else gcm_encrypt
    digest = hashlib.sha256()
    matches = 0
    total_bytes = 0
    for (nonce, payload, aad), result in zip(packets, results):
        expected = reference_fn(key, nonce, payload, aad, channel.tag_length, False)
        matches += result.ok and (result.payload, result.tag) == expected
        total_bytes += len(payload)
        digest.update(result.payload)
        digest.update(result.tag)

    # Round-trip the sealed batch, with one tampered tag in the middle.
    tampered = count // 2
    for index, ((nonce, payload, aad), result) in enumerate(zip(packets, results)):
        mccp.enqueue_packet(
            channel.channel_id,
            result.payload,
            aad,
            direction=Direction.DECRYPT,
            nonce=nonce,
            tag=bytes(len(result.tag)) if index == tampered else result.tag,
        )
    reopened = mccp.flush_channel(channel.channel_id)
    roundtrip = sum(
        r.ok and r.payload == payload for (_, payload, _), r in zip(packets, reopened)
    )
    return {
        "packets": count,
        "bytes_processed": total_bytes,
        "batch_matches_reference": matches == count,
        "roundtrip_ok": roundtrip == count - 1,
        "tamper_detected": not reopened[tampered].ok,
        "auth_failures": channel.auth_failures,
        "dispatches": channel.stats.get("batches", 0),
        "output_digest": digest.hexdigest()[:32],
    }
