"""The adaptive flush controller as a sweepable scenario.

Runs the same multi-channel workload once per *static* flush policy
(the defaults, a narrow low-latency setting, a wide bulk setting) and
once under ``FlushPolicy(mode="auto")`` (:mod:`repro.mccp.autotune`),
per traffic profile x execution backend, and pins the controller's
three contracts hard — a violation raises inside the scenario, so the
sweep itself fails, not just a baseline comparison:

- **byte identity**: the auto run's secured packets are digest-equal
  to every static run's (the controller moves batching geometry,
  never bytes);
- **throughput**: auto's simulated cycle count is never worse than the
  default static policy's, and within 2% of the best static candidate
  (sim cycles are deterministic; the tolerance covers the controller's
  first-window ramp, not measurement noise);
- **determinism**: repeating the auto run — same seed, and again on
  the inline backend — reproduces the decision traces exactly.

The traces themselves ship in the artifact (``trace_json``), so "why
did it widen here" is answerable offline from any sweep run.
"""

from __future__ import annotations

import hashlib
import json

from repro.experiments.scenario import register
from repro.experiments.scenarios._util import deterministic_bytes
from repro.mccp.autotune import advise_backend
from repro.mccp.channel import FlushPolicy
from repro.radio.sdr_platform import (
    ChannelConfig,
    SdrPlatform,
    WorkloadSpec,
    _traffic_profile,
)
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern

#: The static candidates auto competes against.  "default" is the
#: knob-for-knob FlushPolicy() the strict floor is measured against.
_STATIC_POLICIES = (
    ("default", FlushPolicy()),
    ("narrow", FlushPolicy(coalesce_limit=4, flush_deadline=512)),
    ("wide", FlushPolicy(coalesce_limit=128, flush_deadline=32768)),
)


def _profile_configs(profile: str, seed: int, quick: bool):
    """The channel mix for one traffic profile."""
    if profile == "steady":
        # Paced CBR on every channel: the deadline-retarget case.
        return [
            ChannelConfig(
                RadioStandard.WIFI,
                deterministic_bytes(16, seed + index),
                TrafficPattern.CBR,
                packets=8 if quick else 12,
            )
            for index in range(4)
        ]
    if profile == "bursty":
        # Clustered arrivals: the controller must keep each burst in
        # one batch while cutting the idle wait between bursts.
        return [
            ChannelConfig(
                RadioStandard.WIFI if index % 2 else RadioStandard.WIMAX,
                deterministic_bytes(16, seed + index),
                TrafficPattern.BURSTY,
                packets=12 if quick else 24,
            )
            for index in range(4)
        ]
    if profile == "mixed":
        # Sustained 2 KB bulk (the widen case) sharing the platform
        # with small latency-critical control-class voice frames.
        configs = [
            ChannelConfig(
                RadioStandard.SATCOM,
                deterministic_bytes(32, seed + index),
                TrafficPattern.SATURATING,
                packets=96 if quick else 192,
            )
            for index in range(2)
        ]
        configs += [
            ChannelConfig(
                RadioStandard.TACTICAL_VOICE,
                deterministic_bytes(16, seed + 10 + index),
                TrafficPattern.CBR,
                packets=8 if quick else 16,
                priority=0,
            )
            for index in range(2)
        ]
        return configs
    raise ValueError(f"unknown profile {profile!r}")


def _run(configs, seed, backend, policy=None, autotune=False):
    """One workload replay; returns (report, payload digest)."""
    platform = SdrPlatform(core_count=4, seed=seed)
    report = platform.run_workload(
        WorkloadSpec(
            configs=tuple(configs),
            dataplane="batched",
            flush_policy=policy,
            backend=None if backend == "inline" else backend,
            autotune=autotune,
        )
    )
    digest = hashlib.sha256()
    transfers = sorted(
        (t for t in platform.comm.completed.values() if t.job is not None),
        key=lambda t: (t.channel_id, t.sequence),
    )
    for transfer in transfers:
        digest.update(transfer.payload)
        digest.update(transfer.tag or b"")
    return report, digest.hexdigest()


@register(
    name="autotune_sweep",
    title="Adaptive flush controller: auto vs static, profile x backend",
    description="FlushPolicy(mode='auto') against default/narrow/wide "
    "static policies on steady/bursty/mixed traffic: payload digests "
    "must match, auto must never trail the defaults on simulated "
    "cycles, and decision traces must reproduce across repeats and "
    "backends — violations raise inside the scenario.",
    grid={
        "profile": ["steady", "bursty", "mixed"],
        "backend": ["inline", "thread"],
    },
    quick_grid={
        "profile": ["steady", "bursty", "mixed"],
        "backend": ["inline"],
    },
    tags=("radio", "autotune", "dataplane", "perf"),
)
def autotune_sweep(params, seed, quick):
    """One profile x backend point: static ladder vs the controller."""
    profile = params["profile"]
    backend = params["backend"]
    configs = _profile_configs(profile, seed, quick)

    static = {}
    for name, policy in _STATIC_POLICIES:
        static[name] = _run(configs, seed, backend, policy=policy)
    auto, auto_digest = _run(configs, seed, backend, autotune=True)
    repeat, repeat_digest = _run(configs, seed, backend, autotune=True)
    inline_auto, _ = _run(configs, seed, "inline", autotune=True)

    digests = {auto_digest, repeat_digest}
    digests.update(digest for _, digest in static.values())
    digest_match = len(digests) == 1
    if not digest_match:
        raise RuntimeError(
            f"autotune_sweep[{profile}/{backend}]: auto changed payload "
            "bytes relative to a static policy"
        )

    default_cycles = static["default"][0].total_cycles
    best_name, best_cycles = min(
        ((name, report.total_cycles) for name, (report, _) in static.items()),
        key=lambda item: item[1],
    )
    auto_ge_default = auto.total_cycles <= default_cycles
    auto_ge_best = auto.total_cycles <= best_cycles * 1.02
    if not auto_ge_default:
        raise RuntimeError(
            f"autotune_sweep[{profile}/{backend}]: auto took "
            f"{auto.total_cycles} cycles, worse than the default static "
            f"policy's {default_cycles}"
        )
    if not auto_ge_best:
        raise RuntimeError(
            f"autotune_sweep[{profile}/{backend}]: auto took "
            f"{auto.total_cycles} cycles, more than 2% over the best "
            f"static candidate {best_name} ({best_cycles})"
        )

    trace_reproducible = auto.autotune_traces == repeat.autotune_traces
    trace_backend_identical = (
        auto.autotune_traces == inline_auto.autotune_traces
    )
    if not (trace_reproducible and trace_backend_identical):
        raise RuntimeError(
            f"autotune_sweep[{profile}/{backend}]: decision traces "
            "diverged across repeats or backends for the same seed"
        )

    # What the workload-level advisor would pick for this profile on a
    # canonical 4-CPU host (deterministic; the gate exercises the real
    # host path).
    advice = advise_backend(_traffic_profile(configs), cpu_count=4)

    return {
        "packets_done": auto.packets_done,
        "payload_bytes": auto.payload_bytes,
        "digest_match": digest_match,
        "output_digest": auto_digest[:32],
        "cycles_auto": auto.total_cycles,
        "cycles_default": default_cycles,
        "cycles_best_static": best_cycles,
        "best_static": best_name,
        "auto_ge_default": auto_ge_default,
        "auto_ge_best": auto_ge_best,
        "trace_reproducible": trace_reproducible,
        "trace_backend_identical": trace_backend_identical,
        "autotune_adjustments": auto.autotune_adjustments,
        "latency_mean_us_auto": round(auto.mean_latency_us(), 2),
        "latency_mean_us_default": round(
            static["default"][0].mean_latency_us(), 2
        ),
        "advisor_backend": advice.backend,
        "advisor_policy": advice.policy,
        "trace_json": json.dumps(
            {str(cid): trace for cid, trace in auto.autotune_traces.items()},
            sort_keys=True,
        ),
    }
