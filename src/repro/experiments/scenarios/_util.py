"""Shared helpers for the built-in scenarios.

Mirrors the helpers ``benchmarks/conftest.py`` gives the pytest
benchmarks, but importable from the library (the scenario registry must
not depend on pytest or on the ``benchmarks/`` directory being on the
path — worker processes only get ``src``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.crypto_core import CryptoCore
from repro.core.harness import drainer_process, feeder_process, run_task
from repro.crypto.aes import expand_key
from repro.experiments.kernels import deterministic_bytes  # noqa: F401  (re-export)
from repro.sim.kernel import Simulator
from repro.unit.timing import DEFAULT_TIMING

#: The paper's clock: 190 MHz.
CLOCK_HZ = 190e6

#: Session keys by width for the table scenarios.
KEYS = {128: bytes(range(16)), 192: bytes(range(24)), 256: bytes(range(32))}


def packet_mbps(payload_bytes: int, cycles: int) -> float:
    """Throughput of one packet at the paper's 190 MHz clock."""
    return 8 * payload_bytes * CLOCK_HZ / cycles / 1e6


def run_single_core(task, key: Optional[bytes]) -> Tuple[object, CryptoCore, Simulator]:
    """One task on one fresh core; returns (run, core, sim)."""
    sim = Simulator()
    core = CryptoCore(sim, DEFAULT_TIMING)
    if key is not None:
        core.key_cache.install(expand_key(key), 8 * len(key))
    return run_task(sim, core, task), core, sim


def run_two_core_ccm(mac_task, ctr_task, key: bytes) -> int:
    """Paper section VII.A's 2-core CCM mapping; returns cycles."""
    sim = Simulator()
    c0 = CryptoCore(sim, DEFAULT_TIMING, index=0)
    c1 = CryptoCore(sim, DEFAULT_TIMING, index=1)
    c0.unit.ic_out = c1.unit.ic_in
    c1.unit.ic_out = c0.unit.ic_in
    for core in (c0, c1):
        core.key_cache.install(expand_key(key), 8 * len(key))
    sim.add_process(feeder_process(c0, mac_task.input_blocks))
    sim.add_process(feeder_process(c1, ctr_task.input_blocks))
    sink = []
    sim.add_process(drainer_process(c1, sink))
    c0.assign_task(mac_task.params)
    done = c1.assign_task(ctr_task.params)
    result = sim.run_until_event(done, limit=100_000_000)
    return result.cycles
