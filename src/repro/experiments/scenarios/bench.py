"""The microbenchmark kernels as a sweepable (timing-tagged) scenario.

Same kernel names and measurement loop as ``benchmarks/run_bench.py``
(both import :mod:`repro.experiments.kernels`), plus a per-kernel
cross-path ``correct`` bool.  ``ops_per_s`` / ``iterations`` are
declared timing metrics, so baseline comparison warns on drift but
fails on a correctness mismatch — the CI perf-smoke contract.
"""

from __future__ import annotations

from repro.experiments.kernels import (
    KERNEL_NAMES,
    build_kernels,
    correctness_check,
    measure,
)
from repro.experiments.scenario import register


@register(
    name="bench_kernels",
    title="Hot-path kernel ops/s (fast vs reference pairs)",
    description="The BENCH_<date>.json kernels, one case per kernel, "
    "with cross-path correctness verification.",
    grid={"kernel": list(KERNEL_NAMES)},
    tags=("timing", "perf"),
    timing_metrics=("ops_per_s", "iterations"),
)
def bench_kernels(params, seed, quick):
    """Measure one kernel's ops/s and verify its correctness twin."""
    name = params["kernel"]
    ops_per_s, iterations = measure(build_kernels()[name], 0.01 if quick else 0.2)
    return {
        "ops_per_s": round(ops_per_s, 2),
        "iterations": iterations,
        "correct": correctness_check(name),
    }
