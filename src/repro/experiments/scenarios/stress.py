"""Stress scenarios: mode mixes, key churn, reconfiguration under load.

The new workloads ISSUE 2 calls for — none existed as benchmarks.  All
three are simulated-cycle or gold-model deterministic, so they double
as regression gates: the ``output_digest`` / ``*_ok`` metrics must be
bit-identical between a run and its baseline.
"""

from __future__ import annotations

import hashlib
import random

from repro.core.crypto_core import CryptoCore
from repro.core.harness import run_task
from repro.core.params import Algorithm, Direction
from repro.crypto import ccm_encrypt, gcm_decrypt, gcm_encrypt, whirlpool
from repro.crypto.aes import expand_key
from repro.experiments.scenario import register
from repro.experiments.scenarios._util import deterministic_bytes
from repro.mccp.mccp import Mccp
from repro.radio import format_gcm, format_whirlpool, parse_output
from repro.radio.comm_controller import CommController
from repro.radio.packet import Packet
from repro.reconfig import BitstreamStore, ReconfigManager, StoreKind
from repro.sim.kernel import Simulator
from repro.unit.timing import DEFAULT_TIMING

#: Heterogeneous message sizes for the mode-mix sweep (bytes).
_MODE_MIX_SIZES = (64, 256, 1024, 2048)


@register(
    name="mode_mix",
    title="CCM/GCM/GMAC mode mixes, fast vs reference cross-check",
    description="Randomized message batches per mode with heterogeneous "
    "sizes and key widths; every fast-path output is checked against the "
    "reference path and folded into a deterministic digest.",
    grid={"mode": ["gcm", "ccm", "gmac", "mixed"]},
    tags=("crypto", "stress"),
)
def mode_mix(params, seed, quick):
    """One mode's batch: fast/reference equality + output digest."""
    mode = params["mode"]
    rng = random.Random(seed)
    messages = 4 if quick else 12
    digest = hashlib.sha256()
    matches = 0
    total_bytes = 0
    for index in range(messages):
        this_mode = (
            rng.choice(["gcm", "ccm", "gmac"]) if mode == "mixed" else mode
        )
        key = bytes(rng.getrandbits(8) for _ in range(rng.choice([16, 24, 32])))
        aad = bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 32)))
        size = rng.choice(_MODE_MIX_SIZES)
        payload = bytes(rng.getrandbits(8) for _ in range(size))
        total_bytes += size
        if this_mode == "gcm":
            iv = bytes(rng.getrandbits(8) for _ in range(12))
            fast = gcm_encrypt(key, iv, payload, aad, 16, True)
            reference = gcm_encrypt(key, iv, payload, aad, 16, False)
            roundtrip = gcm_decrypt(key, iv, fast[0], fast[1], aad) == payload
        elif this_mode == "ccm":
            nonce = bytes(rng.getrandbits(8) for _ in range(13))
            fast = ccm_encrypt(key, nonce, payload, aad, 8, True)
            reference = ccm_encrypt(key, nonce, payload, aad, 8, False)
            roundtrip = True
        else:  # gmac: authentication only, empty plaintext
            iv = bytes(rng.getrandbits(8) for _ in range(12))
            fast = gcm_encrypt(key, iv, b"", payload, 16, True)
            reference = gcm_encrypt(key, iv, b"", payload, 16, False)
            roundtrip = True
        matches += fast == reference and roundtrip
        digest.update(fast[0])
        digest.update(fast[1])
    return {
        "messages": messages,
        "bytes_processed": total_bytes,
        "fast_matches_reference": matches == messages,
        "output_digest": digest.hexdigest()[:32],
    }


@register(
    name="key_churn",
    title="Key-churn stress: fresh session keys every packet",
    description="Cycles session keys through the key memory, re-opening "
    "a channel per key and verifying each secured packet against the "
    "gold model — the key scheduler's worst case.",
    grid={"cores": [2, 4]},
    quick_grid={"cores": [2]},
    tags=("stress", "keys"),
)
def key_churn(params, seed, quick):
    """N rounds of load-key / open / encrypt / verify / close."""
    sim = Simulator()
    mccp = Mccp(sim, core_count=params["cores"])
    comm = CommController(sim, mccp, seed=0)
    rounds = 6 if quick else 24
    verified = 0
    for index in range(rounds):
        key_id = index % mccp.key_memory.slots
        key = deterministic_bytes(16, seed + index)
        mccp.load_session_key(key_id, key)
        channel = mccp.open_channel(Algorithm.GCM, key_id)
        payload = deterministic_bytes(256 + (index % 4) * 256, seed ^ index)
        packet = Packet(
            channel.channel_id,
            b"hdr",
            payload,
            sequence=index,
            created_cycle=sim.now,
        )
        secured = comm.secure_packet_sync(channel, packet)
        # The controller derives nonces from its counter (seed 0): the
        # index-th packet used nonce index+1, so the gold model can
        # independently authenticate what the device produced.
        nonce = (index + 1).to_bytes(12, "big")
        plaintext = gcm_decrypt(
            key, nonce, secured.ciphertext, secured.tag, packet.header
        )
        verified += plaintext == payload
        mccp.close_channel(channel.channel_id)
    return {
        "key_loads": rounds,
        "packets_done": rounds,
        "all_verified": verified == rounds,
        "total_cycles": sim.now,
    }


@register(
    name="reconfig_under_load",
    title="Reconfiguration storm while traffic continues",
    description="Alternates one core's personality AES<->Whirlpool while "
    "the neighbour core keeps encrypting verified GCM packets; counts "
    "cached reloads and checks the reconfigured unit's digests.",
    grid={"swaps": [2, 6]},
    quick_grid={"swaps": [2]},
    tags=("reconfig", "stress"),
)
def reconfig_under_load(params, seed, quick):
    """A storm of *swaps* personality swaps under live traffic."""
    swaps = params["swaps"]
    packets_per_swap = 2 if quick else 4
    key = bytes(range(16))
    payload = deterministic_bytes(512, seed)
    message = deterministic_bytes(777, seed + 1)
    sim = Simulator()
    cores = [CryptoCore(sim, DEFAULT_TIMING, index=i) for i in range(2)]
    manager = ReconfigManager(sim, cores, BitstreamStore(StoreKind.COMPACT_FLASH))
    cores[1].key_cache.install(expand_key(key), 128)

    packets = 0
    traffic_ok = True
    hashes_ok = True
    cached_swaps = 0
    reconfig_cycles = 0
    for swap in range(swaps):
        module = "whirlpool" if swap % 2 == 0 else "aes"
        start = sim.now
        done = manager.reconfigure(0, module)
        # Traffic on core 1 *during* core 0's reconfiguration.
        for _ in range(packets_per_swap):
            iv = packets.to_bytes(12, "big")
            task = format_gcm(128, iv, b"", payload, Direction.ENCRYPT)
            run = run_task(sim, cores[1], task)
            ct, tag = parse_output(task, run.output_blocks)
            traffic_ok &= (ct, tag) == gcm_encrypt(key, iv, payload, b"")
            packets += 1
        record = sim.run_until_event(done)
        reconfig_cycles += sim.now - start
        cached_swaps += bool(record.cached)
        if module == "whirlpool":
            hash_task = format_whirlpool(message)
            hash_run = run_task(sim, cores[0], hash_task)
            hashes_ok &= (
                b"".join(hash_run.output_blocks)[:64] == whirlpool(message)
            )
    return {
        "cached_swaps": cached_swaps,
        "packets_during_reconfig": packets,
        "traffic_ok": traffic_ok,
        "whirlpool_hashes_ok": hashes_ok,
        "total_cycles": sim.now,
        "reconfig_ms": round(reconfig_cycles / 190e6 * 1000, 2),
    }
