"""Paper-table scenarios: Tables II, III and IV as sweepable grids.

These wrap the same device-model runs as the pytest benchmarks
(``benchmarks/bench_table*.py``), but expressed as registry scenarios so
campaigns can grid over configurations and the CI perf-smoke sweep
regression-gates every reproduced cell.
"""

from __future__ import annotations

from repro.analysis.area import AreaModel
from repro.analysis.throughput import PAPER_TABLE2, theoretical_mbps
from repro.baselines import LITERATURE_ENTRIES, mccp_entry
from repro.core.params import Direction
from repro.experiments.scenario import register
from repro.experiments.scenarios._util import (
    KEYS,
    deterministic_bytes,
    packet_mbps,
    run_single_core,
    run_two_core_ccm,
)
from repro.radio import format_ccm_single, format_ccm_two_core, format_gcm
from repro.reconfig import MODULE_LIBRARY, BitstreamStore, StoreKind

#: Paper Table IV, for the per-cell reference columns.
_PAPER_TABLE4_MS = {
    ("aes", "cf"): 380,
    ("aes", "ram"): 63,
    ("whirlpool", "cf"): 416,
    ("whirlpool", "ram"): 69,
}


@register(
    name="table2_throughput",
    title="Table II: MCCP encryption throughputs at 190 MHz",
    description="Single-core GCM/CCM and two-core CCM, 2 KB packets, "
    "against the published theoretical and packet columns.",
    grid={"config": ["gcm_1", "ccm_1", "ccm_2"], "key_bits": [128, 192, 256]},
    quick_grid={"config": ["gcm_1", "ccm_1"], "key_bits": [128]},
    tags=("paper", "throughput"),
)
def table2_throughput(params, seed, quick):
    """Reproduce one Table II cell pair from a simulated 2 KB packet."""
    config, key_bits = params["config"], params["key_bits"]
    key = KEYS[key_bits]
    payload = deterministic_bytes(2048, seed)
    nonce12 = deterministic_bytes(12, seed + 1)
    nonce13 = deterministic_bytes(13, seed + 2)
    if config == "gcm_1":
        task = format_gcm(key_bits, nonce12, b"", payload, Direction.ENCRYPT)
        run, _, _ = run_single_core(task, key)
        cycles = run.result.cycles
    elif config == "ccm_1":
        task = format_ccm_single(
            key_bits, nonce13, b"", payload, Direction.ENCRYPT, 8
        )
        run, _, _ = run_single_core(task, key)
        cycles = run.result.cycles
    else:  # ccm_2: the two-core MAC/CTR split
        mac_task, ctr_task = format_ccm_two_core(
            key_bits, nonce13, b"", payload, Direction.ENCRYPT, 8
        )
        cycles = run_two_core_ccm(mac_task, ctr_task, key)
    measured = packet_mbps(2048, cycles)
    paper_theoretical, paper_packet = PAPER_TABLE2[(config, key_bits)]
    return {
        "cycles": cycles,
        "mbps_2kb": round(measured, 2),
        "mbps_theoretical": round(theoretical_mbps(config, key_bits), 2),
        "paper_mbps_2kb": paper_packet,
        "paper_mbps_theoretical": paper_theoretical,
        "within_10pct_of_paper": abs(measured - paper_packet) / paper_packet < 0.10,
    }


@register(
    name="table3_comparison",
    title="Table III: comparison with the literature",
    description="MCCP Mbps/MHz recomputed from the timing model, plus "
    "the area totals and the table's ordering claims.",
    tags=("paper",),
)
def table3_comparison(params, seed, quick):
    """Recompute the MCCP row of Table III and its ordering claims."""
    gcm_row = mccp_entry(algorithm="GCM")
    ccm_row = mccp_entry(algorithm="CCM")
    slices, brams = AreaModel(4).device_total()
    programmables = [e for e in LITERATURE_ENTRIES if e.programmable]
    beats_programmables = all(
        gcm_row.throughput_mbps_per_mhz > e.throughput_mbps_per_mhz
        for e in programmables
    )
    return {
        "gcm_mbps_per_mhz": gcm_row.throughput_mbps_per_mhz,
        "ccm_mbps_per_mhz": ccm_row.throughput_mbps_per_mhz,
        "slices": slices,
        "brams": brams,
        "beats_programmable_designs": beats_programmables,
    }


@register(
    name="table4_reconfig",
    title="Table IV: partial reconfiguration load times",
    description="Bitstream load times per module and store, against the "
    "paper's CompactFlash and RAM columns.",
    grid={"module": ["aes", "whirlpool"], "store": ["cf", "ram"]},
    tags=("paper", "reconfig"),
)
def table4_reconfig(params, seed, quick):
    """Reproduce one Table IV timing cell from the bandwidth model."""
    module, store_name = params["module"], params["store"]
    store = BitstreamStore(
        StoreKind.COMPACT_FLASH if store_name == "cf" else StoreKind.RAM
    )
    bitstream = MODULE_LIBRARY[module]
    ours_ms = store.load_seconds(module) * 1000
    paper_ms = _PAPER_TABLE4_MS[(module, store_name)]
    return {
        "load_ms": round(ours_ms, 2),
        "paper_ms": paper_ms,
        "bitstream_kb": bitstream.size_bytes // 1000,
        "slices": bitstream.slices,
        "within_5pct_of_paper": abs(ours_ms - paper_ms) / paper_ms < 0.05,
    }
