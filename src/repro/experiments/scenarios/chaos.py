"""Chaos sweep: the fault-injection matrix over the self-healing dataplane.

One case = one (site, rate, backend) cell: the same mixed-standard
radio workload runs twice — once fault-free, once under a seeded
:class:`repro.resilience.FaultPlan` injecting at that site — and the
scenario *hard-fails* (raises :class:`repro.errors.ExperimentError`)
unless the resilience invariant holds:

* every packet of the fault-free run still completes (recovered, or
  routed to a dead-letter queue — never silently lost, never raised);
* surviving packets are byte-identical (payload and tag) to the
  fault-free run;
* per-channel completion order is preserved.

The ``crash_storm`` site scripts a worker crash on *every* attempt, so
the case can only complete by degrading down the process -> thread ->
inline chain; the scenario additionally asserts that degradation was
recorded.  The recovery counters (retries, degradations, watchdog
fires) depend on pool scheduling and on whether the harness itself
runs the case in a daemonic sweep worker, so they are declared timing
metrics; the invariant bools are the deterministic gate CI compares.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crypto.fast.exec import ResiliencePolicy, make_backend
from repro.errors import ExperimentError
from repro.experiments.scenario import register
from repro.experiments.scenarios._util import deterministic_bytes
from repro.mccp.channel import FlushPolicy
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern
from repro.resilience import FaultPlan, ScriptedFault, set_fault_plan

#: Injection sites the grid covers.  ``none`` is the control leg;
#: ``crash_storm`` scripts a crash on every attempt (the degradation
#: chain's worst case, distinct from rate-based ``worker_crash``).
CHAOS_SITES = (
    "none",
    "worker_crash",
    "worker_hang",
    "batch_error",
    "slow_sweep",
    "key_error",
    "core_stall",
    "crash_storm",
)

#: Wall-clock watchdog for the hang leg (the injected hang sleeps
#: longer than this, so the watchdog — not patience — must recover).
_WATCHDOG_SECONDS = 0.1
_HANG_SECONDS = 0.3


def _configs(quick: bool) -> List[ChannelConfig]:
    """Three mixed-standard channels with rx traffic and corruption."""
    packets = 16 if quick else 36
    configs = []
    for index, standard in enumerate(
        (RadioStandard.WIFI, RadioStandard.SATCOM, RadioStandard.WIMAX)
    ):
        key_bytes = 32 if standard is RadioStandard.SATCOM else 16
        configs.append(
            ChannelConfig(
                standard,
                deterministic_bytes(key_bytes, 41 + index),
                TrafficPattern.SATURATING,
                packets=packets,
                rx_fraction=0.4,
                corrupt_rate=0.2,
            )
        )
    return configs


def _plan(site: str, rate: float, seed: int) -> Optional[FaultPlan]:
    """The fault plan for one grid cell (None for the control leg)."""
    if site == "none":
        return None
    if site == "crash_storm":
        return FaultPlan(
            seed=seed, scripted=(ScriptedFault("worker_crash", times=10**9),)
        )
    return FaultPlan(
        seed=seed,
        rates={site: rate},
        hang_seconds=_HANG_SECONDS,
        slow_seconds=0.002,
        stall_cycles=4096,
    )


def _run_cell(configs, seed, plan, backend, dataplane):
    """One workload run under *plan*; returns (report, transfers, order)."""
    previous = set_fault_plan(plan)
    try:
        platform = SdrPlatform(core_count=4, seed=seed)
        report = platform.run_workload(
            configs,
            dataplane=dataplane,
            flush_policy=FlushPolicy(coalesce_limit=32, flush_deadline=8192),
            backend=backend,
        )
        transfers: Dict[Tuple[int, int], Tuple[bytes, Optional[bytes], bool]] = {}
        order: Dict[int, List[int]] = {}
        for transfer in platform.comm.completed.values():
            transfers[(transfer.channel_id, transfer.sequence)] = (
                transfer.payload,
                transfer.tag,
                transfer.ok,
            )
            order.setdefault(transfer.channel_id, []).append(transfer.sequence)
        return report, transfers, order
    finally:
        set_fault_plan(previous)


def _check_invariant(site, baseline, faulted, base_order, fault_order):
    """Raise :class:`ExperimentError` unless survivors match baseline."""
    if set(faulted) != set(baseline):
        lost = sorted(set(baseline) - set(faulted))
        raise ExperimentError(
            f"chaos[{site}]: completion sets differ (lost {lost[:8]})"
        )
    if fault_order != base_order:
        raise ExperimentError(
            f"chaos[{site}]: per-channel completion order changed"
        )
    for key, (payload, tag, ok) in faulted.items():
        if not ok:
            continue  # dead-lettered or (baseline-shared) auth failure
        base_payload, base_tag, base_ok = baseline[key]
        if not base_ok or payload != base_payload or tag != base_tag:
            raise ExperimentError(
                f"chaos[{site}]: survivor {key} differs from fault-free run"
            )


@register(
    name="chaos_sweep",
    title="Fault-injection chaos matrix: site x rate x backend",
    description="The same mixed-standard radio workload fault-free and "
    "under seeded injection at each site; hard-fails unless survivors "
    "are byte-identical, completion order is preserved, and the "
    "crash-storm leg completes via backend degradation.",
    grid={
        "site": list(CHAOS_SITES),
        "rate": [0.25],
        "backend": ["thread", "process"],
    },
    quick_grid={
        "site": ["none", "worker_crash", "batch_error", "crash_storm"],
        "rate": [0.3],
        "backend": ["thread", "process"],
    },
    tags=("resilience", "chaos", "radio"),
    timing_metrics=(
        "retries",
        "degradations",
        "watchdog_fires",
        "faults_injected",
        "total_cycles",
    ),
)
def chaos_sweep(params, seed, quick):
    """One chaos cell: run, compare against fault-free, count recovery."""
    site = params["site"]
    configs = _configs(quick)
    dataplane = "cores" if site == "core_stall" else "batched"
    plan = _plan(site, params["rate"], seed)

    _, baseline, base_order = _run_cell(configs, seed, None, None, dataplane)
    # Pin two workers: on a 1-CPU host the default worker count
    # collapses to 1 and the sharded path (the injection surface)
    # would never engage, silently shrinking the matrix.
    backend = make_backend(f"{params['backend']}:2")
    backend.resilience = ResiliencePolicy(
        max_retries=2,
        backoff_base=0.0,
        backoff_cap=0.0,
        watchdog_seconds=_WATCHDOG_SECONDS if site == "worker_hang" else None,
        degrade=True,
    )
    try:
        report, faulted, fault_order = _run_cell(
            configs, seed, plan, backend, dataplane
        )
    finally:
        backend.close()

    _check_invariant(site, baseline, faulted, base_order, fault_order)
    # A structurally degraded backend (daemonic sweep worker, no pool)
    # runs everything inline where worker crashes are inert, so the
    # chain-degradation assertion only applies when a pool existed.
    structurally_degraded = getattr(backend, "degraded_reason", None) is not None
    if (
        site == "crash_storm"
        and report.degradations < 1
        and not structurally_degraded
    ):
        raise ExperimentError(
            "chaos[crash_storm]: completed without recording a backend "
            "degradation — the storm should be unsurvivable in place"
        )
    return {
        "survivors_identical": True,
        "order_preserved": True,
        "completed": len(faulted) == len(baseline),
        "quarantined": report.quarantined,
        "dead_lettered": report.dead_lettered,
        "retries": report.retries,
        "degradations": report.degradations,
        "watchdog_fires": report.watchdog_fires,
        "faults_injected": report.faults_injected,
        "total_cycles": report.total_cycles,
    }
