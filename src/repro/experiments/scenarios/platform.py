"""Full-platform scenarios: scheduling, scaling, mapping, mixed radio.

Everything here drives :class:`repro.radio.sdr_platform.SdrPlatform`
(or the raw MCCP) end to end, so the metrics are simulated-cycle
deterministic: same params + seed = same numbers, serial or parallel.
"""

from __future__ import annotations

from repro.analysis.latency import latency_stats
from repro.core.params import Algorithm, Direction
from repro.errors import NoResourceError
from repro.experiments.scenario import register
from repro.experiments.scenarios._util import CLOCK_HZ, deterministic_bytes
from repro.mccp.mccp import Mccp
from repro.radio.comm_controller import CommController
from repro.radio.packet import Packet
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern
from repro.sched import FirstIdlePolicy, PriorityReservePolicy, RoundRobinPolicy
from repro.sim.kernel import Delay, Simulator

_POLICIES = {
    "first_idle": FirstIdlePolicy,
    "round_robin": RoundRobinPolicy,
    "priority_reserve": lambda: PriorityReservePolicy(reserved_cores=1),
}


def _report_metrics(report, latencies=None):
    stats = latency_stats(latencies if latencies is not None else report.latencies)
    return {
        "aggregate_mbps": round(report.throughput_mbps(), 2),
        "packets_done": report.packets_done,
        "payload_bytes": report.payload_bytes,
        "total_cycles": report.total_cycles,
        "latency_mean_us": round(stats.mean_us, 2),
        "latency_p99_us": round(stats.p99_us, 2),
    }


@register(
    name="scheduling_policies",
    title="Scheduling policies under mixed voice + bulk load",
    description="First-idle vs round-robin vs priority-reserve on a "
    "latency-critical voice channel sharing the MCCP with bulk traffic.",
    grid={"policy": ["first_idle", "round_robin", "priority_reserve"]},
    tags=("scheduling",),
)
def scheduling_policies(params, seed, quick):
    """One policy's aggregate throughput and voice-channel latency."""
    voice_packets, bulk_packets = (3, 2) if quick else (6, 5)
    platform = SdrPlatform(core_count=4, policy=_POLICIES[params["policy"]](), seed=seed)
    configs = [
        ChannelConfig(
            RadioStandard.TACTICAL_VOICE,
            bytes(16),
            TrafficPattern.CBR,
            packets=voice_packets,
            priority=0,
        ),
        *[
            ChannelConfig(
                RadioStandard.WIMAX,
                bytes(16),
                TrafficPattern.SATURATING,
                packets=bulk_packets,
                priority=2,
            )
            for _ in range(3)
        ],
    ]
    report = platform.run_workload(configs)
    voice = [
        t.download_done_cycle - t.request.submit_cycle
        for t in platform.comm.completed.values()
        if t.request is not None and t.request.channel_id == 0
    ]
    metrics = _report_metrics(report)
    voice_stats = latency_stats(voice)
    metrics["voice_mean_us"] = round(voice_stats.mean_us, 2)
    metrics["voice_p99_us"] = round(voice_stats.p99_us, 2)
    return metrics


@register(
    name="core_scaling",
    title="Core-count scalability, saturating GCM load",
    description="Aggregate throughput on 1..8-core devices under one "
    "saturating AES-256-GCM channel per core.",
    grid={"cores": [1, 2, 4, 8]},
    quick_grid={"cores": [1, 2, 4]},
    tags=("scaling",),
)
def core_scaling(params, seed, quick):
    """Saturating per-core GCM traffic on an N-core device."""
    cores = params["cores"]
    packets = 3 if quick else 6
    platform = SdrPlatform(core_count=cores, seed=seed)
    configs = [
        ChannelConfig(
            RadioStandard.SATCOM,
            bytes(32),
            TrafficPattern.SATURATING,
            packets=packets,
        )
        for _ in range(cores)
    ]
    report = platform.run_workload(configs)
    return _report_metrics(report)


@register(
    name="ablation_mapping",
    title="CCM mapping ablation: 4x1 vs 2x2 cores",
    description="Section VII.A's throughput/latency trade-off, measured "
    "with identical 2 KB CCM packets on a 4-core device.",
    grid={"mapping": ["4x1", "2x2"]},
    tags=("ablation",),
)
def ablation_mapping(params, seed, quick):
    """One mapping's aggregate throughput and mean packet latency."""
    two_core = params["mapping"] == "2x2"
    packet_count = 2 if quick else 4
    payload = deterministic_bytes(2048, seed)
    key = bytes(range(16))
    sim = Simulator()
    mccp = Mccp(sim, core_count=4)
    mccp.load_session_key(0, key)
    channel = mccp.open_channel(Algorithm.CCM, 0, tag_length=8)
    comm = CommController(sim, mccp, seed=seed & 0xFFFF)
    done_events = []
    for i in range(packet_count):
        event = sim.event(f"p{i}")
        done_events.append(event)

        def proc(event=event, i=i):
            while True:
                try:
                    transfer = yield from comm.process_packet(
                        channel,
                        Packet(0, b"", payload, sequence=i, created_cycle=sim.now),
                        Direction.ENCRYPT,
                        two_core=two_core,
                    )
                    break
                except NoResourceError:
                    yield Delay(50)
            event.trigger(transfer)

        sim.add_process(proc())
    for event in done_events:
        sim.run_until_event(event, limit=200_000_000)
    latencies = list(comm.latencies)
    mean_latency = sum(latencies) / len(latencies)
    return {
        "aggregate_mbps": round(
            packet_count * 2048 * 8 * CLOCK_HZ / sim.now / 1e6, 2
        ),
        "mean_latency_us": round(mean_latency / CLOCK_HZ * 1e6, 2),
        "packets_done": len(latencies),
        "total_cycles": sim.now,
    }


#: Channel mixes for the heterogeneous-traffic scenario; each entry is
#: (standard, pattern, packets-weight) — packet sizes range 160 B
#: (voice GCM) through 640 B (UMTS CTR) to 2048 B (SATCOM GCM).
_MIXES = {
    "balanced": (
        (RadioStandard.WIFI, TrafficPattern.SATURATING, 1.0),
        (RadioStandard.WIMAX, TrafficPattern.BURSTY, 1.0),
        (RadioStandard.UMTS_LIKE, TrafficPattern.CBR, 1.0),
        (RadioStandard.SATCOM, TrafficPattern.SATURATING, 1.0),
        (RadioStandard.TACTICAL_VOICE, TrafficPattern.CBR, 1.0),
    ),
    "bulk_heavy": (
        (RadioStandard.SATCOM, TrafficPattern.SATURATING, 2.0),
        (RadioStandard.WIMAX, TrafficPattern.SATURATING, 2.0),
        (RadioStandard.TACTICAL_VOICE, TrafficPattern.CBR, 0.5),
    ),
    "small_packet": (
        (RadioStandard.TACTICAL_VOICE, TrafficPattern.CBR, 2.0),
        (RadioStandard.UMTS_LIKE, TrafficPattern.CBR, 2.0),
        (RadioStandard.WIFI, TrafficPattern.BURSTY, 1.0),
    ),
}


@register(
    name="mixed_channel_radio",
    title="Mixed-channel radio traffic, heterogeneous packet sizes",
    description="Concurrent channels spanning CCM/GCM/CTR standards with "
    "160 B..2048 B payloads sharing four cores.",
    grid={"mix": ["balanced", "bulk_heavy", "small_packet"]},
    tags=("radio", "workload"),
)
def mixed_channel_radio(params, seed, quick):
    """One channel mix replayed to completion on a 4-core device."""
    base_packets = 3 if quick else 6
    platform = SdrPlatform(core_count=4, seed=seed)
    configs = []
    for standard, pattern, weight in _MIXES[params["mix"]]:
        packets = max(1, int(base_packets * weight))
        configs.append(
            ChannelConfig(
                standard,
                deterministic_bytes(
                    32 if standard is RadioStandard.SATCOM else 16,
                    seed + len(configs),
                ),
                pattern,
                packets=packets,
                priority=0 if standard is RadioStandard.TACTICAL_VOICE else 1,
            )
        )
    report = platform.run_workload(configs)
    metrics = _report_metrics(report)
    metrics["channels"] = len(configs)
    return metrics
