"""Overload sweep: admission control and load shedding under pressure.

One case = one (arrival, capacity, backend) cell: a three-class
mixed-standard workload (control > interactive > bulk priorities)
offered at a sustained multiple of what four cores can drain, replayed
four ways — unthrottled (the byte baseline), throttled on the batched
and pipelined dataplanes, and throttled again for the repeat-identity
check.  The scenario *hard-fails* (raises
:class:`repro.errors.ExperimentError`) unless the overload invariant
holds:

* the run completes with every bounded queue at or under its high
  watermark (no unbounded growth);
* shed packets are accounted **only** as shed — never as auth failures
  and never as dead letters, and ``packets_done + shed`` covers every
  transmit packet offered;
* the shed set (exact ``(channel, sequence)`` pairs) is identical
  across repeated runs and across the batched and pipelined
  dataplanes;
* every *admitted* packet is byte-identical (payload and tag) to the
  same packet in the unthrottled run, and per-channel completion order
  is the unthrottled order filtered to the admitted set;
* the :class:`repro.analysis.throughput.SlaSpec` holds: control-class
  traffic keeps its p99 budget with zero drops while bulk absorbs the
  shedding.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.throughput import ClassSla, SlaSpec, WorkloadReport
from repro.errors import ExperimentError
from repro.experiments.scenario import register
from repro.experiments.scenarios._util import deterministic_bytes
from repro.mccp.channel import FlushPolicy
from repro.radio.admission import AdmissionPolicy
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform, WorkloadSpec
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern

#: Arrival processes the grid covers (saturating is the >= 4x
#: sustained-overload leg; poisson/bursty modulate the pressure).
ARRIVALS = ("saturating", "poisson", "bursty")

#: The asserted service level: control keeps a generous-but-finite p99
#: and never drops; bulk has no latency budget (it absorbs the
#: shedding) but must still complete something.
OVERLOAD_SLA = SlaSpec(
    classes={
        0: ClassSla(p99_us=5_000.0, max_drop_fraction=0.0, min_completed=1),
        2: ClassSla(min_completed=1),
    },
    max_auth_failures=0,
    max_dead_lettered=0,
)


def _configs(arrival: str, packets: int) -> List[ChannelConfig]:
    """Three priority classes on three standards, one channel each."""
    pattern = TrafficPattern(arrival)
    return [
        ChannelConfig(
            RadioStandard.TACTICAL_VOICE,
            deterministic_bytes(16, 71),
            pattern,
            packets=packets,
            priority=0,
        ),
        ChannelConfig(
            RadioStandard.WIFI,
            deterministic_bytes(16, 72),
            pattern,
            packets=packets,
            priority=1,
        ),
        ChannelConfig(
            RadioStandard.SATCOM,
            deterministic_bytes(32, 73),
            pattern,
            packets=packets,
            priority=2,
        ),
    ]


def _spec(
    configs: List[ChannelConfig],
    capacity: Optional[int],
    backend: Optional[str],
    dataplane: str,
) -> WorkloadSpec:
    return WorkloadSpec(
        configs,
        dataplane=dataplane,
        backend=backend,
        flush_policy=FlushPolicy(coalesce_limit=4, flush_deadline=4096),
        queue_capacity=capacity,
        admission=(
            None
            if capacity is None
            else AdmissionPolicy(defer_cycles=400, max_defers=64)
        ),
    )


def _transfers(
    platform: SdrPlatform,
) -> Tuple[Dict[Tuple[int, int], Tuple[bytes, Optional[bytes]]], Dict[int, List[int]]]:
    """(channel, sequence) -> (payload, tag) plus per-channel order."""
    transfers: Dict[Tuple[int, int], Tuple[bytes, Optional[bytes]]] = {}
    order: Dict[int, List[int]] = {}
    for transfer in platform.comm.completed.values():
        transfers[(transfer.channel_id, transfer.sequence)] = (
            transfer.payload,
            transfer.tag,
        )
        order.setdefault(transfer.channel_id, []).append(transfer.sequence)
    return transfers, order


def run_overload_cell(
    arrival: str,
    capacity: int,
    backend: Optional[str],
    seed: int,
    packets: int = 40,
) -> Dict[str, object]:
    """One grid cell: baseline + two throttled dataplanes + invariants.

    Raises :class:`ExperimentError` on any violated invariant; returns
    the cell's metrics otherwise.  Shared with
    ``benchmarks/gate_overload.py`` so the CI gate and the sweep can
    never disagree about what the invariant is.
    """
    configs = _configs(arrival, packets)
    offered = len(configs) * packets

    base_platform = SdrPlatform(core_count=4, seed=seed)
    base_report = base_platform.run_workload(
        _spec(configs, None, None, "batched")
    )
    base_bytes, base_order = _transfers(base_platform)

    reports: Dict[str, WorkloadReport] = {}
    throttled: Dict[str, Tuple[Dict, Dict]] = {}
    spec = _spec(configs, capacity, backend, "batched")
    for dataplane in ("batched", "pipelined"):
        platform = SdrPlatform(core_count=4, seed=seed)
        report = platform.run_workload(replace(spec, dataplane=dataplane))
        reports[dataplane] = report
        throttled[dataplane] = _transfers(platform)
    repeat = SdrPlatform(core_count=4, seed=seed).run_workload(spec)

    label = f"overload[{arrival},cap={capacity},{backend}]"
    report = reports["batched"]

    # -- shed is its own budget: never auth failures or dead letters --
    for name, rep in reports.items():
        if rep.auth_failures or rep.dead_lettered:
            raise ExperimentError(
                f"{label}: {name} counted shed traffic elsewhere "
                f"(auth_failures={rep.auth_failures}, "
                f"dead_lettered={rep.dead_lettered})"
            )
        if rep.packets_done + rep.shed != offered:
            raise ExperimentError(
                f"{label}: {name} lost packets silently "
                f"({rep.packets_done} done + {rep.shed} shed != "
                f"{offered} offered)"
            )
        if rep.queue_peak() > capacity:
            raise ExperimentError(
                f"{label}: {name} queue grew past its watermark "
                f"({rep.queue_peak()} > {capacity})"
            )

    # -- shed set identical across dataplanes and repeats --------------
    if reports["batched"].shed_packets != reports["pipelined"].shed_packets:
        raise ExperimentError(
            f"{label}: shed sets differ between batched and pipelined"
        )
    if repeat.shed_packets != report.shed_packets:
        raise ExperimentError(f"{label}: shed set not reproducible")

    # -- admitted packets byte-identical to the unthrottled run --------
    shed_set = set(report.shed_packets)
    for name, (got_bytes, got_order) in throttled.items():
        for key, (payload, tag) in got_bytes.items():
            if key not in base_bytes:
                raise ExperimentError(
                    f"{label}: {name} completed unknown packet {key}"
                )
            if (payload, tag) != base_bytes[key]:
                raise ExperimentError(
                    f"{label}: {name} packet {key} differs from the "
                    "unthrottled bytes"
                )
        for channel_id, base_seq in base_order.items():
            expected = [
                s for s in base_seq if (channel_id, s) not in shed_set
            ]
            if got_order.get(channel_id, []) != expected:
                raise ExperimentError(
                    f"{label}: {name} channel {channel_id} completion "
                    "order is not the unthrottled order minus the shed"
                )

    # -- the SLA: control protected, bulk absorbs ----------------------
    violations = report.check_sla(OVERLOAD_SLA)
    if violations:
        raise ExperimentError(f"{label}: SLA broken: {violations}")
    if report.shed and report.shed_by_class.get(0, 0):
        raise ExperimentError(
            f"{label}: control-class traffic was shed "
            f"({report.shed_by_class})"
        )

    overload_factor = (
        base_report.total_cycles / report.total_cycles
        if report.total_cycles
        else 0.0
    )
    return {
        "offered": offered,
        "admitted": report.packets_done,
        "shed": report.shed,
        "shed_bulk": report.shed_by_class.get(2, 0),
        "shed_interactive": report.shed_by_class.get(1, 0),
        "shed_control": report.shed_by_class.get(0, 0),
        "deferrals": report.deferrals,
        "backpressure_signals": report.backpressure_signals,
        "queue_peak": report.queue_peak(),
        "shed_identical": True,
        "bytes_identical": True,
        "order_preserved": True,
        "sla_holds": True,
        "control_p99_us": round(report.class_percentile_us(0, 0.99), 3),
        "bulk_drop_fraction": round(report.drop_fraction(2), 6),
        "total_cycles": report.total_cycles,
        "baseline_cycles": base_report.total_cycles,
        "overload_factor": round(overload_factor, 3),
    }


@register(
    name="overload_sweep",
    title="Overload protection: arrival x capacity x backend",
    description="A three-class workload offered over capacity on bounded "
    "channels, throttled by admission control; hard-fails unless shed "
    "packets stay out of the auth-failure and dead-letter budgets, the "
    "shed set reproduces across dataplanes and repeats, admitted "
    "packets match the unthrottled bytes and order, and the SLA holds "
    "(control protected, bulk absorbs the shedding).",
    grid={
        "arrival": list(ARRIVALS),
        "capacity": [4, 8],
        "backend": ["inline", "thread"],
    },
    quick_grid={
        "arrival": ["saturating", "bursty"],
        "capacity": [4],
        "backend": ["inline", "thread"],
    },
    tags=("overload", "admission", "sla", "radio"),
    timing_metrics=("total_cycles", "baseline_cycles", "overload_factor"),
)
def overload_sweep(params, seed, quick):
    """One overload cell (see :func:`run_overload_cell`)."""
    return run_overload_cell(
        params["arrival"],
        params["capacity"],
        params["backend"],
        seed,
        packets=24 if quick else 40,
    )
