"""The pipelined (async submit/reap) dataplane as a sweepable scenario.

Runs the same multi-channel radio workload twice — once on the
synchronous batched dataplane, once pipelined
(``WorkloadSpec(dataplane="pipelined")`` → ``Mccp.dispatch_jobs_async``
→ per-channel in-flight queues) — and pins the async path's determinism
contract: payloads, tags, per-channel fan-out order, completion-cycle
stamps and the final simulated time must be byte-identical to the
synchronous run.  The digest equality is deterministic (a baseline
comparison fails hard on it); the wall-clock seconds and the derived
overlap speedup are timing metrics, so drift warns.  CI's dedicated
warn-level pipelined check lives in ``benchmarks/gate_backends.py``;
this scenario records the same invariant across a backend x depth x
channel-count grid inside every sweep artifact.
"""

from __future__ import annotations

import hashlib
import time

from repro.experiments.scenario import register
from repro.experiments.scenarios._util import deterministic_bytes
from repro.mccp.channel import FlushPolicy
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform, WorkloadSpec
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern

#: CCM-heavy rotation with a GCM lane, like the ``radio_batch`` sweep.
_ROTATION = (
    (RadioStandard.WIFI, TrafficPattern.SATURATING),
    (RadioStandard.WIMAX, TrafficPattern.SATURATING),
    (RadioStandard.SATCOM, TrafficPattern.BURSTY),
    (RadioStandard.TACTICAL_VOICE, TrafficPattern.CBR),
)


def _configs(channels: int, packets: int, seed: int):
    configs = []
    for index in range(channels):
        standard, pattern = _ROTATION[index % len(_ROTATION)]
        key_bytes = 32 if standard is RadioStandard.SATCOM else 16
        configs.append(
            ChannelConfig(
                standard,
                deterministic_bytes(key_bytes, seed + index),
                pattern,
                packets=packets,
            )
        )
    return configs


def _run(spec_kwargs: dict, seed: int):
    """One workload run: (report, transcript digest, wall seconds)."""
    platform = SdrPlatform(core_count=4, seed=seed)
    start = time.perf_counter()
    report = platform.run_workload(WorkloadSpec(**spec_kwargs))
    wall = time.perf_counter() - start
    digest = hashlib.sha256()
    # Group fan-out order per channel: the determinism contract is
    # in-order delivery *within* each channel (cross-channel
    # interleaving may legally shift when reaps are deferred), so the
    # digest walks each channel's transfers in the order they were
    # fanned out, channels in id order.
    per_channel: dict = {}
    for transfer in platform.comm.completed.values():
        per_channel.setdefault(transfer.channel_id, []).append(transfer)
    for channel_id in sorted(per_channel):
        for transfer in per_channel[channel_id]:
            digest.update(
                f"{channel_id}:{transfer.sequence}:{transfer.ok}:".encode()
            )
            digest.update(transfer.payload)
            digest.update(transfer.tag or b"")
            if transfer.job is not None:
                digest.update(str(transfer.job.completed_cycle).encode())
    digest.update(str(report.total_cycles).encode())
    return report, digest.hexdigest()[:32], wall


@register(
    name="pipelined_dataplane",
    title="Pipelined dataplane: async submit/reap vs synchronous batched",
    description="Multi-channel CCM/GCM radio traffic through the async "
    "submit()/poll() dataplane, swept over backend, pipeline depth and "
    "channel count; the transcript digest (bytes, per-channel order, "
    "cycle stamps, total cycles) must equal the synchronous batched "
    "run's, while wall-clock overlap is a timing metric.",
    grid={
        "backend": ["inline", "thread"],
        "depth": [1, 2, 4],
        "channels": [2, 4],
    },
    quick_grid={"backend": ["thread"], "depth": [2], "channels": [4]},
    tags=("radio", "dataplane", "pipeline", "timing"),
    timing_metrics=(
        "batched_seconds",
        "pipelined_seconds",
        "wall_speedup",
    ),
)
def pipelined_dataplane(params, seed, quick):
    """One grid point: batched vs pipelined, digest-equal, timed."""
    packets = 8 if quick else 24
    common = {
        "configs": tuple(_configs(params["channels"], packets, seed)),
        "flush_policy": FlushPolicy(coalesce_limit=8, flush_deadline=4096),
        "backend": params["backend"],
        "rx_fraction": 0.3,
        "corrupt_rate": 0.1,
    }
    batched_report, batched_digest, batched_wall = _run(
        {**common, "dataplane": "batched"}, seed
    )
    piped_report, piped_digest, piped_wall = _run(
        {
            **common,
            "dataplane": "pipelined",
            "pipeline_depth": params["depth"],
        },
        seed,
    )
    return {
        "packets_done": piped_report.packets_done,
        "payload_bytes": piped_report.payload_bytes,
        "total_cycles": piped_report.total_cycles,
        "auth_failures": piped_report.auth_failures,
        "batches": piped_report.batches,
        "pipeline_in_flight_peak": piped_report.pipeline_in_flight_peak,
        "digests_match": piped_digest == batched_digest,
        "cycles_match": piped_report.total_cycles
        == batched_report.total_cycles,
        "output_digest": piped_digest,
        "batched_seconds": round(batched_wall, 4),
        "pipelined_seconds": round(piped_wall, 4),
        "wall_speedup": round(batched_wall / piped_wall, 3)
        if piped_wall
        else 0.0,
    }
