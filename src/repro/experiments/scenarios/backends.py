"""Execution-backend comparison as a sweepable scenario.

One case = one coalesce width: a mixed seal+open 2 KB packet batch runs
through :func:`repro.crypto.fast.batch.seal_open_many` on the inline,
thread and process backends — the process leg twice, once on the
default shared-memory arena dataplane and once pinned to the legacy
payload-pickling path — measuring packets/s each way.  The
``correct`` bool (deterministic — baseline comparison fails hard on it)
pins all three backends byte-identical; the packets/s numbers and the
derived speedups are timing metrics, so drift warns.  CI's dedicated
thread-over-inline gate lives in ``benchmarks/gate_backends.py``; this
scenario records the same comparison inside every sweep artifact, plus
the worker/CPU context needed to read the numbers across machines.
"""

from __future__ import annotations

import os

from repro.crypto.fast.batch import seal_open_many
from repro.crypto.fast.exec import (
    InlineBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
)
from repro.experiments.kernels import measure
from repro.experiments.scenario import register
from repro.experiments.scenarios._util import deterministic_bytes

KEY = bytes(range(16))


def _mixed_batch(width: int, seed: int):
    """Half seal / half open 2 KB CCM traffic at coalesce width *width*."""
    payloads = [
        deterministic_bytes(2048, seed + index) for index in range(width)
    ]
    seal_packets = [
        ((index + 1).to_bytes(13, "big"), payload)
        for index, payload in enumerate(payloads[: width // 2])
    ]
    open_seed = [
        ((width + index + 1).to_bytes(13, "big"), payload)
        for index, payload in enumerate(payloads[width // 2 :])
    ]
    sealed, _ = seal_open_many("ccm", KEY, open_seed, [], 8)
    open_packets = [
        (nonce, ciphertext, tag)
        for (nonce, _), (ciphertext, tag) in zip(open_seed, sealed)
    ]
    return seal_packets, open_packets


def measure_backends(width: int, window: float, seed: int = 0) -> dict:
    """Measure the mixed batch on inline/thread/process; one source of
    truth shared by the ``backend_sweep`` scenario and CI's
    ``benchmarks/gate_backends.py`` so the gate and the sweep artifact
    can never drift apart on what they measure.

    Returns ``rates`` (backend name -> packets/s), the cross-backend
    byte-equality ``correct`` bool, per-backend ``workers``,
    ``cpu_count`` and the process backend's degradation note ("" when
    it ran real workers).
    """
    seal_packets, open_packets = _mixed_batch(width, seed)
    backends = {
        "inline": InlineBackend(),
        "thread": ThreadPoolBackend(),
        # "process" rides the backend default dataplane (the
        # shared-memory arena unless REPRO_ARENA opts out);
        # "process_pickle" pins the payload-pickling path so the
        # arena's win over it stays a measured, gateable number.
        "process": ProcessPoolBackend(),
        "process_pickle": ProcessPoolBackend(arena=False),
    }
    try:
        outputs = {}
        rates = {}
        for name, backend in backends.items():
            outputs[name] = seal_open_many(
                "ccm", KEY, seal_packets, open_packets, 8, backend=backend
            )
            ops_per_s, _ = measure(
                lambda b=backend: seal_open_many(
                    "ccm", KEY, seal_packets, open_packets, 8, backend=b
                ),
                window,
            )
            rates[name] = ops_per_s * width
        process = backends["process"]
        return {
            "correct": all(
                output == outputs["inline"] for output in outputs.values()
            ),
            "rates": rates,
            "workers": {
                name: backend.workers for name, backend in backends.items()
            },
            "cpu_count": os.cpu_count() or 1,
            "process_degraded": process.degraded_reason or "",
            "arena_active": process.dispatch_arena() is not None,
            "arena_degraded": process.arena_degraded_reason or "",
        }
    finally:
        for backend in backends.values():
            backend.close()


@register(
    name="backend_sweep",
    title="Execution backends: mixed seal+open packets/s per backend",
    description="2 KB CCM seal+open batches through seal_open_many on "
    "the inline, thread and process backends; byte equality is the "
    "deterministic gate, packets/s and speedups are timing metrics.",
    grid={"width": [8, 32]},
    quick_grid={"width": [32]},
    tags=("timing", "perf", "backend"),
    timing_metrics=(
        "inline_pps",
        "thread_pps",
        "process_pps",
        "process_pickle_pps",
        "thread_speedup",
        "process_speedup",
        "arena_speedup_over_pickle",
        "arena_active",
        "arena_degraded",
        "workers",
        "cpu_count",
        "process_degraded",
    ),
)
def backend_sweep(params, seed, quick):
    """Measure one width on every backend leg; verify byte equality."""
    measured = measure_backends(params["width"], 0.01 if quick else 0.2, seed)
    rates = measured["rates"]
    return {
        "correct": measured["correct"],
        "inline_pps": round(rates["inline"], 2),
        "thread_pps": round(rates["thread"], 2),
        "process_pps": round(rates["process"], 2),
        "process_pickle_pps": round(rates["process_pickle"], 2),
        "thread_speedup": round(rates["thread"] / rates["inline"], 3),
        "process_speedup": round(rates["process"] / rates["inline"], 3),
        "arena_speedup_over_pickle": round(
            rates["process"] / rates["process_pickle"], 3
        ),
        "arena_active": measured["arena_active"],
        "arena_degraded": measured["arena_degraded"],
        "workers": measured["workers"]["thread"],
        "cpu_count": measured["cpu_count"],
        "process_degraded": measured["process_degraded"],
    }
