"""Declarative scenario registry for experiment sweeps.

A :class:`Scenario` names one family of experiments: a callable that
turns ``(params, seed, quick)`` into a flat metrics dict, plus a
parameter *grid* whose cartesian product defines the family's cases.
Scenarios register themselves with the :func:`register` decorator, so
the sweep runner, the CLI and the tests all resolve them by name:

    @register(
        name="core_scaling",
        title="Core-count scalability",
        grid={"cores": [1, 2, 4, 8]},
    )
    def core_scaling(params, seed, quick):
        ...
        return {"aggregate_mbps": mbps, "packets_done": done}

Determinism contract
--------------------
A scenario function must be a pure function of ``(params, seed,
quick)``: same inputs, same metrics — regardless of which process runs
it.  This is what lets the runner fan cases out across worker processes
and still guarantee serial/parallel result equality.  Metrics that are
inherently wall-clock (ops/s measurements) are exempt, but must be
declared via ``timing_metrics`` so the baseline comparison knows to
warn rather than fail on drift.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ExperimentError

#: A scenario's result: metric name -> JSON-safe scalar.
Metrics = Dict[str, object]

#: ``(params, seed, quick) -> metrics``.
ScenarioFn = Callable[[Dict[str, object], int, bool], Metrics]


@dataclass(frozen=True)
class Scenario:
    """One registered experiment family."""

    name: str
    fn: ScenarioFn
    title: str = ""
    description: str = ""
    #: Parameter name -> candidate values; cases are the cartesian
    #: product in declaration order.  Empty grid = one parameterless case.
    grid: Mapping[str, Sequence[object]] = field(default_factory=dict)
    #: Substitute grid for ``--quick`` runs (None = use ``grid``).
    quick_grid: Optional[Mapping[str, Sequence[object]]] = None
    tags: Tuple[str, ...] = ()
    #: Metric-name suffixes that are wall-clock measurements: baseline
    #: comparison warns instead of failing when these drift.
    timing_metrics: Tuple[str, ...] = ()

    def active_grid(self, quick: bool) -> Mapping[str, Sequence[object]]:
        """The grid in effect for this run mode."""
        if quick and self.quick_grid is not None:
            return self.quick_grid
        return self.grid

    def cases(self, quick: bool = False) -> Iterator[Dict[str, object]]:
        """Yield every parameter combination, in deterministic order."""
        grid = self.active_grid(quick)
        if not grid:
            yield {}
            return
        names = list(grid)
        for combo in itertools.product(*(grid[n] for n in names)):
            yield dict(zip(names, combo))

    def case_count(self, quick: bool = False) -> int:
        """Number of cases the grid expands to."""
        count = 1
        for values in self.active_grid(quick).values():
            count *= len(values)
        return count

    def is_timing_metric(self, metric: str) -> bool:
        """Whether *metric* is declared wall-clock (warn-only on drift)."""
        return any(metric == t or metric.endswith(t) for t in self.timing_metrics)


#: The global scenario registry: name -> Scenario.
REGISTRY: Dict[str, Scenario] = {}


def register(
    name: str,
    title: str = "",
    description: str = "",
    grid: Optional[Mapping[str, Sequence[object]]] = None,
    quick_grid: Optional[Mapping[str, Sequence[object]]] = None,
    tags: Sequence[str] = (),
    timing_metrics: Sequence[str] = (),
) -> Callable[[ScenarioFn], ScenarioFn]:
    """Class-method-style decorator registering a scenario function."""

    def decorator(fn: ScenarioFn) -> ScenarioFn:
        if name in REGISTRY:
            raise ExperimentError(f"scenario {name!r} registered twice")
        doc_first_line = ((fn.__doc__ or "").strip().splitlines() or [""])[0]
        REGISTRY[name] = Scenario(
            name=name,
            fn=fn,
            title=title or name,
            description=description or doc_first_line,
            grid=dict(grid or {}),
            quick_grid=None if quick_grid is None else dict(quick_grid),
            tags=tuple(tags),
            timing_metrics=tuple(timing_metrics),
        )
        return fn

    return decorator


def get(name: str) -> Scenario:
    """Look up one scenario; raises :class:`ExperimentError` if unknown."""
    _ensure_builtin_scenarios()
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY)) or "<none>"
        raise ExperimentError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def names() -> List[str]:
    """All registered scenario names, sorted."""
    _ensure_builtin_scenarios()
    return sorted(REGISTRY)


def resolve(spec) -> List[Scenario]:
    """Resolve a CLI-style spec into scenarios.

    *spec* may be ``"all"``, one name, a comma-separated string, or a
    sequence of any of those.  Order follows the spec (``all`` =
    sorted); duplicates collapse to the first occurrence.
    """
    _ensure_builtin_scenarios()
    if isinstance(spec, str):
        spec = [spec]
    out: List[Scenario] = []
    seen = set()
    for item in spec:
        parts = (
            sorted(REGISTRY)
            if item == "all"
            else [p for p in item.split(",") if p]
        )
        for part in parts:
            if part not in seen:
                seen.add(part)
                out.append(get(part))
    if not out:
        raise ExperimentError("empty scenario spec")
    return out


def case_seed(base_seed: int, scenario_name: str, case_index: int) -> int:
    """Deterministic per-run seed, stable across processes and sessions.

    Derived with SHA-256 (not ``hash()``, which is salted per process)
    so a sweep's seeds are reproducible from ``(base_seed, scenario,
    case index)`` alone.
    """
    digest = hashlib.sha256(
        f"{base_seed}:{scenario_name}:{case_index}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _ensure_builtin_scenarios() -> None:
    """Import the built-in scenario library (idempotent).

    Deferred so that ``repro.experiments.scenario`` itself stays
    import-cycle-free and spawned worker processes re-populate the
    registry on first use.
    """
    from repro.experiments import scenarios  # noqa: F401  (side-effect import)
