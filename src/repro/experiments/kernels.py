"""Hot-path kernel definitions shared by the bench CLI and scenarios.

This module is the single home of the microbenchmark kernels that used
to live inline in ``benchmarks/run_bench.py``: the same name -> callable
mapping now feeds three consumers —

- ``benchmarks/run_bench.py`` (the standalone ``BENCH_<date>.json``
  snapshot CLI, kept as a thin wrapper for backwards compatibility),
- the ``bench_kernels`` scenario in
  :mod:`repro.experiments.scenarios.bench` (CI's perf-smoke sweep), and
- :func:`correctness_check`, which pairs every kernel with a
  cross-path verification so a perf run doubles as a crypto-equivalence
  gate: timing may drift on shared CI runners, byte-exactness may not.

Kernel names are a stable schema: the committed ``BENCH_*.json``
baselines key on them, and ``<name>_fast`` / ``<name>_reference`` pairs
derive the speedup table.
"""

from __future__ import annotations

import random
import re
import time
from typing import Callable, Dict, Tuple

from repro.crypto import AES, ccm_encrypt, gcm_encrypt
from repro.crypto.fast.batch import ccm_seal_many, gcm_seal_many
from repro.crypto.fast.bulk import ccm_seal, ctr_xcrypt_bulk, gcm_seal
from repro.crypto.fast.exec import resolve_backend
from repro.crypto.fast.gf128_tables import gf128_mul_tabulated, ghash_tables
from repro.crypto.gf128 import gf128_mul
from repro.crypto.ghash import GHash
from repro.crypto.modes.ctr import ctr_xcrypt
from repro.sim.kernel import Delay, Simulator


def deterministic_bytes(n: int, seed: int) -> bytes:
    """Seeded pseudorandom byte string (stable run to run).

    One generator must serve the whole string: re-seeding per byte
    would collapse the output to a single repeated value, and
    constant-byte packets are both unrepresentative of radio traffic
    and ~2x slower through numpy's fancy-indexing gathers than
    realistic data, which understated every gather-based kernel.
    """
    return random.Random(seed).randbytes(n)


KEY = bytes(range(16))
BLOCK = deterministic_bytes(16, 11)
PACKET = deterministic_bytes(2048, 12)
ICB = deterministic_bytes(16, 16)
H = deterministic_bytes(16, 17)
IV = deterministic_bytes(12, 18)
NONCE = deterministic_bytes(13, 19)
GF_X = int.from_bytes(deterministic_bytes(16, 13), "big")
GF_Y = int.from_bytes(deterministic_bytes(16, 14), "big")

#: Packets per batch-kernel iteration (the `_batch<N>_` name infix).
BATCH_PACKETS = 32
GCM_BATCH = tuple(((i + 1).to_bytes(12, "big"), PACKET) for i in range(BATCH_PACKETS))
CCM_BATCH = tuple(((i + 1).to_bytes(13, "big"), PACKET) for i in range(BATCH_PACKETS))

#: Packets per *pipelined* radio-kernel iteration: four coalesced
#: batches per op, so the async dataplane actually has a next batch to
#: coalesce while workers run the current one (a single-batch stream
#: submits and immediately barriers — no overlap to measure).
PIPELINE_STREAM_PACKETS = 4 * BATCH_PACKETS

#: Events per process in the sim-kernel benchmark (4 processes).
_KERNEL_EVENTS = 2000


def bench_backend(spec: str):
    """Shared backend instance for *spec* ("thread" / "process").

    The process-wide spec memo in :func:`repro.crypto.fast.exec
    .resolve_backend`: every iteration of one kernel reuses the same
    warm pool, and the bench shares it with any dispatch that stored
    the same spec string.  Process pools degrade to inline inside
    daemonic sweep workers (the kernels stay byte-correct; their ops/s
    then simply matches inline, which the warn-only gate tolerates).
    """
    return resolve_backend(spec)


def _radio_ccm_setup(
    width: int,
    npackets: int,
    backend: str = None,
    pipelined: bool = False,
    auto: bool = False,
):
    """One CCM radio-dataplane rig: (sim, comm, channel, packets).

    Shared by the bench kernels and their correctness twin so the perf
    number and the gate always measure the same pipeline
    (coalesce width *width*, 8-byte tags, 2 KB packets, dispatches on
    *backend* when given, async submit/reap dataplane when *pipelined*).
    *auto* starts the same policy in adaptive mode: the ``_auto_``
    kernels reuse one rig across bench iterations, so the controller's
    knob choices converge over the first iterations and the steady
    state is what gets measured.
    """
    from repro.core.params import Algorithm
    from repro.mccp.channel import FlushPolicy
    from repro.mccp.mccp import Mccp
    from repro.radio.comm_controller import CommController
    from repro.radio.packet import Packet

    sim = Simulator()
    mccp = Mccp(sim)
    mccp.load_session_key(0, KEY)
    channel = mccp.open_channel(Algorithm.CCM, 0, tag_length=8)
    channel.flush_policy = FlushPolicy(
        coalesce_limit=width,
        flush_deadline=None,
        mode="auto" if auto else "fixed",
    )
    comm = CommController(
        sim, mccp, backend=bench_backend(backend) if backend else None
    )
    if pipelined:
        comm.pipelined = True
        comm.pipeline_depth = 2
    packets = [
        Packet(channel.channel_id, b"", PACKET, sequence=i)
        for i in range(npackets)
    ]
    return sim, comm, channel, packets


def _radio_ccm_round(sim, comm, channel, packets) -> None:
    """Enqueue every packet, force-flush, run the sim to completion."""
    finished = sim.event("bench.flush")

    def proc():
        for packet in packets:
            comm.submit_job(channel, packet)
        yield from comm.flush_now(channel)
        finished.trigger()

    sim.add_process(proc())
    sim.run_until_event(finished)


def _radio_ccm_dataplane(
    width: int,
    npackets: int,
    backend: str = None,
    pipelined: bool = False,
    auto: bool = False,
):
    """Zero-arg kernel: *npackets* 2 KB CCM packets through the batched
    radio dataplane at coalesce width *width*.

    One op = one enqueue-all + flush round trip through the real
    pipeline (CommController jobs, flush policy, channel queue, batch
    engine, per-packet completion stamping, simulated control/transfer
    time), so ops/s x npackets is end-to-end radio packets/s — the
    number the ``radio_ccm_2kb_batch32_per_packet`` speedup compares
    against the width-1 (sequential) path.  *backend* routes the
    dispatches through a worker pool (the ``_thread`` kernel variant);
    *pipelined* switches the CommController to the async submit/reap
    dataplane (the ``_pipelined_<backend>`` variants stream
    ``PIPELINE_STREAM_PACKETS`` so batches overlap).
    """
    sim, comm, channel, packets = _radio_ccm_setup(
        width, npackets, backend, pipelined, auto
    )

    def run() -> int:
        _radio_ccm_round(sim, comm, channel, packets)
        # Bound the per-iteration completion records the bench retains.
        comm.completed.clear()
        comm.latencies.clear()
        return npackets

    return run


def measure_pipelined(
    width: int, window: float, backend: str = "thread"
) -> dict:
    """Pipelined vs synchronous radio dataplane on one backend.

    Both rigs stream ``PIPELINE_STREAM_PACKETS`` 2 KB CCM packets per
    op at coalesce width *width* on *backend*; the only difference is
    ``CommController.pipelined``.  Returns packets/s ``rates``
    ("synchronous" / "pipelined"), the byte/order/stamp equality
    ``identical`` bool (payload, tag, per-channel fan-out order,
    completion cycles and final sim time must all match — the async
    dataplane's determinism contract), plus ``cpu_count``.  Shared by
    ``benchmarks/gate_backends.py``'s warn-level pipelined check so the
    gate measures exactly what the bench kernels measure.
    """
    import os

    def _transcript(pipelined: bool):
        sim, comm, channel, packets = _radio_ccm_setup(
            width, PIPELINE_STREAM_PACKETS, backend, pipelined
        )
        _radio_ccm_round(sim, comm, channel, packets)
        return (
            [
                (t.job.sequence, t.payload, t.tag, t.job.completed_cycle)
                for t in comm.completed.values()
            ],
            list(comm.latencies),
            sim.now,
        )

    identical = _transcript(False) == _transcript(True)
    rates = {}
    for name, pipelined in (("synchronous", False), ("pipelined", True)):
        fn = _radio_ccm_dataplane(
            width, PIPELINE_STREAM_PACKETS, backend, pipelined
        )
        ops_per_s, _ = measure(fn, window)
        rates[name] = ops_per_s * PIPELINE_STREAM_PACKETS
    return {
        "identical": identical,
        "rates": rates,
        "cpu_count": os.cpu_count() or 1,
    }


def measure_autotune(width: int, window: float) -> dict:
    """Adaptive-vs-static radio dataplane, shared with the CI gate.

    Streams ``PIPELINE_STREAM_PACKETS`` 2 KB CCM packets per op on the
    thread and process backends, once with the static width-*width*
    policy and once with ``FlushPolicy(mode="auto")`` starting from the
    same knobs (the auto rig persists across iterations, so the
    controller's decisions converge before the steady state is
    measured).  Returns per-leg packets/s ``rates``
    (``{static,auto}_{thread,process}``), the byte-identity bool
    ``identical`` (the auto transcript must match the static one —
    the controller moves batching geometry, never bytes), the auto
    rig's decision ``trace`` (JSON-safe dicts, for the bench artifact),
    and ``cpu_count``.  ``benchmarks/gate_backends.py`` consumes this
    so its auto gate measures exactly what the ``_auto_`` bench
    kernels measure.
    """
    import os

    def _transcript(auto: bool):
        sim, comm, channel, packets = _radio_ccm_setup(
            width, PIPELINE_STREAM_PACKETS, "thread", auto=auto
        )
        _radio_ccm_round(sim, comm, channel, packets)
        transcript = [
            (t.job.sequence, t.payload, t.tag)
            for t in comm.completed.values()
        ]
        trace = channel.autotune.trace_dicts() if channel.autotune else []
        return transcript, trace

    static_transcript, _ = _transcript(False)
    auto_transcript, trace = _transcript(True)
    rates = {}
    for backend in ("thread", "process"):
        for variant, auto in (("static", False), ("auto", True)):
            fn = _radio_ccm_dataplane(
                width, PIPELINE_STREAM_PACKETS, backend, auto=auto
            )
            ops_per_s, _ = measure(fn, window)
            rates[f"{variant}_{backend}"] = ops_per_s * PIPELINE_STREAM_PACKETS
    return {
        "identical": auto_transcript == static_transcript,
        "rates": rates,
        "trace": trace,
        "cpu_count": os.cpu_count() or 1,
    }


def measure_chaos_identity(width: int) -> dict:
    """Worker-crash chaos leg shared with ``benchmarks/gate_backends.py``.

    Injects one scripted ``worker_crash`` while an arena slab is in
    flight on the process backend and replays the radio CCM stream on
    both dataplanes.  Per dataplane: ``identical`` pins the surviving
    transcript (sequence, payload, tag, ok) byte-for-byte against a
    no-fault inline run, ``slab_reclaimed`` pins the arena generation
    count back at zero — a crash must cost a retry, never bytes or
    shared-memory segments.  Both fail the gate hard anywhere.
    """
    from repro.crypto.fast.exec import ProcessPoolBackend, ResiliencePolicy
    from repro.resilience import FaultPlan, ScriptedFault, set_fault_plan

    def _transcript(backend, pipelined, plan=None):
        previous = set_fault_plan(plan)
        try:
            sim, comm, channel, packets = _radio_ccm_setup(
                width, PIPELINE_STREAM_PACKETS, backend, pipelined
            )
            _radio_ccm_round(sim, comm, channel, packets)
            return [
                (t.job.sequence, t.payload, t.tag, t.ok)
                for t in comm.completed.values()
            ]
        finally:
            set_fault_plan(previous)

    results = {}
    for pipelined in (False, True):
        baseline = _transcript(None, pipelined)
        # A fresh backend per leg: the crash may stick a degradation to
        # the instance, which must never leak into the shared bench
        # pools resolve_backend memoizes.
        backend = ProcessPoolBackend(workers=2, arena=True)
        backend.resilience = ResiliencePolicy(
            max_retries=2, backoff_base=0.0, backoff_cap=0.0
        )
        plan = FaultPlan(scripted=(ScriptedFault("worker_crash", times=1),))
        try:
            chaotic = _transcript(backend, pipelined, plan)
        finally:
            arena = backend._arena
            backend.close()
        results["pipelined" if pipelined else "batched"] = {
            "identical": chaotic == baseline,
            "slab_reclaimed": arena is None or arena.live_generations == 0,
        }
    return results


def _kernel_events() -> int:
    sim = Simulator()

    def proc():
        for _ in range(_KERNEL_EVENTS):
            yield Delay(1)

    for _ in range(4):
        sim.add_process(proc())
    sim.run()
    return sim.now


def build_kernels() -> Dict[str, Callable[[], object]]:
    """Name -> zero-arg callable for one benchmark iteration."""
    ref_cipher = AES(KEY, use_fast=False)
    fast_cipher = AES(KEY, use_fast=True)
    ghash_tables(int.from_bytes(H, "big"))  # pre-build (memoized per subkey)
    return {
        "aes_block_reference": lambda: ref_cipher.encrypt_block(BLOCK),
        "aes_block_fast": lambda: fast_cipher.encrypt_block(BLOCK),
        "gf128_mul_reference": lambda: gf128_mul(GF_X, GF_Y),
        "gf128_mul_fast": lambda: gf128_mul_tabulated(GF_X, GF_Y),
        "ghash_2kb_reference": lambda: GHash(H, use_fast=False)
        .update_blocks(PACKET)
        .digest(),
        "ghash_2kb_fast": lambda: GHash(H, use_fast=True)
        .update_blocks(PACKET)
        .digest(),
        "aes_ctr_2kb_reference": lambda: ctr_xcrypt(
            ref_cipher, ICB, PACKET, 16, False
        ),
        "aes_ctr_2kb_fast": lambda: ctr_xcrypt_bulk(KEY, ICB, PACKET, 16),
        "gcm_2kb_reference": lambda: gcm_encrypt(
            KEY, IV, PACKET, b"", 16, False
        ),
        "gcm_2kb_fast": lambda: gcm_encrypt(KEY, IV, PACKET, b"", 16, True),
        "ccm_2kb_reference": lambda: ccm_encrypt(
            KEY, NONCE, PACKET, b"", 8, False
        ),
        "ccm_2kb_fast": lambda: ccm_encrypt(KEY, NONCE, PACKET, b"", 8, True),
        # One iteration seals BATCH_PACKETS packets; ops/s is batches/s,
        # so per-packet throughput is ops/s x BATCH_PACKETS (run_bench
        # derives the `<base>_batch<N>_per_packet` speedups from this).
        "gcm_2kb_batch32_fast": lambda: gcm_seal_many(KEY, GCM_BATCH, 16),
        "ccm_2kb_batch32_fast": lambda: ccm_seal_many(KEY, CCM_BATCH, 8),
        # Backend-parametrized twins of the batch kernels: same packets
        # sharded across a worker pool (run_bench derives the
        # `<base>_batch<N>_<backend>_over_inline` speedups; the CI gate
        # requires thread >= 1.3x inline on the 2-vCPU runner).
        "gcm_2kb_batch32_thread_fast": lambda: gcm_seal_many(
            KEY, GCM_BATCH, 16, backend=bench_backend("thread")
        ),
        "ccm_2kb_batch32_thread_fast": lambda: ccm_seal_many(
            KEY, CCM_BATCH, 8, backend=bench_backend("thread")
        ),
        "ccm_2kb_batch32_process_fast": lambda: ccm_seal_many(
            KEY, CCM_BATCH, 8, backend=bench_backend("process")
        ),
        # Dataplane-pinned process twins: `_arena_` ships descriptors
        # over a shared-memory slab (zero payload pickling), the plain
        # `_process_` kernel above rides the backend default.  The CI
        # gate requires arena >= 1.5x the pickling path on >= 4 CPUs.
        "gcm_2kb_batch32_arena_fast": lambda: gcm_seal_many(
            KEY, GCM_BATCH, 16, backend=bench_backend("process-arena")
        ),
        "ccm_2kb_batch32_arena_fast": lambda: ccm_seal_many(
            KEY, CCM_BATCH, 8, backend=bench_backend("process-arena")
        ),
        # End-to-end radio dataplane: one op = enqueue + flush through
        # the MCCP channel layer (sequential width-1 vs coalesced 32,
        # plus the coalesced dispatch on the thread backend).
        "radio_ccm_2kb_fast": _radio_ccm_dataplane(1, 1),
        "radio_ccm_2kb_batch32_fast": _radio_ccm_dataplane(32, BATCH_PACKETS),
        "radio_ccm_2kb_batch32_thread_fast": _radio_ccm_dataplane(
            32, BATCH_PACKETS, backend="thread"
        ),
        "radio_ccm_2kb_batch32_arena_fast": _radio_ccm_dataplane(
            32, BATCH_PACKETS, backend="process-arena"
        ),
        # Pipelined twins: same dataplane in async submit/reap mode,
        # streaming PIPELINE_STREAM_PACKETS (4 batches) per op so the
        # simulator coalesces batch N+1 while workers run batch N.
        # run_bench derives `<base>_pipelined_<backend>_over_sync` from
        # the packets/s ratio against the synchronous backend twin.
        "radio_ccm_2kb_batch32_pipelined_thread_fast": _radio_ccm_dataplane(
            32, PIPELINE_STREAM_PACKETS, backend="thread", pipelined=True
        ),
        "radio_ccm_2kb_batch32_pipelined_process_fast": _radio_ccm_dataplane(
            32, PIPELINE_STREAM_PACKETS, backend="process", pipelined=True
        ),
        # Adaptive twins: FlushPolicy(mode="auto") starting from the
        # static width-32 knobs on the same 4-batch stream.  The rig
        # persists across iterations, so the controller converges in
        # the warm-up and the steady state is what gets measured; the
        # CI gate requires auto within 5% of the best static kernel.
        "radio_ccm_2kb_auto_thread_fast": _radio_ccm_dataplane(
            32, PIPELINE_STREAM_PACKETS, backend="thread", auto=True
        ),
        "radio_ccm_2kb_auto_process_fast": _radio_ccm_dataplane(
            32, PIPELINE_STREAM_PACKETS, backend="process", auto=True
        ),
        "sim_kernel_8k_events": _kernel_events,
    }


#: Stable kernel-name schema (what BENCH_*.json baselines key on).
#: Declared literally — deriving it from build_kernels() would run two
#: key expansions and a Shoup-table build at import time; a test pins
#: it to build_kernels()'s actual keys.
KERNEL_NAMES = (
    "aes_block_reference",
    "aes_block_fast",
    "gf128_mul_reference",
    "gf128_mul_fast",
    "ghash_2kb_reference",
    "ghash_2kb_fast",
    "aes_ctr_2kb_reference",
    "aes_ctr_2kb_fast",
    "gcm_2kb_reference",
    "gcm_2kb_fast",
    "ccm_2kb_reference",
    "ccm_2kb_fast",
    "gcm_2kb_batch32_fast",
    "ccm_2kb_batch32_fast",
    "gcm_2kb_batch32_thread_fast",
    "ccm_2kb_batch32_thread_fast",
    "ccm_2kb_batch32_process_fast",
    "gcm_2kb_batch32_arena_fast",
    "ccm_2kb_batch32_arena_fast",
    "radio_ccm_2kb_fast",
    "radio_ccm_2kb_batch32_fast",
    "radio_ccm_2kb_batch32_thread_fast",
    "radio_ccm_2kb_batch32_arena_fast",
    "radio_ccm_2kb_batch32_pipelined_thread_fast",
    "radio_ccm_2kb_batch32_pipelined_process_fast",
    "radio_ccm_2kb_auto_thread_fast",
    "radio_ccm_2kb_auto_process_fast",
    "sim_kernel_8k_events",
)


def correctness_check(name: str) -> bool:
    """Cross-path verification for kernel *name*.

    Fast kernels are checked byte-for-byte against their reference
    twins; reference kernels and the sim kernel are checked against
    invariants (decrypt round-trip, final simulated time).  This is the
    signal the CI perf-smoke job *fails* on — ops/s only ever warns.
    """
    ref_cipher = AES(KEY, use_fast=False)
    fast_cipher = AES(KEY, use_fast=True)
    if name in ("aes_block_reference", "aes_block_fast"):
        ct = fast_cipher.encrypt_block(BLOCK)
        return ct == ref_cipher.encrypt_block(BLOCK) and (
            ref_cipher.decrypt_block(ct) == BLOCK
        )
    if name in ("gf128_mul_reference", "gf128_mul_fast"):
        return gf128_mul(GF_X, GF_Y) == gf128_mul_tabulated(GF_X, GF_Y)
    if name in ("ghash_2kb_reference", "ghash_2kb_fast"):
        ref = GHash(H, use_fast=False).update_blocks(PACKET).digest()
        return ref == GHash(H, use_fast=True).update_blocks(PACKET).digest()
    if name in ("aes_ctr_2kb_reference", "aes_ctr_2kb_fast"):
        ref = ctr_xcrypt(ref_cipher, ICB, PACKET, 16, False)
        return ref == ctr_xcrypt_bulk(KEY, ICB, PACKET, 16)
    if name in ("gcm_2kb_reference", "gcm_2kb_fast"):
        return gcm_encrypt(KEY, IV, PACKET, b"", 16, False) == gcm_encrypt(
            KEY, IV, PACKET, b"", 16, True
        )
    if name in ("ccm_2kb_reference", "ccm_2kb_fast"):
        return ccm_encrypt(KEY, NONCE, PACKET, b"", 8, False) == ccm_encrypt(
            KEY, NONCE, PACKET, b"", 8, True
        )
    if name == "gcm_2kb_batch32_fast":
        # Whole batch against the sequential fast API, plus one packet
        # against the reference path (reference GCM is ~100x slower, so
        # the full-batch reference check lives in the equivalence suite).
        batch = gcm_seal_many(KEY, GCM_BATCH, 16)
        sequential = [gcm_seal(KEY, iv, data, b"", 16) for iv, data in GCM_BATCH]
        reference = gcm_encrypt(KEY, GCM_BATCH[0][0], PACKET, b"", 16, False)
        return batch == sequential and batch[0] == reference
    if name == "ccm_2kb_batch32_fast":
        batch = ccm_seal_many(KEY, CCM_BATCH, 8)
        sequential = [ccm_seal(KEY, nonce, data, b"", 8) for nonce, data in CCM_BATCH]
        reference = ccm_encrypt(KEY, CCM_BATCH[0][0], PACKET, b"", 8, False)
        return batch == sequential and batch[0] == reference
    backend_kernel = re.fullmatch(
        r"(gcm|ccm)_2kb_batch32_(thread|process|arena)_fast", name
    )
    if backend_kernel:
        # The sharded batch must merge byte-identical to the inline run
        # (the arena kernel additionally crosses the descriptor
        # dataplane: payloads come back out of the shared-memory slab).
        spec = {"arena": "process-arena"}.get(
            backend_kernel[2], backend_kernel[2]
        )
        backend = bench_backend(spec)
        if backend_kernel[1] == "gcm":
            inline = gcm_seal_many(KEY, GCM_BATCH, 16)
            return gcm_seal_many(KEY, GCM_BATCH, 16, backend=backend) == inline
        inline = ccm_seal_many(KEY, CCM_BATCH, 8)
        return ccm_seal_many(KEY, CCM_BATCH, 8, backend=backend) == inline
    if name in (
        "radio_ccm_2kb_fast",
        "radio_ccm_2kb_batch32_fast",
        "radio_ccm_2kb_batch32_thread_fast",
        "radio_ccm_2kb_batch32_arena_fast",
        "radio_ccm_2kb_batch32_pipelined_thread_fast",
        "radio_ccm_2kb_batch32_pipelined_process_fast",
        "radio_ccm_2kb_auto_thread_fast",
        "radio_ccm_2kb_auto_process_fast",
    ):
        # The full dataplane (jobs, flush policy, batch engine) must
        # reproduce the sequential one-call fast path byte-for-byte.
        # The pipelined variants run their own rig (async submit/reap,
        # 4-batch stream) and must additionally fan out in sequence
        # order per channel; the _auto_ variants run the adaptive
        # controller, whose knob moves must never change bytes.
        width = 1 if name == "radio_ccm_2kb_fast" else 32
        pipelined = "_pipelined_" in name
        auto = "_auto_" in name
        backend = None
        if name.endswith("_thread_fast"):
            backend = "thread"
        elif name.endswith("_arena_fast"):
            backend = "process-arena"
        elif name.endswith("_process_fast"):
            backend = "process"
        npackets = (
            PIPELINE_STREAM_PACKETS if (pipelined or auto) else BATCH_PACKETS
        )
        sim, comm, channel, packets = _radio_ccm_setup(
            width, npackets, backend, pipelined, auto
        )
        _radio_ccm_round(sim, comm, channel, packets)
        transfers = list(comm.completed.values())
        in_order = [t.job.sequence for t in transfers] == list(range(npackets))
        return in_order and len(transfers) == npackets and all(
            t.ok
            and (t.payload, t.tag)
            == ccm_seal(KEY, t.job.nonce, t.job.data, b"", 8)
            for t in transfers
        )
    if name == "sim_kernel_8k_events":
        return _kernel_events() == _KERNEL_EVENTS
    raise KeyError(f"unknown kernel {name!r}")


def measure(fn: Callable[[], object], target_seconds: float) -> Tuple[float, int]:
    """Run *fn* until *target_seconds* elapse; returns (ops_per_s, iters)."""
    fn()  # warm-up (table builds, key-schedule memos)
    iters = 0
    start = time.perf_counter()
    deadline = start + target_seconds
    while True:
        fn()
        iters += 1
        now = time.perf_counter()
        if now >= deadline:
            return iters / (now - start), iters
