"""Fast engine vs reference: byte-identical on every path.

The fast T-table / tabulated-GHASH / bulk engine must be a pure
restatement of the reference crypto.  This suite pins that down three
ways: every published and pinned vector through both paths, a
randomized matrix (200 message/key/nonce combinations across all three
AES key sizes), and the ``REPRO_FAST`` switch itself.
"""

import random

import pytest

from repro.crypto import testvectors as tv
from repro.crypto.aes import AES, expand_key
from repro.crypto.fast import (
    cbc_mac_fast,
    ccm_open,
    ccm_seal,
    ctr_stream,
    encrypt_block_tt,
    expand_key_cached,
    fast_enabled,
    gcm_open,
    gcm_seal,
    set_fast,
)
from repro.crypto.fast.aes_vector import HAVE_NUMPY, encrypt_blocks_vector
from repro.crypto.fast.bulk import ctr_xcrypt_bulk, ecb_encrypt_blocks
from repro.crypto.ghash import GHash
from repro.crypto.modes.cbc_mac import cbc_mac
from repro.crypto.modes.ccm import ccm_decrypt, ccm_encrypt
from repro.crypto.modes.ctr import ctr_keystream, ctr_xcrypt
from repro.crypto.modes.gcm import gcm_decrypt, gcm_encrypt
from repro.crypto.modes.gmac import gmac, gmac_verify
from repro.errors import AuthenticationFailure, TagError

KEY_SIZES = (16, 24, 32)


@pytest.fixture
def reference_only():
    """Temporarily disable the global fast switch."""
    previous = set_fast(False)
    yield
    set_fast(previous)


# -- published / pinned vectors through the fast path ---------------------


@pytest.mark.parametrize("vec", tv.aes_vectors(), ids=lambda v: v.key.hex()[:12])
def test_aes_vectors_fast(vec):
    assert encrypt_block_tt(vec.plaintext, expand_key(vec.key)) == vec.ciphertext
    assert AES(vec.key, use_fast=True).encrypt_block(vec.plaintext) == vec.ciphertext
    assert AES(vec.key, use_fast=False).encrypt_block(vec.plaintext) == vec.ciphertext


@pytest.mark.parametrize("vec", tv.gcm_vectors(), ids=lambda v: v.iv.hex()[:12])
def test_gcm_vectors_fast(vec):
    ct, tag = gcm_seal(vec.key, vec.iv, vec.plaintext, vec.aad, len(vec.tag))
    assert (ct, tag) == (vec.ciphertext, vec.tag)
    assert gcm_open(vec.key, vec.iv, vec.ciphertext, vec.tag, vec.aad) == vec.plaintext


@pytest.mark.parametrize("vec", tv.ccm_vectors(), ids=lambda v: v.nonce.hex()[:12])
def test_ccm_vectors_fast(vec):
    ct, tag = ccm_seal(vec.key, vec.nonce, vec.plaintext, vec.aad, vec.tag_length)
    assert (ct, tag) == (vec.ciphertext, vec.tag)
    assert (
        ccm_open(vec.key, vec.nonce, vec.ciphertext, vec.tag, vec.aad)
        == vec.plaintext
    )


@pytest.mark.parametrize("vec", tv.ctr_vectors(), ids=lambda v: v.key.hex()[:12])
def test_ctr_vectors_fast(vec):
    assert (
        ctr_xcrypt_bulk(vec.key, vec.counter, vec.plaintext) == vec.ciphertext
    )


# -- randomized equivalence matrix: 200 combos, all key sizes -------------


def _combo(i: int):
    rng = random.Random(0x4D434350 + i)
    key = rng.randbytes(KEY_SIZES[i % 3])
    data = rng.randbytes(rng.randrange(0, 400))
    aad = rng.randbytes(rng.randrange(0, 48))
    return rng, key, data, aad


@pytest.mark.parametrize("i", range(0, 200, 4))
def test_random_gcm_equivalence(i):
    rng, key, data, aad = _combo(i)
    iv = rng.randbytes(12 if i % 2 else rng.randrange(1, 24))
    ref = gcm_encrypt(key, iv, data, aad, use_fast=False)
    fast = gcm_seal(key, iv, data, aad)
    assert ref == fast
    assert gcm_decrypt(key, iv, fast[0], fast[1], aad) == data


@pytest.mark.parametrize("i", range(1, 200, 4))
def test_random_ccm_equivalence(i):
    rng, key, data, aad = _combo(i)
    nonce = rng.randbytes(rng.randrange(7, 14))
    tag_length = rng.choice((4, 6, 8, 10, 12, 14, 16))
    ref = ccm_encrypt(key, nonce, data, aad, tag_length, use_fast=False)
    fast = ccm_seal(key, nonce, data, aad, tag_length)
    assert ref == fast
    assert ccm_decrypt(key, nonce, fast[0], fast[1], aad) == data


@pytest.mark.parametrize("i", range(2, 200, 4))
def test_random_ctr_equivalence(i):
    rng, key, data, _ = _combo(i)
    icb = rng.randbytes(16)
    inc_bits = rng.choice((8, 16, 32, 48, 64, 128))
    cipher = AES(key, use_fast=False)
    ref = ctr_xcrypt(cipher, icb, data, inc_bits, use_fast=False)
    assert ctr_xcrypt_bulk(key, icb, data, inc_bits) == ref
    nblocks = rng.randrange(0, 24)
    assert ctr_stream(key, icb, nblocks, inc_bits) == ctr_keystream(
        cipher, icb, nblocks, inc_bits, use_fast=False
    )


@pytest.mark.parametrize("i", range(3, 200, 4))
def test_random_mac_and_ghash_equivalence(i):
    rng, key, data, aad = _combo(i)
    cipher = AES(key, use_fast=False)
    blocks = rng.randbytes(16 * rng.randrange(1, 10))
    assert cbc_mac_fast(key, blocks) == cbc_mac(cipher, blocks, use_fast=False)
    h = rng.randbytes(16)
    payload = rng.randbytes(16 * rng.randrange(1, 10))
    fast_digest = GHash(h, use_fast=True).update_blocks(payload).digest()
    ref_digest = GHash(h, use_fast=False).update_blocks(payload).digest()
    digit_digest = GHash(h, digit_serial=True).update_blocks(payload).digest()
    assert fast_digest == ref_digest == digit_digest
    iv = rng.randbytes(12)
    assert gmac(key, iv, aad) == gcm_encrypt(key, iv, b"", aad, use_fast=False)[1]
    assert gmac_verify(key, iv, aad, gmac(key, iv, aad))


# -- counter wrap and vector/scalar boundary ------------------------------


def test_ctr_wraps_like_reference():
    key = bytes(range(16))
    cipher = AES(key, use_fast=False)
    icb = b"\xff" * 16  # low field wraps immediately
    for inc_bits in (8, 16, 32, 64):
        assert ctr_stream(key, icb, 6, inc_bits) == ctr_keystream(
            cipher, icb, 6, inc_bits, use_fast=False
        )


def test_scalar_and_vector_paths_agree():
    key = bytes(range(24))
    icb = bytes(range(16))
    # 1..3 blocks take the scalar path, larger runs the vector engine;
    # a prefix of the long run must equal the short runs exactly.
    long = ctr_stream(key, icb, 64)
    for n in (1, 2, 3, 5, 17):
        assert ctr_stream(key, icb, n) == long[: 16 * n]


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy-only path")
def test_ecb_bulk_matches_scalar():
    key = bytes(range(32))
    rks = expand_key_cached(key)
    blocks = bytes(range(256)) * 2  # 32 blocks
    expected = b"".join(
        encrypt_block_tt(blocks[i : i + 16], rks) for i in range(0, len(blocks), 16)
    )
    assert ecb_encrypt_blocks(key, blocks) == expected
    assert encrypt_blocks_vector(blocks, rks) == expected


# -- the switch itself ----------------------------------------------------


def test_switch_falls_back_to_reference(reference_only):
    assert not fast_enabled()
    key, iv, data = bytes(16), bytes(12), b"switchback"
    assert not AES(key)._use_fast
    ct, tag = gcm_encrypt(key, iv, data)
    set_fast(True)
    assert fast_enabled()
    assert gcm_encrypt(key, iv, data) == (ct, tag)


def test_fast_open_rejects_bad_tag():
    key, iv = bytes(16), bytes(12)
    ct, tag = gcm_seal(key, iv, b"payload", b"aad")
    with pytest.raises(AuthenticationFailure):
        gcm_open(key, iv, ct, bytes(len(tag)), b"aad")
    nonce = bytes(13)
    ct, tag = ccm_seal(key, nonce, b"payload", b"aad", 8)
    with pytest.raises(AuthenticationFailure):
        ccm_open(key, nonce, ct, bytes(8), b"aad")


def test_fast_open_rejects_invalid_tag_lengths():
    # An empty tag must be rejected as invalid, never "verified" (a
    # zero-length expected tag would compare equal to anything empty).
    key, iv = bytes(16), bytes(12)
    ct, tag = gcm_seal(key, iv, b"payload")
    with pytest.raises(TagError):
        gcm_open(key, iv, ct, b"")
    with pytest.raises(TagError):
        gcm_open(key, iv, ct, tag + b"\x00")
    with pytest.raises(TagError):
        gcm_seal(key, iv, b"payload", tag_length=0)
    with pytest.raises(TagError):
        ccm_open(key, bytes(13), ct, b"")


def test_fast_ctr_rejects_invalid_inc_bits_like_reference():
    key, icb = bytes(16), bytes(16)
    cipher = AES(key, use_fast=False)
    for inc_bits in (0, -8, 12, 136):
        with pytest.raises(ValueError):
            ctr_stream(key, icb, 4, inc_bits)
        with pytest.raises(ValueError):
            ctr_keystream(cipher, icb, 4, inc_bits, use_fast=False)


def test_ccm_reference_path_never_calls_fast_mac(monkeypatch):
    # use_fast=False must pin the WHOLE chain, including the CBC-MAC
    # half, or the "reference" baseline silently runs fast-engine code.
    # (The submodule attribute is shadowed by the function export, so
    # resolve the module through sys.modules.)
    import sys

    cbc_mac_module = sys.modules["repro.crypto.modes.cbc_mac"]

    calls = []
    real = cbc_mac_module.cbc_mac_fast

    def spy(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(cbc_mac_module, "cbc_mac_fast", spy)
    key, nonce = bytes(16), bytes(range(13))
    ct, tag = ccm_encrypt(key, nonce, b"payload" * 10, b"hdr", 8, use_fast=False)
    ccm_decrypt(key, nonce, ct, tag, b"hdr", use_fast=False)
    assert not calls


def test_expand_key_cached_is_shared_and_correct():
    key = bytes(range(32))
    a = expand_key_cached(key)
    b = expand_key_cached(bytes(range(32)))
    assert a is b  # memoized
    assert [list(rk) for rk in a] == expand_key(key)
