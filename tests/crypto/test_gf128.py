"""GF(2^128): algebraic laws (hypothesis) and the digit-serial core."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.crypto.gf128 import (
    HW_GHASH_CYCLES,
    ONE,
    R_POLY,
    gf128_mul,
    gf128_mul_digit_serial,
    gf128_pow,
)

elements = st.integers(min_value=0, max_value=(1 << 128) - 1)


@given(elements, elements)
@settings(max_examples=50, deadline=None)
def test_commutative(a, b):
    assert gf128_mul(a, b) == gf128_mul(b, a)


@given(elements, elements, elements)
@settings(max_examples=30, deadline=None)
def test_associative(a, b, c):
    assert gf128_mul(gf128_mul(a, b), c) == gf128_mul(a, gf128_mul(b, c))


@given(elements, elements, elements)
@settings(max_examples=30, deadline=None)
def test_distributive_over_xor(a, b, c):
    assert gf128_mul(a, b ^ c) == gf128_mul(a, b) ^ gf128_mul(a, c)


@given(elements)
@settings(max_examples=50, deadline=None)
def test_identity_and_zero(a):
    assert gf128_mul(a, ONE) == a
    assert gf128_mul(a, 0) == 0


@given(elements, elements)
@settings(max_examples=50, deadline=None)
def test_digit_serial_matches_bit_serial(a, b):
    product, steps = gf128_mul_digit_serial(a, b)
    assert product == gf128_mul(a, b)
    assert steps == HW_GHASH_CYCLES


def test_hw_cycle_count_is_43():
    # ceil(128/3) — the paper's digit-serial GHASH latency.
    assert HW_GHASH_CYCLES == 43


@pytest.mark.parametrize("digit_bits,steps", [(1, 128), (2, 64), (4, 32), (8, 16)])
def test_other_digit_widths(digit_bits, steps):
    product, observed = gf128_mul_digit_serial(3 << 120, 7 << 119, digit_bits)
    assert observed == steps
    assert product == gf128_mul(3 << 120, 7 << 119)


def test_digit_width_validation():
    with pytest.raises(ValueError):
        gf128_mul_digit_serial(1, 1, 0)
    with pytest.raises(ValueError):
        gf128_mul(1 << 128, 1)


@given(elements)
@settings(max_examples=20, deadline=None)
def test_pow_square(a):
    assert gf128_pow(a, 2) == gf128_mul(a, a)


def test_pow_identity():
    assert gf128_pow(R_POLY, 0) == ONE
    assert gf128_pow(R_POLY, 1) == R_POLY
