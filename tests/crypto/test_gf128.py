"""GF(2^128): algebraic laws (hypothesis), the digit-serial core and
the tabulated (Shoup) fast multiplier."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.crypto.fast.gf128_tables import gf128_mul_tabulated, ghash_tables
from repro.crypto.gf128 import (
    HW_GHASH_CYCLES,
    MASK128,
    ONE,
    R_POLY,
    gf128_mul,
    gf128_mul_digit_serial,
    gf128_pow,
)

elements = st.integers(min_value=0, max_value=(1 << 128) - 1)

#: SP 800-38D edge elements: zero, the minimal polynomial x^127, the
#: multiplicative identity and the all-ones element.
EDGE_ELEMENTS = (0, 1, ONE, MASK128)


@given(elements, elements)
@settings(max_examples=50, deadline=None)
def test_commutative(a, b):
    assert gf128_mul(a, b) == gf128_mul(b, a)


@given(elements, elements, elements)
@settings(max_examples=30, deadline=None)
def test_associative(a, b, c):
    assert gf128_mul(gf128_mul(a, b), c) == gf128_mul(a, gf128_mul(b, c))


@given(elements, elements, elements)
@settings(max_examples=30, deadline=None)
def test_distributive_over_xor(a, b, c):
    assert gf128_mul(a, b ^ c) == gf128_mul(a, b) ^ gf128_mul(a, c)


@given(elements)
@settings(max_examples=50, deadline=None)
def test_identity_and_zero(a):
    assert gf128_mul(a, ONE) == a
    assert gf128_mul(a, 0) == 0


@given(elements, elements)
@settings(max_examples=50, deadline=None)
def test_digit_serial_matches_bit_serial(a, b):
    product, steps = gf128_mul_digit_serial(a, b)
    assert product == gf128_mul(a, b)
    assert steps == HW_GHASH_CYCLES


def test_hw_cycle_count_is_43():
    # ceil(128/3) — the paper's digit-serial GHASH latency.
    assert HW_GHASH_CYCLES == 43


@pytest.mark.parametrize("digit_bits,steps", [(1, 128), (2, 64), (4, 32), (8, 16)])
def test_other_digit_widths(digit_bits, steps):
    product, observed = gf128_mul_digit_serial(3 << 120, 7 << 119, digit_bits)
    assert observed == steps
    assert product == gf128_mul(3 << 120, 7 << 119)


def test_digit_width_validation():
    with pytest.raises(ValueError):
        gf128_mul_digit_serial(1, 1, 0)
    with pytest.raises(ValueError):
        gf128_mul(1 << 128, 1)


@given(elements)
@settings(max_examples=20, deadline=None)
def test_pow_square(a):
    assert gf128_pow(a, 2) == gf128_mul(a, a)


def test_pow_identity():
    assert gf128_pow(R_POLY, 0) == ONE
    assert gf128_pow(R_POLY, 1) == R_POLY


# -- tabulated (fast) multiplier -----------------------------------------


def test_tabulated_matches_bit_serial_on_random_operands():
    rng = random.Random(0x4D434350)
    for _ in range(100):
        x = rng.getrandbits(128)
        y = rng.getrandbits(128)
        assert gf128_mul_tabulated(x, y) == gf128_mul(x, y)


@pytest.mark.parametrize("x", EDGE_ELEMENTS)
@pytest.mark.parametrize("y", EDGE_ELEMENTS)
def test_tabulated_edge_cases(x, y):
    assert gf128_mul_tabulated(x, y) == gf128_mul(x, y)


@given(elements, elements)
@settings(max_examples=50, deadline=None)
def test_tabulated_matches_bit_serial_property(a, b):
    assert gf128_mul_tabulated(a, b) == gf128_mul(a, b)


def test_tabulated_validation():
    with pytest.raises(ValueError):
        gf128_mul_tabulated(1 << 128, 1)
    with pytest.raises(ValueError):
        gf128_mul_tabulated(1, -1)
    with pytest.raises(ValueError):
        ghash_tables(1 << 128)


def test_tables_memoized_per_subkey():
    assert ghash_tables(0xDEADBEEF) is ghash_tables(0xDEADBEEF)


@given(elements, st.integers(min_value=0, max_value=512))
@settings(max_examples=25, deadline=None)
def test_pow_fast_matches_reference(a, n):
    assert gf128_pow(a, n, use_fast=True) == gf128_pow(a, n, use_fast=False)


@given(elements)
@settings(max_examples=50, deadline=None)
def test_tabulated_square_matches_mul(a):
    from repro.crypto.fast.gf128_tables import gf128_sqr_tabulated

    assert gf128_sqr_tabulated(a) == gf128_mul(a, a)


def test_tabulated_square_validation():
    from repro.crypto.fast.gf128_tables import gf128_sqr_tabulated

    with pytest.raises(ValueError):
        gf128_sqr_tabulated(1 << 128)
