"""Fork safety of the fast-path memo caches.

The key-schedule LRU, the Shoup tables and the H-power table sets are
process-global.  A fork taken while another thread is warming one of
them (exactly what `ThreadPoolBackend` shards do) could hand the child
a cache mid-mutation; the ``os.register_at_fork`` hook in
:mod:`repro.crypto.fast` therefore clears every cache in the child, and
:class:`repro.crypto.fast.exec.ProcessPoolBackend` repeats the clear in
its pool initializer (covering spawn-based pools, which never fork).
Workers rebuild lazily and still produce byte-identical results.
"""

import os
import pickle

import pytest

from repro.crypto.fast import clear_caches, expand_key_cached, gcm_seal_many
from repro.crypto.fast.exec import ProcessPoolBackend
from repro.crypto.fast.gf128_tables import ghash_tables

KEY = bytes(range(16))


def _cache_sizes() -> dict:
    return {
        "key_schedules": expand_key_cached.cache_info().currsize,
        "ghash_tables": ghash_tables.cache_info().currsize,
    }


def _warm_caches() -> None:
    expand_key_cached(KEY)
    gcm_seal_many(KEY, [(bytes(12), b"warm the tables")])


@pytest.mark.skipif(not hasattr(os, "fork"), reason="requires os.fork")
def test_forked_child_starts_with_cold_caches():
    """register_at_fork must empty every LRU in the child."""
    _warm_caches()
    assert _cache_sizes()["key_schedules"] >= 1
    parent_result = gcm_seal_many(KEY, [(bytes(12), b"payload", b"aad")])

    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child process exits below
        status = 1
        try:
            sizes = _cache_sizes()
            # Cold caches, and the crypto still rebuilds correctly.
            child_result = gcm_seal_many(KEY, [(bytes(12), b"payload", b"aad")])
            payload = pickle.dumps((sizes, child_result))
            os.write(write_fd, payload)
            status = 0
        finally:
            os._exit(status)
    os.close(write_fd)
    chunks = []
    while chunk := os.read(read_fd, 65536):
        chunks.append(chunk)
    os.close(read_fd)
    _, exit_status = os.waitpid(pid, 0)
    assert os.waitstatus_to_exitcode(exit_status) == 0
    sizes, child_result = pickle.loads(b"".join(chunks))
    assert sizes == {"key_schedules": 0, "ghash_tables": 0}
    assert child_result == parent_result
    # The parent's warm caches are untouched by the child's clear.
    assert _cache_sizes()["key_schedules"] >= 1


def _worker_cache_probe(key: bytes):
    """Top-level (picklable) probe: cache state + a fresh computation."""
    from repro.crypto.fast import expand_key_cached as cached
    from repro.crypto.fast import gcm_seal_many as seal_many

    before = cached.cache_info().currsize
    result = seal_many(key, [(bytes(12), b"pool probe")])
    return before, result


def test_process_pool_workers_start_cold_and_match():
    """Pool workers must never see a parent LRU, only rebuild lazily."""
    _warm_caches()
    expected = gcm_seal_many(KEY, [(bytes(12), b"pool probe")])
    backend = ProcessPoolBackend(workers=2)
    try:
        outcomes = backend.run(
            [(_worker_cache_probe, (KEY,)), (_worker_cache_probe, (KEY,))]
        )
        if backend.degraded_reason is not None:
            pytest.skip(f"no process pool here: {backend.degraded_reason}")
        # The first task always lands on a fresh worker: cold cache.
        # (The second may share that worker, whose cache is now warm.)
        assert outcomes[0][0] == 0
        for _, result in outcomes:
            assert result == expected
    finally:
        backend.close()


def test_clear_caches_is_reentrant_after_fork_hook_registration():
    """The hook must keep clear_caches callable any number of times."""
    _warm_caches()
    clear_caches()
    assert _cache_sizes() == {"key_schedules": 0, "ghash_tables": 0}
    clear_caches()
    _warm_caches()
    assert _cache_sizes()["key_schedules"] >= 1
