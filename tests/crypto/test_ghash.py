"""GHASH: linearity, incremental API, hardware cycle accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.crypto.ghash import GHash, ghash
from repro.crypto.gf128 import gf128_mul
from repro.errors import BlockSizeError

blocks16 = st.binary(min_size=16, max_size=16)


def test_single_block_is_multiplication(rb):
    h, x = rb(16), rb(16)
    expected = gf128_mul(
        int.from_bytes(x, "big"), int.from_bytes(h, "big")
    ).to_bytes(16, "big")
    assert ghash(h, x) == expected


@given(blocks16, blocks16, blocks16)
@settings(max_examples=25, deadline=None)
def test_chaining_definition(h, x1, x2):
    g = GHash(h).update(x1).update(x2)
    y1 = int.from_bytes(ghash(h, x1), "big")
    manual = gf128_mul(y1 ^ int.from_bytes(x2, "big"), int.from_bytes(h, "big"))
    assert g.digest() == manual.to_bytes(16, "big")


def test_update_blocks_equals_updates(rb):
    h = rb(16)
    data = rb(80)
    a = GHash(h).update_blocks(data)
    b = GHash(h)
    for i in range(0, 80, 16):
        b.update(data[i : i + 16])
    assert a.digest() == b.digest()


def test_digit_serial_cycles(rb):
    g = GHash(rb(16), digit_serial=True)
    g.update_blocks(rb(64))
    assert g.blocks == 4
    assert g.cycles == 4 * 43


def test_reset(rb):
    h = rb(16)
    g = GHash(h).update(rb(16))
    g.reset()
    assert g.digest() == bytes(16)
    assert g.blocks == 0


def test_block_size_enforced(rb):
    with pytest.raises(BlockSizeError):
        GHash(rb(15))
    with pytest.raises(BlockSizeError):
        GHash(rb(16)).update(rb(15))
    with pytest.raises(BlockSizeError):
        GHash(rb(16)).update_blocks(rb(17))
