"""Block-cipher modes: vectors, round-trips, failure injection."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.crypto import AES, cbc_mac, ccm_decrypt, ccm_encrypt, gcm_decrypt, gcm_encrypt
from repro.crypto.modes.ctr import ctr_xcrypt, increment_counter
from repro.crypto.modes.gcm import gcm_j0, inc32
from repro.crypto.modes.gmac import gmac, gmac_verify
from repro.crypto.testvectors import ccm_vectors, ctr_vectors, gcm_vectors
from repro.errors import AuthenticationFailure, NonceError, TagError


@pytest.mark.parametrize("v", gcm_vectors(), ids=lambda v: f"gcm-{len(v.plaintext)}-{len(v.key)*8}")
def test_gcm_vectors(v):
    ct, tag = gcm_encrypt(v.key, v.iv, v.plaintext, v.aad)
    assert (ct, tag) == (v.ciphertext, v.tag)
    assert gcm_decrypt(v.key, v.iv, v.ciphertext, v.tag, v.aad) == v.plaintext


@pytest.mark.parametrize("v", ccm_vectors(), ids=lambda v: f"ccm-{len(v.plaintext)}-{v.tag_length}")
def test_ccm_vectors(v):
    ct, tag = ccm_encrypt(v.key, v.nonce, v.plaintext, v.aad, v.tag_length)
    assert (ct, tag) == (v.ciphertext, v.tag)
    assert ccm_decrypt(v.key, v.nonce, v.ciphertext, v.tag, v.aad) == v.plaintext


@pytest.mark.parametrize("v", ctr_vectors(), ids=lambda v: f"ctr-{len(v.plaintext)}")
def test_ctr_vectors(v):
    cipher = AES(v.key)
    assert ctr_xcrypt(cipher, v.counter, v.plaintext) == v.ciphertext
    assert ctr_xcrypt(cipher, v.counter, v.ciphertext) == v.plaintext


@given(st.binary(max_size=200), st.binary(max_size=64))
@settings(max_examples=25, deadline=None)
def test_gcm_roundtrip_property(data, aad):
    key, iv = bytes(16), bytes(12)
    ct, tag = gcm_encrypt(key, iv, data, aad)
    assert gcm_decrypt(key, iv, ct, tag, aad) == data


@given(st.binary(max_size=200), st.binary(max_size=64))
@settings(max_examples=25, deadline=None)
def test_ccm_roundtrip_property(data, aad):
    key, nonce = bytes(16), bytes(13)
    ct, tag = ccm_encrypt(key, nonce, data, aad, 8)
    assert ccm_decrypt(key, nonce, ct, tag, aad) == data


def test_gcm_tamper_rejected(rb):
    key, iv = rb(16), rb(12)
    ct, tag = gcm_encrypt(key, iv, b"secret", b"hdr")
    with pytest.raises(AuthenticationFailure):
        gcm_decrypt(key, iv, ct, bytes(16), b"hdr")
    with pytest.raises(AuthenticationFailure):
        gcm_decrypt(key, iv, ct, tag, b"other header")


def test_ccm_tamper_rejected(rb):
    key, nonce = rb(16), rb(13)
    ct, tag = ccm_encrypt(key, nonce, b"secret payload!!", b"hdr", 8)
    bad = bytes([ct[0] ^ 1]) + ct[1:]
    with pytest.raises(AuthenticationFailure):
        ccm_decrypt(key, nonce, bad, tag, b"hdr")


def test_cbc_mac_chaining(rb):
    cipher = AES(rb(16))
    m1, m2 = rb(16), rb(16)
    mac = cbc_mac(cipher, m1 + m2)
    # Manual chain: E(m2 ^ E(m1)).
    step = cipher.encrypt_block(m1)
    expected = cipher.encrypt_block(bytes(a ^ b for a, b in zip(step, m2)))
    assert mac == expected


def test_gmac_matches_gcm_empty(rb):
    key, iv, aad = rb(16), rb(12), rb(50)
    _, tag = gcm_encrypt(key, iv, b"", aad)
    assert gmac(key, iv, aad) == tag
    assert gmac_verify(key, iv, aad, tag)
    assert not gmac_verify(key, iv, aad, bytes(16))


def test_gcm_j0_long_iv(rb):
    key = rb(16)
    cipher = AES(key)
    # Non-96-bit IVs route through GHASH; still decryptable.
    iv = rb(20)
    ct, tag = gcm_encrypt(key, iv, b"payload", b"")
    assert gcm_decrypt(key, iv, ct, tag) == b"payload"
    assert len(gcm_j0(cipher, iv)) == 16


def test_inc32_and_inc16_wrap():
    block = bytes(12) + b"\xff\xff\xff\xff"
    assert inc32(block)[-4:] == bytes(4)
    block16 = bytes(14) + b"\xff\xff"
    assert increment_counter(block16, 16)[-2:] == b"\x00\x00"
    assert increment_counter(block16, 16)[:14] == bytes(14)


def test_parameter_validation(rb):
    with pytest.raises(NonceError):
        ccm_encrypt(rb(16), rb(6), b"x", b"")
    with pytest.raises(TagError):
        ccm_encrypt(rb(16), rb(13), b"x", b"", tag_length=5)
    with pytest.raises(TagError):
        gcm_encrypt(rb(16), rb(12), b"x", tag_length=3)
    with pytest.raises(NonceError):
        gcm_encrypt(rb(16), b"", b"x")
