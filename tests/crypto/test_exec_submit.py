"""The asynchronous backend half: submit()/poll()/done()/result().

The contract under test is :class:`repro.crypto.fast.exec.BatchHandle`:
``submit()`` returns immediately, ``result()`` blocks and returns
exactly what ``run()`` would have (same results in submission order,
same exceptions, same recovery behaviour), ``done()``/``poll()`` never
block, and both results and errors are memoized — one execution no
matter how often the handle is drained.  ``seal_open_submit`` rides the
same contract at the batch-AEAD layer.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.crypto.fast.batch import seal_open_many, seal_open_submit
from repro.crypto.fast.exec import (
    BatchHandle,
    InlineBackend,
    ProcessPoolBackend,
    ResiliencePolicy,
    ThreadPoolBackend,
)
from repro.errors import WorkerCrashError

#: No-backoff budget so retry tests don't sleep.
FAST = ResiliencePolicy(max_retries=2, backoff_base=0.0, backoff_cap=0.0)

KEY = bytes(range(16))


@pytest.fixture(scope="module")
def thread_backend():
    backend = ThreadPoolBackend(workers=3)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def process_backend():
    backend = ProcessPoolBackend(workers=2)
    yield backend
    backend.close()


@pytest.fixture(params=["inline", "thread", "process"])
def any_backend(request, thread_backend, process_backend):
    if request.param == "inline":
        backend = InlineBackend()
        yield backend
        backend.close()
    else:
        yield thread_backend if request.param == "thread" else process_backend


def _ccm_packets(count, size=256):
    return [
        ((i + 1).to_bytes(13, "big"), bytes([i & 0xFF]) * size)
        for i in range(count)
    ]


# -- handle semantics ---------------------------------------------------------


def test_submit_matches_run_in_submission_order(any_backend):
    calls = [(int, (str(n),)) for n in range(20)]
    handle = any_backend.submit(calls)
    assert isinstance(handle, BatchHandle)
    assert handle.result() == any_backend.run(calls) == list(range(20))


def test_empty_submit_is_immediately_done(any_backend):
    handle = any_backend.submit([])
    assert handle.done() and handle.poll()
    assert handle.result() == []


def test_result_is_memoized_single_execution(thread_backend):
    counter = {"calls": 0}

    def bump(value):
        counter["calls"] += 1
        return value

    handle = thread_backend.submit([(bump, (1,)), (bump, (2,))])
    assert handle.result() == [1, 2]
    assert handle.result() == [1, 2]
    assert counter["calls"] == 2  # one execution per call, not per drain
    assert handle.done()


def test_serial_guard_defers_single_calls_to_result(thread_backend):
    """A one-call batch is never launched: done() reports True (nothing
    in flight) and result() computes in the draining thread."""
    ident = {}

    def record(value):
        ident["thread"] = threading.get_ident()
        return value

    handle = thread_backend.submit([(record, (7,))])
    assert handle.done()  # unlaunched — nothing to wait on
    assert "thread" not in ident  # ...and nothing ran yet
    assert handle.result() == [7]
    assert ident["thread"] == threading.get_ident()


def test_done_transitions_without_blocking(thread_backend):
    release = threading.Event()

    def gated(value):
        release.wait(timeout=30)
        return value

    handle = thread_backend.submit([(gated, (1,)), (gated, (2,))])
    assert not handle.done()
    assert not handle.poll()
    release.set()
    assert handle.result() == [1, 2]
    assert handle.done()


def test_errors_are_memoized_and_reraised(thread_backend):
    def boom(_):
        raise ValueError("non-retryable")

    handle = thread_backend.submit([(boom, (1,)), (int, ("2",))])
    with pytest.raises(ValueError, match="non-retryable"):
        handle.result()
    with pytest.raises(ValueError, match="non-retryable"):
        handle.result()  # memoized, not re-executed
    assert handle.done()


class _FlakyCall:
    """Raises WorkerCrashError the first *failures* invocations."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, value):
        self.calls += 1
        if self.calls <= self.failures:
            raise WorkerCrashError("transient")
        return value * 2


def test_recovery_runs_inside_result(thread_backend):
    """Retries happen when the handle is drained, with the same policy
    semantics as the synchronous run() path."""
    flaky = _FlakyCall(failures=1)
    handle = thread_backend.submit([(flaky, (21,)), (int, ("7",))], policy=FAST)
    assert handle.result() == [42, 7]
    assert flaky.calls == 2


def test_submit_on_degraded_backend_delegates():
    backend = ProcessPoolBackend(workers=2)
    try:
        backend.degraded_reason = "test-injected"
        handle = backend.submit([(len, (b"abc",)), (len, (b"de",))])
        assert handle.result() == [3, 2]
    finally:
        backend.close()


def test_overlap_with_submitting_thread(thread_backend):
    """The point of submit(): the caller makes progress while workers
    run the batch."""
    started = threading.Event()

    def slow(value):
        started.set()
        time.sleep(0.05)
        return value

    handle = thread_backend.submit([(slow, (1,)), (slow, (2,))])
    assert started.wait(timeout=10)  # workers running...
    overlapped = not handle.done()  # ...while we still hold the thread
    assert handle.result() == [1, 2]
    assert overlapped or handle.done()


# -- seal_open_submit ---------------------------------------------------------


def test_seal_open_submit_matches_sync(any_backend):
    packets = _ccm_packets(24)
    sealed_sync, _ = seal_open_many("ccm", KEY, packets, [], 8)
    opens = [
        (nonce, ct, tag)
        for (nonce, _), (ct, tag) in zip(packets, sealed_sync)
    ]
    expected = seal_open_many(
        "ccm", KEY, packets, opens, 8, backend=any_backend
    )
    handle = seal_open_submit(
        "ccm", KEY, packets, opens, 8, backend=any_backend
    )
    assert handle.result() == expected
    assert handle.result() == expected  # memoized
    assert handle.done()


def test_seal_open_submit_single_packet_serial(any_backend):
    packets = _ccm_packets(1)
    handle = seal_open_submit("ccm", KEY, packets, [], 8, backend=any_backend)
    sealed, opened = handle.result()
    assert opened == []
    assert (sealed, []) == seal_open_many("ccm", KEY, packets, [], 8)


def test_seal_open_submit_rejects_unknown_mode(thread_backend):
    with pytest.raises(ValueError, match="unknown batch mode"):
        seal_open_submit("ctr", KEY, [], [], 16, backend=thread_backend)
