"""Whirlpool: ISO vectors, incremental API, structural checks."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.crypto.whirlpool import SBOX, Whirlpool, compress, whirlpool
from repro.crypto.testvectors import whirlpool_vectors


@pytest.mark.parametrize("v", whirlpool_vectors(), ids=lambda v: repr(v.message[:12]))
def test_iso_vectors(v):
    assert whirlpool(v.message) == v.digest


def test_sbox_is_permutation():
    assert sorted(SBOX) == list(range(256))
    # Spot-check the first published row.
    assert SBOX[:4] == [0x18, 0x23, 0xC6, 0xE8]


@given(st.binary(max_size=300))
@settings(max_examples=25, deadline=None)
def test_incremental_equals_oneshot(data):
    h = Whirlpool()
    for i in range(0, len(data), 7):
        h.update(data[i : i + 7])
    assert h.digest() == whirlpool(data)


def test_digest_is_repeatable():
    h = Whirlpool(b"abc")
    assert h.digest() == h.digest()
    h.update(b"d")
    assert h.digest() == whirlpool(b"abcd")


def test_block_boundary_lengths():
    # 31/32/33 bytes straddle the single-vs-double padding block split.
    for n in (0, 1, 31, 32, 33, 63, 64, 65, 127, 128):
        data = bytes(range(256))[:n] * 1
        assert whirlpool(data) == Whirlpool(data).digest()


def test_compress_validates_sizes():
    with pytest.raises(ValueError):
        compress(bytes(63), bytes(64))
    with pytest.raises(ValueError):
        compress(bytes(64), bytes(65))


def test_distinct_messages_distinct_digests():
    assert whirlpool(b"a") != whirlpool(b"b")
    assert whirlpool(b"") != whirlpool(b"\x00")
