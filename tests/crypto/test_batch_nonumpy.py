"""Pure-Python fallbacks of the batch paths, without numpy.

CI runs the whole suite in a no-numpy job; these tests mirror that
locally by blocking ``import numpy`` behind a monkeypatched import
guard and reloading the numpy-gated modules, so the scalar fallbacks
are exercised even on machines where numpy is installed.
"""

import builtins
import importlib
import random

import pytest

import repro.crypto.fast.aes_vector as aes_vector_module
import repro.crypto.fast.batch as batch_module
import repro.crypto.fast.ghash_hpower as hpower_module

_GATED_MODULES = (aes_vector_module, hpower_module, batch_module)


@pytest.fixture
def no_numpy(monkeypatch):
    """Reload the numpy-gated fast modules with numpy unimportable."""
    real_import = builtins.__import__

    def guarded(name, *args, **kwargs):
        if name == "numpy":
            raise ImportError("numpy blocked by no_numpy fixture")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", guarded)
    for module in _GATED_MODULES:
        importlib.reload(module)
    assert not batch_module.HAVE_NUMPY
    yield
    monkeypatch.undo()
    for module in _GATED_MODULES:
        importlib.reload(module)
    # Reloading replaces the module dict in place, so previously
    # imported references keep working; just sanity-check the flag
    # against what an import actually does (in the CI no-numpy job
    # numpy stays unimportable, so the gate must stay off).
    try:
        import numpy  # noqa: F401

        numpy_importable = True
    except ImportError:
        numpy_importable = False
    assert aes_vector_module.HAVE_NUMPY == numpy_importable


def test_batch_seal_open_pure_python(no_numpy):
    rng = random.Random(0x90)
    key = rng.randbytes(16)
    packets = [
        (rng.randbytes(12), rng.randbytes(rng.choice((0, 33, 64, 200))), b"hdr")
        for _ in range(9)
    ]
    from repro.crypto.modes.gcm import gcm_encrypt

    sealed = batch_module.gcm_seal_many(key, packets)
    assert sealed == [
        gcm_encrypt(key, iv, d, a, 16, use_fast=False) for iv, d, a in packets
    ]
    bad_tag = bytes(16)
    opened = batch_module.gcm_open_many(
        key,
        [
            (iv, ct, bad_tag if index == 2 else tag, a)
            for index, ((iv, d, a), (ct, tag)) in enumerate(zip(packets, sealed))
        ],
    )
    assert opened[2] is None
    assert [o for index, o in enumerate(opened) if index != 2] == [
        d for index, (_, d, _) in enumerate(packets) if index != 2
    ]

    from repro.crypto.modes.ccm import ccm_encrypt

    cpackets = [(rng.randbytes(13), d, a) for _, d, a in packets]
    csealed = batch_module.ccm_seal_many(key, cpackets, 8)
    assert csealed == [
        ccm_encrypt(key, nonce, d, a, 8, use_fast=False) for nonce, d, a in cpackets
    ]
    copened = batch_module.ccm_open_many(
        key,
        [(n, ct, tag, a) for (n, d, a), (ct, tag) in zip(cpackets, csealed)],
    )
    assert copened == [d for _, d, _ in cpackets]


def test_cbc_mac_round_robin_lanes(no_numpy):
    from repro.crypto.fast.bulk import cbc_mac_fast

    rng = random.Random(0x91)
    key = rng.randbytes(32)
    messages = [rng.randbytes(16 * rng.randrange(1, 9)) for _ in range(11)]
    assert batch_module.cbc_mac_many(key, messages) == [
        cbc_mac_fast(key, m) for m in messages
    ]


def test_hpower_dispatch_and_scalar_fold(no_numpy):
    from repro.crypto.fast.gf128_tables import ghash_blocks_tabulated

    rng = random.Random(0x92)
    h = rng.getrandbits(128)
    data = rng.randbytes(16 * 40)
    expected = ghash_blocks_tabulated(h, 5, data)
    # Dispatcher falls back to the serial chain without numpy...
    assert hpower_module.ghash_blocks_hpower(h, 5, data) == expected
    # ...and the explicit scalar fold still folds correctly.
    assert hpower_module._fold_python(h, 5, data, 8) == expected
    with pytest.raises(RuntimeError):
        hpower_module.hpower_tables_vec(h, 4)


def test_fused_keystream_scalar_fallback(no_numpy):
    from repro.crypto.fast.bulk import ctr_stream

    rng = random.Random(0x93)
    key = rng.randbytes(16)
    specs = [(rng.getrandbits(128), 32, n) for n in (0, 1, 5)]
    streams = batch_module._fused_keystream(
        batch_module.expand_key_cached(key), specs
    )
    assert streams == [
        ctr_stream(key, c0.to_bytes(16, "big"), n, bits) for c0, bits, n in specs
    ]
