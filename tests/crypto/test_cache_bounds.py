"""The fast engine's memo caches are bounded and clearable.

Key-churn workloads cycle through arbitrarily many session keys; every
process-global memo in ``repro.crypto.fast`` must therefore be a
bounded LRU (eviction, not growth) and must be dropped wholesale by
``clear_caches`` (the sweep runner's isolation hook).
"""

import random

# Attribute access (not from-imports) for the hpower cache wrappers:
# the no-numpy suite reloads that module, and a from-imported wrapper
# would go stale while clear_caches clears the reloaded one.
import repro.crypto.fast.aes_vector as aes_vector
import repro.crypto.fast.ghash_hpower as hpower
from repro.crypto.fast import clear_caches
from repro.crypto.fast.aes_ttable import expand_key_cached
from repro.crypto.fast.gf128_tables import GHASH_TABLE_SLOTS, ghash_tables

HPOWER_SLOTS = hpower.HPOWER_SLOTS


def test_all_memo_caches_declare_a_bound():
    caches = [
        expand_key_cached,
        ghash_tables,
        hpower.hpower_tables,
        hpower.hpower_tables_vec,
    ]
    if aes_vector.HAVE_NUMPY:
        caches.append(aes_vector._round_keys_array)
    for cache in caches:
        assert cache.cache_info().maxsize is not None, cache.__name__


def test_ghash_table_cache_evicts_under_key_churn():
    clear_caches()
    rng = random.Random(0xE71C)
    for _ in range(GHASH_TABLE_SLOTS + 16):
        ghash_tables(rng.getrandbits(128))
    info = ghash_tables.cache_info()
    assert info.currsize <= GHASH_TABLE_SLOTS


def test_hpower_caches_evict_under_key_churn():
    clear_caches()
    rng = random.Random(0xE72C)
    subkeys = [rng.getrandbits(128) for _ in range(HPOWER_SLOTS + 3)]
    for h in subkeys:
        hpower.hpower_tables(h, 4)
    assert hpower.hpower_tables.cache_info().currsize <= HPOWER_SLOTS
    if hpower.HAVE_NUMPY:
        for h in subkeys:
            hpower.hpower_tables_vec(h, 4)
        assert hpower.hpower_tables_vec.cache_info().currsize <= HPOWER_SLOTS


def test_clear_caches_covers_every_table():
    key = bytes(range(16))
    h = 0x1234
    expand_key_cached(key)
    ghash_tables(h)
    hpower.hpower_tables(h, 2)
    if hpower.HAVE_NUMPY:
        hpower.hpower_tables_vec(h, 2)
    if aes_vector.HAVE_NUMPY:
        aes_vector._round_keys_array(expand_key_cached(key))
    clear_caches()
    assert expand_key_cached.cache_info().currsize == 0
    assert ghash_tables.cache_info().currsize == 0
    assert hpower.hpower_tables.cache_info().currsize == 0
    assert hpower.hpower_tables_vec.cache_info().currsize == 0
    if aes_vector.HAVE_NUMPY:
        assert aes_vector._round_keys_array.cache_info().currsize == 0


def test_eviction_does_not_change_results():
    # An evicted-and-rebuilt table must be identical to the original.
    clear_caches()
    h = 0xDEAD_BEEF_0000_0000_0000_0000_0000_0001
    first = hpower.hpower_tables(h, 3)
    rng = random.Random(0xE73C)
    for _ in range(HPOWER_SLOTS + 2):
        hpower.hpower_tables(rng.getrandbits(128), 3)
    assert hpower.hpower_tables(h, 3) == first
