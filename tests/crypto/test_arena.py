"""The shared-memory packet arena: allocator, hygiene, epochs, chaos.

Four contracts from :mod:`repro.crypto.fast.arena` and its wiring into
the process backend:

- **Allocator semantics** — ragged and zero-length payloads, slab
  growth, generation recycling and concurrent overlapping generations
  all behave; descriptors never alias.
- **Lifecycle hygiene** — every ``/dev/shm`` segment an arena cuts is
  unlinked by ``close()``, including after a worker-crash storm; no
  run leaks kernel objects.
- **Structural fallback** — a host without usable shared memory
  degrades to the pickling dataplane with a recorded
  ``arena_degraded_reason`` and byte-identical results, never an error.
- **Rekey epoch protocol** — warm per-key worker state is invalidated
  for exactly the rotated key id; steady-state traffic re-expands
  nothing (the ``WorkloadReport.key_schedule_expansions`` acceptance).
"""

import glob
import os
import random

import pytest

from repro.crypto.fast import arena as arena_mod
from repro.crypto.fast.arena import (
    NAME_PREFIX,
    PacketArena,
    bump_key_epoch,
    clear_warm_keys,
    key_epoch,
    note_key_epoch,
    warm_keys,
)
from repro.crypto.fast.batch import seal_open_many, seal_open_submit
from repro.crypto.fast.exec import ProcessPoolBackend, ResiliencePolicy
from repro.mccp.channel import FlushPolicy
from repro.radio.sdr_platform import ChannelConfig, SdrPlatform, WorkloadSpec
from repro.radio.standards import RadioStandard
from repro.radio.traffic import TrafficPattern
from repro.resilience import FaultPlan, ScriptedFault, set_fault_plan

KEY = bytes(range(16))

FAST = ResiliencePolicy(max_retries=2, backoff_base=0.0, backoff_cap=0.0)


def _gcm_packets(count=16, seed=0xA1):
    rng = random.Random(seed)
    sizes = (0, 1, 16, 33, 256, 1024, 2048, 5)
    return [
        ((i + 1).to_bytes(12, "big"), rng.randbytes(sizes[i % len(sizes)]),
         rng.randbytes(9))
        for i in range(count)
    ]


def _shm_segments():
    """Live ``/dev/shm`` arena segments of this machine, by name."""
    return sorted(
        os.path.basename(path)
        for path in glob.glob(f"/dev/shm/{NAME_PREFIX}-*")
    )


needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this host"
)


# -- allocator semantics ------------------------------------------------------


class TestAllocator:
    def test_ragged_and_zero_length_payloads_round_trip(self):
        arena = PacketArena(slab_bytes=1 << 16)
        try:
            payloads = [b"", b"x", bytes(range(256)) * 8, b"", b"tail"]
            generation = arena.reserve(sum(len(p) for p in payloads))
            descs = [generation.write(p) for p in payloads]
            view = generation.view
            for payload, (offset, length) in zip(payloads, descs):
                assert length == len(payload)
                assert bytes(view[offset:offset + length]) == payload
            # Regions are contiguous and non-aliasing.
            cursor = descs[0][0]
            for offset, length in descs:
                assert offset == cursor
                cursor = offset + length
            generation.release()
        finally:
            arena.close()

    def test_scatter_gather_write_lands_contiguously(self):
        arena = PacketArena(slab_bytes=1 << 16)
        try:
            generation = arena.reserve(64)
            offset, length = generation.write([b"abc", b"", b"defg"])
            assert length == 7
            assert bytes(generation.view[offset:offset + 7]) == b"abcdefg"
            generation.release()
        finally:
            arena.close()

    def test_generation_overflow_raises(self):
        arena = PacketArena(slab_bytes=1 << 16)
        try:
            generation = arena.reserve(8)
            generation.alloc(8)
            with pytest.raises(RuntimeError, match="generation overflow"):
                generation.alloc(1)
            generation.release()
        finally:
            arena.close()

    def test_steady_state_recycles_one_slab(self):
        arena = PacketArena(slab_bytes=1 << 16)
        try:
            for _ in range(50):
                generation = arena.reserve(1 << 12)
                generation.release()
            assert arena.slabs_created == 1
            assert arena.grows == 0
            assert arena.recycles == 50
            # The bump pointer rewound: a fresh reservation reuses the
            # very same offsets.
            assert arena.reserve(16).base == 0
        finally:
            arena.close()

    def test_oversized_reservation_grows_the_slab(self):
        arena = PacketArena(slab_bytes=1 << 12)
        try:
            before = arena.segment_names()
            generation = arena.reserve((1 << 14) + 1)
            assert arena.grows == 1
            assert generation.nbytes == (1 << 14) + 1
            after = arena.segment_names()
            # The idle first slab was unlinked, not retired.
            assert len(after) == 1 and after != before
            generation.release()
        finally:
            arena.close()

    def test_concurrent_generations_never_alias(self):
        arena = PacketArena(slab_bytes=1 << 16)
        try:
            first = arena.reserve(1 << 10)
            second = arena.reserve(1 << 10)
            assert first.slab_name == second.slab_name
            assert first.limit <= second.base  # disjoint ranges
            a = first.write(b"A" * 100)
            b = second.write(b"B" * 100)
            view = first.view
            assert bytes(view[a[0]:a[0] + 100]) == b"A" * 100
            assert bytes(view[b[0]:b[0] + 100]) == b"B" * 100
            # Releasing one of two live generations must not rewind.
            first.release()
            assert arena.recycles == 0
            third = arena.reserve(16)
            assert third.base >= second.limit
            second.release()
            third.release()
            assert arena.recycles == 1
            assert arena.live_generations == 0
        finally:
            arena.close()

    def test_busy_slab_retires_and_unlinks_on_last_release(self):
        arena = PacketArena(slab_bytes=1 << 12)
        try:
            held = arena.reserve(1 << 10)  # keeps slab 1 busy
            old_name = held.slab_name
            big = arena.reserve(1 << 13)  # forces growth while busy
            assert big.slab_name != old_name
            assert old_name in arena.segment_names()  # retired, mapped
            held.release()  # last generation: retired slab unlinks
            assert old_name not in arena.segment_names()
            big.release()
            assert arena.live_generations == 0
        finally:
            arena.close()

    def test_release_is_idempotent_and_safe_after_close(self):
        arena = PacketArena(slab_bytes=1 << 12)
        generation = arena.reserve(64)
        generation.release()
        generation.release()  # idempotent
        assert arena.recycles == 1
        straggler = arena.reserve(64)
        arena.close()
        straggler.release()  # after close: a no-op, not an underflow
        arena.close()  # close is idempotent too

    def test_closed_arena_refuses_reservations(self):
        arena = PacketArena(slab_bytes=1 << 12)
        arena.close()
        with pytest.raises(RuntimeError, match="closed"):
            arena.reserve(16)


# -- lifecycle hygiene --------------------------------------------------------


@needs_dev_shm
class TestLifecycleHygiene:
    def test_close_unlinks_every_segment(self):
        baseline = _shm_segments()
        arena = PacketArena(slab_bytes=1 << 12)
        held = arena.reserve(1 << 10)
        arena.reserve(1 << 13)  # growth: a second segment exists
        assert len(_shm_segments()) > len(baseline)
        arena.close()  # reclaims busy slabs too — hygiene beats views
        assert _shm_segments() == baseline
        held.release()  # and the straggler release stays safe

    def test_backend_close_unlinks_segments(self):
        baseline = _shm_segments()
        backend = ProcessPoolBackend(workers=2, arena=True)
        try:
            packets = _gcm_packets()
            sealed, _ = seal_open_many("gcm", KEY, packets, [], 16,
                                       backend=backend)
            assert sealed == seal_open_many("gcm", KEY, packets, [], 16)[0]
            assert backend.dispatch_arena() is not None
            assert len(_shm_segments()) > len(baseline)
        finally:
            backend.close()
        assert _shm_segments() == baseline

    def test_worker_crash_reclaims_the_in_flight_slab(self):
        """Chaos leg: a worker dies mid-dispatch while its descriptors
        point into a live slab.  Recovery must deliver byte-identical
        survivors, release the generation, and leak nothing."""
        baseline = _shm_segments()
        packets = _gcm_packets(count=24)
        expected = seal_open_many("gcm", KEY, packets, [], 16)
        plan = FaultPlan(scripted=(ScriptedFault("worker_crash", times=1),))
        backend = ProcessPoolBackend(workers=2, arena=True)
        backend.resilience = FAST
        previous = set_fault_plan(plan)
        try:
            got = seal_open_many("gcm", KEY, packets, [], 16, backend=backend)
        finally:
            set_fault_plan(previous)
            arena = backend._arena
            backend.close()
        assert got == expected
        assert arena is not None and arena.live_generations == 0
        assert _shm_segments() == baseline


# -- structural fallback ------------------------------------------------------


class TestArenaFallback:
    def test_no_shared_memory_degrades_with_recorded_reason(self, monkeypatch):
        def refuse(name, size):
            raise OSError("shm_open refused (test)")

        monkeypatch.setattr(arena_mod, "_new_segment", refuse)
        backend = ProcessPoolBackend(workers=2, arena=True)
        try:
            packets = _gcm_packets()
            expected = seal_open_many("gcm", KEY, packets, [], 16)
            assert backend.dispatch_arena() is None
            reason = backend.arena_degraded_reason
            assert reason is not None
            assert "shared-memory arena unavailable" in reason
            assert "shm_open refused" in reason
            # The dispatch itself still works — pickling dataplane.
            got = seal_open_many("gcm", KEY, packets, [], 16, backend=backend)
            assert got == expected
            # The probe is sticky: no re-attempt storm per dispatch.
            assert backend.dispatch_arena() is None
        finally:
            backend.close()

    def test_opt_out_spec_and_env(self, monkeypatch):
        assert ProcessPoolBackend(workers=2, arena=False).dispatch_arena() \
            is None
        monkeypatch.setenv("REPRO_ARENA", "0")
        backend = ProcessPoolBackend(workers=2)
        assert backend._arena_requested is False
        assert backend.dispatch_arena() is None
        monkeypatch.setenv("REPRO_ARENA", "pickle")
        assert ProcessPoolBackend(workers=2)._arena_requested is False
        monkeypatch.delenv("REPRO_ARENA")
        assert ProcessPoolBackend(workers=2)._arena_requested is True

    def test_degraded_backend_stops_using_the_arena(self):
        backend = ProcessPoolBackend(workers=2, arena=True)
        try:
            assert backend.dispatch_arena() is not None
            backend.degraded_reason = "test-injected"
            assert backend.dispatch_arena() is None  # thread/inline mode
        finally:
            backend.close()


# -- rekey epoch protocol -----------------------------------------------------


class TestEpochProtocol:
    def setup_method(self):
        clear_warm_keys()

    def teardown_method(self):
        clear_warm_keys()

    def test_note_key_epoch_tracks_rotation(self):
        key_id = ("test-epoch", 1)
        epoch = key_epoch(key_id)
        assert note_key_epoch(KEY, (key_id, epoch)) is False  # first sight
        assert note_key_epoch(KEY, (key_id, epoch)) is False  # warm hit
        bumped = bump_key_epoch(key_id)
        assert bumped == epoch + 1
        assert key_epoch(key_id) == bumped
        new_key = bytes(reversed(KEY))
        assert note_key_epoch(new_key, (key_id, bumped)) is True  # rotated
        assert note_key_epoch(new_key, (key_id, bumped)) is False  # warm again
        assert warm_keys()[key_id] == (bumped, new_key)

    def test_rotation_drops_exactly_the_rotated_key(self):
        a, b = ("test-epoch", "a"), ("test-epoch", "b")
        note_key_epoch(b"A" * 16, (a, key_epoch(a)))
        note_key_epoch(b"B" * 16, (b, key_epoch(b)))
        epoch_b_before = warm_keys()[b]
        bump_key_epoch(a)
        assert note_key_epoch(b"A2" + b"A" * 14, (a, key_epoch(a))) is True
        # Key b's warm record never moved.
        assert warm_keys()[b] == epoch_b_before
        assert note_key_epoch(b"B" * 16, (b, key_epoch(b))) is False

    def test_untagged_dispatches_are_inert(self):
        assert note_key_epoch(KEY, None) is False
        assert warm_keys() == {}

    def test_key_scheduler_invalidate_bumps_the_epoch(self):
        """The rekey hook and the arena epoch are one protocol: every
        ``KeyScheduler.invalidate`` advances the key's epoch so warm
        workers drop exactly that key's schedule."""
        from repro.mccp.key_memory import KeyMemory
        from repro.mccp.key_scheduler import KeyScheduler
        from repro.sim.kernel import Simulator
        from repro.unit.timing import DEFAULT_TIMING

        key_memory = KeyMemory()
        key_memory.load_key(3, bytes(16))
        scheduler = KeyScheduler(Simulator(), key_memory, DEFAULT_TIMING)
        before = key_epoch(3)
        assert scheduler.invalidate(3) is False  # nothing memoized yet
        assert key_epoch(3) == before + 1  # epoch still advanced


# -- warm workers: steady state and rekey -------------------------------------


class TestWarmWorkers:
    def test_steady_state_has_zero_reexpansions(self):
        """ISSUE 9 acceptance: after warmup, a workload storm shows
        zero key-schedule re-expansions in the persistent workers."""
        backend = ProcessPoolBackend(workers=2, arena=True)
        keys = 2
        spec = WorkloadSpec(
            configs=tuple(
                ChannelConfig(
                    RadioStandard.SATCOM,
                    bytes([index] * 32),
                    TrafficPattern.SATURATING,
                    packets=24,
                )
                for index in range(keys)
            ),
            dataplane="batched",
            flush_policy=FlushPolicy(coalesce_limit=8, flush_deadline=8192),
            backend=backend,
        )
        try:
            warmup = SdrPlatform(core_count=4, seed=7).run_workload(spec)
            # Cold workers expand each key at most once per worker;
            # assignment is nondeterministic so only the product bounds.
            assert 0 < warmup.key_schedule_expansions <= backend.workers * keys
            steady = SdrPlatform(core_count=4, seed=8).run_workload(spec)
            assert steady.key_schedule_expansions == 0
        finally:
            backend.close()

    def test_rekey_reexpands_only_the_rotated_key(self):
        """A rekey epoch bump invalidates exactly the rotated key's
        cached schedule: the next dispatch under the new key re-expands
        (bounded by worker count), sibling keys stay warm at zero."""
        backend = ProcessPoolBackend(workers=2, arena=True)
        key_a = bytes([0xA5] * 16)
        key_b = bytes([0x5A] * 16)
        id_a, id_b = ("test-rekey", "a"), ("test-rekey", "b")
        packets = _gcm_packets(count=16, seed=0xEB)

        def dispatch(key, key_id):
            before = backend.worker_expansions
            handle = seal_open_submit(
                "gcm", key, packets, [], 16, backend=backend,
                key_ref=(key_id, key_epoch(key_id)),
            )
            handle.result()
            return backend.worker_expansions - before

        try:
            dispatch(key_a, id_a)  # warm both keys in both workers
            dispatch(key_b, id_b)
            while dispatch(key_a, id_a) or dispatch(key_b, id_b):
                pass  # drain until every worker is warm on both keys
            # Rekey channel a: new material, bumped epoch.
            key_a2 = bytes(range(0x10, 0x20))
            bump_key_epoch(id_a)
            cost = dispatch(key_a2, id_a)
            assert 0 < cost <= backend.workers
            assert dispatch(key_b, id_b) == 0  # sibling stayed warm
            while dispatch(key_a2, id_a):
                pass  # remaining workers warm the new schedule
            assert dispatch(key_a2, id_a) == 0
        finally:
            backend.close()
