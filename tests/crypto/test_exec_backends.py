"""Execution backends: resolution, sharding and the equivalence matrix.

The contract under test is the determinism guarantee of
:mod:`repro.crypto.fast.exec`: a backend changes *where* batch sweeps
run, never what they compute or the order results come back in.  The
matrix pins inline == thread == process byte-for-byte across GCM/CCM/
GMAC, ragged length mixes, forged tags mid-batch, both settings of the
fast switch, and the no-numpy scalar fallback — and checks backend
resolution, shard/merge arithmetic and graceful degradation besides.
"""

import random

import pytest

from repro.crypto.fast import batch as fast_batch
from repro.crypto.fast import set_fast
from repro.crypto.fast.batch import (
    cbc_mac_many,
    ccm_open_many,
    ccm_seal_many,
    gcm_open_many,
    gcm_seal_many,
    gmac_many,
    seal_open_many,
)
from repro.crypto.fast.exec import (
    INLINE,
    InlineBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
    default_backend,
    make_backend,
    resolve_backend,
    set_default_backend,
)
from repro.crypto.modes.ccm import ccm_encrypt
from repro.crypto.modes.gcm import gcm_encrypt

KEY = bytes(range(16))

#: Ragged payload mix: empty, sub-block, block-aligned, multi-block, 2 KB.
SIZES = (0, 1, 16, 33, 256, 1024, 2048, 5, 100, 47, 512, 2000)


@pytest.fixture(scope="module")
def thread_backend():
    backend = ThreadPoolBackend(workers=3)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def process_backend():
    # Pinned to the pickling dataplane so the matrix exercises it even
    # with the arena on by default.
    backend = ProcessPoolBackend(workers=2, arena=False)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def arena_backend():
    backend = ProcessPoolBackend(workers=2, arena=True)
    yield backend
    backend.close()


@pytest.fixture(params=["thread", "process-pickle", "process-arena"])
def pooled_backend(request, thread_backend, process_backend, arena_backend):
    return {
        "thread": thread_backend,
        "process-pickle": process_backend,
        "process-arena": arena_backend,
    }[request.param]


def _gcm_packets(count=len(SIZES), seed=0x5EA1):
    rng = random.Random(seed)
    return [
        ((i + 1).to_bytes(12, "big"), rng.randbytes(SIZES[i % len(SIZES)]),
         rng.randbytes(9))
        for i in range(count)
    ]


def _ccm_packets(count=len(SIZES), seed=0x5EA2):
    rng = random.Random(seed)
    return [
        ((i + 1).to_bytes(13, "big"),
         rng.randbytes(max(1, SIZES[i % len(SIZES)])), rng.randbytes(7))
        for i in range(count)
    ]


# -- backend resolution -------------------------------------------------------


def test_make_backend_parsing():
    assert isinstance(make_backend("inline"), InlineBackend)
    assert isinstance(make_backend("thread"), ThreadPoolBackend)
    assert isinstance(make_backend("process"), ProcessPoolBackend)
    assert make_backend("thread:5").workers == 5
    assert make_backend("PROCESS:2").workers in (1, 2)  # 1 when degraded
    arena_pinned = make_backend("process-arena:2")
    assert isinstance(arena_pinned, ProcessPoolBackend)
    assert arena_pinned._arena_requested is True
    pickle_pinned = make_backend("process_pickle:2")
    assert isinstance(pickle_pinned, ProcessPoolBackend)
    assert pickle_pinned._arena_requested is False
    backend = InlineBackend()
    assert make_backend(backend) is backend
    with pytest.raises(ValueError, match="unknown execution backend"):
        make_backend("gpu")
    with pytest.raises(ValueError, match="bad worker count"):
        make_backend("thread:lots")
    with pytest.raises(ValueError, match="exactly one worker"):
        make_backend("inline:4")
    with pytest.raises(ValueError, match=">= 1 worker"):
        ThreadPoolBackend(0)


def test_default_backend_reads_env(monkeypatch):
    previous = set_default_backend(None)
    try:
        monkeypatch.setenv("REPRO_BACKEND", "thread:2")
        backend = default_backend()
        assert isinstance(backend, ThreadPoolBackend)
        assert backend.workers == 2
        assert resolve_backend(None) is backend  # memoized
        set_default_backend(None)
        monkeypatch.setenv("REPRO_BACKEND", "inline")
        assert isinstance(default_backend(), InlineBackend)
        set_default_backend(None)
        monkeypatch.setenv("REPRO_BACKEND", "not-a-backend")
        with pytest.raises(ValueError, match="unknown execution backend"):
            default_backend()
    finally:
        set_default_backend(previous if previous is not None else None)


def test_resolve_backend_accepts_specs_and_instances(thread_backend):
    assert resolve_backend(thread_backend) is thread_backend
    assert isinstance(resolve_backend("process:2"), ProcessPoolBackend)


def test_shard_spans_cover_exactly_and_respect_min_shard():
    backend = ThreadPoolBackend(workers=4)
    for count in (0, 1, 3, 4, 7, 8, 15, 16, 33, 100):
        spans = backend.shard_spans(count)
        # Exact, ordered, gap-free cover of range(count).
        cursor = 0
        for start, stop in spans:
            assert start == cursor < stop
            cursor = stop
        assert cursor == count
        assert len(spans) <= 4
        if count:
            assert min(stop - start for start, stop in spans) >= min(
                4, count
            ) or len(spans) == 1
    assert backend.shard_spans(0) == []
    assert backend.shard_spans(7) == [(0, 7)]  # under 2 * min_shard
    assert backend.shard_spans(8) == [(0, 4), (4, 8)]
    assert InlineBackend().shard_spans(1000) == [(0, 1000)]
    backend.close()


def test_process_backend_degrades_to_inline_when_marked():
    backend = ProcessPoolBackend(workers=2)
    backend.degraded_reason = "test-injected"
    assert backend.workers == 1
    assert backend.run([(len, (b"abc",)), (len, (b"de",))]) == [3, 2]
    backend.close()


# -- equivalence matrix -------------------------------------------------------


def test_gcm_seal_matrix(pooled_backend):
    packets = _gcm_packets()
    inline = gcm_seal_many(KEY, packets, 16)
    assert gcm_seal_many(KEY, packets, 16, backend=pooled_backend) == inline
    for (iv, data, aad), got in zip(packets, inline):
        assert got == gcm_encrypt(KEY, iv, data, aad, 16, False)


def test_gcm_open_matrix_with_forged_tags(pooled_backend):
    packets = _gcm_packets()
    sealed = gcm_seal_many(KEY, packets, 16)
    forged = {3, 8}
    opens = [
        (iv, ct, bytes(16) if i in forged else tag, aad)
        for i, ((iv, _, aad), (ct, tag)) in enumerate(zip(packets, sealed))
    ]
    inline = gcm_open_many(KEY, opens)
    assert gcm_open_many(KEY, opens, backend=pooled_backend) == inline
    for i, plaintext in enumerate(inline):
        assert plaintext == (None if i in forged else packets[i][1])


def test_ccm_seal_open_matrix_with_forged_tag(pooled_backend):
    packets = _ccm_packets()
    inline = ccm_seal_many(KEY, packets, 8)
    assert ccm_seal_many(KEY, packets, 8, backend=pooled_backend) == inline
    for (nonce, data, aad), got in zip(packets, inline):
        assert got == ccm_encrypt(KEY, nonce, data, aad, 8, False)
    opens = [
        (nonce, ct, bytes(8) if i == 5 else tag, aad)
        for i, ((nonce, _, aad), (ct, tag)) in enumerate(zip(packets, inline))
    ]
    ref = ccm_open_many(KEY, opens)
    assert ccm_open_many(KEY, opens, backend=pooled_backend) == ref
    assert ref[5] is None and ref[6] == packets[6][1]


def test_gmac_and_cbc_mac_matrix(pooled_backend):
    rng = random.Random(0x6A)
    gmac_packets = [
        ((i + 1).to_bytes(12, "big"), rng.randbytes(24)) for i in range(10)
    ]
    assert gmac_many(KEY, gmac_packets, 16, backend=pooled_backend) == gmac_many(
        KEY, gmac_packets, 16
    )
    messages = [rng.randbytes(16 * rng.randint(1, 8)) for _ in range(11)]
    assert cbc_mac_many(KEY, messages, backend=pooled_backend) == cbc_mac_many(
        KEY, messages
    )


def test_seal_open_many_mixes_directions_in_one_pass(pooled_backend):
    packets = _gcm_packets()
    sealed_inline = gcm_seal_many(KEY, packets, 16)
    opens = [
        (iv, ct, tag, aad)
        for (iv, _, aad), (ct, tag) in zip(packets, sealed_inline)
    ]
    sealed, opened = seal_open_many(
        "gcm", KEY, packets, opens, 16, backend=pooled_backend
    )
    assert sealed == sealed_inline
    assert opened == [data for _, data, _ in packets]
    with pytest.raises(ValueError, match="unknown batch mode"):
        seal_open_many("ctr", KEY, [], [], 16)


def test_matrix_under_reference_fast_switch(pooled_backend):
    """REPRO_FAST=0 (reference dispatch) must not change batch bytes."""
    packets = _gcm_packets(count=9)
    baseline = gcm_seal_many(KEY, packets, 16)
    previous = set_fast(False)
    try:
        assert gcm_seal_many(KEY, packets, 16) == baseline
        assert gcm_seal_many(KEY, packets, 16, backend=pooled_backend) == baseline
    finally:
        set_fast(previous)


def test_matrix_degrades_gracefully_without_numpy(
    monkeypatch, thread_backend
):
    """Scalar-fallback shards must still merge byte-identically."""
    packets = _gcm_packets(count=10)
    ccm_packets = _ccm_packets(count=10)
    baseline = gcm_seal_many(KEY, packets, 16)
    ccm_baseline = ccm_seal_many(KEY, ccm_packets, 8)
    monkeypatch.setattr(fast_batch, "HAVE_NUMPY", False)
    assert gcm_seal_many(KEY, packets, 16) == baseline
    assert gcm_seal_many(KEY, packets, 16, backend=thread_backend) == baseline
    assert (
        ccm_seal_many(KEY, ccm_packets, 8, backend=thread_backend)
        == ccm_baseline
    )


def test_worker_errors_propagate(pooled_backend):
    """A crypto error raised inside a shard must reach the caller."""
    packets = _ccm_packets(count=12)
    packets[10] = (bytes(16), b"payload", b"")  # 16-byte nonce: invalid
    with pytest.raises(Exception, match="[Nn]once"):
        ccm_seal_many(KEY, packets, 8, backend=pooled_backend)


def test_inline_singleton_guards_recursion():
    """Shard workers run with backend=INLINE; it must stay inline."""
    assert INLINE.workers == 1
    packets = _gcm_packets(count=9)
    assert gcm_seal_many(KEY, packets, 16, backend=INLINE) == gcm_seal_many(
        KEY, packets, 16
    )


def test_ccm_shards_never_reenter_a_saturated_default_pool():
    """Regression: CCM's inline body calls cbc_mac_many, which must
    not resolve the process-default pool — a shard worker submitting
    sub-shards to its own saturated pool deadlocks forever."""
    import threading

    previous = set_default_backend("thread:2")
    try:
        pool = resolve_backend(None)
        packets = _ccm_packets(count=32)
        outcome = {}

        def work():
            outcome["sealed"] = ccm_seal_many(KEY, packets, 8, backend=pool)

        worker = threading.Thread(target=work, daemon=True)
        worker.start()
        worker.join(timeout=60)
        assert not worker.is_alive(), (
            "ccm_seal_many deadlocked re-entering its own pool"
        )
        assert outcome["sealed"] == ccm_seal_many(KEY, packets, 8)
    finally:
        set_default_backend(previous)


def test_spec_string_resolution_is_memoized():
    """Stored spec strings must reuse one pool, not leak one per call
    (CommController stores the spec and resolves it every dispatch)."""
    first = resolve_backend("thread:2")
    assert resolve_backend("thread:2") is first
    assert resolve_backend("THREAD:2") is first  # normalised
    assert resolve_backend("thread:3") is not first
    # Explicit instances still pass through untouched.
    mine = ThreadPoolBackend(2)
    assert resolve_backend(mine) is mine
    mine.close()
