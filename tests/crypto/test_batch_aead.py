"""Batch AEAD engine: batch == sequential one-call == reference.

The batch APIs must be pure restatements of the sequential fast APIs
(which the existing equivalence suite already pins to the reference
path).  This suite drives randomized same-key batches across
GCM/CCM/GMAC, packet counts (including empty and single-packet
batches), ragged length mixes, scatter-gather inputs, and the H-power
GHASH fold in all three engines (vector, scalar fold, serial chain).
"""

import random

import pytest

from repro.crypto.fast.batch import (
    MIN_LANES,
    cbc_mac_many,
    ccm_open_many,
    ccm_seal_many,
    gather,
    gcm_open_many,
    gcm_seal_many,
    gmac_many,
)
from repro.crypto.fast.bulk import cbc_mac_fast, ccm_seal, gcm_seal
from repro.crypto.fast.ghash_hpower import (
    HAVE_NUMPY,
    _fold_python,
    ghash_blocks_hpower,
)
from repro.crypto.fast.gf128_tables import ghash_blocks_tabulated
from repro.crypto.modes.ccm import ccm_encrypt
from repro.crypto.modes.gcm import gcm_encrypt
from repro.crypto.modes.gmac import gmac
from repro.errors import BlockSizeError, NonceError, TagError

KEY_SIZES = (16, 24, 32)
#: Ragged payload sizes mixed within one batch.
SIZES = (0, 1, 15, 16, 17, 48, 300, 2048)


def _batch(i: int, nonce_bytes: int):
    rng = random.Random(0xBA7C4 + i)
    key = rng.randbytes(KEY_SIZES[i % 3])
    count = (0, 1, 2, MIN_LANES - 1, MIN_LANES, 13, 33)[i % 7]
    packets = [
        (
            rng.randbytes(nonce_bytes),
            rng.randbytes(rng.choice(SIZES)),
            rng.randbytes(rng.randrange(0, 40)),
        )
        for _ in range(count)
    ]
    return rng, key, packets


@pytest.mark.parametrize("i", range(0, 28, 2))
def test_gcm_batch_equivalence(i):
    rng, key, packets = _batch(i, 12)
    sealed = gcm_seal_many(key, packets)
    assert sealed == [gcm_seal(key, iv, d, a) for iv, d, a in packets]
    assert sealed == [
        gcm_encrypt(key, iv, d, a, 16, use_fast=False) for iv, d, a in packets
    ]
    opened = gcm_open_many(
        key,
        [(iv, ct, tag, a) for (iv, d, a), (ct, tag) in zip(packets, sealed)],
    )
    assert opened == [d for _, d, _ in packets]


@pytest.mark.parametrize("i", range(1, 28, 2))
def test_ccm_batch_equivalence(i):
    rng, key, packets = _batch(i, 7 + i % 7)
    tag_length = rng.choice((4, 8, 12, 16))
    sealed = ccm_seal_many(key, packets, tag_length)
    assert sealed == [
        ccm_seal(key, nonce, d, a, tag_length) for nonce, d, a in packets
    ]
    assert sealed == [
        ccm_encrypt(key, nonce, d, a, tag_length, use_fast=False)
        for nonce, d, a in packets
    ]
    opened = ccm_open_many(
        key,
        [(nonce, ct, tag, a) for (nonce, d, a), (ct, tag) in zip(packets, sealed)],
    )
    assert opened == [d for _, d, _ in packets]


def test_gmac_batch_equivalence():
    rng = random.Random(0x6AC)
    key = rng.randbytes(16)
    packets = [
        (rng.randbytes(12), rng.randbytes(rng.choice(SIZES))) for _ in range(17)
    ]
    assert gmac_many(key, packets) == [gmac(key, iv, aad) for iv, aad in packets]


def test_batch_auth_failures_are_isolated():
    rng = random.Random(0x150)
    key = rng.randbytes(16)
    packets = [(rng.randbytes(12), rng.randbytes(100), b"hdr") for _ in range(12)]
    sealed = gcm_seal_many(key, packets)
    tampered = [
        (iv, ct, bytes(len(tag)) if index in (3, 7) else tag, a)
        for index, ((iv, d, a), (ct, tag)) in enumerate(zip(packets, sealed))
    ]
    opened = gcm_open_many(key, tampered)
    for index, (result, (_, data, _)) in enumerate(zip(opened, packets)):
        assert result is None if index in (3, 7) else result == data

    nonces = [rng.randbytes(13) for _ in packets]
    csealed = ccm_seal_many(key, [(n, d, a) for n, (_, d, a) in zip(nonces, packets)], 8)
    ctampered = [
        (n, ct, bytes(8) if index == 0 else tag, a)
        for index, (n, (_, d, a), (ct, tag)) in enumerate(
            zip(nonces, packets, csealed)
        )
    ]
    copened = ccm_open_many(key, ctampered)
    assert copened[0] is None
    assert copened[1:] == [d for _, d, _ in packets[1:]]


def test_scatter_gather_inputs():
    rng = random.Random(0x56)
    key = rng.randbytes(24)
    packets = [(rng.randbytes(12), rng.randbytes(333), rng.randbytes(20))
               for _ in range(9)]
    flat = gcm_seal_many(key, packets)
    segmented = [
        (iv, [d[:100], d[100:100], d[100:]], (a[:3], a[3:]))
        for iv, d, a in packets
    ]
    assert gcm_seal_many(key, segmented) == flat
    assert gather([b"ab", b"", b"c"]) == b"abc" == gather(b"abc")
    assert gather(memoryview(b"xy")) == b"xy"


def test_empty_batches():
    key = bytes(16)
    assert gcm_seal_many(key, []) == []
    assert gcm_open_many(key, []) == []
    assert ccm_seal_many(key, []) == []
    assert ccm_open_many(key, []) == []
    assert cbc_mac_many(key, []) == []


def test_batch_validation_matches_sequential():
    key = bytes(16)
    with pytest.raises(TagError):
        gcm_seal_many(key, [(bytes(12), b"x")], tag_length=0)
    with pytest.raises(TagError):
        gcm_open_many(key, [(bytes(12), b"x", b"")])
    with pytest.raises(NonceError):
        gcm_seal_many(key, [(b"", b"x")])
    with pytest.raises(NonceError):
        ccm_seal_many(key, [(bytes(6), b"x")])
    with pytest.raises(TagError):
        ccm_open_many(key, [(bytes(13), b"x", bytes(5))])


# -- lane-parallel CBC-MAC -------------------------------------------------


@pytest.mark.parametrize("count", (1, 2, MIN_LANES, 23))
def test_cbc_mac_many_matches_scalar(count):
    rng = random.Random(0xCBC + count)
    key = rng.randbytes(KEY_SIZES[count % 3])
    messages = [rng.randbytes(16 * rng.randrange(1, 20)) for _ in range(count)]
    assert cbc_mac_many(key, messages) == [cbc_mac_fast(key, m) for m in messages]
    iv = rng.randbytes(16)
    assert cbc_mac_many(key, messages, iv) == [
        cbc_mac_fast(key, m, iv) for m in messages
    ]


def test_cbc_mac_many_rejects_bad_inputs():
    key = bytes(16)
    with pytest.raises(BlockSizeError):
        cbc_mac_many(key, [b"short"])
    with pytest.raises(BlockSizeError):
        cbc_mac_many(key, [bytes(16), b""])
    with pytest.raises(BlockSizeError):
        cbc_mac_many(key, [bytes(16)], iv=b"tiny")


def test_cbc_mac_many_identical_lane_lengths():
    # All-equal block counts exercise the no-retirement path.
    rng = random.Random(0xEE)
    key = rng.randbytes(16)
    messages = [rng.randbytes(64) for _ in range(MIN_LANES + 1)]
    assert cbc_mac_many(key, messages) == [cbc_mac_fast(key, m) for m in messages]


# -- H-power GHASH fold ----------------------------------------------------


@pytest.mark.parametrize("nblocks", (1, 15, 16, 17, 63, 64, 65, 128, 129, 200))
def test_hpower_fold_matches_serial_chain(nblocks):
    rng = random.Random(0x4907 + nblocks)
    h = rng.getrandbits(128)
    acc = rng.getrandbits(128) if nblocks % 2 else 0
    data = rng.randbytes(16 * nblocks)
    expected = ghash_blocks_tabulated(h, acc, data)
    assert ghash_blocks_hpower(h, acc, data) == expected
    # The scalar fold must agree too, at several fold widths.
    for fold in (2, 3, 8):
        assert _fold_python(h, acc, data, fold) == expected
    if HAVE_NUMPY:
        from repro.crypto.fast.ghash_hpower import _fold_vector

        for fold in (4, 64):
            assert _fold_vector(h, acc, data, fold) == expected


def test_ghash_update_blocks_rides_hpower():
    # Split absorbs must equal one-shot absorbs across the fold
    # boundary (the GHash class chains acc through hpower calls).
    from repro.crypto.ghash import GHash

    rng = random.Random(0x3AA)
    h = rng.randbytes(16)
    data = rng.randbytes(16 * 70)
    one_shot = GHash(h, use_fast=True).update_blocks(data).digest()
    split = (
        GHash(h, use_fast=True)
        .update_blocks(data[: 16 * 3])
        .update_blocks(data[16 * 3 :])
        .digest()
    )
    reference = GHash(h, use_fast=False).update_blocks(data).digest()
    assert one_shot == split == reference


# -- decrypt early-reject (verify-first GCM opens) -------------------------------


def _sealed_gcm_batch(count=10, seed=0xE4):
    rng = random.Random(seed)
    key = rng.randbytes(16)
    packets = [
        (
            rng.randbytes(12),
            rng.randbytes(rng.choice((64, 300, 1024, 2048))),
            rng.randbytes(16),
        )
        for _ in range(count)
    ]
    sealed = gcm_seal_many(key, packets)
    opens = [
        (iv, ct, tag, aad)
        for (iv, _, aad), (ct, tag) in zip(packets, sealed)
    ]
    return key, packets, opens


def test_gcm_open_many_failed_lanes_do_not_perturb_survivors():
    key, packets, opens = _sealed_gcm_batch()
    baseline = gcm_open_many(key, opens)
    assert all(pt is not None for pt in baseline)
    forged = [2, 5, 9]
    tampered = [
        (iv, ct, bytes(len(tag)) if i in forged else tag, aad)
        for i, (iv, ct, tag, aad) in enumerate(opens)
    ]
    opened = gcm_open_many(key, tampered)
    for i, (pt, (_, plaintext, _)) in enumerate(zip(opened, packets)):
        if i in forged:
            assert pt is None
        else:
            # Survivors decrypt exactly as in the all-valid batch even
            # though the forged lanes were dropped from the keystream
            # sweep (lane packing changed underneath them).
            assert pt == plaintext == baseline[i]


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector path exercises the fused sweep")
def test_gcm_open_many_skips_keystream_for_failed_lanes(monkeypatch):
    """Verify-first: forged packets never join the payload sweep."""
    from repro.crypto.fast import batch as batch_mod

    key, packets, opens = _sealed_gcm_batch(count=6, seed=0xE5)
    forged = {1, 4}
    tampered = [
        (iv, ct, bytes(len(tag)) if i in forged else tag, aad)
        for i, (iv, ct, tag, aad) in enumerate(opens)
    ]
    sweeps = []
    real = batch_mod._fused_keystream

    def spy(round_keys, specs):
        sweeps.append(list(specs))
        return real(round_keys, specs)

    monkeypatch.setattr(batch_mod, "_fused_keystream", spy)
    opened = batch_mod.gcm_open_many(key, tampered)
    assert [pt is None for pt in opened] == [i in forged for i in range(6)]
    # Sweep 1: one E(J_0) mask block per packet.  Sweep 2: payload
    # keystream for the four survivors only.
    assert len(sweeps) == 2
    assert [nblocks for _, _, nblocks in sweeps[0]] == [1] * 6
    survivor_blocks = [
        -(-len(ct) // 16)
        for i, (_, ct, _, _) in enumerate(tampered)
        if i not in forged
    ]
    assert [nblocks for _, _, nblocks in sweeps[1]] == survivor_blocks


def test_gcm_open_many_all_forged_runs_no_payload_sweep():
    key, _, opens = _sealed_gcm_batch(count=4, seed=0xE6)
    tampered = [(iv, ct, bytes(len(tag)), aad) for iv, ct, tag, aad in opens]
    assert gcm_open_many(key, tampered) == [None] * 4


def test_ccm_open_many_failed_lanes_do_not_perturb_survivors():
    rng = random.Random(0xE7)
    key = rng.randbytes(16)
    packets = [
        (rng.randbytes(13), rng.randbytes(rng.choice((32, 500, 2048))), rng.randbytes(8))
        for _ in range(9)
    ]
    sealed = ccm_seal_many(key, packets, 8)
    opens = [
        (nonce, ct, tag, aad)
        for (nonce, _, aad), (ct, tag) in zip(packets, sealed)
    ]
    baseline = ccm_open_many(key, opens)
    forged = {0, 8}
    tampered = [
        (nonce, ct, bytes(8) if i in forged else tag, aad)
        for i, (nonce, ct, tag, aad) in enumerate(opens)
    ]
    opened = ccm_open_many(key, tampered)
    for i, (pt, (_, plaintext, _)) in enumerate(zip(opened, packets)):
        if i in forged:
            assert pt is None
        else:
            assert pt == plaintext == baseline[i]
