"""AES: FIPS-197 vectors, schedule shape, round-trip, error paths."""

import pytest

from repro.crypto.aes import (
    AES,
    aes_encrypt_block,
    decrypt_block_with_schedule,
    encrypt_block_with_schedule,
    expand_key,
)
from repro.crypto.testvectors import aes_vectors
from repro.errors import BlockSizeError, KeySizeError


@pytest.mark.parametrize("vector", aes_vectors(), ids=lambda v: v.key.hex()[:8])
def test_known_answers(vector):
    assert aes_encrypt_block(vector.key, vector.plaintext) == vector.ciphertext


@pytest.mark.parametrize("key_bytes,rounds", [(16, 10), (24, 12), (32, 14)])
def test_schedule_shape(key_bytes, rounds):
    schedule = expand_key(bytes(range(key_bytes)))
    assert len(schedule) == rounds + 1
    assert all(len(rk) == 4 for rk in schedule)
    assert all(0 <= w <= 0xFFFFFFFF for rk in schedule for w in rk)


def test_schedule_first_round_key_is_key():
    key = bytes(range(16))
    schedule = expand_key(key)
    words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(4)]
    assert schedule[0] == words


@pytest.mark.parametrize("key_bytes", [16, 24, 32])
def test_encrypt_decrypt_roundtrip(key_bytes, rb):
    cipher = AES(rb(key_bytes))
    block = rb(16)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_cipher_object_metadata():
    cipher = AES(bytes(24))
    assert cipher.key_bits == 192
    assert cipher.rounds == 12
    assert len(cipher.round_keys) == 13


def test_rejects_bad_key_size():
    with pytest.raises(KeySizeError):
        expand_key(bytes(15))
    with pytest.raises(KeySizeError):
        AES(bytes(33))


def test_rejects_bad_block_size():
    schedule = expand_key(bytes(16))
    with pytest.raises(BlockSizeError):
        encrypt_block_with_schedule(bytes(15), schedule)
    with pytest.raises(BlockSizeError):
        decrypt_block_with_schedule(bytes(17), schedule)


def test_different_keys_differ(rb):
    block = rb(16)
    assert aes_encrypt_block(bytes(16), block) != aes_encrypt_block(
        b"\x01" + bytes(15), block
    )


def test_avalanche_single_bit(rb):
    key = rb(16)
    block = rb(16)
    flipped = bytes([block[0] ^ 0x01]) + block[1:]
    a = aes_encrypt_block(key, block)
    b = aes_encrypt_block(key, flipped)
    differing_bits = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
    # A correct AES should flip roughly half of the 128 output bits.
    assert 32 <= differing_bits <= 96
